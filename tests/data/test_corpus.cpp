#include "data/synthetic_corpus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace so::data {
namespace {

TEST(Corpus, DeterministicForSameSeed)
{
    CorpusConfig cfg;
    SyntheticCorpus a(cfg), b(cfg);
    std::vector<std::uint32_t> in_a(100), tgt_a(100), in_b(100),
        tgt_b(100);
    a.nextBatch(in_a.data(), tgt_a.data(), 100);
    b.nextBatch(in_b.data(), tgt_b.data(), 100);
    EXPECT_EQ(in_a, in_b);
    EXPECT_EQ(tgt_a, tgt_b);
}

TEST(Corpus, DifferentSeedsDiffer)
{
    CorpusConfig cfg_a, cfg_b;
    cfg_b.seed = cfg_a.seed + 1;
    SyntheticCorpus a(cfg_a), b(cfg_b);
    std::vector<std::uint32_t> tgt_a(200), tgt_b(200), in(200);
    a.nextBatch(in.data(), tgt_a.data(), 200);
    b.nextBatch(in.data(), tgt_b.data(), 200);
    EXPECT_NE(tgt_a, tgt_b);
}

TEST(Corpus, TokensInVocabulary)
{
    CorpusConfig cfg;
    cfg.vocab = 64;
    SyntheticCorpus corpus(cfg);
    std::vector<std::uint32_t> in(1000), tgt(1000);
    corpus.nextBatch(in.data(), tgt.data(), 1000);
    for (std::size_t i = 0; i < 1000; ++i) {
        ASSERT_LT(in[i], cfg.vocab);
        ASSERT_LT(tgt[i], cfg.vocab);
    }
}

TEST(Corpus, StreamIsMarkovConsistent)
{
    // target[i] must equal input[i+1] (a contiguous token stream).
    CorpusConfig cfg;
    SyntheticCorpus corpus(cfg);
    std::vector<std::uint32_t> in(500), tgt(500);
    corpus.nextBatch(in.data(), tgt.data(), 500);
    for (std::size_t i = 0; i + 1 < 500; ++i)
        ASSERT_EQ(tgt[i], in[i + 1]);
}

TEST(Corpus, ConsecutiveBatchesContinueTheStream)
{
    CorpusConfig cfg;
    SyntheticCorpus corpus(cfg);
    std::vector<std::uint32_t> in1(10), tgt1(10), in2(10), tgt2(10);
    corpus.nextBatch(in1.data(), tgt1.data(), 10);
    corpus.nextBatch(in2.data(), tgt2.data(), 10);
    EXPECT_EQ(in2[0], tgt1[9]);
}

TEST(Corpus, TransitionsFollowPlantedTable)
{
    CorpusConfig cfg;
    cfg.branching = 4;
    SyntheticCorpus corpus(cfg);
    std::vector<std::uint32_t> in(2000), tgt(2000);
    corpus.nextBatch(in.data(), tgt.data(), 2000);
    for (std::size_t i = 0; i < 2000; ++i) {
        const auto &succ = corpus.successors(in[i]);
        ASSERT_NE(std::find(succ.begin(), succ.end(), tgt[i]),
                  succ.end())
            << "transition " << in[i] << " -> " << tgt[i]
            << " not in planted table";
    }
}

TEST(Corpus, ConditionalEntropyBelowUniform)
{
    CorpusConfig cfg;
    cfg.vocab = 256;
    cfg.branching = 16;
    SyntheticCorpus corpus(cfg);
    const double h = corpus.conditionalEntropy();
    EXPECT_GT(h, 0.0);
    // Far below the uniform-vocabulary entropy ln(256): that gap is
    // what a trained model can learn (Fig. 14's falling loss).
    EXPECT_LT(h, std::log(256.0) * 0.6);
    // And at most the uniform entropy over the branching factor.
    EXPECT_LE(h, std::log(16.0) + 1e-9);
}

TEST(Corpus, OrderTwoTransitionsDependOnTwoTokens)
{
    // Empirically verify the defining property of the order-2 chain:
    // the successor set of a (prev, current) pair is confined to its
    // planted branching set, and the same `current` under different
    // `prev` generally leads elsewhere.
    CorpusConfig cfg;
    cfg.vocab = 16;
    cfg.branching = 2;
    cfg.order = 2;
    cfg.seed = 5;
    SyntheticCorpus corpus(cfg);
    const std::size_t n = 20000;
    std::vector<std::uint32_t> in(n), tgt(n);
    corpus.nextBatch(in.data(), tgt.data(), n);

    // Count distinct successors per (prev, current) and per current.
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::set<std::uint32_t>> by_pair;
    std::map<std::uint32_t, std::set<std::uint32_t>> by_token;
    for (std::size_t i = 1; i < n; ++i) {
        by_pair[{in[i - 1], in[i]}].insert(tgt[i]);
        by_token[in[i]].insert(tgt[i]);
    }
    for (const auto &[pair, succ] : by_pair) {
        (void)pair;
        EXPECT_LE(succ.size(), cfg.branching);
    }
    // Marginalized over prev, a token has far more successors than the
    // branching factor — the context carries real information.
    double avg = 0.0;
    for (const auto &[token, succ] : by_token) {
        (void)token;
        avg += static_cast<double>(succ.size());
    }
    avg /= static_cast<double>(by_token.size());
    EXPECT_GT(avg, 2.0 * cfg.branching);
}

TEST(CorpusDeath, RejectsUnsupportedOrder)
{
    CorpusConfig cfg;
    cfg.order = 3;
    EXPECT_DEATH(SyntheticCorpus corpus(cfg), "order-1 and order-2");
}

TEST(Corpus, EntropyGrowsWithBranching)
{
    CorpusConfig narrow, wide;
    narrow.branching = 4;
    wide.branching = 64;
    EXPECT_LT(SyntheticCorpus(narrow).conditionalEntropy(),
              SyntheticCorpus(wide).conditionalEntropy());
}

} // namespace
} // namespace so::data
