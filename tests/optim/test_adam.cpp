#include "optim/adam.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace so::optim {
namespace {

struct AdamState
{
    std::vector<float> p, m, v, g;

    explicit AdamState(std::size_t n, std::uint64_t seed = 41)
        : p(n), m(n, 0.0f), v(n, 0.0f), g(n)
    {
        Rng rng(seed);
        for (std::size_t i = 0; i < n; ++i) {
            p[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
            g[i] = static_cast<float>(rng.gaussian(0.0, 0.1));
        }
    }
};

AdamConfig
defaultConfig()
{
    AdamConfig cfg;
    cfg.lr = 1e-3f;
    cfg.weight_decay = 0.01f;
    return cfg;
}

TEST(AdamKernels, FirstStepMatchesClosedForm)
{
    // After step 1 with m=v=0: m = (1-b1)g, v = (1-b2)g^2, and the
    // bias-corrected update equals ~ -lr * sign(g) for eps << |g|.
    AdamConfig cfg;
    cfg.lr = 0.1f;
    cfg.weight_decay = 0.0f;
    std::vector<float> p{1.0f}, m{0.0f}, v{0.0f}, g{0.5f};
    adamStepFused(cfg, 1, p.data(), m.data(), v.data(), g.data(), 1);
    EXPECT_NEAR(m[0], 0.05f, 1e-7);
    EXPECT_NEAR(v[0], 0.00025f, 1e-8);
    // mhat = g, vhat = g^2 -> update = -lr * g/|g| = -0.1.
    EXPECT_NEAR(p[0], 0.9f, 1e-4);
}

TEST(AdamKernels, NaiveAndFusedAgree)
{
    const std::size_t n = 4099; // Deliberately not a multiple of 4.
    AdamState a(n), b(n);
    const AdamConfig cfg = defaultConfig();
    for (std::int64_t step = 1; step <= 5; ++step) {
        adamStepNaive(cfg, step, a.p.data(), a.m.data(), a.v.data(),
                      a.g.data(), n);
        adamStepFused(cfg, step, b.p.data(), b.m.data(), b.v.data(),
                      b.g.data(), n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(a.p[i], b.p[i], 2e-6f) << i;
        ASSERT_NEAR(a.m[i], b.m[i], 1e-6f) << i;
        ASSERT_NEAR(a.v[i], b.v[i], 1e-7f) << i;
    }
}

TEST(AdamKernels, FusedAndGraceAreBitwiseIdentical)
{
    const std::size_t n = 20000;
    AdamState a(n), b(n);
    const AdamConfig cfg = defaultConfig();
    for (std::int64_t step = 1; step <= 3; ++step) {
        adamStepFused(cfg, step, a.p.data(), a.m.data(), a.v.data(),
                      a.g.data(), n);
        adamStepGrace(cfg, step, b.p.data(), b.m.data(), b.v.data(),
                      b.g.data(), n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(a.p[i], b.p[i]) << i;
        ASSERT_EQ(a.m[i], b.m[i]) << i;
        ASSERT_EQ(a.v[i], b.v[i]) << i;
    }
}

TEST(AdamKernels, GraceThreadedMatchesSingleThreaded)
{
    const std::size_t n = 100000;
    AdamState a(n), b(n);
    const AdamConfig cfg = defaultConfig();
    ThreadPool pool(4);
    for (std::int64_t step = 1; step <= 2; ++step) {
        adamStepGrace(cfg, step, a.p.data(), a.m.data(), a.v.data(),
                      a.g.data(), n, nullptr);
        adamStepGrace(cfg, step, b.p.data(), b.m.data(), b.v.data(),
                      b.g.data(), n, &pool);
    }
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(a.p[i], b.p[i]) << i;
}

TEST(AdamKernels, Fp16FusedVariantMatchesGraceAndWritesShadow)
{
    const std::size_t n = 10000;
    AdamState a(n, 61), b(n, 61);
    std::vector<Half> shadow(n);
    const AdamConfig cfg = defaultConfig();
    for (std::int64_t step = 1; step <= 3; ++step) {
        adamStepGrace(cfg, step, a.p.data(), a.m.data(), a.v.data(),
                      a.g.data(), n);
        adamStepGraceFp16(cfg, step, b.p.data(), shadow.data(),
                          b.m.data(), b.v.data(), b.g.data(), n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(a.p[i], b.p[i]) << i;
        // The shadow copy is the fp16 rounding of the fp32 master.
        ASSERT_EQ(shadow[i].bits, floatToHalf(b.p[i]).bits) << i;
    }
}

TEST(AdamKernels, Fp16FusedThreadedMatchesSingleThreaded)
{
    const std::size_t n = 60000;
    AdamState a(n, 67), b(n, 67);
    std::vector<Half> sa(n), sb(n);
    ThreadPool pool(3);
    const AdamConfig cfg = defaultConfig();
    adamStepGraceFp16(cfg, 1, a.p.data(), sa.data(), a.m.data(),
                      a.v.data(), a.g.data(), n, nullptr);
    adamStepGraceFp16(cfg, 1, b.p.data(), sb.data(), b.m.data(),
                      b.v.data(), b.g.data(), n, &pool);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(a.p[i], b.p[i]);
        ASSERT_EQ(sa[i].bits, sb[i].bits);
    }
}

TEST(AdamKernels, InverseRecoversPreStepState)
{
    const std::size_t n = 10000;
    AdamState s(n);
    const std::vector<float> p0 = s.p, m0 = s.m, v0 = s.v;
    const AdamConfig cfg = defaultConfig();
    adamStepFused(cfg, 1, s.p.data(), s.m.data(), s.v.data(), s.g.data(),
                  n);
    adamStepInverse(cfg, 1, s.p.data(), s.m.data(), s.v.data(),
                    s.g.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(s.p[i], p0[i], 4e-6f) << i;
        ASSERT_NEAR(s.m[i], m0[i], 1e-6f) << i;
        ASSERT_NEAR(s.v[i], v0[i], 1e-7f) << i;
    }
}

TEST(AdamKernels, InverseAfterManySteps)
{
    const std::size_t n = 1000;
    AdamState s(n);
    const AdamConfig cfg = defaultConfig();
    Rng rng(53);
    // Run 10 steps with changing gradients; invert only the last.
    std::vector<float> last_grad(n);
    for (std::int64_t step = 1; step <= 10; ++step) {
        for (auto &g : s.g)
            g = static_cast<float>(rng.gaussian(0.0, 0.1));
        if (step == 10)
            last_grad = s.g;
        adamStepFused(cfg, step, s.p.data(), s.m.data(), s.v.data(),
                      s.g.data(), n);
        if (step == 9) {
            // Snapshot the state before the final step.
        }
    }
    std::vector<float> p9 = s.p, m9 = s.m, v9 = s.v;
    // Step 11 forward then invert it: must return to the snapshot.
    for (auto &g : s.g)
        g = static_cast<float>(rng.gaussian(0.0, 0.1));
    adamStepFused(cfg, 11, s.p.data(), s.m.data(), s.v.data(), s.g.data(),
                  n);
    adamStepInverse(cfg, 11, s.p.data(), s.m.data(), s.v.data(),
                    s.g.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(s.p[i], p9[i], 4e-6f);
        ASSERT_NEAR(s.m[i], m9[i], 1e-6f);
        ASSERT_NEAR(s.v[i], v9[i], 1e-7f);
    }
}

TEST(AdamKernels, RollbackThenReExecuteEqualsDirectClippedStep)
{
    // The STV clipping scenario (§4.4): step with unclipped gradients,
    // roll back, re-execute with clipped gradients; compare against a
    // reference that stepped with clipped gradients directly.
    const std::size_t n = 5000;
    AdamState spec(n, 77), ref(n, 77);
    const AdamConfig cfg = defaultConfig();
    const float clip = 0.25f;

    adamStepFused(cfg, 1, spec.p.data(), spec.m.data(), spec.v.data(),
                  spec.g.data(), n);
    adamStepInverse(cfg, 1, spec.p.data(), spec.m.data(), spec.v.data(),
                    spec.g.data(), n);
    std::vector<float> clipped = spec.g;
    for (auto &g : clipped)
        g *= clip;
    adamStepFused(cfg, 1, spec.p.data(), spec.m.data(), spec.v.data(),
                  clipped.data(), n);

    std::vector<float> ref_clipped = ref.g;
    for (auto &g : ref_clipped)
        g *= clip;
    adamStepFused(cfg, 1, ref.p.data(), ref.m.data(), ref.v.data(),
                  ref_clipped.data(), n);

    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(spec.p[i], ref.p[i], 4e-6f) << i;
        ASSERT_NEAR(spec.m[i], ref.m[i], 1e-6f) << i;
        ASSERT_NEAR(spec.v[i], ref.v[i], 1e-7f) << i;
    }
}

TEST(AdamKernels, WeightDecayIsDecoupled)
{
    // With zero gradients, AdamW shrinks weights by (1 - lr*wd).
    AdamConfig cfg;
    cfg.lr = 0.1f;
    cfg.weight_decay = 0.5f;
    std::vector<float> p{2.0f}, m{0.0f}, v{0.0f}, g{0.0f};
    adamStepFused(cfg, 1, p.data(), m.data(), v.data(), g.data(), 1);
    EXPECT_NEAR(p[0], 2.0f * (1.0f - 0.1f * 0.5f), 1e-6f);
}

class AdamClassTest : public ::testing::TestWithParam<AdamKernel>
{
};

TEST_P(AdamClassTest, StepAndRollbackRoundTrip)
{
    Adam adam(defaultConfig(), GetParam());
    const std::size_t n = 2048;
    const std::size_t slot = adam.addParameter(n);
    AdamState s(n, 99);
    const std::vector<float> p0 = s.p;

    adam.step(slot, s.p.data(), s.g.data());
    EXPECT_EQ(adam.stepCount(slot), 1);
    adam.rollback(slot, s.p.data(), s.g.data());
    EXPECT_EQ(adam.stepCount(slot), 0);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_NEAR(s.p[i], p0[i], 4e-6f);
}

INSTANTIATE_TEST_SUITE_P(Kernels, AdamClassTest,
                         ::testing::Values(AdamKernel::Naive,
                                           AdamKernel::Fused,
                                           AdamKernel::Grace));

TEST(AdamClass, MultipleSlotsAreIndependent)
{
    Adam adam(defaultConfig(), AdamKernel::Fused);
    const std::size_t a = adam.addParameter(100);
    const std::size_t b = adam.addParameter(200);
    EXPECT_EQ(adam.size(a), 100u);
    EXPECT_EQ(adam.size(b), 200u);

    AdamState sa(100, 1), sb(200, 2);
    adam.step(a, sa.p.data(), sa.g.data());
    EXPECT_EQ(adam.stepCount(a), 1);
    EXPECT_EQ(adam.stepCount(b), 0);
    // Slot b's buffers untouched.
    for (float x : adam.momentum(b))
        ASSERT_EQ(x, 0.0f);
}

TEST(AdamClass, RewindStepAfterExternalRestore)
{
    Adam adam(defaultConfig(), AdamKernel::Fused);
    const std::size_t slot = adam.addParameter(16);
    AdamState s(16);
    adam.step(slot, s.p.data(), s.g.data());
    adam.rewindStep(slot);
    EXPECT_EQ(adam.stepCount(slot), 0);
}

TEST(AdamClassDeath, RollbackWithoutStepPanics)
{
    Adam adam(defaultConfig(), AdamKernel::Fused);
    const std::size_t slot = adam.addParameter(4);
    AdamState s(4);
    EXPECT_DEATH(adam.rollback(slot, s.p.data(), s.g.data()),
                 "without a prior step");
}

TEST(AdamKernelsDeath, StepNumbersAreOneBased)
{
    AdamState s(4);
    EXPECT_DEATH(adamStepFused(defaultConfig(), 0, s.p.data(), s.m.data(),
                               s.v.data(), s.g.data(), 4),
                 "1-based");
}

struct AdamHyper
{
    float lr;
    float beta1;
    float beta2;
    float wd;
};

class AdamHyperTest : public ::testing::TestWithParam<AdamHyper>
{
};

TEST_P(AdamHyperTest, InverseRoundTripsAcrossHyperparameters)
{
    // The algebraic inverse (the STV rollback) must hold across the
    // whole practical hyperparameter range, not just the defaults.
    const AdamHyper hp = GetParam();
    AdamConfig cfg;
    cfg.lr = hp.lr;
    cfg.beta1 = hp.beta1;
    cfg.beta2 = hp.beta2;
    cfg.weight_decay = hp.wd;

    const std::size_t n = 3000;
    AdamState s(n, 4242);
    const std::vector<float> p0 = s.p;
    // A couple of prior steps so moments are non-trivial.
    adamStepFused(cfg, 1, s.p.data(), s.m.data(), s.v.data(), s.g.data(),
                  n);
    adamStepFused(cfg, 2, s.p.data(), s.m.data(), s.v.data(), s.g.data(),
                  n);
    const std::vector<float> p2 = s.p, m2 = s.m, v2 = s.v;
    adamStepFused(cfg, 3, s.p.data(), s.m.data(), s.v.data(), s.g.data(),
                  n);
    adamStepInverse(cfg, 3, s.p.data(), s.m.data(), s.v.data(),
                    s.g.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(s.p[i], p2[i], 1e-5f + std::fabs(p2[i]) * 1e-5f);
        ASSERT_NEAR(s.m[i], m2[i], 1e-6f + std::fabs(m2[i]) * 1e-5f);
        ASSERT_NEAR(s.v[i], v2[i], 1e-7f + std::fabs(v2[i]) * 1e-5f);
    }
    (void)p0;
}

INSTANTIATE_TEST_SUITE_P(
    Hyperparameters, AdamHyperTest,
    ::testing::Values(AdamHyper{1e-4f, 0.9f, 0.999f, 0.0f},
                      AdamHyper{1e-3f, 0.9f, 0.999f, 0.01f},
                      AdamHyper{1e-2f, 0.8f, 0.99f, 0.1f},
                      AdamHyper{3e-3f, 0.95f, 0.9999f, 0.0f},
                      AdamHyper{5e-2f, 0.5f, 0.9f, 0.05f}));

TEST(AdamKernels, ConvergesOnQuadratic)
{
    // Minimize f(x) = x^2 elementwise: Adam must drive |x| down.
    AdamConfig cfg;
    cfg.lr = 0.05f;
    cfg.weight_decay = 0.0f;
    std::vector<float> p{3.0f, -2.0f}, m(2, 0.0f), v(2, 0.0f), g(2);
    for (std::int64_t step = 1; step <= 500; ++step) {
        g[0] = 2.0f * p[0];
        g[1] = 2.0f * p[1];
        adamStepGrace(cfg, step, p.data(), m.data(), v.data(), g.data(),
                      2);
    }
    EXPECT_LT(std::fabs(p[0]), 0.05f);
    EXPECT_LT(std::fabs(p[1]), 0.05f);
}

} // namespace
} // namespace so::optim
