#include "optim/lr_schedule.h"

#include <gtest/gtest.h>

namespace so::optim {
namespace {

TEST(LrSchedule, ConstantIsFlat)
{
    const LrSchedule sched = LrSchedule::constant(1e-3f);
    EXPECT_FLOAT_EQ(sched.at(1), 1e-3f);
    EXPECT_FLOAT_EQ(sched.at(1000000), 1e-3f);
}

TEST(LrSchedule, WarmupIsLinear)
{
    const LrSchedule sched(1.0f, 100, 1000);
    EXPECT_FLOAT_EQ(sched.at(1), 0.01f);
    EXPECT_FLOAT_EQ(sched.at(50), 0.5f);
    EXPECT_FLOAT_EQ(sched.at(100), 1.0f);
}

TEST(LrSchedule, CosineDecaysToMinLr)
{
    const LrSchedule sched(1.0f, 0, 1000, LrDecay::Cosine, 0.1f);
    EXPECT_NEAR(sched.at(500), 0.55f, 1e-4f); // Halfway point.
    EXPECT_NEAR(sched.at(1000), 0.1f, 1e-5f);
    EXPECT_NEAR(sched.at(5000), 0.1f, 1e-5f); // Clamped past horizon.
}

TEST(LrSchedule, LinearDecay)
{
    const LrSchedule sched(1.0f, 0, 100, LrDecay::Linear, 0.0f);
    EXPECT_NEAR(sched.at(50), 0.5f, 1e-5f);
    EXPECT_NEAR(sched.at(100), 0.0f, 1e-6f);
}

TEST(LrSchedule, MonotoneUpThenDown)
{
    const LrSchedule sched(2e-3f, 50, 500, LrDecay::Cosine, 1e-5f);
    float prev = 0.0f;
    for (std::int64_t s = 1; s <= 50; ++s) {
        const float lr = sched.at(s);
        EXPECT_GT(lr, prev);
        prev = lr;
    }
    for (std::int64_t s = 51; s <= 500; s += 10) {
        const float lr = sched.at(s);
        EXPECT_LE(lr, prev + 1e-9f);
        prev = lr;
    }
}

TEST(LrScheduleDeath, InvalidParametersPanic)
{
    EXPECT_DEATH(LrSchedule(0.0f, 0, 10), "positive");
    EXPECT_DEATH(LrSchedule(1.0f, 20, 10), "cover the warm-up");
    EXPECT_DEATH(LrSchedule(1.0f, 0, 10, LrDecay::Cosine, 2.0f),
                 "min_lr");
    const LrSchedule ok(1.0f, 0, 10);
    EXPECT_DEATH(ok.at(0), "1-based");
}

} // namespace
} // namespace so::optim
