#include "optim/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace so::optim {
namespace {

float
roundTrip(float x)
{
    return halfToFloat(floatToHalf(x));
}

TEST(Half, ExactSmallIntegers)
{
    for (float x : {0.0f, 1.0f, -1.0f, 2.0f, 1024.0f, -2048.0f})
        EXPECT_EQ(roundTrip(x), x);
}

TEST(Half, KnownEncodings)
{
    EXPECT_EQ(floatToHalf(1.0f).bits, 0x3c00);
    EXPECT_EQ(floatToHalf(-2.0f).bits, 0xc000);
    EXPECT_EQ(floatToHalf(0.5f).bits, 0x3800);
    EXPECT_EQ(floatToHalf(65504.0f).bits, 0x7bff); // Max finite.
    EXPECT_EQ(floatToHalf(0.0f).bits, 0x0000);
    EXPECT_EQ(floatToHalf(-0.0f).bits, 0x8000);
}

TEST(Half, OverflowBecomesInfinity)
{
    EXPECT_TRUE(isInf(floatToHalf(65536.0f)));
    EXPECT_TRUE(isInf(floatToHalf(1e10f)));
    EXPECT_TRUE(isInf(floatToHalf(-1e10f)));
    EXPECT_EQ(floatToHalf(1e10f).bits, 0x7c00);
    EXPECT_EQ(floatToHalf(-1e10f).bits, 0xfc00);
}

TEST(Half, MaxFiniteDoesNotOverflow)
{
    EXPECT_FALSE(isInf(floatToHalf(65504.0f)));
    // 65520 rounds up to infinity (nearest even binade boundary).
    EXPECT_TRUE(isInf(floatToHalf(65520.0f)));
    // 65519 rounds down to 65504.
    EXPECT_EQ(roundTrip(65519.0f), 65504.0f);
}

TEST(Half, NanPropagates)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(isNan(floatToHalf(nan)));
    EXPECT_TRUE(std::isnan(roundTrip(nan)));
    EXPECT_FALSE(isInf(floatToHalf(nan)));
}

TEST(Half, InfinityPropagates)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(isInf(floatToHalf(inf)));
    EXPECT_EQ(roundTrip(inf), inf);
    EXPECT_EQ(roundTrip(-inf), -inf);
    EXPECT_FALSE(isNan(floatToHalf(inf)));
}

TEST(Half, SubnormalsRoundTrip)
{
    // Smallest positive subnormal half = 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(roundTrip(tiny), tiny);
    // 2^-25 rounds to zero (ties to even).
    EXPECT_EQ(roundTrip(std::ldexp(1.0f, -25)), 0.0f);
    // Below half the smallest subnormal: flushes to zero.
    EXPECT_EQ(roundTrip(1e-30f), 0.0f);
}

TEST(Half, MinNormalBoundary)
{
    const float min_normal = std::ldexp(1.0f, -14);
    EXPECT_EQ(halfToFloat(halfMinNormal()), min_normal);
    EXPECT_EQ(roundTrip(min_normal), min_normal);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to
    // even keeps 1.0.
    const float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(roundTrip(halfway), 1.0f);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
    // rounds up to 1+2^-9.
    const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(roundTrip(halfway2), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, RoundTripErrorBounded)
{
    Rng rng(31);
    for (int i = 0; i < 10000; ++i) {
        const float x =
            static_cast<float>(rng.uniform(-1000.0, 1000.0));
        const float y = roundTrip(x);
        // Relative error bounded by 2^-11 for normal halfs.
        EXPECT_LE(std::fabs(y - x), std::fabs(x) * 0.000489 + 1e-7f)
            << x;
    }
}

TEST(Half, AllHalfValuesRoundTripExactly)
{
    // Exhaustive: every finite half converts to float and back to the
    // identical bit pattern.
    for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
        const Half h{static_cast<std::uint16_t>(bits)};
        if (isNan(h))
            continue; // NaN payloads need not be preserved bit-exactly.
        const Half back = floatToHalf(halfToFloat(h));
        ASSERT_EQ(back.bits, h.bits) << "half bits " << bits;
    }
}

TEST(Half, BulkCastMatchesScalar)
{
    Rng rng(37);
    std::vector<float> src(1000);
    for (auto &x : src)
        x = static_cast<float>(rng.gaussian(0.0, 100.0));
    std::vector<Half> halves(src.size());
    std::vector<float> back(src.size());
    castToHalf(src.data(), halves.data(), src.size());
    castToFloat(halves.data(), back.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(halves[i].bits, floatToHalf(src[i]).bits);
        EXPECT_EQ(back[i], roundTrip(src[i]));
    }
}

TEST(Half, HasNanOrInfScan)
{
    std::vector<Half> data(100, floatToHalf(1.5f));
    EXPECT_FALSE(hasNanOrInf(data.data(), data.size()));
    data[57] = floatToHalf(std::numeric_limits<float>::infinity());
    EXPECT_TRUE(hasNanOrInf(data.data(), data.size()));
    data[57] = floatToHalf(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(hasNanOrInf(data.data(), data.size()));
}

TEST(Half, GradientOverflowScenario)
{
    // The exact mixed-precision failure §4.4 validates against: a
    // large loss scale pushes a gradient past 65504 -> Inf in fp16.
    const float grad = 3.0f;
    const float scaled = grad * 65536.0f;
    EXPECT_TRUE(isInf(floatToHalf(scaled)));
    const float ok = grad * 8192.0f;
    EXPECT_FALSE(isInf(floatToHalf(ok)));
}

} // namespace
} // namespace so::optim
