#include "optim/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace so::optim {
namespace {

TEST(Kernels, L2NormSquaredKnownValues)
{
    const std::vector<float> v{3.0f, 4.0f};
    EXPECT_DOUBLE_EQ(l2NormSquared(v.data(), v.size()), 25.0);
}

TEST(Kernels, L2NormSquaredEmpty)
{
    EXPECT_DOUBLE_EQ(l2NormSquared(nullptr, 0), 0.0);
}

TEST(Kernels, L2NormSquaredHandlesRemainder)
{
    // 7 elements exercises the 4-wide main loop plus tail.
    const std::vector<float> v{1, 1, 1, 1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(l2NormSquared(v.data(), v.size()), 7.0);
}

TEST(Kernels, L2NormSquaredMatchesNaiveOnRandomData)
{
    Rng rng(61);
    std::vector<float> v(12345);
    double expected = 0.0;
    for (auto &x : v) {
        x = static_cast<float>(rng.gaussian(0.0, 2.0));
        expected += static_cast<double>(x) * x;
    }
    EXPECT_NEAR(l2NormSquared(v.data(), v.size()), expected,
                expected * 1e-12);
}

TEST(Kernels, HasNanOrInfDetectsEachKind)
{
    std::vector<float> v(100, 1.0f);
    EXPECT_FALSE(hasNanOrInf(v.data(), v.size()));
    v[3] = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(hasNanOrInf(v.data(), v.size()));
    v[3] = -std::numeric_limits<float>::infinity();
    EXPECT_TRUE(hasNanOrInf(v.data(), v.size()));
    v[3] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(hasNanOrInf(v.data(), v.size()));
    v[3] = 1e30f; // Large but finite.
    EXPECT_FALSE(hasNanOrInf(v.data(), v.size()));
}

TEST(Kernels, HasUnsafeValuesCatchesHugeFinite)
{
    std::vector<float> v(10, 1.0f);
    EXPECT_FALSE(hasUnsafeValues(v.data(), v.size(), 1e18f));
    v[7] = 1e20f; // Finite, but its square overflows float.
    EXPECT_TRUE(hasUnsafeValues(v.data(), v.size(), 1e18f));
    v[7] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(hasUnsafeValues(v.data(), v.size(), 1e18f));
    v[7] = -std::numeric_limits<float>::infinity();
    EXPECT_TRUE(hasUnsafeValues(v.data(), v.size(), 1e18f));
}

TEST(Kernels, ScaleInPlace)
{
    std::vector<float> v{1.0f, -2.0f, 4.0f};
    scaleInPlace(v.data(), v.size(), 0.5f);
    EXPECT_EQ(v[0], 0.5f);
    EXPECT_EQ(v[1], -1.0f);
    EXPECT_EQ(v[2], 2.0f);
}

TEST(Kernels, Axpy)
{
    std::vector<float> dst{1.0f, 2.0f};
    const std::vector<float> src{10.0f, 20.0f};
    axpy(dst.data(), src.data(), 2, 0.1f);
    EXPECT_NEAR(dst[0], 2.0f, 1e-6f);
    EXPECT_NEAR(dst[1], 4.0f, 1e-6f);
}

TEST(Kernels, ClipScaleIdentityBelowThreshold)
{
    EXPECT_DOUBLE_EQ(clipScale(0.5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clipScale(1.0, 1.0), 1.0);
}

TEST(Kernels, ClipScaleShrinksAboveThreshold)
{
    const double s = clipScale(4.0, 1.0);
    EXPECT_LT(s, 1.0);
    EXPECT_NEAR(s * 4.0, 1.0, 1e-5);
}

TEST(Kernels, ClipScaleMatchesTorchSemantics)
{
    // clip_grad_norm_: scale = max_norm / (norm + 1e-6).
    EXPECT_NEAR(clipScale(10.0, 2.0), 2.0 / (10.0 + 1e-6), 1e-12);
}

} // namespace
} // namespace so::optim
