#include "common/units.h"

#include <gtest/gtest.h>

namespace so {
namespace {

TEST(Units, ConstantsAreConsistent)
{
    EXPECT_DOUBLE_EQ(kGB, 1e9);
    EXPECT_DOUBLE_EQ(kMiB, 1048576.0);
    EXPECT_DOUBLE_EQ(kGiB, 1024.0 * kMiB);
    EXPECT_DOUBLE_EQ(kTFLOPS, 1e12);
    EXPECT_LT(kGB, kGiB);
}

TEST(Units, FormatBytesPicksBinaryUnit)
{
    EXPECT_EQ(formatBytes(64.0 * kMiB), "64.00 MiB");
    EXPECT_EQ(formatBytes(1.5 * kGiB), "1.50 GiB");
    EXPECT_EQ(formatBytes(512.0), "512.00 B");
    EXPECT_EQ(formatBytes(2.0 * kTiB), "2.00 TiB");
    EXPECT_EQ(formatBytes(4.0 * kKiB), "4.00 KiB");
}

TEST(Units, FormatBandwidth)
{
    EXPECT_EQ(formatBandwidth(450.0 * kGB), "450.00 GB/s");
    EXPECT_EQ(formatBandwidth(32.0 * kGB), "32.00 GB/s");
    EXPECT_EQ(formatBandwidth(1.2 * kTB), "1.20 TB/s");
    EXPECT_EQ(formatBandwidth(5.0 * kMB), "5.00 MB/s");
}

TEST(Units, FormatTimeScalesAcrossMagnitudes)
{
    EXPECT_EQ(formatTime(2.5), "2.50 s");
    EXPECT_EQ(formatTime(12.0 * kMs), "12.00 ms");
    EXPECT_EQ(formatTime(7.0 * kUs), "7.00 us");
    EXPECT_EQ(formatTime(3e-9), "3.00 ns");
}

TEST(Units, FormatFlops)
{
    EXPECT_EQ(formatFlops(990.0 * kTFLOPS), "990.00 TFLOPS");
    EXPECT_EQ(formatFlops(3.0 * kTFLOPS), "3.00 TFLOPS");
    EXPECT_EQ(formatFlops(2.0 * kPFLOPS), "2.00 PFLOPS");
    EXPECT_EQ(formatFlops(5.0 * kGFLOPS), "5.00 GFLOPS");
}

TEST(Units, FormatParams)
{
    EXPECT_EQ(formatParams(13.0e9), "13.0B");
    EXPECT_EQ(formatParams(350.0e6), "350M");
    EXPECT_EQ(formatParams(5.139e9), "5.1B");
}

TEST(Units, FormatHandlesNegativeValues)
{
    EXPECT_EQ(formatBytes(-1.5 * kGiB), "-1.50 GiB");
    EXPECT_EQ(formatTime(-2.0 * kMs), "-2.00 ms");
}

} // namespace
} // namespace so
