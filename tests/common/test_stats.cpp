#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace so {
namespace {

TEST(RunningStat, EmptyAccumulator)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat stat;
    stat.push(4.0);
    EXPECT_EQ(stat.count(), 1u);
    EXPECT_DOUBLE_EQ(stat.mean(), 4.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stat.min(), 4.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.push(x);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequentialPush)
{
    Rng rng(5);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        all.push(x);
        (i % 2 ? a : b).push(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.push(1.0);
    a.push(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStat b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Median)
{
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 50.0), 3.0);
}

TEST(Percentile, Extremes)
{
    const std::vector<double> v{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0, 20.0}, 75.0), 15.0);
}

TEST(Percentile, SingleSample)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 8.0}), 2.8284271247461903, 1e-12);
}

} // namespace
} // namespace so
