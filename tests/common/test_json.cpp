#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace so {
namespace {

TEST(JsonWriter, EmptyObject)
{
    JsonWriter json;
    json.beginObject().endObject();
    EXPECT_EQ(json.str(), "{}");
}

TEST(JsonWriter, EmptyArray)
{
    JsonWriter json;
    json.beginArray().endArray();
    EXPECT_EQ(json.str(), "[]");
}

TEST(JsonWriter, FlatObject)
{
    JsonWriter json;
    json.beginObject()
        .field("name", "SuperOffload")
        .field("tflops", 238.92)
        .field("buckets", std::uint32_t{128})
        .field("feasible", true)
        .endObject();
    EXPECT_EQ(json.str(), "{\"name\":\"SuperOffload\","
                          "\"tflops\":238.92,"
                          "\"buckets\":128,"
                          "\"feasible\":true}");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter json;
    json.beginObject();
    json.key("memory").beginObject().field("gpu", 96.0).endObject();
    json.key("sizes").beginArray().value(1.0).value(2.0).endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\"memory\":{\"gpu\":96},\"sizes\":[1,2]}");
}

TEST(JsonWriter, ArrayOfObjects)
{
    JsonWriter json;
    json.beginArray();
    json.beginObject().field("id", std::int64_t{1}).endObject();
    json.beginObject().field("id", std::int64_t{2}).endObject();
    json.endArray();
    EXPECT_EQ(json.str(), "[{\"id\":1},{\"id\":2}]");
}

TEST(JsonWriter, EscapesSpecialCharacters)
{
    JsonWriter json;
    json.beginObject()
        .field("text", "line1\nline2\t\"quoted\" \\slash")
        .endObject();
    EXPECT_EQ(json.str(), "{\"text\":\"line1\\nline2\\t\\\"quoted\\\" "
                          "\\\\slash\"}");
}

TEST(JsonWriter, ControlCharactersBecomeUnicodeEscapes)
{
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.beginArray()
        .value(std::nan(""))
        .value(std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriter, NullValue)
{
    JsonWriter json;
    json.beginObject();
    json.key("missing");
    json.null();
    json.endObject();
    EXPECT_EQ(json.str(), "{\"missing\":null}");
}

TEST(JsonWriter, TopLevelScalar)
{
    JsonWriter json;
    json.value(42.0);
    EXPECT_EQ(json.str(), "42");
}

TEST(JsonValue, ParsesScalars)
{
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse("null", v));
    EXPECT_TRUE(v.isNull());
    ASSERT_TRUE(JsonValue::parse("true", v));
    EXPECT_TRUE(v.boolean());
    ASSERT_TRUE(JsonValue::parse("false", v));
    EXPECT_FALSE(v.boolean());
    ASSERT_TRUE(JsonValue::parse("-12.5e2", v));
    EXPECT_DOUBLE_EQ(v.number(), -1250.0);
    ASSERT_TRUE(JsonValue::parse("\"hi\"", v));
    EXPECT_EQ(v.text(), "hi");
}

TEST(JsonValue, ParsesNestedContainers)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(
        "{\"a\":[1,2,{\"b\":true}],\"c\":{\"d\":null}} \n", v, &error))
        << error;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.members().size(), 2u);
    const JsonValue &a = v.at("a");
    ASSERT_EQ(a.items().size(), 3u);
    EXPECT_DOUBLE_EQ(a.items()[1].number(), 2.0);
    EXPECT_TRUE(a.items()[2].at("b").boolean());
    EXPECT_TRUE(v.at("c").at("d").isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, UnescapesStrings)
{
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(
        "\"tab\\tquote\\\"back\\\\slash\\/nl\\nu\\u0041\"", v));
    EXPECT_EQ(v.text(), "tab\tquote\"back\\slash/nl\nuA");
}

TEST(JsonValue, RejectsNonFiniteNumbers)
{
    // strtod turns "1e999" into Inf; JSON has no non-finite numbers
    // (the writer emits null for them), so the parser must refuse
    // rather than smuggle an Inf into numeric consumers.
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(JsonValue::parse("1e999", doc, &error));
    EXPECT_NE(error.find("overflows"), std::string::npos);
    EXPECT_FALSE(JsonValue::parse("-1e999", doc, &error));
    EXPECT_FALSE(JsonValue::parse(R"({"watts": 1e400})", doc, &error));
    // The writer's null for a non-finite value parses back as null:
    // the round trip degrades gracefully instead of erroring.
    JsonWriter json;
    json.beginObject();
    json.field("watts", std::numeric_limits<double>::infinity());
    json.endObject();
    ASSERT_TRUE(JsonValue::parse(json.str(), doc, &error)) << error;
    EXPECT_TRUE(doc.find("watts")->isNull());
    // Large-but-finite values still parse.
    ASSERT_TRUE(JsonValue::parse("1e308", doc, &error)) << error;
    EXPECT_DOUBLE_EQ(doc.number(), 1e308);
}

TEST(JsonValue, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::parse("", v, &error));
    EXPECT_FALSE(JsonValue::parse("{", v, &error));
    EXPECT_FALSE(JsonValue::parse("[1,]", v, &error));
    EXPECT_FALSE(JsonValue::parse("{\"a\" 1}", v, &error));
    EXPECT_FALSE(JsonValue::parse("nul", v, &error));
    // Trailing garbage after a complete document is rejected too.
    EXPECT_FALSE(JsonValue::parse("{} x", v, &error));
    EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(JsonValue, RoundTripsWriterOutput)
{
    JsonWriter json;
    json.beginObject()
        .field("name", "line1\nline2 \"q\"")
        .field("value", 0.125)
        .key("list");
    json.beginArray().value(true).null().endArray();
    json.endObject();

    JsonValue v;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(json.str(), v, &error)) << error;
    EXPECT_EQ(v.at("name").text(), "line1\nline2 \"q\"");
    EXPECT_DOUBLE_EQ(v.at("value").number(), 0.125);
    EXPECT_TRUE(v.at("list").items()[0].boolean());
    EXPECT_TRUE(v.at("list").items()[1].isNull());
}

TEST(JsonValueDeath, KindMismatchPanics)
{
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse("42", v));
    EXPECT_DEATH({ const auto &t = v.text(); (void)t; }, "");
}

TEST(JsonWriterDeath, MismatchedEndPanics)
{
    JsonWriter json;
    json.beginObject();
    EXPECT_DEATH(json.endArray(), "endArray mismatch");
}

TEST(JsonWriterDeath, UnterminatedDocumentPanics)
{
    JsonWriter json;
    json.beginObject();
    EXPECT_DEATH({ const auto s = json.str(); (void)s; },
                 "unterminated");
}

TEST(JsonWriterDeath, KeyOutsideObjectPanics)
{
    JsonWriter json;
    json.beginArray();
    EXPECT_DEATH(json.key("oops"), "outside an object");
}

} // namespace
} // namespace so
