#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace so {
namespace {

TEST(JsonWriter, EmptyObject)
{
    JsonWriter json;
    json.beginObject().endObject();
    EXPECT_EQ(json.str(), "{}");
}

TEST(JsonWriter, EmptyArray)
{
    JsonWriter json;
    json.beginArray().endArray();
    EXPECT_EQ(json.str(), "[]");
}

TEST(JsonWriter, FlatObject)
{
    JsonWriter json;
    json.beginObject()
        .field("name", "SuperOffload")
        .field("tflops", 238.92)
        .field("buckets", std::uint32_t{128})
        .field("feasible", true)
        .endObject();
    EXPECT_EQ(json.str(), "{\"name\":\"SuperOffload\","
                          "\"tflops\":238.92,"
                          "\"buckets\":128,"
                          "\"feasible\":true}");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter json;
    json.beginObject();
    json.key("memory").beginObject().field("gpu", 96.0).endObject();
    json.key("sizes").beginArray().value(1.0).value(2.0).endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\"memory\":{\"gpu\":96},\"sizes\":[1,2]}");
}

TEST(JsonWriter, ArrayOfObjects)
{
    JsonWriter json;
    json.beginArray();
    json.beginObject().field("id", std::int64_t{1}).endObject();
    json.beginObject().field("id", std::int64_t{2}).endObject();
    json.endArray();
    EXPECT_EQ(json.str(), "[{\"id\":1},{\"id\":2}]");
}

TEST(JsonWriter, EscapesSpecialCharacters)
{
    JsonWriter json;
    json.beginObject()
        .field("text", "line1\nline2\t\"quoted\" \\slash")
        .endObject();
    EXPECT_EQ(json.str(), "{\"text\":\"line1\\nline2\\t\\\"quoted\\\" "
                          "\\\\slash\"}");
}

TEST(JsonWriter, ControlCharactersBecomeUnicodeEscapes)
{
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.beginArray()
        .value(std::nan(""))
        .value(std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriter, NullValue)
{
    JsonWriter json;
    json.beginObject();
    json.key("missing");
    json.null();
    json.endObject();
    EXPECT_EQ(json.str(), "{\"missing\":null}");
}

TEST(JsonWriter, TopLevelScalar)
{
    JsonWriter json;
    json.value(42.0);
    EXPECT_EQ(json.str(), "42");
}

TEST(JsonWriterDeath, MismatchedEndPanics)
{
    JsonWriter json;
    json.beginObject();
    EXPECT_DEATH(json.endArray(), "endArray mismatch");
}

TEST(JsonWriterDeath, UnterminatedDocumentPanics)
{
    JsonWriter json;
    json.beginObject();
    EXPECT_DEATH({ const auto s = json.str(); (void)s; },
                 "unterminated");
}

TEST(JsonWriterDeath, KeyOutsideObjectPanics)
{
    JsonWriter json;
    json.beginArray();
    EXPECT_DEATH(json.key("oops"), "outside an object");
}

} // namespace
} // namespace so
