#include "common/config_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace so {
namespace {

TEST(ConfigFile, ParsesKeyValuePairs)
{
    const ConfigFile cfg = ConfigFile::parse(
        "model = 13B\n"
        "chips=4\n"
        "  seq   =   2048  \n");
    EXPECT_EQ(cfg.get("model"), "13B");
    EXPECT_EQ(cfg.getInt("chips", 0), 4);
    EXPECT_EQ(cfg.getInt("seq", 0), 2048);
    EXPECT_EQ(cfg.size(), 3u);
}

TEST(ConfigFile, IgnoresCommentsAndBlankLines)
{
    const ConfigFile cfg = ConfigFile::parse(
        "# a comment\n"
        "\n"
        "key = value  # trailing comment\n"
        "; semicolon comment\n");
    EXPECT_EQ(cfg.size(), 1u);
    EXPECT_EQ(cfg.get("key"), "value");
}

TEST(ConfigFile, CollectsMalformedLines)
{
    const ConfigFile cfg = ConfigFile::parse(
        "good = 1\n"
        "this line has no equals\n"
        "= missing key\n");
    EXPECT_EQ(cfg.size(), 1u);
    ASSERT_EQ(cfg.malformedLines().size(), 2u);
}

TEST(ConfigFile, LaterKeysOverride)
{
    const ConfigFile cfg = ConfigFile::parse("x = 1\nx = 2\n");
    EXPECT_EQ(cfg.getInt("x", 0), 2);
}

TEST(ConfigFile, TypedFallbacks)
{
    const ConfigFile cfg = ConfigFile::parse("bad = not-a-number\n");
    EXPECT_EQ(cfg.getInt("bad", 9), 9);
    EXPECT_DOUBLE_EQ(cfg.getDouble("bad", 1.5), 1.5);
    EXPECT_EQ(cfg.getInt("absent", 3), 3);
}

TEST(ConfigFile, BooleanSpellings)
{
    const ConfigFile cfg = ConfigFile::parse(
        "a = true\nb = YES\nc = off\nd = 0\ne = maybe\n");
    EXPECT_TRUE(cfg.getBool("a", false));
    EXPECT_TRUE(cfg.getBool("b", false));
    EXPECT_FALSE(cfg.getBool("c", true));
    EXPECT_FALSE(cfg.getBool("d", true));
    EXPECT_TRUE(cfg.getBool("e", true)); // Unparseable -> fallback.
    EXPECT_FALSE(cfg.getBool("absent", false));
}

TEST(ConfigFile, DoubleValues)
{
    const ConfigFile cfg = ConfigFile::parse("lr = 2e-3\n");
    EXPECT_DOUBLE_EQ(cfg.getDouble("lr", 0.0), 2e-3);
}

TEST(ConfigFile, LoadFromDisk)
{
    const std::string path = ::testing::TempDir() + "/so_config_test.ini";
    {
        std::ofstream out(path);
        out << "model = 5B\nbatch = 8\n";
    }
    bool ok = false;
    const ConfigFile cfg = ConfigFile::load(path, ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(cfg.get("model"), "5B");
    std::remove(path.c_str());
}

TEST(ConfigFile, LoadMissingFileReportsFailure)
{
    bool ok = true;
    const ConfigFile cfg =
        ConfigFile::load("/nonexistent/so_config.ini", ok);
    EXPECT_FALSE(ok);
    EXPECT_EQ(cfg.size(), 0u);
}

} // namespace
} // namespace so
