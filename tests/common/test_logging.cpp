#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace so {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Logging, InformAndWarnDoNotCrash)
{
    inform("test message ", 42);
    warn("warning with value ", 3.14);
    debug("debug message");
}

TEST(Logging, ParseLogLevelAcceptsDocumentedNames)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("debug", LogLevel::Info, &ok),
              LogLevel::Debug);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("INFO"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("Warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
}

TEST(Logging, ParseLogLevelFallsBackOnGarbage)
{
    bool ok = true;
    EXPECT_EQ(parseLogLevel("loud", LogLevel::Warn, &ok),
              LogLevel::Warn);
    EXPECT_FALSE(ok);
    EXPECT_EQ(parseLogLevel("", LogLevel::Error, &ok), LogLevel::Error);
    EXPECT_FALSE(ok);
}

TEST(Logging, EnvironmentVariableSetsLevel)
{
    const LogLevel before = logLevel();
    ::setenv("SO_LOG_LEVEL", "error", 1);
    log_detail::reapplyEnvLogLevel();
    EXPECT_EQ(logLevel(), LogLevel::Error);

    // Unknown values leave the level untouched (with a warning).
    ::setenv("SO_LOG_LEVEL", "bogus", 1);
    log_detail::reapplyEnvLogLevel();
    EXPECT_EQ(logLevel(), LogLevel::Error);

    ::unsetenv("SO_LOG_LEVEL");
    setLogLevel(before);
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    SO_ASSERT(1 + 1 == 2, "math works");
}

TEST(LoggingDeath, AssertAbortsOnFalseCondition)
{
    EXPECT_DEATH(SO_ASSERT(false, "value=", 7), "assertion failed");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(SO_PANIC("internal bug ", 1), "internal bug");
}

TEST(LoggingDeath, FatalExitsWithError)
{
    EXPECT_EXIT(SO_FATAL("user error"), ::testing::ExitedWithCode(1),
                "user error");
}

} // namespace
} // namespace so
