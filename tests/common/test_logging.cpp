#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/json.h"

namespace so {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Logging, InformAndWarnDoNotCrash)
{
    inform("test message ", 42);
    warn("warning with value ", 3.14);
    debug("debug message");
}

TEST(Logging, ParseLogLevelAcceptsDocumentedNames)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("debug", LogLevel::Info, &ok),
              LogLevel::Debug);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("INFO"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("Warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
}

TEST(Logging, ParseLogLevelFallsBackOnGarbage)
{
    bool ok = true;
    EXPECT_EQ(parseLogLevel("loud", LogLevel::Warn, &ok),
              LogLevel::Warn);
    EXPECT_FALSE(ok);
    EXPECT_EQ(parseLogLevel("", LogLevel::Error, &ok), LogLevel::Error);
    EXPECT_FALSE(ok);
}

TEST(Logging, EnvironmentVariableSetsLevel)
{
    const LogLevel before = logLevel();
    ::setenv("SO_LOG_LEVEL", "error", 1);
    log_detail::reapplyEnvLogLevel();
    EXPECT_EQ(logLevel(), LogLevel::Error);

    // Unknown values leave the level untouched (with a warning).
    ::setenv("SO_LOG_LEVEL", "bogus", 1);
    log_detail::reapplyEnvLogLevel();
    EXPECT_EQ(logLevel(), LogLevel::Error);

    ::unsetenv("SO_LOG_LEVEL");
    setLogLevel(before);
}

TEST(Logging, FormatRoundTrip)
{
    const LogFormat before = logFormat();
    setLogFormat(LogFormat::Json);
    EXPECT_EQ(logFormat(), LogFormat::Json);
    setLogFormat(LogFormat::Human);
    EXPECT_EQ(logFormat(), LogFormat::Human);
    setLogFormat(before);
}

TEST(Logging, HumanLineShapeIsPinned)
{
    // The tN token is the emitting thread's stable trace tid, shared
    // with the host Chrome trace and heartbeat (docs/SELFTRACE.md).
    EXPECT_EQ(formatLogLine(LogLevel::Info, "so", "ready", 1.5, 0,
                            LogFormat::Human),
              "[info t0] ready");
    EXPECT_EQ(formatLogLine(LogLevel::Warn, "so", "careful", 0.0, 3,
                            LogFormat::Human),
              "[warn t3] careful");
}

TEST(Logging, JsonLineShapeIsPinned)
{
    EXPECT_EQ(formatLogLine(LogLevel::Error, "so", "boom", 1.25, 0,
                            LogFormat::Json),
              "{\"ts_s\":1.250000,\"level\":\"error\",\"tid\":0,"
              "\"component\":\"so\",\"message\":\"boom\"}");
    // Quotes and backslashes in the message stay valid JSON.
    EXPECT_EQ(formatLogLine(LogLevel::Debug, "so", "path \"a\\b\"", 0.0,
                            7, LogFormat::Json),
              "{\"ts_s\":0.000000,\"level\":\"debug\",\"tid\":7,"
              "\"component\":\"so\","
              "\"message\":\"path \\\"a\\\\b\\\"\"}");
}

TEST(Logging, JsonLineParsesAndCarriesTid)
{
    // Beyond the byte-for-byte pin above: every JSONL line is valid
    // JSON whose tid round-trips as a number.
    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(
        formatLogLine(LogLevel::Info, "so", "x", 2.0, 5,
                      LogFormat::Json),
        doc));
    EXPECT_EQ(doc.at("tid").number(), 5.0);
    EXPECT_EQ(doc.at("level").text(), "info");
}

TEST(Logging, EnvironmentVariableSetsFormat)
{
    const LogFormat before = logFormat();
    ::setenv("SO_LOG_JSON", "1", 1);
    log_detail::reapplyEnvLogLevel();
    EXPECT_EQ(logFormat(), LogFormat::Json);

    ::setenv("SO_LOG_JSON", "off", 1);
    log_detail::reapplyEnvLogLevel();
    EXPECT_EQ(logFormat(), LogFormat::Human);

    ::setenv("SO_LOG_JSON", "TRUE", 1);
    log_detail::reapplyEnvLogLevel();
    EXPECT_EQ(logFormat(), LogFormat::Json);

    ::unsetenv("SO_LOG_JSON");
    setLogFormat(before);
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    SO_ASSERT(1 + 1 == 2, "math works");
}

TEST(LoggingDeath, AssertAbortsOnFalseCondition)
{
    EXPECT_DEATH(SO_ASSERT(false, "value=", 7), "assertion failed");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(SO_PANIC("internal bug ", 1), "internal bug");
}

TEST(LoggingDeath, FatalExitsWithError)
{
    EXPECT_EXIT(SO_FATAL("user error"), ::testing::ExitedWithCode(1),
                "user error");
}

} // namespace
} // namespace so
