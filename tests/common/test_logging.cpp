#include "common/logging.h"

#include <gtest/gtest.h>

namespace so {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Logging, InformAndWarnDoNotCrash)
{
    inform("test message ", 42);
    warn("warning with value ", 3.14);
    debug("debug message");
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    SO_ASSERT(1 + 1 == 2, "math works");
}

TEST(LoggingDeath, AssertAbortsOnFalseCondition)
{
    EXPECT_DEATH(SO_ASSERT(false, "value=", 7), "assertion failed");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(SO_PANIC("internal bug ", 1), "internal bug");
}

TEST(LoggingDeath, FatalExitsWithError)
{
    EXPECT_EXIT(SO_FATAL("user error"), ::testing::ExitedWithCode(1),
                "user error");
}

} // namespace
} // namespace so
