#include "common/table.h"

#include <gtest/gtest.h>

namespace so {
namespace {

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, PadsShortRows)
{
    Table t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only-one"});
    EXPECT_NO_THROW({ const auto s = t.str(); (void)s; });
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table t;
    t.setHeader({"x", "y"});
    t.addRow({"a,b", "quote\"inside"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple)
{
    Table t;
    t.setHeader({"model", "tflops"});
    t.addRow({"5B", "238.92"});
    EXPECT_EQ(t.csv(), "model,tflops\n5B,238.92\n");
}

TEST(Table, NumFormatsFixedPoint)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
    EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, RowsWithoutHeader)
{
    Table t;
    t.addRow({"x", "y"});
    const std::string s = t.str();
    EXPECT_NE(s.find('x'), std::string::npos);
    EXPECT_EQ(s.find("---"), std::string::npos);
}

} // namespace
} // namespace so
