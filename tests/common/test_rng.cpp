#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace so {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams)
{
    Rng a(1), b(2);
    int diff = 0;
    for (int i = 0; i < 64; ++i)
        diff += a.next() != b.next();
    EXPECT_GT(diff, 60);
}

TEST(Rng, NearbySeedsAreDecorrelated)
{
    // SplitMix64 seeding should decorrelate seed and seed+1.
    Rng a(1000), b(1001);
    int diff = 0;
    for (int i = 0; i < 64; ++i)
        diff += a.next() != b.next();
    EXPECT_GT(diff, 60);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowCoversSupportWithoutBias)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.below(10)];
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianWithMeanAndStddev)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(ZipfSampler, PmfSumsToOne)
{
    ZipfSampler zipf(100, 1.1);
    double total = 0.0;
    for (std::size_t i = 0; i < zipf.size(); ++i)
        total += zipf.pmf(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsMonotoneDecreasing)
{
    ZipfSampler zipf(50, 1.2);
    for (std::size_t i = 1; i < zipf.size(); ++i)
        EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1) + 1e-12);
}

TEST(ZipfSampler, SamplesFollowRankOrdering)
{
    ZipfSampler zipf(16, 1.1);
    Rng rng(23);
    std::vector<int> counts(16, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    // Rank 0 must be sampled more than rank 8, rank 8 more than 15.
    EXPECT_GT(counts[0], counts[8]);
    EXPECT_GT(counts[8], counts[15]);
}

TEST(ZipfSampler, SingleElementSupport)
{
    ZipfSampler zipf(1, 1.0);
    Rng rng(29);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

class ZipfExponentTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfExponentTest, HeadMassGrowsWithExponent)
{
    ZipfSampler zipf(64, GetParam());
    // Head probability must be at least uniform.
    EXPECT_GE(zipf.pmf(0), 1.0 / 64.0);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.1, 1.5, 2.0));

} // namespace
} // namespace so
