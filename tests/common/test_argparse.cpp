#include "common/argparse.h"

#include <gtest/gtest.h>

namespace so {
namespace {

ArgParser
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EmptyCommandLine)
{
    const ArgParser args = parse({});
    EXPECT_FALSE(args.has("anything"));
    EXPECT_TRUE(args.positional().empty());
    EXPECT_TRUE(args.keys().empty());
}

TEST(ArgParser, KeyValuePairs)
{
    const ArgParser args = parse({"--model", "13B", "--chips", "4"});
    EXPECT_EQ(args.get("model"), "13B");
    EXPECT_EQ(args.getInt("chips", 0), 4);
}

TEST(ArgParser, EqualsSyntax)
{
    const ArgParser args = parse({"--seq=2048", "--ratio=1.5"});
    EXPECT_EQ(args.getInt("seq", 0), 2048);
    EXPECT_DOUBLE_EQ(args.getDouble("ratio", 0.0), 1.5);
}

TEST(ArgParser, BareFlags)
{
    const ArgParser args = parse({"--compare", "--no-stv"});
    EXPECT_TRUE(args.has("compare"));
    EXPECT_TRUE(args.has("no-stv"));
    EXPECT_EQ(args.get("compare"), "");
}

TEST(ArgParser, FlagFollowedByFlagIsNotConsumed)
{
    const ArgParser args = parse({"--compare", "--model", "5B"});
    EXPECT_TRUE(args.has("compare"));
    EXPECT_EQ(args.get("compare"), "");
    EXPECT_EQ(args.get("model"), "5B");
}

TEST(ArgParser, PositionalArguments)
{
    const ArgParser args = parse({"input.txt", "--opt", "x", "output"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "input.txt");
    EXPECT_EQ(args.positional()[1], "output");
}

TEST(ArgParser, DefaultsWhenAbsent)
{
    const ArgParser args = parse({});
    EXPECT_EQ(args.get("missing", "def"), "def");
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 2.5), 2.5);
}

TEST(ArgParser, InvalidNumbersFallBack)
{
    const ArgParser args = parse({"--chips", "four", "--ratio", "x.y"});
    EXPECT_EQ(args.getInt("chips", -1), -1);
    EXPECT_DOUBLE_EQ(args.getDouble("ratio", -1.0), -1.0);
}

TEST(ArgParser, LastOccurrenceWins)
{
    const ArgParser args = parse({"--model", "5B", "--model", "13B"});
    EXPECT_EQ(args.get("model"), "13B");
}

TEST(ArgParser, KeysEnumeration)
{
    const ArgParser args = parse({"--a", "1", "--b"});
    const auto keys = args.keys();
    EXPECT_EQ(keys.size(), 2u);
}

TEST(ArgParser, NegativeNumbers)
{
    const ArgParser args = parse({"--delta=-5"});
    EXPECT_EQ(args.getInt("delta", 0), -5);
}

} // namespace
} // namespace so
