#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace so {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 100000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForSmallRunsInline)
{
    ThreadPool pool(4);
    int sum = 0; // Not atomic: small n must run inline on this thread.
    pool.parallelFor(100, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ParallelForZeroIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolStillCorrect)
{
    ThreadPool pool(1);
    std::atomic<long> sum{0};
    pool.parallelFor(10000, [&](std::size_t begin, std::size_t end) {
        long local = 0;
        for (std::size_t i = begin; i < end; ++i)
            local += static_cast<long>(i);
        sum += local;
    });
    EXPECT_EQ(sum.load(), 49995000L);
}

TEST(ThreadPool, DefaultThreadCountPositive)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    for (int wave = 0; wave < 5; ++wave) {
        std::atomic<int> count{0};
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 20);
    }
}

class ThreadPoolStress : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ThreadPoolStress, PushAndDrain100kNoopJobs)
{
    // Hammers the pre-sized ring and the notify-elision path: a mix of
    // burst submission (queue depth >> capacity growth) and interleaved
    // waits (empty wakeups while workers race the submitter).
    ThreadPool pool(GetParam());
    std::atomic<std::size_t> ran{0};
    constexpr std::size_t kJobs = 100000;
    constexpr std::size_t kWaves = 10;
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
        for (std::size_t i = 0; i < kJobs / kWaves; ++i)
            pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
        pool.wait();
        ASSERT_EQ(ran.load(), (wave + 1) * (kJobs / kWaves));
    }
    EXPECT_EQ(ran.load(), kJobs);
}

INSTANTIATE_TEST_SUITE_P(Workers, ThreadPoolStress,
                         ::testing::Values(std::size_t{1},
                                           std::size_t{4}));

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsOtherTasksStillRun)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&, i] {
            ++ran;
            if (i % 10 == 0)
                throw std::runtime_error("boom " + std::to_string(i));
        });
    }
    // Exactly one of the five exceptions surfaces; every task ran.
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, PoolUsableAfterException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the next wave runs clean.
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100000,
                                  [&](std::size_t begin, std::size_t) {
                                      if (begin == 0)
                                          throw std::runtime_error("chunk");
                                  }),
                 std::runtime_error);
}

} // namespace
} // namespace so
