/**
 * @file
 * Pins the so::trace contract (docs/SELFTRACE.md): exact drop counts on
 * ring overflow, nothing recorded while disabled, deterministic
 * (t0, tid) merge order, always-valid heartbeat JSON under concurrent
 * rewrite, the ETA clamping rule, and the schema of both export
 * documents.
 */
#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/schema.h"
#include "common/thread_pool.h"

namespace so::trace {
namespace {

/** RAII: enable tracing on a clean slate, restore and clear after. */
class TraceScope
{
  public:
    TraceScope()
    {
        clearAll();
        setEnabled(true);
    }
    ~TraceScope()
    {
        setEnabled(false);
        clearAll();
        setRingCapacity(65536);
    }
};

TEST(Trace, DisabledRecordsNothing)
{
    clearAll();
    setEnabled(false);
    for (int i = 0; i < 100; ++i) {
        Span span(Category::Sim, "noop");
        span.arg("x", 1.0);
    }
    const CollectedTrace trace = collect();
    EXPECT_TRUE(trace.spans.empty());
    EXPECT_EQ(trace.dropped, 0u);
    for (std::size_t c = 0; c < kCategoryCount; ++c)
        EXPECT_EQ(trace.category_count[c], 0u);
}

TEST(Trace, SpansCarryCategoryNameAndArgs)
{
    TraceScope scope;
    {
        Span span(Category::Sweep, "cache-probe");
        span.arg("hit", 1.0);
    }
    const CollectedTrace trace = collect();
    ASSERT_EQ(trace.spans.size(), 1u);
    const SpanRecord &rec = trace.spans[0];
    EXPECT_EQ(rec.category, Category::Sweep);
    EXPECT_STREQ(rec.name, "cache-probe");
    EXPECT_GE(rec.t1, rec.t0);
    ASSERT_NE(rec.arg_key[0], nullptr);
    EXPECT_STREQ(rec.arg_key[0], "hit");
    EXPECT_EQ(rec.arg_val[0], 1.0);
    EXPECT_EQ(rec.arg_key[1], nullptr);
    const std::size_t sweep = static_cast<std::size_t>(Category::Sweep);
    EXPECT_EQ(trace.category_count[sweep], 1u);
    EXPECT_GE(trace.category_s[sweep], 0.0);
}

TEST(Trace, RingOverflowSetsExactDropCounts)
{
    // The calling thread's buffer was created with the default
    // capacity, so overflow the *exact accumulators* contract instead:
    // record far more spans than any moment needs and check the drop
    // arithmetic on a thread whose ring is tiny.
    clearAll();
    setRingCapacity(16);
    setEnabled(true);
    std::uint32_t child_tid = 0;
    std::thread child([&child_tid] {
        child_tid = currentTid();
        for (int i = 0; i < 100; ++i)
            Span(Category::Other, "tick").end();
    });
    child.join();
    setEnabled(false);
    setRingCapacity(65536);

    const CollectedTrace trace = collect();
    // 100 recorded, at most 16 retained: exactly 84 dropped, and the
    // per-tid breakdown names the child thread.
    std::uint64_t child_dropped = 0;
    for (const auto &[tid, dropped] : trace.dropped_by_tid)
        if (tid == child_tid)
            child_dropped = dropped;
    EXPECT_EQ(child_dropped, 84u);
    EXPECT_GE(trace.dropped, 84u);
    // The exact accumulators survive the wrap.
    const std::size_t other = static_cast<std::size_t>(Category::Other);
    EXPECT_EQ(trace.category_count[other], 100u);
    std::size_t retained = 0;
    for (const SpanRecord &rec : trace.spans)
        if (rec.tid == child_tid)
            ++retained;
    EXPECT_EQ(retained, 16u);
    clearAll();
}

TEST(Trace, CollectMergesDeterministicallyByT0ThenTid)
{
    TraceScope scope;
    // Several threads record concurrently; collect() must produce one
    // globally sorted sequence, stable across repeated collects.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < 50; ++i)
                Span(Category::Pool, "job").end();
        });
    for (std::thread &t : threads)
        t.join();
    const CollectedTrace a = collect();
    ASSERT_EQ(a.spans.size(), 200u);
    for (std::size_t i = 1; i < a.spans.size(); ++i) {
        const SpanRecord &prev = a.spans[i - 1];
        const SpanRecord &cur = a.spans[i];
        EXPECT_TRUE(prev.t0 < cur.t0 ||
                    (prev.t0 == cur.t0 && prev.tid <= cur.tid))
            << "spans out of (t0, tid) order at " << i;
    }
    // Deterministic: a second snapshot of the same state is identical.
    const CollectedTrace b = collect();
    ASSERT_EQ(b.spans.size(), a.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        EXPECT_EQ(a.spans[i].t0, b.spans[i].t0);
        EXPECT_EQ(a.spans[i].tid, b.spans[i].tid);
        EXPECT_STREQ(a.spans[i].name, b.spans[i].name);
    }
}

TEST(Trace, ChromeTraceParsesAndUsesHostPid)
{
    TraceScope scope;
    {
        Span span(Category::Sim, "schedule");
        span.arg("tasks", 128.0);
    }
    const std::string doc = toChromeTrace(collect());
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(doc, parsed, &error)) << error;
    const JsonValue &events = parsed.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    bool saw_span = false;
    for (const JsonValue &ev : events.items()) {
        // Every event sits on the host pid, never a simulated-resource
        // pid (0..N), so the two traces merge in one viewer.
        EXPECT_EQ(ev.at("pid").number(),
                  static_cast<double>(kHostTracePid));
        const JsonValue *ph = ev.find("ph");
        if (ph && ph->isString() && ph->text() == "X") {
            saw_span = true;
            EXPECT_EQ(ev.at("name").text(), "schedule");
            EXPECT_EQ(ev.at("cat").text(), "sim");
            EXPECT_EQ(ev.at("args").at("tasks").number(), 128.0);
        }
    }
    EXPECT_TRUE(saw_span);
}

TEST(Trace, SelfProfileJsonIsSchemaStamped)
{
    TraceScope scope;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i)
            pool.submit([] {});
        pool.wait();
    }
    const std::string doc = selfProfileJson(collect());
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(doc, parsed, &error)) << error;
    EXPECT_EQ(parsed.at("schema_version").number(),
              static_cast<double>(kSchemaVersion));
    EXPECT_EQ(parsed.at("kind").text(), "self_profile");
    // ThreadPool instrumentation fed the pool category, the per-worker
    // table, and the queue-wait reservoir percentiles.
    const JsonValue &pool_cat = parsed.at("categories").at("pool");
    EXPECT_EQ(pool_cat.at("count").number(), 8.0);
    EXPECT_FALSE(parsed.at("workers").items().empty());
    EXPECT_EQ(parsed.at("queue_wait").at("count").number(), 8.0);
    EXPECT_GE(parsed.at("queue_wait").at("p95_s").number(),
              parsed.at("queue_wait").at("p50_s").number() - 1e-12);
}

TEST(Trace, EtaClampsUntilMeaningful)
{
    // The pinned clamping rule: done >= 3, elapsed >= 0.5 s,
    // done <= total — anything else is "not estimable".
    EXPECT_LT(etaSeconds(0, 100, 10.0), 0.0);
    EXPECT_LT(etaSeconds(2, 100, 10.0), 0.0);
    EXPECT_LT(etaSeconds(50, 100, 0.4), 0.0);
    EXPECT_LT(etaSeconds(101, 100, 10.0), 0.0);
    // 10 done in 2 s -> 5/s -> 90 remaining -> 18 s.
    EXPECT_DOUBLE_EQ(etaSeconds(10, 100, 2.0), 18.0);
    // Finished: zero remaining.
    EXPECT_DOUBLE_EQ(etaSeconds(100, 100, 2.0), 0.0);
}

TEST(Trace, ProgressSnapshotTracksTicks)
{
    progressBegin(10, 3);
    progressTick();
    progressTick();
    const ProgressSnapshot snap = progressSnapshot();
    EXPECT_TRUE(snap.active);
    EXPECT_EQ(snap.total_units, 10u);
    EXPECT_EQ(snap.done_units, 2u);
    EXPECT_EQ(snap.cached_cells, 3u);
    progressEnd();
    EXPECT_FALSE(progressSnapshot().active);
}

TEST(Trace, HeartbeatJsonIsCompleteAndStamped)
{
    TraceScope scope;
    progressBegin(5, 1);
    progressTick();
    const std::string doc = heartbeatJson();
    progressEnd();
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(doc, parsed, &error)) << error;
    EXPECT_EQ(parsed.at("schema_version").number(),
              static_cast<double>(kSchemaVersion));
    EXPECT_EQ(parsed.at("kind").text(), "heartbeat");
    EXPECT_TRUE(parsed.at("trace").at("enabled").boolean());
    EXPECT_EQ(parsed.at("progress").at("total_units").number(), 5.0);
    EXPECT_EQ(parsed.at("progress").at("done_units").number(), 1.0);
    EXPECT_TRUE(parsed.at("in_flight").isArray());
    EXPECT_TRUE(parsed.at("metrics").isObject());
    EXPECT_GE(parsed.at("uptime_s").number(), 0.0);
}

TEST(Trace, HeartbeatFileIsAlwaysValidJsonUnderConcurrentRewrite)
{
    TraceScope scope;
    const std::string path =
        ::testing::TempDir() + "so_trace_heartbeat.json";
    std::remove(path.c_str());
    // Fast rewrites while a reader polls: write-temp-then-rename means
    // every successful read sees one complete document, never a torn
    // or truncated one.
    startHeartbeat(path, 20);
    int reads = 0;
    for (int attempt = 0; attempt < 200 && reads < 5; ++attempt) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string text = buf.str();
        if (text.empty())
            continue;
        JsonValue parsed;
        std::string error;
        EXPECT_TRUE(JsonValue::parse(text, parsed, &error))
            << "torn heartbeat read: " << error;
        if (parsed.isObject())
            EXPECT_EQ(parsed.at("kind").text(), "heartbeat");
        ++reads;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stopHeartbeat();
    EXPECT_GE(reads, 5) << "heartbeat file never appeared";
    // stopHeartbeat() leaves one final, parseable document behind.
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue parsed;
    EXPECT_TRUE(JsonValue::parse(buf.str(), parsed));
    std::remove(path.c_str());
}

TEST(Trace, WriteExportProducesBothArtifacts)
{
    TraceScope scope;
    Span(Category::Bench, "unit").end();
    const std::string dir = ::testing::TempDir();
    const std::string trace_path = dir + "so_trace_export.json";
    const std::string profile_path =
        dir + "so_trace_export.selfprofile.json";
    std::remove(trace_path.c_str());
    std::remove(profile_path.c_str());
    writeExport(trace_path);

    for (const std::string &path : {trace_path, profile_path}) {
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good()) << path << " missing";
        std::ostringstream buf;
        buf << in.rdbuf();
        JsonValue parsed;
        std::string error;
        EXPECT_TRUE(JsonValue::parse(buf.str(), parsed, &error))
            << path << ": " << error;
    }
    std::remove(trace_path.c_str());
    std::remove(profile_path.c_str());
}

TEST(Trace, CategoryNamesAreStable)
{
    EXPECT_STREQ(categoryName(Category::Pool), "pool");
    EXPECT_STREQ(categoryName(Category::Sweep), "sweep");
    EXPECT_STREQ(categoryName(Category::Sim), "sim");
    EXPECT_STREQ(categoryName(Category::Profile), "profile");
    EXPECT_STREQ(categoryName(Category::Serialize), "serialize");
    EXPECT_STREQ(categoryName(Category::Render), "render");
    EXPECT_STREQ(categoryName(Category::Report), "report");
    EXPECT_STREQ(categoryName(Category::Bench), "bench");
    EXPECT_STREQ(categoryName(Category::Other), "other");
}

TEST(Trace, CurrentTidIsStablePerThread)
{
    const std::uint32_t mine = currentTid();
    EXPECT_EQ(currentTid(), mine);
    std::uint32_t other = mine;
    std::thread child([&other] { other = currentTid(); });
    child.join();
    EXPECT_NE(other, mine);
}

} // namespace
} // namespace so::trace
