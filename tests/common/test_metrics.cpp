/**
 * @file
 * MetricsRegistry contract tests: counters/gauges/histograms register
 * on first use, snapshots are name-sorted and deterministic, the
 * Stable/Execution scope split drives stableJson(), the ScopedTimer
 * records exactly one observation, and concurrent updates are safe.
 */
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/json.h"

namespace so {
namespace {

TEST(Metrics, CountersAccumulate)
{
    MetricsRegistry reg;
    reg.add("a");
    reg.add("a", 4);
    reg.add("b", -2);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("a"), 5);
    EXPECT_EQ(snap.counter("b"), -2);
    EXPECT_EQ(snap.counter("missing", 42), 42);
}

TEST(Metrics, GaugesKeepLastValue)
{
    MetricsRegistry reg;
    reg.set("g", 1.5);
    reg.set("g", -3.25);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.gauge("g"), -3.25);
    EXPECT_DOUBLE_EQ(snap.gauge("missing", 7.0), 7.0);
}

TEST(Metrics, HistogramsFoldCountSumMinMax)
{
    MetricsRegistry reg;
    reg.observe("h", 2.0);
    reg.observe("h", -1.0);
    reg.observe("h", 5.0);
    const MetricsSnapshot snap = reg.snapshot();
    const HistogramValue *h = snap.histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 3u);
    EXPECT_DOUBLE_EQ(h->sum, 6.0);
    EXPECT_DOUBLE_EQ(h->min, -1.0);
    EXPECT_DOUBLE_EQ(h->max, 5.0);
    EXPECT_DOUBLE_EQ(h->mean(), 2.0);
    EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(Metrics, EmptyHistogramMeanIsZero)
{
    HistogramValue h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, HistogramQuantilesExactBelowReservoirSize)
{
    // 101 observations of 0..100: the sample is exact, so quantiles
    // are the interpolated order statistics.
    MetricsRegistry reg;
    for (int i = 100; i >= 0; --i)
        reg.observe("h", static_cast<double>(i));
    const MetricsSnapshot snap = reg.snapshot();
    const HistogramValue *h = snap.histogram("h");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->sample.size(), 101u);
    EXPECT_DOUBLE_EQ(h->quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h->quantile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h->quantile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(h->quantile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h->quantile(1.0), 100.0);
    // The snapshot's sample is sorted even though observations arrived
    // in reverse.
    EXPECT_TRUE(
        std::is_sorted(h->sample.begin(), h->sample.end()));
}

TEST(Metrics, HistogramReservoirIsBoundedAndRepresentative)
{
    // 20k observations uniform over [0, 1): the reservoir stays at its
    // fixed size and the sampled median lands near the true median.
    MetricsRegistry reg;
    for (int i = 0; i < 20000; ++i)
        reg.observe("h", static_cast<double>(i % 1000) / 1000.0);
    const MetricsSnapshot snap = reg.snapshot();
    const HistogramValue *h = snap.histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 20000u);
    EXPECT_EQ(h->sample.size(), 512u);
    EXPECT_NEAR(h->quantile(0.50), 0.5, 0.1);
    EXPECT_GE(h->quantile(0.95), h->quantile(0.50));
    EXPECT_GE(h->quantile(0.99), h->quantile(0.95));
    EXPECT_GE(h->min, 0.0);
    EXPECT_LE(h->quantile(1.0), h->max);
}

TEST(Metrics, HistogramJsonCarriesQuantiles)
{
    MetricsRegistry reg;
    for (int i = 1; i <= 100; ++i)
        reg.observe("h", static_cast<double>(i));
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(reg.snapshot().json(), doc, &error))
        << error;
    const JsonValue &h = doc.at("histograms").at("h");
    EXPECT_DOUBLE_EQ(h.at("p50").number(), 50.5);
    EXPECT_GT(h.at("p95").number(), h.at("p50").number());
    EXPECT_GT(h.at("p99").number(), h.at("p95").number());
}

TEST(Metrics, SnapshotIsSortedByName)
{
    MetricsRegistry reg;
    reg.add("zebra");
    reg.add("alpha");
    reg.add("mid");
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].name, "alpha");
    EXPECT_EQ(snap.counters[1].name, "mid");
    EXPECT_EQ(snap.counters[2].name, "zebra");
}

TEST(Metrics, JsonIsDeterministicAndParses)
{
    // Same metrics registered in different orders render identical
    // JSON, and the JSON round-trips through the parser.
    MetricsRegistry a;
    a.add("c1", 3);
    a.set("g1", 0.5);
    a.observe("h1", 1.0);
    MetricsRegistry b;
    b.observe("h1", 1.0);
    b.set("g1", 0.5);
    b.add("c1", 3);
    EXPECT_EQ(a.snapshot().json(), b.snapshot().json());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(a.snapshot().json(), doc, &error))
        << error;
    EXPECT_DOUBLE_EQ(doc.at("counters").at("c1").number(), 3.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("g1").number(), 0.5);
    EXPECT_DOUBLE_EQ(doc.at("histograms").at("h1").at("count").number(),
                     1.0);
}

TEST(Metrics, StableJsonExcludesExecutionScopeAndHistograms)
{
    MetricsRegistry reg;
    reg.add("logical.cells", 10, MetricScope::Stable);
    reg.add("pool.tasks", 99, MetricScope::Execution);
    reg.set("logical.rate", 2.5, MetricScope::Stable);
    reg.set("pool.depth", 7.0, MetricScope::Execution);
    reg.observe("wall_s", 0.123);
    const std::string stable = reg.snapshot().stableJson();
    EXPECT_NE(stable.find("logical.cells"), std::string::npos);
    EXPECT_NE(stable.find("logical.rate"), std::string::npos);
    EXPECT_EQ(stable.find("pool.tasks"), std::string::npos);
    EXPECT_EQ(stable.find("pool.depth"), std::string::npos);
    EXPECT_EQ(stable.find("wall_s"), std::string::npos);

    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(stable, doc));
    EXPECT_DOUBLE_EQ(doc.at("counters").at("logical.cells").number(),
                     10.0);
}

TEST(Metrics, ResetDropsEverything)
{
    MetricsRegistry reg;
    reg.add("c");
    reg.set("g", 1.0);
    reg.observe("h", 1.0);
    reg.reset();
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
}

TEST(Metrics, GlobalIsOneInstance)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(Metrics, ScopedTimerRecordsOneObservation)
{
    MetricsRegistry reg;
    {
        ScopedTimer timer(reg, "t_s");
    }
    const MetricsSnapshot snap = reg.snapshot();
    const HistogramValue *h = snap.histogram("t_s");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
    EXPECT_GE(h->min, 0.0);
}

TEST(Metrics, ScopedTimerStopIsIdempotent)
{
    MetricsRegistry reg;
    {
        ScopedTimer timer(reg, "t_s");
        timer.stop();
        timer.stop(); // Second stop and the destructor record nothing.
    }
    EXPECT_EQ(reg.snapshot().histogram("t_s")->count, 1u);
}

TEST(Metrics, ScopedTimerMoveTransfersOwnership)
{
    MetricsRegistry reg;
    {
        ScopedTimer outer(reg, "t_s");
        ScopedTimer inner(std::move(outer));
    } // Only the moved-to timer records.
    EXPECT_EQ(reg.snapshot().histogram("t_s")->count, 1u);
}

TEST(Metrics, ConcurrentUpdatesAreCounted)
{
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg] {
            for (int i = 0; i < kPerThread; ++i) {
                reg.add("contended");
                reg.observe("obs", 1.0);
            }
        });
    for (std::thread &t : threads)
        t.join();
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("contended"), kThreads * kPerThread);
    EXPECT_EQ(snap.histogram("obs")->count,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(snap.histogram("obs")->sum, kThreads * kPerThread);
}

} // namespace
} // namespace so
