/**
 * @file
 * Bit-identity pin for the seed two-tier configurations.
 *
 * The memory-hierarchy refactor routed every transfer primitive through
 * hw::MemoryHierarchy paths. That is meant to be a pure re-plumbing:
 * for the configurations that existed before the hierarchy (the staged
 * HBM/DDR(/NVMe) topology), every simulated schedule must be
 * *bit-identical* to the seed — same candidate search outcome, same
 * makespan, same utilizations, down to the last ULP. This test pins
 * hexfloat fingerprints captured from the pre-refactor build; any
 * change here means the hierarchy stopped being behavior-preserving
 * (or a deliberate model change needs these goldens re-captured).
 */
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "hw/presets.h"
#include "model/config.h"
#include "runtime/registry.h"
#include "runtime/sweep.h"

namespace so::runtime {
namespace {

std::string
fingerprint(const IterationResult &res)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "feas=%d|iter=%a|mb=%u|acc=%u|ckpt=%d|gpu=%a|cpu=%a|"
                  "link=%a",
                  res.feasible ? 1 : 0, res.iter_time, res.micro_batch,
                  res.accum_steps, res.activation_checkpointing ? 1 : 0,
                  res.gpu_utilization, res.cpu_utilization,
                  res.link_utilization);
    return buf;
}

struct Cell
{
    const char *tag;
    hw::ClusterSpec cluster;
    const char *model;
    std::uint32_t batch;
    std::uint32_t seq;
};

const Cell kCells[] = {
    {"gh1-5B", hw::gh200Single(), "5B", 8, 1024},
    {"gh1-25B", hw::gh200Single(), "25B", 8, 1024},
    {"gh4-25B", hw::gh200ClusterOf(4), "25B", 16, 2048},
    {"gh1-80B", hw::gh200Single(), "80B", 4, 1024},
};

// Captured from the pre-hierarchy seed build (hexfloat, exact).
const std::map<std::string, std::string> kGolden = {
    {"ddp|gh1-5B",
     "feas=1|iter=0x1.e3ce51b0c2356p+0|mb=1|acc=8|ckpt=0|gpu=0x1p+0|"
     "cpu=0x0p+0|link=0x0p+0"},
    {"megatron|gh1-5B",
     "feas=1|iter=0x1.70c003dab2c75p+0|mb=8|acc=1|ckpt=1|gpu=0x1p+0|"
     "cpu=0x0p+0|link=0x0p+0"},
    {"zero2|gh1-5B",
     "feas=1|iter=0x1.70c003dab2c75p+0|mb=8|acc=1|ckpt=1|gpu=0x1p+0|"
     "cpu=0x0p+0|link=0x0p+0"},
    {"zero3|gh1-5B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-offload|gh1-5B",
     "feas=1|iter=0x1.075c375e192fep+1|mb=8|acc=1|ckpt=0|"
     "gpu=0x1.03d6f77f20c31p-1|cpu=0x1.68d7dc270b5d9p-1|"
     "link=0x1.0430b652771bep-5"},
    {"zero-infinity|gh1-5B",
     "feas=1|iter=0x1.7b37ba16acbbfp+2|mb=8|acc=1|ckpt=0|"
     "gpu=0x1.68e894012c69p-3|cpu=0x1.cf33e53dc7461p-4|"
     "link=0x1.5398d02a53c2bp-1"},
    {"fsdp-offload|gh1-5B",
     "feas=1|iter=0x1.0a34b1a94a3bdp+4|mb=8|acc=1|ckpt=0|"
     "gpu=0x1.010fe8fc13e74p-4|cpu=0x1.dbcc83fe964aap-1|"
     "link=0x1.822c2b7e00d06p-8"},
    {"ulysses|gh1-5B",
     "feas=1|iter=0x1.70c003dab2c75p+0|mb=8|acc=1|ckpt=1|gpu=0x1p+0|"
     "cpu=0x0p+0|link=0x0p+0"},
    {"ulysses-zero3|gh1-5B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-infinity-nvme|gh1-5B",
     "feas=1|iter=0x1.4938ce7a7d7a9p+4|mb=8|acc=1|ckpt=0|"
     "gpu=0x1.9fb75b0eded48p-5|cpu=0x1.0ac5beca7b0f2p-5|"
     "link=0x1.872b13695f76cp-3"},
    {"pipeline|gh1-5B",
     "feas=1|iter=0x1.70c003dab2c72p+0|mb=8|acc=1|ckpt=1|gpu=0x1p+0|"
     "cpu=0x0p+0|link=0x0p+0"},
    {"deep-opt-states|gh1-5B",
     "feas=1|iter=0x1.2e8fe76bf5ac4p+0|mb=8|acc=1|ckpt=0|"
     "gpu=0x1.d938d7e588bbp-1|cpu=0x0p+0|link=0x1.dbec8f4f3ad8ep-4"},
    {"superoffload|gh1-5B",
     "feas=1|iter=0x1.123600201bc45p+0|mb=8|acc=1|ckpt=0|gpu=0x1p+0|"
     "cpu=0x1.583c5bf8f3728p-1|link=0x1.524b147485f0fp-6"},
    {"ddp|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"megatron|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero2|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero3|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-offload|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-infinity|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"fsdp-offload|gh1-25B",
     "feas=1|iter=0x1.3e04881a5d9c2p+6|mb=8|acc=1|ckpt=0|"
     "gpu=0x1.fcb827eb5838ep-5|cpu=0x1.dc1e0ad2c17d3p-1|"
     "link=0x1.81fc23002bcd8p-8"},
    {"ulysses|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"ulysses-zero3|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-infinity-nvme|gh1-25B",
     "feas=1|iter=0x1.89451afcb0951p+6|mb=8|acc=1|ckpt=0|"
     "gpu=0x1.9b60386d89174p-5|cpu=0x1.0af8712652ba9p-5|"
     "link=0x1.873b16014010bp-3"},
    {"pipeline|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"deep-opt-states|gh1-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"superoffload|gh1-25B",
     "feas=1|iter=0x1.8ff70acaed308p+2|mb=4|acc=2|ckpt=0|"
     "gpu=0x1.c906d3858b1b2p-1|cpu=0x1.a9a9b6a44784ap-2|"
     "link=0x1.18009494052b4p-5"},
    {"ddp|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"megatron|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero2|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero3|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-offload|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-infinity|gh4-25B",
     "feas=1|iter=0x1.d8fe65f8f48e4p+2|mb=4|acc=1|ckpt=0|"
     "gpu=0x1.5868c964df801p-1|cpu=0x1.bbf1c4d3efa96p-4|"
     "link=0x1.457d4542612f6p-1"},
    {"fsdp-offload|gh4-25B",
     "feas=1|iter=0x1.7c8d083298007p+4|mb=4|acc=1|ckpt=0|"
     "gpu=0x1.ac129ca4cbe87p-3|cpu=0x1.8de161cbbca31p-1|"
     "link=0x1.42bea8dfec095p-8"},
    {"ulysses|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"ulysses-zero3|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-infinity-nvme|gh4-25B",
     "feas=1|iter=0x1.89a0d7537e65p+4|mb=4|acc=1|ckpt=0|"
     "gpu=0x1.9dd9da5cee393p-3|cpu=0x1.0aba395e58261p-5|"
     "link=0x1.871dc2cfa1e47p-3"},
    {"pipeline|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"deep-opt-states|gh4-25B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"superoffload|gh4-25B",
     "feas=1|iter=0x1.3ef906464c729p+2|mb=4|acc=1|ckpt=0|"
     "gpu=0x1.fff14c2363718p-1|cpu=0x1.f0e7dd529e56p-3|"
     "link=0x1.0ce4ff3bfdc9cp-7"},
    {"ddp|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"megatron|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero2|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero3|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-offload|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-infinity|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"fsdp-offload|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"ulysses|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"ulysses-zero3|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"zero-infinity-nvme|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"pipeline|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"deep-opt-states|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
    {"superoffload|gh1-80B",
     "feas=0|iter=0x0p+0|mb=0|acc=1|ckpt=0|gpu=0x0p+0|cpu=0x0p+0|"
     "link=0x0p+0"},
};

TEST(SchedulePin, SeedConfigsBitIdentical)
{
    for (const Cell &cell : kCells) {
        TrainSetup setup;
        setup.cluster = cell.cluster;
        setup.model = model::modelPreset(cell.model);
        setup.global_batch = cell.batch;
        setup.seq = cell.seq;
        for (const auto &[key, want] : kGolden) {
            const std::string tag = "|" + std::string(cell.tag);
            if (key.size() < tag.size() ||
                key.compare(key.size() - tag.size(), tag.size(), tag) !=
                    0)
                continue;
            const std::string name = key.substr(0, key.size() - tag.size());
            IterationResult res;
            if (name == "superoffload") {
                core::SuperOffloadSystem sys{core::SuperOffloadOptions{}};
                res = sys.run(setup);
            } else {
                res = makeBaseline(name)->run(setup);
            }
            EXPECT_EQ(fingerprint(res), want) << key;
        }
    }
}

TEST(SchedulePin, GoldenFingerprintsHoldAcrossJobs)
{
    // The same pinned cells, evaluated through SweepEngine at several
    // --jobs settings: the worker count must never perturb a
    // fingerprint. This is what keeps the scheduler's per-thread
    // Workspaces (calendar queue, ready buckets) and the graph-cached
    // dependents CSR honest under parallel sweeps — any cross-thread
    // state leak shows up here as a golden mismatch.
    core::SuperOffloadSystem so_sys{core::SuperOffloadOptions{}};
    std::vector<SystemPtr> systems; // Referenced by the engine: keep alive.
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        SweepOptions opts;
        opts.jobs = jobs;
        SweepEngine engine(opts);
        std::vector<std::string> keys;
        for (const Cell &cell : kCells) {
            TrainSetup setup;
            setup.cluster = cell.cluster;
            setup.model = model::modelPreset(cell.model);
            setup.global_batch = cell.batch;
            setup.seq = cell.seq;
            for (const auto &[key, want] : kGolden) {
                (void)want;
                const std::string tag = "|" + std::string(cell.tag);
                if (key.size() < tag.size() ||
                    key.compare(key.size() - tag.size(), tag.size(),
                                tag) != 0)
                    continue;
                const std::string name =
                    key.substr(0, key.size() - tag.size());
                if (name == "superoffload") {
                    engine.add(so_sys, setup, key);
                } else {
                    systems.push_back(makeBaseline(name));
                    engine.add(*systems.back(), setup, key);
                }
                keys.push_back(key);
            }
        }
        engine.run();
        ASSERT_EQ(keys.size(), kGolden.size());
        for (std::size_t i = 0; i < keys.size(); ++i)
            EXPECT_EQ(fingerprint(engine.result(i)),
                      kGolden.at(keys[i]))
                << keys[i] << " jobs=" << jobs;
    }
}

} // namespace
} // namespace so::runtime
