#include <gtest/gtest.h>

#include "runtime/ddp.h"
#include "runtime/fsdp_offload.h"
#include "runtime/megatron.h"
#include "runtime/registry.h"
#include "runtime/ulysses.h"
#include "runtime/zero.h"
#include "runtime/zero_infinity.h"
#include "runtime/zero_offload.h"

namespace so::runtime {
namespace {

TrainSetup
setupFor(const char *model, std::uint32_t chips = 1,
         std::uint32_t batch = 8, std::uint32_t seq = 1024)
{
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(chips);
    setup.model = model::modelPreset(model);
    setup.global_batch = batch;
    setup.seq = seq;
    return setup;
}

// ------------------------------------------------------------------- DDP

TEST(Ddp, SmallModelRunsAtHighThroughput)
{
    DdpSystem ddp;
    const auto res = ddp.run(setupFor("3B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.tflopsPerGpu(), 200.0);
    EXPECT_FALSE(res.activation_checkpointing);
}

TEST(Ddp, OomBeyondMemoryWall)
{
    // 16 bytes/param: ~6B is the single-GPU ceiling (§2.2).
    DdpSystem ddp;
    EXPECT_TRUE(ddp.run(setupFor("5B")).feasible);
    EXPECT_FALSE(ddp.run(setupFor("8B")).feasible);
}

TEST(Ddp, NeverUsesActivationCheckpointing)
{
    DdpSystem ddp;
    for (const char *m : {"1B", "3B", "5B"}) {
        const auto res = ddp.run(setupFor(m));
        if (res.feasible)
            EXPECT_FALSE(res.activation_checkpointing) << m;
    }
}

TEST(Ddp, FallsBackToGradientAccumulation)
{
    DdpSystem ddp;
    const auto res = ddp.run(setupFor("5B"));
    ASSERT_TRUE(res.feasible);
    // The 5B model at batch 8 does not fit without accumulation.
    EXPECT_GT(res.accum_steps, 1u);
}

// -------------------------------------------------------------- Megatron

TEST(Megatron, SingleGpuDegradesToMp1)
{
    MegatronSystem meg;
    const auto res = meg.run(setupFor("3B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.extra("mp"), 1.0);
}

TEST(Megatron, UsesModelParallelismForLargeModels)
{
    MegatronSystem meg;
    const auto res = meg.run(setupFor("20B", 4, 16));
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.extra("mp"), 1.0);
}

TEST(Megatron, FixedDegreeIsRespected)
{
    MegatronSystem meg(4);
    const auto res = meg.run(setupFor("10B", 4, 16));
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.extra("mp"), 4.0);
}

TEST(Megatron, TpSyncCostMakesItSlowerThanZero3)
{
    // Fig. 11: Megatron trails ZeRO-3 at the same scale.
    MegatronSystem meg;
    Zero3System z3;
    const TrainSetup setup = setupFor("10B", 4, 16);
    const auto m = meg.run(setup);
    const auto z = z3.run(setup);
    ASSERT_TRUE(m.feasible);
    ASSERT_TRUE(z.feasible);
    EXPECT_LT(m.tflopsPerGpu(), z.tflopsPerGpu());
}

// ---------------------------------------------------------------- ZeRO-2/3

TEST(Zero2, ShardingUnlocksLargerModelsThanDdp)
{
    Zero2System z2;
    DdpSystem ddp;
    const TrainSetup setup = setupFor("10B", 4, 16);
    EXPECT_TRUE(z2.run(setup).feasible);
    EXPECT_FALSE(ddp.run(setup).feasible);
}

TEST(Zero3, ShardsFurtherThanZero2)
{
    Zero3System z3;
    Zero2System z2;
    const TrainSetup setup = setupFor("20B", 16, 128);
    EXPECT_TRUE(z3.run(setup).feasible);
    EXPECT_FALSE(z2.run(setup).feasible);
}

TEST(Zero3, ParameterGathersOverlapCompute)
{
    Zero3System z3;
    const auto res = z3.run(setupFor("10B", 4, 16));
    ASSERT_TRUE(res.feasible);
    // Prefetched all-gathers should keep the GPU mostly busy.
    EXPECT_GT(res.gpu_utilization, 0.7);
}

// ------------------------------------------------------------ ZeRO-Offload

TEST(ZeroOffload, TrainsModelsDdpCannot)
{
    ZeroOffloadSystem zo;
    EXPECT_TRUE(zo.run(setupFor("15B")).feasible);
    EXPECT_FALSE(DdpSystem().run(setupFor("15B")).feasible);
}

TEST(ZeroOffload, GpuIdleFractionMatchesFig4)
{
    // Fig. 4: "the GPU remains idle for 40-50% of the total execution
    // time" at the largest feasible model / batch.
    ZeroOffloadSystem zo;
    const auto res = zo.run(setupFor("13B", 1, 8));
    ASSERT_TRUE(res.feasible);
    const double idle = 1.0 - res.gpu_utilization;
    EXPECT_GT(idle, 0.35);
    EXPECT_LT(idle, 0.60);
}

TEST(ZeroOffload, BoundedNearTwentyBillionRegardlessOfScale)
{
    // §5.4: each GPU holds the full fp16 copy, so scale caps at ~20B.
    ZeroOffloadSystem zo;
    EXPECT_FALSE(zo.run(setupFor("25B", 1, 8)).feasible);
    EXPECT_FALSE(zo.run(setupFor("25B", 16, 128)).feasible);
    EXPECT_TRUE(zo.run(setupFor("20B", 16, 128)).feasible);
}

TEST(ZeroOffload, CpuSideHoldsOptimizerAndGrads)
{
    ZeroOffloadSystem zo;
    const auto res = zo.run(setupFor("10B"));
    ASSERT_TRUE(res.feasible);
    // 16 bytes/param on the host.
    EXPECT_NEAR(res.memory.cpu_bytes,
                16.0 * model::modelPreset("10B").params(), 1e9);
}

// ----------------------------------------------------------- ZeRO-Infinity

TEST(ZeroInfinity, ThroughputBelowFiftyTflops)
{
    // §5.2: "ZeRO-Infinity's throughput remains below 50 TFLOPS".
    ZeroInfinitySystem zi;
    for (const char *m : {"5B", "13B", "20B"}) {
        const auto res = zi.run(setupFor(m));
        ASSERT_TRUE(res.feasible) << m;
        EXPECT_LT(res.tflopsPerGpu(), 50.0) << m;
        EXPECT_GT(res.tflopsPerGpu(), 15.0) << m;
    }
}

TEST(ZeroInfinity, WeightFlowTrainsBeyondZeroOffload)
{
    // Weight-flow keeps only a working set on the GPU, so ZeRO-Infinity
    // trains models ZeRO-Offload's resident fp16 copy cannot (Fig. 13).
    ZeroInfinitySystem zi;
    ZeroOffloadSystem zo;
    const TrainSetup setup = setupFor("20B");
    EXPECT_TRUE(zi.run(setup).feasible);
    EXPECT_FALSE(zo.run(setup).feasible);
}

// ------------------------------------------------------------ FSDP-Offload

TEST(FsdpOffload, CappedBelowSixteenTflops)
{
    // §5.2: "FSDP-Offload consistently achieves less than 15 TFLOPS".
    FsdpOffloadSystem fsdp;
    for (const char *m : {"3B", "10B", "20B"}) {
        const auto res = fsdp.run(setupFor(m));
        ASSERT_TRUE(res.feasible) << m;
        EXPECT_LT(res.tflopsPerGpu(), 17.0) << m;
    }
}

TEST(FsdpOffload, OptimizerDominatesIteration)
{
    FsdpOffloadSystem fsdp;
    const auto res = fsdp.run(setupFor("10B"));
    ASSERT_TRUE(res.feasible);
    // The PyTorch-loop Adam leaves the GPU mostly idle.
    EXPECT_LT(res.gpu_utilization, 0.25);
}

// ---------------------------------------------------------------- Ulysses

TEST(Ulysses, SequenceLengthBoundedByReplicatedStates)
{
    UlyssesSystem ul;
    // 13B on 8 chips: feasible at 128k, OOM at 256k (Fig. 12 shape).
    EXPECT_TRUE(ul.run(setupFor("13B", 8, 1, 128 * 1024)).feasible);
    EXPECT_FALSE(ul.run(setupFor("13B", 8, 1, 256 * 1024)).feasible);
}

TEST(Ulysses, ThirtyBillionDoesNotFitEightChips)
{
    UlyssesSystem ul;
    EXPECT_FALSE(ul.run(setupFor("30B", 8, 1, 32 * 1024)).feasible);
}

TEST(Ulysses, MfuImprovesWithSequenceLength)
{
    UlyssesSystem ul;
    const double peak =
        hw::gh200ClusterOf(8).node.superchip.gpu.peak_flops;
    const auto short_seq = ul.run(setupFor("13B", 8, 1, 32 * 1024));
    const auto long_seq = ul.run(setupFor("13B", 8, 1, 128 * 1024));
    ASSERT_TRUE(short_seq.feasible && long_seq.feasible);
    EXPECT_GT(long_seq.mfuAgainst(peak), short_seq.mfuAgainst(peak));
}

} // namespace
} // namespace so::runtime
