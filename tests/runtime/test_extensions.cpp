/**
 * @file
 * Tests for the extension systems beyond the paper's evaluated set:
 * pipeline parallelism, Deep-Optimizer-States, Ulysses+ZeRO-3, and
 * ZeRO-Infinity's NVMe tier (§2.2 / §5.1 references).
 */
#include <gtest/gtest.h>

#include "runtime/deep_opt_states.h"
#include "runtime/pipeline.h"
#include "runtime/registry.h"
#include "runtime/scale.h"
#include "runtime/ulysses.h"
#include "runtime/zero_infinity.h"
#include "runtime/zero_offload.h"

namespace so::runtime {
namespace {

TrainSetup
setupFor(const char *model, std::uint32_t chips = 1,
         std::uint32_t batch = 8, std::uint32_t seq = 1024)
{
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(chips);
    setup.model = model::modelPreset(model);
    setup.global_batch = batch;
    setup.seq = seq;
    return setup;
}

// -------------------------------------------------------------- Pipeline

TEST(Pipeline, SingleGpuDegeneratesToOneStage)
{
    PipelineSystem pp;
    const auto res = pp.run(setupFor("3B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.extra("stages"), 1.0);
}

TEST(Pipeline, ShardsStatesAcrossStages)
{
    PipelineSystem pp;
    // 20B does not fit one GPU; 4 stages make it feasible.
    EXPECT_FALSE(pp.run(setupFor("20B", 1, 8)).feasible);
    const auto res = pp.run(setupFor("20B", 4, 16));
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.extra("stages"), 1.0);
}

TEST(Pipeline, BubbleLimitsThroughputAtSmallMicroCounts)
{
    // With few micro-batches per stage the (P-1)/(M+P-1) bubble bites:
    // PP trails ZeRO-3 on the same cluster.
    PipelineSystem pp;
    auto z3 = makeBaseline("zero3");
    const TrainSetup setup = setupFor("10B", 4, 16);
    const auto p = pp.run(setup);
    const auto z = z3->run(setup);
    ASSERT_TRUE(p.feasible && z.feasible);
    EXPECT_LT(p.tflopsPerGpu(), z.tflopsPerGpu());
}

TEST(Pipeline, MoreMicroBatchesAmortizeTheBubble)
{
    PipelineSystem pp(4);
    TrainSetup few = setupFor("10B", 4, 16);   // 1 micro/stage slot
    TrainSetup many = setupFor("10B", 4, 128); // 8x more micro-batches
    const auto a = pp.run(few);
    const auto b = pp.run(many);
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_GT(b.tflopsPerGpu(), a.tflopsPerGpu());
}

TEST(Pipeline, FixedStageCountRespected)
{
    PipelineSystem pp(2);
    const auto res = pp.run(setupFor("10B", 4, 16));
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.extra("stages"), 2.0);
}

// ------------------------------------------------- Deep-Optimizer-States

TEST(DeepOptStates, FasterThanZeroOffloadOnSuperchip)
{
    // GPU-side updates + fast C2C beat CPU-side updates: the point of
    // the contrast.
    DeepOptStatesSystem dos;
    ZeroOffloadSystem zo;
    const TrainSetup setup = setupFor("10B");
    const auto d = dos.run(setup);
    const auto z = zo.run(setup);
    ASSERT_TRUE(d.feasible && z.feasible);
    EXPECT_GT(d.tflopsPerGpu(), 1.3 * z.tflopsPerGpu());
}

TEST(DeepOptStates, SlowerThanSuperOffload)
{
    // It still ships 24 bytes/param of states across the link each
    // iteration and keeps the STE-ish return path.
    DeepOptStatesSystem dos;
    const auto res = dos.run(setupFor("10B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_LT(res.tflopsPerGpu(), 240.0);
    EXPECT_GT(res.tflopsPerGpu(), 150.0);
}

TEST(DeepOptStates, CpuHoldsOnlyOptimizerStates)
{
    DeepOptStatesSystem dos;
    const auto res = dos.run(setupFor("10B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_NEAR(res.memory.cpu_bytes,
                12.0 * model::modelPreset("10B").params(), 1e9);
}

// --------------------------------------------------------- Ulysses+ZeRO-3

TEST(UlyssesZero3, TrainsLongerSequencesThanStage2)
{
    auto stage2 = makeBaseline("ulysses");
    auto stage3 = makeBaseline("ulysses-zero3");
    const TrainSetup setup = setupFor("13B", 8, 1, 512 * 1024);
    EXPECT_FALSE(stage2->run(setup).feasible);
    EXPECT_TRUE(stage3->run(setup).feasible);
}

TEST(UlyssesZero3, NameDistinguishesTheVariant)
{
    EXPECT_EQ(makeBaseline("ulysses-zero3")->name(), "Ulysses+ZeRO-3");
    EXPECT_EQ(makeBaseline("ulysses")->name(), "Ulysses");
}

TEST(UlyssesZero3Death, RejectsUnsupportedStage)
{
    EXPECT_DEATH(UlyssesSystem bad(1), "stage 2 or 3");
}

// --------------------------------------------------- ZeRO-Infinity + NVMe

TEST(ZeroInfinityNvme, ExtendsScaleBeyondDram)
{
    auto dram_only = makeBaseline("zero-infinity");
    auto nvme = makeBaseline("zero-infinity-nvme");
    const TrainSetup setup = setupFor("50B");
    EXPECT_FALSE(dram_only->run(setup).feasible);
    EXPECT_TRUE(nvme->run(setup).feasible);
}

TEST(ZeroInfinityNvme, PaysHeavilyInThroughput)
{
    auto nvme = makeBaseline("zero-infinity-nvme");
    const auto res = nvme->run(setupFor("25B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_LT(res.tflopsPerGpu(), 30.0);
}

TEST(ZeroInfinityNvme, ReportsNvmeFootprint)
{
    auto nvme = makeBaseline("zero-infinity-nvme");
    const auto res = nvme->run(setupFor("25B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_NEAR(res.memory.nvme_bytes,
                12.0 * model::modelPreset("25B").params(), 1e9);
    EXPECT_GT(res.memory.nvme_capacity, 0.0);
    EXPECT_TRUE(res.memory.fitsNvme());
}

TEST(ZeroInfinityNvme, NvmeCapacityBindsEventually)
{
    auto nvme = makeBaseline("zero-infinity-nvme");
    // 12 bytes/param on a 4 TB device caps near 333B; DRAM (7 B/param
    // of 432 GB usable) caps near 61B first.
    const auto res = nvme->run(setupFor("80B"));
    EXPECT_FALSE(res.feasible);
    EXPECT_NE(res.infeasible_reason.find("host DRAM"),
              std::string::npos);
}

TEST(ZeroInfinityNvme, LargestModelRoughlySixtyBillion)
{
    auto nvme = makeBaseline("zero-infinity-nvme");
    TrainSetup setup = setupFor("1B");
    const auto scale = largestTrainableModel(*nvme, setup);
    ASSERT_TRUE(scale.any_feasible);
    EXPECT_GT(scale.max_params, 50e9);
    EXPECT_LT(scale.max_params, 70e9);
}

} // namespace
} // namespace so::runtime
