#include "runtime/builder.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace so::runtime {
namespace {

TrainSetup
gh200Setup()
{
    TrainSetup setup;
    setup.cluster = hw::gh200Single();
    setup.model = model::modelPreset("5B");
    setup.global_batch = 8;
    setup.seq = 1024;
    return setup;
}

TEST(IterBuilder, RegistersStandardResources)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_EQ(b.graph().resourceCount(), 7u);
    EXPECT_NE(b.gpu(), b.cpu());
    EXPECT_NE(b.h2d(), b.d2h());
    EXPECT_NE(b.nvme(), b.nic());
}

TEST(IterBuilder, GemmTimePenalizesSmallMicroBatches)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double flops = 1e14;
    const double big = b.gemmTime(flops, 8.0 * 1024.0);
    const double small = b.gemmTime(flops, 1.0 * 1024.0);
    EXPECT_GT(small, 1.5 * big);
}

TEST(IterBuilder, AttentionFasterThanGemmPerFlop)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_LT(b.attnTime(1e14), b.gemmTime(1e14, 8192.0));
}

TEST(IterBuilder, TransferTimesSymmetricPerDirection)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_DOUBLE_EQ(b.h2dTime(kGB), b.d2hTime(kGB));
}

TEST(IterBuilder, UnpinnedSlowerThanPinned)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_GT(b.h2dTime(kGB, false), 2.0 * b.h2dTime(kGB, true));
}

TEST(IterBuilder, ChunkedTransferSlowerThanBulk)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double bytes = 1.0 * kGB;
    const double bulk = b.h2dTime(bytes);
    const double chunked = b.chunkedTransferTime(bytes, kMiB);
    EXPECT_GT(chunked, 2.0 * bulk);
}

TEST(IterBuilder, ChunkedTransferOverheadAccumulates)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double bytes = 100.0 * kMiB;
    const double no_ovh = b.chunkedTransferTime(bytes, kMiB, true, 0.0);
    const double with_ovh =
        b.chunkedTransferTime(bytes, kMiB, true, 100e-6);
    EXPECT_NEAR(with_ovh - no_ovh, 100.0 * 100e-6, 1e-6);
}

TEST(IterBuilder, NumaRemoteBindingSlowsHostTransfers)
{
    TrainSetup colocated = gh200Setup();
    TrainSetup remote = gh200Setup();
    remote.binding = hw::NumaBinding::Remote;
    IterBuilder b1(colocated), b2(remote);
    // §4.7: mis-bound processes traverse the inter-Superchip fabric.
    EXPECT_GT(b2.h2dTime(kGB), 5.0 * b1.h2dTime(kGB));
}

TEST(IterBuilder, CastCheaperOnGpuThanCpu)
{
    // The heart of SAC (§4.5): HBM is ~8x faster than DDR.
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_LT(b.gpuCastTime(1e9), b.cpuCastTime(1e9) / 4.0);
}

TEST(IterBuilder, FinishComputesUtilizations)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const auto a = b.onGpu("work", 1.0);
    b.onCpu("tail", 1.0, {a});
    const IterationResult res = b.finish(model::IterationFlops{});
    EXPECT_DOUBLE_EQ(res.iter_time, 2.0);
    EXPECT_DOUBLE_EQ(res.gpu_utilization, 0.5);
    EXPECT_DOUBLE_EQ(res.cpu_utilization, 0.5);
    EXPECT_DOUBLE_EQ(res.link_utilization, 0.0);
    EXPECT_FALSE(res.gantt.empty());
}

TEST(IterBuilder, FinishWindowMeasuresSubrange)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const auto a = b.onGpu("one", 1.0);
    b.onGpu("two", 1.0, {a});
    const sim::Schedule sched = b.schedule();
    const IterationResult res =
        b.finishWindow(model::IterationFlops{}, 1.0, 2.0, sched);
    EXPECT_DOUBLE_EQ(res.iter_time, 1.0);
    EXPECT_DOUBLE_EQ(res.gpu_utilization, 1.0);
}

TEST(IterBuilder, NvmeTimesUseTheNvmeLink)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    // 6 GB at 6 GB/s ~= 1 s, far slower than the same bytes over C2C.
    EXPECT_NEAR(b.nvmeTime(6.0 * kGB), 1.0, 0.01);
    EXPECT_GT(b.nvmeTime(kGB), 20.0 * b.h2dTime(kGB));
}

TEST(IterBuilder, NvmeTasksOccupyTheirOwnChannel)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    // NVMe traffic overlaps GPU work (separate resources).
    const auto gpu_task = b.onGpu("work", 1.0);
    b.onNvme("read", 1.0);
    (void)gpu_task;
    const auto res = b.finish(model::IterationFlops{});
    EXPECT_DOUBLE_EQ(res.iter_time, 1.0);
}

TEST(IterBuilder, MicroTokens)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_DOUBLE_EQ(b.microTokens(4), 4.0 * 1024.0);
}

} // namespace
} // namespace so::runtime
