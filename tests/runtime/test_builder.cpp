#include "runtime/builder.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace so::runtime {
namespace {

TrainSetup
gh200Setup()
{
    TrainSetup setup;
    setup.cluster = hw::gh200Single();
    setup.model = model::modelPreset("5B");
    setup.global_batch = 8;
    setup.seq = 1024;
    return setup;
}

TEST(IterBuilder, RegistersStandardResources)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_EQ(b.graph().resourceCount(), 7u);
    EXPECT_NE(b.gpu(), b.cpu());
    EXPECT_NE(b.h2d(), b.d2h());
    EXPECT_NE(b.nvme(), b.nic());
}

TEST(IterBuilder, GemmTimePenalizesSmallMicroBatches)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double flops = 1e14;
    const double big = b.gemmTime(flops, 8.0 * 1024.0);
    const double small = b.gemmTime(flops, 1.0 * 1024.0);
    EXPECT_GT(small, 1.5 * big);
}

TEST(IterBuilder, AttentionFasterThanGemmPerFlop)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_LT(b.attnTime(1e14), b.gemmTime(1e14, 8192.0));
}

TEST(IterBuilder, TransferTimesSymmetricPerDirection)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_DOUBLE_EQ(b.h2dTime(kGB), b.d2hTime(kGB));
}

TEST(IterBuilder, UnpinnedSlowerThanPinned)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_GT(b.h2dTime(kGB, false), 2.0 * b.h2dTime(kGB, true));
}

TEST(IterBuilder, ChunkedTransferSlowerThanBulk)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double bytes = 1.0 * kGB;
    const double bulk = b.h2dTime(bytes);
    const double chunked = b.chunkedTransferTime(bytes, kMiB);
    EXPECT_GT(chunked, 2.0 * bulk);
}

TEST(IterBuilder, ChunkedTransferOverheadAccumulates)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double bytes = 100.0 * kMiB;
    const double no_ovh = b.chunkedTransferTime(bytes, kMiB, true, 0.0);
    const double with_ovh =
        b.chunkedTransferTime(bytes, kMiB, true, 100e-6);
    EXPECT_NEAR(with_ovh - no_ovh, 100.0 * 100e-6, 1e-6);
}

TEST(IterBuilder, NumaRemoteBindingSlowsHostTransfers)
{
    TrainSetup colocated = gh200Setup();
    TrainSetup remote = gh200Setup();
    remote.binding = hw::NumaBinding::Remote;
    IterBuilder b1(colocated), b2(remote);
    // §4.7: mis-bound processes traverse the inter-Superchip fabric.
    EXPECT_GT(b2.h2dTime(kGB), 5.0 * b1.h2dTime(kGB));
}

TEST(IterBuilder, CastCheaperOnGpuThanCpu)
{
    // The heart of SAC (§4.5): HBM is ~8x faster than DDR.
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_LT(b.gpuCastTime(1e9), b.cpuCastTime(1e9) / 4.0);
}

TEST(IterBuilder, FinishComputesUtilizations)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const auto a = b.onGpu("work", 1.0);
    b.onCpu("tail", 1.0, {a});
    const IterationResult res = b.finish(model::IterationFlops{});
    EXPECT_DOUBLE_EQ(res.iter_time, 2.0);
    EXPECT_DOUBLE_EQ(res.gpu_utilization, 0.5);
    EXPECT_DOUBLE_EQ(res.cpu_utilization, 0.5);
    EXPECT_DOUBLE_EQ(res.link_utilization, 0.0);
    EXPECT_FALSE(res.gantt.empty());
}

TEST(IterBuilder, FinishWindowMeasuresSubrange)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const auto a = b.onGpu("one", 1.0);
    b.onGpu("two", 1.0, {a});
    const sim::Schedule sched = b.schedule();
    const IterationResult res =
        b.finishWindow(model::IterationFlops{}, 1.0, 2.0, sched);
    EXPECT_DOUBLE_EQ(res.iter_time, 1.0);
    EXPECT_DOUBLE_EQ(res.gpu_utilization, 1.0);
}

TEST(IterBuilder, NvmeTimesUseTheNvmeLink)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    // 6 GB at 6 GB/s ~= 1 s, far slower than the same bytes over C2C.
    EXPECT_NEAR(b.nvmeTime(6.0 * kGB), 1.0, 0.01);
    EXPECT_GT(b.nvmeTime(kGB), 20.0 * b.h2dTime(kGB));
}

TEST(IterBuilder, NvmeTasksOccupyTheirOwnChannel)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    // NVMe traffic overlaps GPU work (separate resources).
    const auto gpu_task = b.onGpu("work", 1.0);
    b.onNvme("read", 1.0);
    (void)gpu_task;
    const auto res = b.finish(model::IterationFlops{});
    EXPECT_DOUBLE_EQ(res.iter_time, 1.0);
}

TEST(IterBuilder, MicroTokens)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    EXPECT_DOUBLE_EQ(b.microTokens(4), 4.0 * 1024.0);
}

TEST(IterBuilder, TierPairTimesAliasTheLegacyHelpers)
{
    // The refactor contract: the named-tier primitives are the same
    // arithmetic as the legacy direction helpers, to the last ULP.
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    for (const double bytes : {64.0 * kMiB, kGB, 7.3 * kGB}) {
        EXPECT_DOUBLE_EQ(b.transferTime(hw::kTierDdr, hw::kTierHbm, bytes),
                         b.h2dTime(bytes));
        EXPECT_DOUBLE_EQ(b.transferTime(hw::kTierHbm, hw::kTierDdr, bytes),
                         b.d2hTime(bytes));
        EXPECT_DOUBLE_EQ(b.transferTime(hw::kTierDdr, hw::kTierNvme, bytes),
                         b.nvmeTime(bytes));
    }
}

TEST(IterBuilder, TierPairPinnedVsPageable)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double pinned =
        b.transferTime(hw::kTierDdr, hw::kTierHbm, kGB, true);
    const double pageable =
        b.transferTime(hw::kTierDdr, hw::kTierHbm, kGB, false);
    EXPECT_GT(pageable, 2.0 * pinned);
    EXPECT_DOUBLE_EQ(pageable, b.h2dTime(kGB, false));
}

TEST(IterBuilder, ChunkedTransferOverlapMath)
{
    // N full granules plus a remainder: each chunk pays the granule's
    // achievable bandwidth and latency, the remainder pays its own.
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double granule = 64.0 * kMiB;
    const double bytes = 2.5 * granule;
    const double expected = 2.0 * b.h2dTime(granule) +
                            b.h2dTime(0.5 * granule);
    EXPECT_DOUBLE_EQ(b.chunkedTransferTime(hw::kTierDdr, hw::kTierHbm,
                                           bytes, granule),
                     expected);
    // Exact multiple: no remainder term.
    EXPECT_DOUBLE_EQ(b.chunkedTransferTime(hw::kTierDdr, hw::kTierHbm,
                                           2.0 * granule, granule),
                     2.0 * b.h2dTime(granule));
}

TEST(IterBuilder, ChunkedTransferDegenerateCases)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    const double granule = 64.0 * kMiB;
    // Zero bytes move for free (no latency, no overhead term).
    EXPECT_DOUBLE_EQ(b.chunkedTransferTime(hw::kTierDdr, hw::kTierHbm,
                                           0.0, granule, true, 1.0),
                     0.0);
    // A transfer smaller than one granule is a single message.
    EXPECT_DOUBLE_EQ(b.chunkedTransferTime(hw::kTierDdr, hw::kTierHbm,
                                           kMiB, granule),
                     b.h2dTime(kMiB));
    // Degenerate granule (larger than the payload) behaves the same.
    EXPECT_DOUBLE_EQ(b.chunkedTransferTime(hw::kTierDdr, hw::kTierHbm,
                                           kMiB, 100.0 * kGB),
                     b.h2dTime(kMiB));
}

TEST(IterBuilder, OnTransferAccountsTierTraffic)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    b.onTransfer(hw::kTierDdr, hw::kTierHbm, "up", 1.0, 3.0 * kGB);
    b.onTransfer(hw::kTierDdr, hw::kTierHbm, "up2", 1.0, 1.0 * kGB);
    b.onTransfer(hw::kTierHbm, hw::kTierDdr, "down", 1.0, 2.0 * kGB);
    const IterationResult res = b.finish(model::IterationFlops{});
    ASSERT_EQ(res.tier_traffic.size(), b.hierarchy().paths().size());
    double up = 0.0, down = 0.0, nvme = 0.0;
    for (const auto &t : res.tier_traffic) {
        if (t.from == "DDR" && t.to == "HBM")
            up = t.bytes;
        else if (t.from == "HBM" && t.to == "DDR")
            down = t.bytes;
        else
            nvme += t.bytes;
    }
    EXPECT_DOUBLE_EQ(up, 4.0 * kGB);
    EXPECT_DOUBLE_EQ(down, 2.0 * kGB);
    // Untouched paths report zero so consumers see the full topology.
    EXPECT_DOUBLE_EQ(nvme, 0.0);
}

TEST(IterBuilder, DefaultHierarchyAddsNoExtraResources)
{
    const TrainSetup setup = gh200Setup();
    IterBuilder b(setup);
    // The canonical channels map onto the standard seven resources.
    EXPECT_EQ(b.graph().resourceCount(), 7u);
    EXPECT_EQ(b.channelResource(hw::kChannelH2d), b.h2d());
    EXPECT_EQ(b.channelResource(hw::kChannelD2h), b.d2h());
    EXPECT_EQ(b.channelResource(hw::kChannelNvme), b.nvme());
}

TEST(IterBuilder, GdsPathsAllocateTheirOwnChannelAfterTheSeven)
{
    const TrainSetup setup = gh200Setup();
    hw::HierarchyOptions opts;
    opts.gds_paths = true;
    IterBuilder b(setup, opts);
    EXPECT_EQ(b.graph().resourceCount(), 8u);
    const sim::ResourceId gds = b.channelResource(hw::kChannelGds);
    EXPECT_GE(gds, 7u);
    EXPECT_NE(gds, b.nvme());
}

TEST(IterBuilder, ConcurrentPathsOverlapInTheSchedule)
{
    // One second of staged NVMe traffic plus one second of GDS traffic
    // finish in one second total: distinct channels, genuine overlap.
    const TrainSetup setup = gh200Setup();
    hw::HierarchyOptions opts;
    opts.gds_paths = true;
    IterBuilder b(setup, opts);
    const hw::MemoryHierarchy &hier = b.hierarchy();
    const auto gds = hier.pathsBetween(hw::kTierNvme, hw::kTierHbm);
    ASSERT_EQ(gds.size(), 1u);
    b.onTransfer(hw::kTierNvme, hw::kTierDdr, "staged", 1.0, kGB);
    b.onPath(*gds[0], "direct", 1.0, kGB);
    const IterationResult res = b.finish(model::IterationFlops{});
    EXPECT_DOUBLE_EQ(res.iter_time, 1.0);
}

} // namespace
} // namespace so::runtime
