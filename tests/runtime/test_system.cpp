#include "runtime/system.h"

#include <gtest/gtest.h>

#include "runtime/registry.h"

namespace so::runtime {
namespace {

TrainSetup
setupFor(const char *model, std::uint32_t chips = 1,
         std::uint32_t batch = 8)
{
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(chips);
    setup.model = model::modelPreset(model);
    setup.global_batch = batch;
    setup.seq = 1024;
    return setup;
}

TEST(TrainSetup, PerGpuBatchDividesGlobal)
{
    EXPECT_EQ(setupFor("5B", 1, 8).perGpuBatch(), 8u);
    EXPECT_EQ(setupFor("5B", 4, 16).perGpuBatch(), 4u);
    EXPECT_EQ(setupFor("5B", 16, 128).perGpuBatch(), 8u);
    // Clamped to at least 1.
    EXPECT_EQ(setupFor("5B", 16, 4).perGpuBatch(), 1u);
}

TEST(MemoryReport, FitPredicates)
{
    MemoryReport report;
    report.gpu_bytes = 50.0;
    report.gpu_capacity = 96.0;
    report.cpu_bytes = 500.0;
    report.cpu_capacity = 432.0;
    EXPECT_TRUE(report.fitsGpu());
    EXPECT_FALSE(report.fitsCpu());
    EXPECT_FALSE(report.fits());
}

TEST(IterationResult, TflopsExcludesRecompute)
{
    IterationResult res;
    res.feasible = true;
    res.iter_time = 1.0;
    res.flops.fwd_gemm = 1e12;
    res.flops.bwd_gemm = 2e12;
    res.flops.recompute_gemm = 1e12;
    EXPECT_DOUBLE_EQ(res.tflopsPerGpu(), 3.0);
    EXPECT_DOUBLE_EQ(res.mfuAgainst(10e12), 0.3);
}

TEST(IterationResult, InfeasibleReportsZeroThroughput)
{
    IterationResult res;
    res.iter_time = 1.0;
    res.flops.fwd_gemm = 1e12;
    EXPECT_DOUBLE_EQ(res.tflopsPerGpu(), 0.0);
}

TEST(System, InfeasibleNamesTheBindingResource)
{
    // A 200B model cannot fit a single superchip under any system.
    auto ddp = makeBaseline("ddp");
    const IterationResult res = ddp->run(setupFor("200B"));
    EXPECT_FALSE(res.feasible);
    EXPECT_NE(res.infeasible_reason.find("GPU memory"),
              std::string::npos);
}

TEST(System, CpuBoundInfeasibilityNamesHostDram)
{
    // ZeRO-Offload needs 16P/N of host DRAM; 80B on one chip exceeds
    // the 480 GB Grace memory before the GPU check even matters.
    auto zo = makeBaseline("zero-offload");
    const IterationResult res = zo->run(setupFor("80B"));
    EXPECT_FALSE(res.feasible);
    EXPECT_NE(res.infeasible_reason.find("host DRAM"),
              std::string::npos);
}

TEST(System, FeasibleResultIsFullyPopulated)
{
    auto zo = makeBaseline("zero-offload");
    const IterationResult res = zo->run(setupFor("5B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.iter_time, 0.0);
    EXPECT_GE(res.micro_batch, 1u);
    EXPECT_GE(res.accum_steps, 1u);
    EXPECT_GT(res.gpu_utilization, 0.0);
    EXPECT_LE(res.gpu_utilization, 1.0 + 1e-9);
    EXPECT_GT(res.memory.gpu_bytes, 0.0);
    EXPECT_TRUE(res.memory.fits());
    EXPECT_GT(res.flops.modelFlops(), 0.0);
    EXPECT_FALSE(res.gantt.empty());
}

TEST(System, MicroBatchTimesAccumEqualsPerGpuBatch)
{
    for (const char *name : {"ddp", "zero-offload", "zero-infinity"}) {
        auto sys = makeBaseline(name);
        const TrainSetup setup = setupFor("5B", 1, 8);
        const IterationResult res = sys->run(setup);
        if (!res.feasible)
            continue;
        EXPECT_EQ(res.micro_batch * res.accum_steps, 8u) << name;
    }
}

TEST(System, RegistryExposesAllBaselines)
{
    const auto names = baselineNames();
    EXPECT_EQ(names.size(), 14u);
    for (const auto &name : names) {
        auto sys = makeBaseline(name);
        ASSERT_NE(sys, nullptr) << name;
        EXPECT_FALSE(sys->name().empty());
    }
}

TEST(SystemDeath, UnknownBaselineIsFatal)
{
    EXPECT_EXIT(makeBaseline("does-not-exist"),
                ::testing::ExitedWithCode(1), "unknown baseline");
}

} // namespace
} // namespace so::runtime
