#include "runtime/scale.h"

#include <gtest/gtest.h>

#include "core/superoffload.h"
#include "runtime/registry.h"

namespace so::runtime {
namespace {

TrainSetup
scaleSetup(std::uint32_t chips, std::uint32_t batch)
{
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(chips);
    setup.global_batch = batch;
    setup.seq = 1024;
    return setup;
}

TEST(Scale, DdpSingleChipNearPaperValue)
{
    auto ddp = makeBaseline("ddp");
    const ScaleResult res =
        largestTrainableModel(*ddp, scaleSetup(1, 8));
    ASSERT_TRUE(res.any_feasible);
    // Paper Fig. 13: 3.5B. Our DDP permits gradient accumulation, so
    // it lands slightly higher; assert the right ballpark.
    EXPECT_GT(res.max_params, 3.0e9);
    EXPECT_LT(res.max_params, 6.5e9);
}

TEST(Scale, ZeroOffloadSingleChipNearFifteenBillion)
{
    auto zo = makeBaseline("zero-offload");
    const ScaleResult res =
        largestTrainableModel(*zo, scaleSetup(1, 8));
    ASSERT_TRUE(res.any_feasible);
    EXPECT_GT(res.max_params, 13.0e9);
    EXPECT_LT(res.max_params, 20.0e9);
}

TEST(Scale, DdpDoesNotImproveWithMoreGpus)
{
    // Fig. 13: DDP's scalability is bounded by a single GPU.
    auto ddp = makeBaseline("ddp");
    const double one =
        largestTrainableModel(*ddp, scaleSetup(1, 8)).max_params;
    const double sixteen =
        largestTrainableModel(*ddp, scaleSetup(16, 128)).max_params;
    EXPECT_NEAR(sixteen, one, 0.15 * one);
}

TEST(Scale, ZeroOffloadCappedAtTwentyBillionEvenWithSixteenGpus)
{
    auto zo = makeBaseline("zero-offload");
    const ScaleResult res =
        largestTrainableModel(*zo, scaleSetup(16, 128));
    ASSERT_TRUE(res.any_feasible);
    EXPECT_GT(res.max_params, 18.0e9);
    EXPECT_LT(res.max_params, 25.0e9);
}

TEST(Scale, SuperOffloadOrderOfMagnitudeAboveOffloadBaselines)
{
    core::SuperOffloadSystem so_sys;
    auto zo = makeBaseline("zero-offload");
    const TrainSetup setup = scaleSetup(16, 128);
    const double so_max =
        largestTrainableModel(so_sys, setup).max_params;
    const double zo_max =
        largestTrainableModel(*zo, setup).max_params;
    // Paper: 10x over ZeRO-Offload on 16 chips (200B vs 20B).
    EXPECT_GT(so_max / zo_max, 7.0);
}

TEST(Scale, MaxSequenceLengthBracketsTheOomCliff)
{
    auto ulysses = makeBaseline("ulysses");
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(8);
    setup.model = model::modelPreset("13B");
    setup.global_batch = 1;
    const std::uint32_t max_seq =
        maxSequenceLength(*ulysses, setup, 32 * 1024);
    ASSERT_GT(max_seq, 0u);
    // The returned length is feasible; one granule more is not.
    setup.seq = max_seq;
    EXPECT_TRUE(ulysses->run(setup).feasible);
    setup.seq = max_seq + 32 * 1024;
    EXPECT_FALSE(ulysses->run(setup).feasible);
}

TEST(Scale, MaxSequenceLengthZeroWhenNothingFits)
{
    auto ulysses = makeBaseline("ulysses");
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(4);
    setup.model = model::modelPreset("30B"); // 4P alone exceeds HBM.
    setup.global_batch = 1;
    EXPECT_EQ(maxSequenceLength(*ulysses, setup), 0u);
}

TEST(Scale, MaxSequenceLengthClampsAtUpperBound)
{
    // A system feasible everywhere in the probe range returns max_seq.
    auto ddp = makeBaseline("ddp");
    TrainSetup setup;
    setup.cluster = hw::gh200Single();
    setup.model = model::modelPreset("1B");
    setup.global_batch = 1;
    const std::uint32_t cap = 32 * 1024; // 1B at 32k fits comfortably.
    EXPECT_EQ(maxSequenceLength(*ddp, setup, 8 * 1024, cap), cap);
}

TEST(Scale, InfeasibleEverywhereReportsNoResult)
{
    // A 1-chip DGX-2 (V100 32 GB) cannot fit even 1 layer at batch
    // 4096 with 1M-token sequences under DDP.
    auto ddp = makeBaseline("ddp");
    TrainSetup setup;
    setup.cluster = hw::dgx2(1);
    setup.cluster.node.superchips_per_node = 1;
    setup.global_batch = 4096;
    setup.seq = 1 << 20;
    const ScaleResult res = largestTrainableModel(*ddp, setup, 8);
    EXPECT_FALSE(res.any_feasible);
    EXPECT_DOUBLE_EQ(res.max_params, 0.0);
}

} // namespace
} // namespace so::runtime
