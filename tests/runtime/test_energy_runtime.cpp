/**
 * @file
 * Runtime-level energy metering contract (docs/ENERGY.md): every
 * feasible result carries a valid EnergySummary; capture_profile adds
 * phase and idle-cause splits that conserve the totals; the energy
 * subtree in result JSON is bit-identical across SweepEngine job
 * counts; power overrides change the metering and are part of the
 * sweep fingerprint.
 */
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/superoffload.h"
#include "hw/presets.h"
#include "model/config.h"
#include "runtime/registry.h"
#include "runtime/result_json.h"
#include "runtime/sweep.h"
#include "runtime/system.h"

namespace so::runtime {
namespace {

TrainSetup
setupFor(const std::string &model, bool profile = false)
{
    TrainSetup setup;
    setup.cluster = hw::gh200Single();
    setup.model = model::modelPreset(model);
    setup.global_batch = 8;
    setup.seq = 1024;
    setup.capture_profile = profile;
    return setup;
}

void
expectNearRel(double actual, double expected)
{
    EXPECT_NEAR(actual, expected,
                1e-9 * std::max(std::abs(expected), 1.0));
}

TEST(RuntimeEnergy, FeasibleResultsAlwaysCarryValidEnergy)
{
    // No capture_profile: the cheap timeline pass must still fill the
    // totals, the per-resource splits, and the per-iteration figures.
    const core::SuperOffloadSystem sys;
    const IterationResult res = sys.run(setupFor("1B"));
    ASSERT_TRUE(res.feasible);
    ASSERT_TRUE(res.energy.valid);
    EXPECT_GT(res.energy.total_j, 0.0);
    EXPECT_GT(res.energy.avg_w, 0.0);
    EXPECT_FALSE(res.energy.resources.empty());
    EXPECT_TRUE(res.energy.phases.empty());

    expectNearRel(res.energy.total_j, res.energy.active_j +
                                          res.energy.idle_j +
                                          res.energy.background_j);
    expectNearRel(res.energy.iter_j, res.energy.avg_w * res.iter_time);

    // token_j = iter_j × chips / (global_batch × seq).
    const TrainSetup setup = setupFor("1B");
    const double tokens =
        static_cast<double>(setup.global_batch) * setup.seq;
    expectNearRel(res.energy.token_j,
                  res.energy.iter_j *
                      setup.cluster.totalSuperchips() / tokens);
}

TEST(RuntimeEnergy, CaptureProfileAddsConservingSplits)
{
    const core::SuperOffloadSystem sys;
    const IterationResult cheap = sys.run(setupFor("1B"));
    const IterationResult full = sys.run(setupFor("1B", true));
    ASSERT_TRUE(full.feasible);
    ASSERT_TRUE(full.energy.valid);

    // The full attribution must reproduce the cheap totals: both read
    // the same schedule, only the splitting differs.
    expectNearRel(full.energy.active_j, cheap.energy.active_j);
    expectNearRel(full.energy.idle_j, cheap.energy.idle_j);
    expectNearRel(full.energy.total_j, cheap.energy.total_j);

    // Phases appear and sum to the active joules.
    ASSERT_FALSE(full.energy.phases.empty());
    double phase_sum = 0.0;
    for (const auto &[phase, joules] : full.energy.phases)
        phase_sum += joules;
    expectNearRel(phase_sum, full.energy.active_j);

    // Per resource: cause joules partition idle_j, and busy+transfer
    // sums rebuild active_j.
    double active = 0.0, idle = 0.0;
    for (const auto &re : full.energy.resources) {
        expectNearRel(re.idle_dependency_j + re.idle_contention_j +
                          re.idle_tail_j,
                      re.idle_j);
        active += re.busy_j + re.transfer_j;
        idle += re.idle_j;
    }
    expectNearRel(active, full.energy.active_j);
    expectNearRel(idle, full.energy.idle_j);
}

TEST(RuntimeEnergy, ResultJsonCarriesTheEnergySubtree)
{
    const core::SuperOffloadSystem sys;
    const IterationResult res = sys.run(setupFor("1B", true));
    const std::string json = toJson(res);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(json, doc, &error)) << error;
    const JsonValue *energy = doc.find("energy");
    ASSERT_NE(energy, nullptr);
    expectNearRel(energy->find("total_j")->number(),
                  res.energy.total_j);
    expectNearRel(energy->find("iter_j")->number(), res.energy.iter_j);
    ASSERT_NE(energy->find("phases"), nullptr);
    ASSERT_NE(energy->find("resources"), nullptr);
    // The profile document embeds its own energy subtree too.
    JsonValue profile_doc;
    ASSERT_TRUE(
        JsonValue::parse(res.profile_json, profile_doc, &error))
        << error;
    EXPECT_NE(profile_doc.find("energy"), nullptr);
}

TEST(RuntimeEnergy, PowerOverridesRescaleTheMetering)
{
    const core::SuperOffloadSystem sys;
    TrainSetup loud = setupFor("1B");
    loud.power.gpu_busy_w = 1400.0;
    loud.power.gpu_idle_w = 150.0;
    const IterationResult base = sys.run(setupFor("1B"));
    const IterationResult scaled = sys.run(loud);
    ASSERT_TRUE(base.feasible);
    ASSERT_TRUE(scaled.feasible);
    // Same schedule, hotter GPU: strictly more joules.
    EXPECT_EQ(base.iter_time, scaled.iter_time);
    EXPECT_GT(scaled.energy.total_j, base.energy.total_j);
}

TEST(RuntimeEnergy, EnergyJsonBitIdenticalAcrossSweepJobs)
{
    auto declare = [](SweepEngine &engine,
                      const core::SuperOffloadSystem &sys) {
        engine.add(sys, setupFor("1B", true));
        TrainSetup tuned = setupFor("1B", true);
        tuned.power.cpu_busy_w = 300.0;
        engine.add(sys, tuned);
    };
    const core::SuperOffloadSystem sys;
    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    SweepOptions parallel_opts;
    parallel_opts.jobs = 4;
    SweepEngine serial(serial_opts);
    SweepEngine parallel(parallel_opts);
    declare(serial, sys);
    declare(parallel, sys);
    serial.run();
    parallel.run();
    ASSERT_EQ(serial.cells().size(), parallel.cells().size());
    for (std::size_t i = 0; i < serial.cells().size(); ++i)
        EXPECT_EQ(toJson(serial.result(i)), toJson(parallel.result(i)))
            << "cell " << i;
}

TEST(RuntimeEnergy, PowerOverridesAreFingerprintedBySweeps)
{
    // Two cells identical except for a power override must not share
    // a cache slot: their energies differ, their times agree.
    const core::SuperOffloadSystem sys;
    SweepEngine engine;
    engine.add(sys, setupFor("1B"));
    TrainSetup tuned = setupFor("1B");
    tuned.power.gpu_busy_w = 1400.0;
    engine.add(sys, tuned);
    engine.run();
    ASSERT_EQ(engine.cells().size(), 2u);
    const IterationResult &a = engine.result(0);
    const IterationResult &b = engine.result(1);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_EQ(a.iter_time, b.iter_time);
    EXPECT_NE(a.energy.total_j, b.energy.total_j);
}

} // namespace
} // namespace so::runtime
