/**
 * @file
 * Behavior of the two hierarchy-native systems (multi-path NVMe
 * striping and graph-driven placement) plus the uniform capacity
 * diagnostics the tier refactor standardized.
 */
#include <gtest/gtest.h>

#include "hw/presets.h"
#include "model/config.h"
#include "runtime/graph_placement.h"
#include "runtime/multipath_offload.h"
#include "runtime/registry.h"

namespace so::runtime {
namespace {

TrainSetup
setupFor(hw::ClusterSpec cluster, const char *model, std::uint32_t batch,
         std::uint32_t seq = 1024)
{
    TrainSetup setup;
    setup.cluster = std::move(cluster);
    setup.model = model::modelPreset(model);
    setup.global_batch = batch;
    setup.seq = seq;
    return setup;
}

double
trafficOn(const IterationResult &res, const std::string &channel)
{
    double bytes = 0.0;
    for (const auto &t : res.tier_traffic)
        if (t.channel == channel)
            bytes += t.bytes;
    return bytes;
}

TEST(MultiPathOffload, StripesNvmeTrafficAcrossBothRoutes)
{
    const TrainSetup setup = setupFor(hw::gh200Single(), "25B", 8);
    MultiPathOffloadSystem sys(/*enable_gds=*/true,
                               /*forced_fraction=*/0.5);
    const IterationResult res = sys.run(setup);
    ASSERT_TRUE(res.feasible) << res.infeasible_reason;
    EXPECT_DOUBLE_EQ(res.extra("nvme_fraction"), 0.5);
    // Both drive routes carry bytes: the staged stripe on the duplex
    // NVMe channel and the direct stripe on its own GDS channel.
    EXPECT_GT(trafficOn(res, "NVMe"), 0.0);
    EXPECT_GT(trafficOn(res, "GDS"), 0.0);
    EXPECT_GT(res.extra("staged_bytes"), 0.0);
    EXPECT_GT(res.extra("gds_bytes"), 0.0);
}

TEST(MultiPathOffload, MultiPathBeatsSingleStagedRoute)
{
    // Same NVMe share, one extra route: the striped variant must be
    // strictly faster (the MLP-Offload claim, at the model level).
    const TrainSetup setup = setupFor(hw::gh200Single(), "25B", 8);
    MultiPathOffloadSystem multi(true, 0.5);
    MultiPathOffloadSystem staged(false, 0.5);
    const IterationResult rm = multi.run(setup);
    const IterationResult rs = staged.run(setup);
    ASSERT_TRUE(rm.feasible && rs.feasible);
    EXPECT_LT(rm.iter_time, rs.iter_time);
    EXPECT_DOUBLE_EQ(trafficOn(rs, "GDS"), 0.0);
}

TEST(MultiPathOffload, SearchPrefersDdrWhenItFits)
{
    // 5B fits host DRAM outright; any NVMe placement only adds drive
    // time, so the searched fraction must come out 0.
    const TrainSetup setup = setupFor(hw::gh200Single(), "5B", 8);
    MultiPathOffloadSystem sys;
    const IterationResult res = sys.run(setup);
    ASSERT_TRUE(res.feasible);
    EXPECT_DOUBLE_EQ(res.extra("nvme_fraction"), 0.0);
    EXPECT_DOUBLE_EQ(trafficOn(res, "GDS"), 0.0);
}

TEST(MultiPathOffload, DegradesToDdrOnlyWithoutNvme)
{
    const TrainSetup setup = setupFor(hw::dgxA100(), "5B", 8);
    MultiPathOffloadSystem sys;
    const IterationResult res = sys.run(setup);
    ASSERT_TRUE(res.feasible) << res.infeasible_reason;
    EXPECT_DOUBLE_EQ(res.extra("nvme_fraction"), 0.0);
    for (const auto &t : res.tier_traffic) {
        EXPECT_NE(t.channel, "GDS");
        if (t.channel == "NVMe")
            EXPECT_DOUBLE_EQ(t.bytes, 0.0);
    }
}

TEST(GraphPlacement, SpillsTrailingLayersWhenDdrOverflows)
{
    // 80B on one GH200: 18 B/param does not fit 480 GB DDR, so a
    // suffix of layers must spill to NVMe — and the run stays feasible.
    const TrainSetup setup = setupFor(hw::gh200Single(), "80B", 4);
    GraphPlacementSystem sys;
    const IterationResult res = sys.run(setup);
    ASSERT_TRUE(res.feasible) << res.infeasible_reason;
    EXPECT_GT(res.extra("nvme_layers"), 0.0);
    EXPECT_GT(trafficOn(res, "NVMe"), 0.0);
    EXPECT_NE(res.notes.find("nvme_layers="), std::string::npos);
}

TEST(GraphPlacement, KeepsEverythingInDdrWhenItFits)
{
    const TrainSetup setup = setupFor(hw::gh200Single(), "5B", 8);
    GraphPlacementSystem sys;
    const IterationResult res = sys.run(setup);
    ASSERT_TRUE(res.feasible);
    EXPECT_DOUBLE_EQ(res.extra("nvme_layers"), 0.0);
    EXPECT_DOUBLE_EQ(trafficOn(res, "NVMe"), 0.0);
    // A 5B model leaves HBM slack: some prefix of layers goes resident.
    EXPECT_GT(res.extra("hbm_layers"), 0.0);
}

TEST(GraphPlacement, PlacementConsistentWithTierAccounting)
{
    // The placement drives both the schedule and the fit report: the
    // layer counts must add up and the NVMe demand must be nonzero
    // exactly when layers spilled.
    const TrainSetup setup = setupFor(hw::gh200Single(), "80B", 4);
    GraphPlacementSystem sys;
    const IterationResult res = sys.run(setup);
    ASSERT_TRUE(res.feasible);
    const double layers = setup.model.layers;
    EXPECT_DOUBLE_EQ(res.extra("hbm_layers") + res.extra("ddr_layers") +
                         res.extra("nvme_layers"),
                     layers);
    bool saw_nvme_tier = false;
    for (const auto &tier : res.memory.tiers) {
        if (tier.tier == "NVMe") {
            saw_nvme_tier = true;
            EXPECT_GT(tier.bytes, 0.0);
            EXPECT_LE(tier.bytes, tier.capacity);
        }
    }
    EXPECT_TRUE(saw_nvme_tier);
}

TEST(GraphPlacement, NoNvmeMeansNoSpill)
{
    const TrainSetup setup = setupFor(hw::dgxA100(), "5B", 8);
    GraphPlacementSystem sys;
    const IterationResult res = sys.run(setup);
    ASSERT_TRUE(res.feasible) << res.infeasible_reason;
    EXPECT_DOUBLE_EQ(res.extra("nvme_layers"), 0.0);
}

TEST(CapacityDiagnostics, UniformAcrossAllSystems)
{
    // Every registered system reports overflow the same way: the
    // overflowing tier's description, the demand, and the capacity,
    // both through common::formatBytes. A deliberately oversized
    // model on an NVMe-less box forces everyone infeasible.
    const TrainSetup setup = setupFor(hw::dgxA100(), "200B", 8);
    std::size_t checked = 0;
    for (const std::string &name : baselineNames()) {
        const IterationResult res = makeBaseline(name)->run(setup);
        if (res.feasible)
            continue;
        ++checked;
        EXPECT_NE(res.infeasible_reason.find(": needs "),
                  std::string::npos)
            << name << ": " << res.infeasible_reason;
        EXPECT_NE(res.infeasible_reason.find(", capacity "),
                  std::string::npos)
            << name << ": " << res.infeasible_reason;
    }
    EXPECT_GT(checked, 8u);
}

} // namespace
} // namespace so::runtime
