/**
 * @file
 * SweepEngine contract tests: parallel evaluation is bit-identical to
 * serial, the fingerprint cache returns the exact cold result, worker
 * exceptions surface from run() (which stays retryable), and duplicate
 * cells inside one batch are evaluated once.
 */
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/superoffload.h"
#include "hw/presets.h"
#include "model/config.h"
#include "runtime/registry.h"
#include "runtime/sweep.h"
#include "runtime/system.h"

namespace so::runtime {
namespace {

TrainSetup
setupFor(const hw::ClusterSpec &cluster, const std::string &model,
         std::uint32_t batch = 8, std::uint32_t seq = 1024)
{
    TrainSetup setup;
    setup.cluster = cluster;
    setup.model = model::modelPreset(model);
    setup.global_batch = batch;
    setup.seq = seq;
    return setup;
}

/** Field-by-field bit-exact comparison of two results. */
void
expectSameResult(const IterationResult &a, const IterationResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.infeasible_reason, b.infeasible_reason);
    EXPECT_EQ(a.iter_time, b.iter_time);
    EXPECT_EQ(a.micro_batch, b.micro_batch);
    EXPECT_EQ(a.accum_steps, b.accum_steps);
    EXPECT_EQ(a.activation_checkpointing, b.activation_checkpointing);
    EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
    EXPECT_EQ(a.cpu_utilization, b.cpu_utilization);
    EXPECT_EQ(a.link_utilization, b.link_utilization);
    EXPECT_EQ(a.memory.gpu_bytes, b.memory.gpu_bytes);
    EXPECT_EQ(a.memory.cpu_bytes, b.memory.cpu_bytes);
    EXPECT_EQ(a.memory.nvme_bytes, b.memory.nvme_bytes);
    EXPECT_EQ(a.notes, b.notes);
    ASSERT_EQ(a.extras.size(), b.extras.size());
    for (std::size_t i = 0; i < a.extras.size(); ++i) {
        EXPECT_EQ(a.extras[i].first, b.extras[i].first);
        EXPECT_EQ(a.extras[i].second, b.extras[i].second);
    }
    EXPECT_EQ(a.gantt, b.gantt);
}

/**
 * Minimal feasible system with an invocation counter, for cache and
 * dedupe accounting. gpuBytes 0 means exactly one candidate survives
 * the screen (the full per-GPU batch, no checkpointing fallback).
 */
class CountingSystem : public TrainingSystem
{
  public:
    std::string name() const override { return "counting"; }
    mutable std::atomic<int> simulate_calls{0};

  protected:
    double gpuBytes(const TrainSetup &,
                    const SearchCandidate &) const override
    {
        return 0.0;
    }
    double cpuBytes(const TrainSetup &,
                    const SearchCandidate &) const override
    {
        return 0.0;
    }
    IterationResult simulate(const TrainSetup &setup,
                             const SearchCandidate &cand) const override
    {
        ++simulate_calls;
        IterationResult res;
        res.iter_time = 1.0 / static_cast<double>(cand.micro_batch);
        res.gpu_utilization = 0.5;
        res.notes = "seq=" + std::to_string(setup.seq);
        return res;
    }
};

/** System whose simulations throw until told otherwise. */
class ThrowingSystem : public TrainingSystem
{
  public:
    std::string name() const override { return "throwing"; }
    mutable std::atomic<bool> should_throw{true};

  protected:
    double gpuBytes(const TrainSetup &,
                    const SearchCandidate &) const override
    {
        return 0.0;
    }
    double cpuBytes(const TrainSetup &,
                    const SearchCandidate &) const override
    {
        return 0.0;
    }
    IterationResult simulate(const TrainSetup &,
                             const SearchCandidate &) const override
    {
        if (should_throw)
            throw std::runtime_error("boom");
        IterationResult res;
        res.iter_time = 1.0;
        return res;
    }
};

/**
 * The headline determinism guarantee: a sweep over every registered
 * baseline plus SuperOffload produces bit-identical results whether it
 * runs on one thread or many, and whether the cache is on or off.
 */
TEST(Sweep, ParallelMatchesSerialAcrossAllSystems)
{
    const hw::ClusterSpec single = hw::gh200Single();
    const hw::ClusterSpec quad = hw::gh200ClusterOf(4);

    std::vector<SystemPtr> systems;
    for (const std::string &name : baselineNames())
        systems.push_back(makeBaseline(name));
    core::SuperOffloadSystem so_sys;

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    SweepOptions parallel_opts;
    parallel_opts.jobs = 4;
    SweepOptions nocache_opts;
    nocache_opts.jobs = 4;
    nocache_opts.cache = false;

    SweepEngine serial(serial_opts);
    SweepEngine parallel(parallel_opts);
    SweepEngine nocache(nocache_opts);
    auto declare = [&](SweepEngine &engine) {
        for (const auto &sys : systems) {
            engine.add(*sys, setupFor(single, "1B"));
            engine.add(*sys, setupFor(quad, "3B", 8, 2048));
        }
        engine.add(so_sys, setupFor(single, "1B"));
        engine.add(so_sys, setupFor(quad, "3B", 8, 2048));
    };
    declare(serial);
    declare(parallel);
    declare(nocache);
    serial.run();
    parallel.run();
    nocache.run();

    ASSERT_EQ(serial.cells().size(), parallel.cells().size());
    for (std::size_t i = 0; i < serial.cells().size(); ++i) {
        const std::string what = serial.cells()[i].system->name() +
                                 " cell " + std::to_string(i);
        expectSameResult(serial.result(i), parallel.result(i), what);
        expectSameResult(serial.result(i), nocache.result(i),
                         what + " (no cache)");
    }
}

/**
 * Acceptance criterion for the telemetry layer: the stable-scope slice
 * of the global metrics registry (logical work — cells, candidates,
 * cache traffic) is byte-identical between a 1-thread and an N-thread
 * run of the same full-system sweep. Wall-clock histograms are
 * execution-scoped and therefore excluded by stableJson().
 */
TEST(Sweep, StableMetricsAreIdenticalAcrossJobCounts)
{
    const hw::ClusterSpec single = hw::gh200Single();
    std::vector<SystemPtr> systems;
    for (const std::string &name : baselineNames())
        systems.push_back(makeBaseline(name));
    core::SuperOffloadSystem so_sys;

    auto sweep_metrics = [&](std::size_t jobs) {
        MetricsRegistry::global().reset();
        SweepOptions opts;
        opts.jobs = jobs;
        SweepEngine engine(opts);
        for (const auto &sys : systems)
            engine.add(*sys, setupFor(single, "1B"));
        engine.add(so_sys, setupFor(single, "1B"));
        // A duplicate cell so the cache-hit counter registers too.
        engine.add(so_sys, setupFor(single, "1B"));
        engine.run();
        return MetricsRegistry::global().snapshot().stableJson();
    };

    const std::string serial = sweep_metrics(1);
    const std::string parallel = sweep_metrics(4);
    EXPECT_EQ(serial, parallel);
    // Sanity: the stable slice actually carries the sweep counters.
    EXPECT_NE(serial.find("sweep.cells"), std::string::npos);
    EXPECT_NE(serial.find("sweep.candidates"), std::string::npos);
    EXPECT_NE(serial.find("sweep.cache_hits"), std::string::npos);
    MetricsRegistry::global().reset();
}

TEST(Sweep, JobsZeroResolvesToHardwareConcurrency)
{
    SweepOptions opts;
    opts.jobs = 0;
    SweepEngine engine(opts);
    EXPECT_GE(engine.jobs(), 1u);
}

TEST(Sweep, DuplicateCellsInOneBatchEvaluateOnce)
{
    CountingSystem sys;
    SweepOptions opts;
    opts.jobs = 2;
    SweepEngine engine(opts);
    const TrainSetup setup = setupFor(hw::gh200Single(), "1B");
    engine.add(sys, setup);
    engine.add(sys, setup);
    engine.add(sys, setup);
    engine.run();

    EXPECT_EQ(sys.simulate_calls.load(), 1);
    EXPECT_EQ(engine.cacheMisses(), 1u);
    EXPECT_EQ(engine.cacheHits(), 2u);
    expectSameResult(engine.result(0), engine.result(1), "dup 0 vs 1");
    expectSameResult(engine.result(0), engine.result(2), "dup 0 vs 2");
}

TEST(Sweep, CacheServesLaterBatchesWithoutReevaluation)
{
    CountingSystem sys;
    SweepEngine engine;
    const TrainSetup setup = setupFor(hw::gh200Single(), "1B");
    engine.add(sys, setup);
    engine.run();
    const int cold_calls = sys.simulate_calls.load();
    EXPECT_EQ(cold_calls, 1);

    // Same cell added after the first run: served from cache, and the
    // warm result is bit-identical to the cold one.
    engine.add(sys, setup);
    engine.run();
    EXPECT_EQ(sys.simulate_calls.load(), cold_calls);
    EXPECT_EQ(engine.cacheHits(), 1u);
    EXPECT_TRUE(engine.cells()[1].from_cache);
    expectSameResult(engine.result(0), engine.result(1), "cold vs warm");

    // A genuinely different setup misses.
    engine.add(sys, setupFor(hw::gh200Single(), "1B", 8, 2048));
    engine.run();
    EXPECT_EQ(sys.simulate_calls.load(), cold_calls + 1);
    EXPECT_EQ(engine.cacheMisses(), 2u);
}

TEST(Sweep, EvaluateIsMemoized)
{
    CountingSystem sys;
    SweepEngine engine;
    const TrainSetup setup = setupFor(hw::gh200Single(), "1B");
    const IterationResult cold = engine.evaluate(sys, setup);
    const IterationResult warm = engine.evaluate(sys, setup);
    EXPECT_EQ(sys.simulate_calls.load(), 1);
    EXPECT_EQ(engine.cacheHits(), 1u);
    EXPECT_EQ(engine.cacheMisses(), 1u);
    expectSameResult(cold, warm, "evaluate memo");
}

TEST(Sweep, SameSetupDifferentSystemsDoNotCollide)
{
    CountingSystem a;
    CountingSystem b;
    SweepEngine engine;
    const TrainSetup setup = setupFor(hw::gh200Single(), "1B");
    engine.add(a, setup);
    engine.add(b, setup);
    engine.run();
    // Identical setups under distinct system objects are distinct
    // cache entries (the fingerprint includes the system identity).
    EXPECT_EQ(a.simulate_calls.load(), 1);
    EXPECT_EQ(b.simulate_calls.load(), 1);
    EXPECT_EQ(engine.cacheMisses(), 2u);
}

TEST(Sweep, WorkerExceptionPropagatesAndRunIsRetryable)
{
    ThrowingSystem sys;
    SweepOptions opts;
    opts.jobs = 4;
    SweepEngine engine(opts);
    engine.add(sys, setupFor(hw::gh200Single(), "1B"));
    engine.add(sys, setupFor(hw::gh200Single(), "1B", 8, 2048));
    EXPECT_THROW(engine.run(), std::runtime_error);
    EXPECT_FALSE(engine.cells()[0].evaluated);
    EXPECT_FALSE(engine.cells()[1].evaluated);

    // The failed batch stays pending; a later run() picks it up.
    sys.should_throw = false;
    engine.run();
    EXPECT_TRUE(engine.cells()[0].evaluated);
    EXPECT_TRUE(engine.cells()[1].evaluated);
    EXPECT_EQ(engine.result(0).iter_time, 1.0);
}

TEST(Sweep, ExceptionPropagatesSeriallyToo)
{
    ThrowingSystem sys;
    SweepOptions opts;
    opts.jobs = 1;
    SweepEngine engine(opts);
    engine.add(sys, setupFor(hw::gh200Single(), "1B"));
    EXPECT_THROW(engine.run(), std::runtime_error);
    EXPECT_FALSE(engine.cells()[0].evaluated);
}

TEST(Sweep, TagsAndJsonDocument)
{
    CountingSystem sys;
    SweepOptions opts;
    opts.name = "unit";
    SweepEngine engine(opts);
    engine.add(sys, setupFor(hw::gh200Single(), "1B"), "alpha");
    engine.run();
    EXPECT_EQ(engine.cells()[0].tag, "alpha");

    const std::string doc = engine.json();
    EXPECT_NE(doc.find("\"sweep\":\"unit\""), std::string::npos);
    EXPECT_NE(doc.find("\"tag\":\"alpha\""), std::string::npos);
    EXPECT_NE(doc.find("\"cache_misses\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"iter_time_s\""), std::string::npos);
}

} // namespace
} // namespace so::runtime
