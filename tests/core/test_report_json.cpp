#include "core/report_json.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace so::core {
namespace {

runtime::TrainSetup
setupFor(const char *model)
{
    runtime::TrainSetup setup;
    setup.cluster = hw::gh200Single();
    setup.model = model::modelPreset(model);
    setup.global_batch = 8;
    setup.seq = 1024;
    return setup;
}

TEST(ReportJson, FeasiblePlanContainsAllSections)
{
    SuperOffloadEngine engine;
    const runtime::TrainSetup setup = setupFor("5B");
    const PlanReport report = engine.plan(setup);
    ASSERT_TRUE(report.feasible);
    const std::string json = toJson(report, setup);
    for (const char *needle :
         {"\"setup\":", "\"model\":\"5B\"", "\"plan\":",
          "\"placement\":", "\"cast_strategy\":", "\"iteration\":",
          "\"tflops_per_gpu\":", "\"feasible\":true", "\"memory\":"}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
    // Balanced braces (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(ReportJson, InfeasiblePlanCarriesReason)
{
    SuperOffloadEngine engine;
    const runtime::TrainSetup setup = setupFor("50B");
    const PlanReport report = engine.plan(setup);
    ASSERT_FALSE(report.feasible);
    const std::string json = toJson(report, setup);
    EXPECT_NE(json.find("\"feasible\":false"), std::string::npos);
    EXPECT_NE(json.find("\"infeasible_reason\":"), std::string::npos);
    EXPECT_EQ(json.find("\"plan\":"), std::string::npos);
}

TEST(ReportJson, IterationResultStandalone)
{
    SuperOffloadSystem sys;
    const auto res = sys.run(setupFor("5B"));
    const std::string json = toJson(res);
    EXPECT_NE(json.find("\"iter_time_s\":"), std::string::npos);
    EXPECT_NE(json.find("\"gpu_utilization\":"), std::string::npos);
    // No NVMe section when the system does not use the tier.
    EXPECT_EQ(json.find("\"nvme_bytes\""), std::string::npos);
}

TEST(ReportJson, NotesSurviveSerialization)
{
    SuperOffloadSystem sys;
    const auto res = sys.run(setupFor("5B"));
    ASSERT_TRUE(res.feasible);
    const std::string json = toJson(res);
    EXPECT_NE(json.find("retained="), std::string::npos);
}

} // namespace
} // namespace so::core
