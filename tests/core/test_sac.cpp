#include "core/sac.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/presets.h"

namespace so::core {
namespace {

const hw::SuperchipSpec kGh = hw::gh200(480.0 * so::kGB);

TEST(Sac, GpuPathWinsOnSuperchip)
{
    // Fig. 9 / §4.5: Cast_gpu<->Move_fp32 beats Cast_cpu<->Move_fp16
    // on GH200 across the measured tensor sizes.
    for (double mb : {256.0, 512.0, 1024.0, 2048.0}) {
        const double elements = mb * kMiB / 4.0; // fp32 tensor of mb MB
        EXPECT_EQ(chooseCastStrategy(kGh, elements),
                  CastStrategy::CastGpuMoveFp32)
            << mb << " MB";
    }
}

TEST(Sac, CpuPathRoughlyTwiceAsSlow)
{
    // §4.5: "Cast_cpu<->Move_fp16 takes around 2x execution time".
    const double elements = 512.0 * kMiB / 4.0;
    const double gpu_path =
        castPipelineTime(kGh, CastStrategy::CastGpuMoveFp32, elements);
    const double cpu_path =
        castPipelineTime(kGh, CastStrategy::CastCpuMoveFp16, elements);
    EXPECT_GT(cpu_path / gpu_path, 1.5);
    EXPECT_LT(cpu_path / gpu_path, 4.0);
}

TEST(Sac, PipelineTimesScaleWithElements)
{
    const double t1 =
        castPipelineTime(kGh, CastStrategy::CastGpuMoveFp32, 1e8);
    const double t2 =
        castPipelineTime(kGh, CastStrategy::CastGpuMoveFp32, 2e8);
    EXPECT_GT(t2, 1.8 * t1);
}

TEST(Sac, ZeroElementsIsFree)
{
    EXPECT_DOUBLE_EQ(
        castPipelineTime(kGh, CastStrategy::CastGpuMoveFp32, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(
        castPipelineTime(kGh, CastStrategy::CastCpuMoveFp16, 0.0), 0.0);
}

TEST(Sac, AdvantageShrinksOnSlowLinks)
{
    // On PCIe-class links the fp32 move's doubled volume costs much
    // more, so the GPU path's *relative* advantage shrinks: the
    // C2C-era decision is not universal.
    const hw::SuperchipSpec dgx = hw::dgx2().node.superchip;
    const double elements = 512.0 * kMiB / 4.0;
    const double gh_ratio =
        castPipelineTime(kGh, CastStrategy::CastCpuMoveFp16, elements) /
        castPipelineTime(kGh, CastStrategy::CastGpuMoveFp32, elements);
    const double dgx_ratio =
        castPipelineTime(dgx, CastStrategy::CastCpuMoveFp16, elements) /
        castPipelineTime(dgx, CastStrategy::CastGpuMoveFp32, elements);
    EXPECT_LT(dgx_ratio, gh_ratio);
}

TEST(Sac, StrategyNames)
{
    EXPECT_STREQ(castStrategyName(CastStrategy::CastGpuMoveFp32),
                 "Cast_gpu<->Move_fp32");
    EXPECT_STREQ(castStrategyName(CastStrategy::CastCpuMoveFp16),
                 "Cast_cpu<->Move_fp16");
}

} // namespace
} // namespace so::core
