#include "core/policy.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/presets.h"

namespace so::core {
namespace {

const hw::SuperchipSpec kChip = hw::gh200(480.0 * so::kGB);

TEST(Policy, EfficiencyInUnitInterval)
{
    const double e = offloadEfficiency(kChip, 5e9, 8.0, 1024.0,
                                       450.0 * kGB);
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 1.0);
}

TEST(Policy, EfficiencyIndependentOfModelSize)
{
    // Both compute and weight traffic scale linearly in params, so the
    // ratio depends only on batch, seq, and bandwidth (Fig. 6 plots
    // batch size on the x-axis for this reason).
    const double e1 = offloadEfficiency(kChip, 1e9, 4.0, 1024.0,
                                        450.0 * kGB);
    const double e2 = offloadEfficiency(kChip, 50e9, 4.0, 1024.0,
                                        450.0 * kGB);
    EXPECT_NEAR(e1, e2, 1e-12);
}

TEST(Policy, EfficiencyMonotoneInBatch)
{
    double prev = 0.0;
    for (double batch = 1.0; batch <= 64.0; batch *= 2.0) {
        const double e = offloadEfficiency(kChip, 5e9, batch, 1024.0,
                                           450.0 * kGB);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(Policy, EfficiencyMonotoneInBandwidth)
{
    double prev = 0.0;
    for (double bw : {32.0, 64.0, 450.0, 900.0}) {
        const double e = offloadEfficiency(kChip, 5e9, 4.0, 1024.0,
                                           bw * kGB);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(Policy, Fig6CrossoverAtBatchFour)
{
    // §4.2: "even with a theoretical peak uni-directional C2C bandwidth
    // of 450 GB/s, the batch size needs to be >= 4 with sequence
    // length 1024 to achieve an efficiency greater than 60%".
    EXPECT_LT(offloadEfficiency(kChip, 5e9, 1.0, 1024.0, 450.0 * kGB),
              kFlowEfficiencyThreshold);
    EXPECT_GE(offloadEfficiency(kChip, 5e9, 4.0, 1024.0, 450.0 * kGB),
              kFlowEfficiencyThreshold);
    EXPECT_FALSE(flowIsEfficient(kChip, 5e9, 1.0, 1024.0));
    EXPECT_TRUE(flowIsEfficient(kChip, 5e9, 4.0, 1024.0));
}

TEST(Policy, PcieEraBandwidthNeverReachesThreshold)
{
    // The PCIe-era assumption: weight-flow at batch 8 over 32 GB/s is
    // hopeless, which is why ZeRO-Offload kept weights stationary.
    EXPECT_LT(offloadEfficiency(kChip, 5e9, 8.0, 1024.0, 32.0 * kGB),
              kFlowEfficiencyThreshold);
}

TEST(Policy, LongSequencesMakeFlowEfficientEvenAtBatchOne)
{
    // §5.3's regime: batch 1, huge sequence -> compute dominates.
    EXPECT_TRUE(flowIsEfficient(kChip, 13e9, 1.0, 65536.0));
}

TEST(Policy, PlacementNames)
{
    EXPECT_STREQ(placementName(WeightPlacement::Stationary),
                 "weight-stationary");
    EXPECT_STREQ(placementName(WeightPlacement::Flow), "weight-flow");
    EXPECT_STREQ(placementName(WeightPlacement::Auto), "auto");
}

} // namespace
} // namespace so::core
