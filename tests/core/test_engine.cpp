#include "core/engine.h"

#include <gtest/gtest.h>

namespace so::core {
namespace {

runtime::TrainSetup
setupFor(const char *model)
{
    runtime::TrainSetup setup;
    setup.cluster = hw::gh200Single();
    setup.model = model::modelPreset(model);
    setup.global_batch = 8;
    setup.seq = 1024;
    return setup;
}

TEST(Engine, PlanPopulatesEveryDecision)
{
    SuperOffloadEngine engine;
    const PlanReport report = engine.plan(setupFor("10B"));
    ASSERT_TRUE(report.feasible);
    EXPECT_GT(report.buckets.count, 0u);
    EXPECT_TRUE(report.placement == WeightPlacement::Stationary ||
                report.placement == WeightPlacement::Flow);
    EXPECT_EQ(report.cast_strategy, CastStrategy::CastGpuMoveFp32);
    EXPECT_EQ(report.adam_impl, hw::AdamImpl::GraceAdam);
    EXPECT_GT(report.iteration.tflopsPerGpu(), 100.0);
}

TEST(Engine, InfeasiblePlanCarriesReason)
{
    SuperOffloadEngine engine;
    const PlanReport report = engine.plan(setupFor("50B"));
    EXPECT_FALSE(report.feasible);
    EXPECT_FALSE(report.infeasible_reason.empty());
}

TEST(Engine, SummaryMentionsKeyFields)
{
    SuperOffloadEngine engine;
    const runtime::TrainSetup setup = setupFor("5B");
    const PlanReport report = engine.plan(setup);
    const std::string s = report.summary(setup);
    EXPECT_NE(s.find("placement:"), std::string::npos);
    EXPECT_NE(s.find("buckets:"), std::string::npos);
    EXPECT_NE(s.find("casting:"), std::string::npos);
    EXPECT_NE(s.find("GraceAdam"), std::string::npos);
    EXPECT_NE(s.find("TFLOPS"), std::string::npos);
}

TEST(Engine, InfeasibleSummaryExplains)
{
    SuperOffloadEngine engine;
    const runtime::TrainSetup setup = setupFor("50B");
    const PlanReport report = engine.plan(setup);
    const std::string s = report.summary(setup);
    EXPECT_NE(s.find("INFEASIBLE"), std::string::npos);
}

TEST(Engine, DisabledSacReportsClassicCasting)
{
    SuperOffloadOptions opts;
    opts.sac = false;
    SuperOffloadEngine engine(opts);
    const PlanReport report = engine.plan(setupFor("5B"));
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.cast_strategy, CastStrategy::CastCpuMoveFp16);
}

TEST(Engine, DisabledGraceAdamReportsCpuAdam)
{
    SuperOffloadOptions opts;
    opts.grace_adam = false;
    SuperOffloadEngine engine(opts);
    const PlanReport report = engine.plan(setupFor("5B"));
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.adam_impl, hw::AdamImpl::CpuAdam);
}

} // namespace
} // namespace so::core
