#include "core/bucketization.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/presets.h"

namespace so::core {
namespace {

TEST(Buckets, SixtyFourMegabyteBuckets)
{
    // 64 MB of fp16 = 32 Mi parameters per bucket (§4.3).
    const BucketPlan plan = planBuckets(64e6, 1024);
    EXPECT_NEAR(plan.bucket_bytes, kSuperOffloadBucketBytes,
                kSuperOffloadBucketBytes * 0.05);
    EXPECT_EQ(plan.count, 2u); // 128 MB of fp16 -> 2 buckets.
}

TEST(Buckets, TotalParamsPreserved)
{
    for (double params : {1e6, 5.1e9, 13.1e9, 25.2e9}) {
        const BucketPlan plan = planBuckets(params, 128);
        EXPECT_NEAR(plan.totalParams(), params, 1.0) << params;
    }
}

TEST(Buckets, ParamsInBucketsIsCumulative)
{
    const BucketPlan plan = planBuckets(5e9, 128);
    EXPECT_DOUBLE_EQ(plan.paramsInBuckets(0), 0.0);
    EXPECT_NEAR(plan.paramsInBuckets(plan.count), 5e9, 1.0);
    EXPECT_LT(plan.paramsInBuckets(plan.count / 2),
              plan.paramsInBuckets(plan.count));
}

TEST(Buckets, CapBindsForHugeShards)
{
    const BucketPlan plan = planBuckets(100e9, 128);
    EXPECT_EQ(plan.count, 128u);
    // Buckets grow beyond 64 MB when the cap binds.
    EXPECT_GT(plan.bucket_bytes, kSuperOffloadBucketBytes);
    EXPECT_NEAR(plan.totalParams(), 100e9, 1.0);
}

TEST(Buckets, ZeroParamsGivesEmptyPlan)
{
    const BucketPlan plan = planBuckets(0.0);
    EXPECT_EQ(plan.count, 0u);
    EXPECT_DOUBLE_EQ(plan.totalParams(), 0.0);
}

TEST(Buckets, TinyShardOneBucket)
{
    const BucketPlan plan = planBuckets(1000.0);
    EXPECT_EQ(plan.count, 1u);
    EXPECT_DOUBLE_EQ(plan.totalParams(), 1000.0);
}

TEST(Repartition, AnalyticBoundSatisfiesInequality)
{
    // Verify eq. (4)-(5): at the returned n, lhs <= rhs; at n-1 it is
    // violated (unless n == 0).
    const hw::SuperchipSpec chip = hw::gh200(480.0 * kGB);
    const BucketPlan plan = planBuckets(5.1e9, 128);
    const double bwd_per_bucket = 1.1 / plan.count;
    const std::uint32_t n = analyticRetainedBuckets(
        chip, plan, bwd_per_bucket, hw::AdamImpl::GraceAdam, true);

    auto lhs = [&] {
        const double bytes = 4.0 * plan.params_per_bucket;
        return chip.c2c.transferTime(bytes) +
               chip.cpu.adamStepTime(plan.params_per_bucket,
                                     hw::AdamImpl::GraceAdam) +
               chip.c2c.transferTime(bytes);
    }();
    auto rhs = [&](std::uint32_t k) {
        return k * bwd_per_bucket +
               chip.gpuAdamStepTime(k * plan.params_per_bucket);
    };
    EXPECT_LE(lhs, rhs(n));
    if (n > 0)
        EXPECT_GT(lhs, rhs(n - 1));
}

TEST(Repartition, SlowerCpuAdamNeedsMoreRetainedBuckets)
{
    const hw::SuperchipSpec chip = hw::gh200(480.0 * kGB);
    const BucketPlan plan = planBuckets(5.1e9, 128);
    const double bwd_per_bucket = 1.1 / plan.count;
    const std::uint32_t grace = analyticRetainedBuckets(
        chip, plan, bwd_per_bucket, hw::AdamImpl::GraceAdam, true);
    const std::uint32_t naive = analyticRetainedBuckets(
        chip, plan, bwd_per_bucket, hw::AdamImpl::Naive, true);
    EXPECT_GE(naive, grace);
}

TEST(Repartition, EmptyPlanNeedsNothing)
{
    const hw::SuperchipSpec chip = hw::gh200(480.0 * kGB);
    EXPECT_EQ(analyticRetainedBuckets(chip, BucketPlan{}, 0.0,
                                      hw::AdamImpl::GraceAdam, true),
              0u);
}

TEST(Repartition, CandidatesContainAnchors)
{
    const auto grid = retainedCandidates(10, 64);
    EXPECT_NE(std::find(grid.begin(), grid.end(), 0u), grid.end());
    EXPECT_NE(std::find(grid.begin(), grid.end(), 10u), grid.end());
    EXPECT_NE(std::find(grid.begin(), grid.end(), 64u), grid.end());
    // Sorted and within bounds.
    for (std::size_t i = 1; i < grid.size(); ++i)
        EXPECT_LT(grid[i - 1], grid[i]);
    EXPECT_LE(grid.back(), 64u);
}

TEST(Repartition, CandidatesClampedToMax)
{
    const auto grid = retainedCandidates(100, 5);
    for (std::uint32_t n : grid)
        EXPECT_LE(n, 5u);
}

} // namespace
} // namespace so::core
