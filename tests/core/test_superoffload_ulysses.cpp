#include "core/superoffload_ulysses.h"

#include <gtest/gtest.h>

#include "runtime/registry.h"

namespace so::core {
namespace {

using runtime::TrainSetup;

TrainSetup
longSeqSetup(const char *model, std::uint32_t chips, std::uint32_t seq_k)
{
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(chips);
    setup.model = model::modelPreset(model);
    setup.global_batch = 1;
    setup.seq = seq_k * 1024;
    return setup;
}

TEST(SuperOffloadUlysses, MillionTokensOnEightChips)
{
    // §5.3: "enables the training of 13B model with sequence lengths
    // up to 1 million tokens on 8 Superchips".
    SuperOffloadUlyssesSystem sys;
    EXPECT_TRUE(sys.run(longSeqSetup("13B", 8, 1024)).feasible);
    EXPECT_FALSE(sys.run(longSeqSetup("13B", 8, 1536)).feasible);
}

TEST(SuperOffloadUlysses, MfuAboveFiftyPercentAtMillionTokens)
{
    // §5.3: "while achieving 55% MFU".
    SuperOffloadUlyssesSystem sys;
    const auto res = sys.run(longSeqSetup("13B", 8, 1024));
    ASSERT_TRUE(res.feasible);
    const double peak =
        hw::gh200ClusterOf(8).node.superchip.gpu.peak_flops;
    EXPECT_GT(res.mfuAgainst(peak), 0.48);
    EXPECT_LT(res.mfuAgainst(peak), 0.60);
}

TEST(SuperOffloadUlysses, SupportsMuchLongerSequencesThanUlysses)
{
    // Fig. 12: SuperOffload-Ulysses trains sequences several times
    // longer than vanilla Ulysses.
    SuperOffloadUlyssesSystem sou;
    auto ul = runtime::makeBaseline("ulysses");

    auto max_seq = [&](runtime::TrainingSystem &sys) {
        std::uint32_t best = 0;
        for (std::uint32_t k : {32u, 64u, 128u, 192u, 256u, 384u, 512u,
                                768u, 1024u}) {
            if (sys.run(longSeqSetup("13B", 8, k)).feasible)
                best = k;
        }
        return best;
    };
    const std::uint32_t sou_max = max_seq(sou);
    const std::uint32_t ul_max = max_seq(*ul);
    ASSERT_GT(ul_max, 0u);
    EXPECT_GE(sou_max / ul_max, 4u);
}

TEST(SuperOffloadUlysses, HigherMfuThanUlyssesWhereBothFeasible)
{
    // Fig. 12: "SuperOffload-Ulysses consistently achieves higher MFU".
    SuperOffloadUlyssesSystem sou;
    auto ul = runtime::makeBaseline("ulysses");
    const double peak =
        hw::gh200ClusterOf(8).node.superchip.gpu.peak_flops;
    for (std::uint32_t k : {32u, 64u, 128u}) {
        const TrainSetup setup = longSeqSetup("13B", 8, k);
        const auto a = sou.run(setup);
        const auto b = ul->run(setup);
        ASSERT_TRUE(a.feasible) << k;
        ASSERT_TRUE(b.feasible) << k;
        EXPECT_GE(a.mfuAgainst(peak), b.mfuAgainst(peak) * 0.97) << k;
    }
}

TEST(SuperOffloadUlysses, ThirtyBillionFeasibleWhereUlyssesIsNot)
{
    SuperOffloadUlyssesSystem sou;
    auto ul = runtime::makeBaseline("ulysses");
    const TrainSetup setup = longSeqSetup("30B", 8, 64);
    EXPECT_TRUE(sou.run(setup).feasible);
    EXPECT_FALSE(ul->run(setup).feasible);
}

TEST(SuperOffloadUlysses, MfuGrowsWithSequenceLength)
{
    SuperOffloadUlyssesSystem sys;
    const double peak =
        hw::gh200ClusterOf(8).node.superchip.gpu.peak_flops;
    double prev = 0.0;
    for (std::uint32_t k : {64u, 256u, 1024u}) {
        const auto res = sys.run(longSeqSetup("13B", 8, k));
        ASSERT_TRUE(res.feasible) << k;
        const double mfu = res.mfuAgainst(peak);
        EXPECT_GT(mfu, prev) << k;
        prev = mfu;
    }
}

TEST(SuperOffloadUlysses, CpuHoldsTheModelStates)
{
    SuperOffloadUlyssesSystem sys;
    const auto res = sys.run(longSeqSetup("13B", 8, 512));
    ASSERT_TRUE(res.feasible);
    // 18 bytes/param sharded over 8 ranks.
    const double expected =
        18.0 * model::modelPreset("13B").params() / 8.0;
    EXPECT_NEAR(res.memory.cpu_bytes, expected, 0.01 * expected);
    // GPU side is activation-dominated, far below the 16P/N + act of
    // a states-resident design.
    EXPECT_LT(res.memory.gpu_bytes,
              res.memory.gpu_capacity);
}

} // namespace
} // namespace so::core
