#include "core/superoffload.h"

#include <gtest/gtest.h>

#include "common/json.h"
#include "runtime/registry.h"

namespace so::core {
namespace {

using runtime::TrainSetup;

TrainSetup
setupFor(const char *model, std::uint32_t chips = 1,
         std::uint32_t batch = 8, std::uint32_t seq = 1024)
{
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(chips);
    setup.model = model::modelPreset(model);
    setup.global_batch = batch;
    setup.seq = seq;
    return setup;
}

TEST(SuperOffload, HighThroughputAcrossSizes)
{
    SuperOffloadSystem sys;
    for (const char *m : {"3B", "5B", "10B", "15B", "20B"}) {
        const auto res = sys.run(setupFor(m));
        ASSERT_TRUE(res.feasible) << m;
        EXPECT_GT(res.tflopsPerGpu(), 200.0) << m;
    }
}

TEST(SuperOffload, NearFullGpuUtilization)
{
    // Fig. 15: "SuperOffload achieves near-complete GPU utilization".
    SuperOffloadSystem sys;
    const auto res = sys.run(setupFor("13B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.gpu_utilization, 0.95);
}

TEST(SuperOffload, BeatsEveryBaselineOnSingleChip)
{
    SuperOffloadSystem sys;
    const TrainSetup setup = setupFor("5B");
    const double so_tflops = sys.run(setup).tflopsPerGpu();
    for (const char *name :
         {"ddp", "zero-offload", "zero-infinity", "fsdp-offload"}) {
        auto baseline = runtime::makeBaseline(name);
        const auto res = baseline->run(setup);
        if (res.feasible)
            EXPECT_GT(so_tflops, res.tflopsPerGpu()) << name;
    }
}

TEST(SuperOffload, AboutTwiceZeroOffload)
{
    // §5.2: "2x throughput on average (up to 2.5x) compared to
    // ZeRO-Offload".
    SuperOffloadSystem sys;
    auto zo = runtime::makeBaseline("zero-offload");
    double ratio_sum = 0.0;
    int count = 0;
    for (const char *m : {"3B", "5B", "10B", "13B", "15B"}) {
        const TrainSetup setup = setupFor(m);
        const auto so_res = sys.run(setup);
        const auto zo_res = zo->run(setup);
        ASSERT_TRUE(so_res.feasible && zo_res.feasible) << m;
        ratio_sum += so_res.tflopsPerGpu() / zo_res.tflopsPerGpu();
        ++count;
    }
    const double avg = ratio_sum / count;
    EXPECT_GT(avg, 1.7);
    EXPECT_LT(avg, 2.8);
}

TEST(SuperOffload, TrainsTwentyFiveBillionOnOneChip)
{
    // Fig. 13: 25B on a single Superchip.
    SuperOffloadSystem sys;
    EXPECT_TRUE(sys.run(setupFor("25B")).feasible);
    EXPECT_FALSE(sys.run(setupFor("30B")).feasible);
}

TEST(SuperOffload, FiftyBillionOnFourChips)
{
    SuperOffloadSystem sys;
    EXPECT_TRUE(sys.run(setupFor("50B", 4, 16)).feasible);
}

TEST(SuperOffload, TwoHundredBillionOnSixteenChips)
{
    SuperOffloadSystem sys;
    const auto res = sys.run(setupFor("200B", 16, 128));
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.tflopsPerGpu(), 100.0);
}

TEST(SuperOffload, AblationOrderingMatchesTable2)
{
    // Each §4 technique must help, with STV the largest single gain.
    const TrainSetup setup = setupFor("5B");
    SuperOffloadOptions opts;
    opts.grace_adam = false;
    opts.sac = false;
    opts.stv = false;
    opts.repartition = false;

    auto tflops = [&](const SuperOffloadOptions &o) {
        SuperOffloadSystem sys(o);
        const auto res = sys.run(setup);
        EXPECT_TRUE(res.feasible);
        return res.tflopsPerGpu();
    };

    const double base = tflops(opts);
    opts.grace_adam = true;
    const double with_grace = tflops(opts);
    opts.sac = true;
    const double with_sac = tflops(opts);
    opts.stv = true;
    const double with_stv = tflops(opts);
    opts.repartition = true;
    const double full = tflops(opts);

    EXPECT_GT(with_grace, base);
    EXPECT_GT(with_sac, with_grace);
    EXPECT_GT(with_stv, with_sac * 1.2); // STV is the big one (+45%).
    EXPECT_GT(full, with_stv);
    // Total speedup in the paper is 2.06x; ours should exceed 1.8x.
    EXPECT_GT(full / base, 1.8);
}

TEST(SuperOffload, BaselineConfigMatchesZeroOffloadBallpark)
{
    // Table 2's all-disabled row "is close to the ZeRO-Offload
    // throughput shown in Fig. 10".
    SuperOffloadOptions opts;
    opts.grace_adam = false;
    opts.sac = false;
    opts.stv = false;
    opts.repartition = false;
    SuperOffloadSystem base(opts);
    auto zo = runtime::makeBaseline("zero-offload");
    const TrainSetup setup = setupFor("5B");
    const double a = base.run(setup).tflopsPerGpu();
    const double b = zo->run(setup).tflopsPerGpu();
    EXPECT_NEAR(a, b, 0.25 * b);
}

TEST(SuperOffload, AdaptivePolicyReportsPlacement)
{
    SuperOffloadSystem sys;
    const auto res = sys.run(setupFor("5B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_NE(res.notes.find("weight-"), std::string::npos);
    EXPECT_NE(res.notes.find("retained="), std::string::npos);
    const auto placement =
        static_cast<WeightPlacement>(static_cast<std::uint32_t>(
            res.extra("placement", -1.0)));
    EXPECT_TRUE(placement == WeightPlacement::Stationary ||
                placement == WeightPlacement::Flow);
}

TEST(SuperOffload, ForcedStationaryStillFeasibleOnMidSizes)
{
    SuperOffloadOptions opts;
    opts.placement = WeightPlacement::Stationary;
    SuperOffloadSystem sys(opts);
    const auto res = sys.run(setupFor("10B"));
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.extra("placement", -1.0),
              static_cast<double>(WeightPlacement::Stationary));
}

TEST(SuperOffload, FlowModeUnlocksLongSequences)
{
    // §4.2's adaptive scenario: at long sequence lengths activation
    // memory dwarfs model states, and only weight-flow leaves enough
    // HBM for the activations. Auto must therefore match Flow.
    SuperOffloadOptions stationary;
    stationary.placement = WeightPlacement::Stationary;
    SuperOffloadOptions flow;
    flow.placement = WeightPlacement::Flow;
    const TrainSetup setup = setupFor("13B", 1, 1, 128 * 1024);
    EXPECT_FALSE(SuperOffloadSystem(stationary).run(setup).feasible);
    EXPECT_TRUE(SuperOffloadSystem(flow).run(setup).feasible);

    SuperOffloadSystem adaptive;
    const auto auto_res = adaptive.run(setup);
    EXPECT_TRUE(auto_res.feasible);
    EXPECT_EQ(auto_res.extra("placement", -1.0),
              static_cast<double>(WeightPlacement::Flow));
}

TEST(SuperOffload, RemoteNumaBindingHurtsThroughput)
{
    // §4.7: mis-bound CPU<->GPU traffic crosses the slow fabric. At
    // mid sizes the STV pipeline prefetches deeply enough to hide even
    // a Slingshot-grade link, so the penalty shows where host traffic
    // exceeds the iteration's compute time (largest trainable model).
    SuperOffloadSystem sys;
    TrainSetup good = setupFor("25B");
    TrainSetup bad = setupFor("25B");
    bad.binding = hw::NumaBinding::Remote;
    const auto g = sys.run(good);
    const auto b = sys.run(bad);
    ASSERT_TRUE(g.feasible && b.feasible);
    EXPECT_GT(g.tflopsPerGpu(), 1.05 * b.tflopsPerGpu());
}

TEST(SuperOffload, TinyBucketsAreCatastrophicWithoutCoalescing)
{
    // The §4.3 ablation: honoring a 1 MiB bucket size literally pays
    // the left side of the Fig. 7 curve plus per-bucket dispatch on
    // every one of ~27k buckets.
    SuperOffloadOptions tiny;
    tiny.bucket_bytes = 1.0 * 1024.0 * 1024.0;
    tiny.coalesce_buckets = false;
    SuperOffloadOptions standard;
    const TrainSetup setup = setupFor("13B");
    const auto bad = SuperOffloadSystem(tiny).run(setup);
    const auto good = SuperOffloadSystem(standard).run(setup);
    ASSERT_TRUE(bad.feasible && good.feasible);
    EXPECT_GT(good.tflopsPerGpu(), 10.0 * bad.tflopsPerGpu());
}

TEST(SuperOffload, CoalescingBoundsTinyBucketDamage)
{
    // The production engine coalesces: a silly requested size ends up
    // within a few percent of the default.
    SuperOffloadOptions tiny;
    tiny.bucket_bytes = 1.0 * 1024.0 * 1024.0;
    tiny.coalesce_buckets = true;
    const TrainSetup setup = setupFor("13B");
    const auto res = SuperOffloadSystem(tiny).run(setup);
    const auto ref = SuperOffloadSystem().run(setup);
    ASSERT_TRUE(res.feasible && ref.feasible);
    EXPECT_GT(res.tflopsPerGpu(), 0.9 * ref.tflopsPerGpu());
}

TEST(SuperOffload, FullyDeterministicAcrossRuns)
{
    // The entire pipeline — placement evaluation, retained-bucket grid
    // search, the DES — must be reproducible bit for bit.
    const TrainSetup setup = setupFor("10B");
    SuperOffloadSystem a, b;
    const auto r1 = a.run(setup);
    const auto r2 = b.run(setup);
    ASSERT_TRUE(r1.feasible && r2.feasible);
    EXPECT_EQ(r1.iter_time, r2.iter_time);
    EXPECT_EQ(r1.gpu_utilization, r2.gpu_utilization);
    EXPECT_EQ(r1.micro_batch, r2.micro_batch);
    EXPECT_EQ(r1.notes, r2.notes);
    EXPECT_EQ(r1.extra("placement", -1.0), r2.extra("placement", -1.0));
    EXPECT_EQ(r1.extra("retained_buckets", -1.0),
              r2.extra("retained_buckets", -1.0));
}

TEST(SuperOffload, TraceCaptureIsOptIn)
{
    SuperOffloadSystem sys;
    TrainSetup plain = setupFor("5B");
    const auto without = sys.run(plain);
    ASSERT_TRUE(without.feasible);
    EXPECT_TRUE(without.trace_json.empty());

    TrainSetup traced = setupFor("5B");
    traced.capture_trace = true;
    const auto with = sys.run(traced);
    ASSERT_TRUE(with.feasible);
    EXPECT_NE(with.trace_json.find("\"traceEvents\""),
              std::string::npos);
    EXPECT_NE(with.trace_json.find("GPU"), std::string::npos);
}

TEST(SuperOffload, ProfileCaptureAttributesTheSchedule)
{
    SuperOffloadSystem sys;
    TrainSetup plain = setupFor("5B");
    const auto without = sys.run(plain);
    ASSERT_TRUE(without.feasible);
    EXPECT_FALSE(without.profile.valid);
    EXPECT_TRUE(without.profile_json.empty());

    TrainSetup profiled = setupFor("5B");
    profiled.capture_profile = true;
    const auto with = sys.run(profiled);
    ASSERT_TRUE(with.feasible);
    ASSERT_TRUE(with.profile.valid);
    EXPECT_GT(with.profile.critical_length, 0.0);
    EXPECT_FALSE(with.profile.critical_phases.empty());
    EXPECT_FALSE(with.profile.idle.empty());

    // The full profile document parses, its critical path spans the
    // schedule, the per-resource idle causes partition the idle time,
    // and the critical-path phase shares sum to one.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(with.profile_json, doc, &error))
        << error;
    const double makespan = doc.at("makespan_s").number();
    EXPECT_NEAR(doc.at("critical_path").at("length_s").number(),
                makespan, 1e-9 + 1e-9 * makespan);
    double share = 0.0;
    for (const JsonValue &phase :
         doc.at("critical_path").at("phases").items())
        share += phase.at("share").number();
    EXPECT_NEAR(share, 1.0, 1e-9);
    for (const JsonValue &res : doc.at("resources").items()) {
        const double idle = res.at("idle_s").number();
        const double split = res.at("idle_dependency_s").number() +
                             res.at("idle_contention_s").number() +
                             res.at("idle_tail_s").number();
        EXPECT_NEAR(split, idle, 1e-9)
            << res.at("resource").text();
        EXPECT_NEAR(res.at("busy_s").number() + idle, makespan,
                    1e-9 + 1e-9 * makespan)
            << res.at("resource").text();
    }
}

TEST(SuperOffload, ProfileImpliesTraceFlowEvents)
{
    // capture_profile + capture_trace upgrades the trace with
    // critical-path flow arrows and occupancy counter tracks.
    SuperOffloadSystem sys;
    TrainSetup setup = setupFor("5B");
    setup.capture_trace = true;
    setup.capture_profile = true;
    const auto res = sys.run(setup);
    ASSERT_TRUE(res.feasible);
    EXPECT_NE(res.trace_json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(res.trace_json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(res.trace_json.find("\"ph\":\"C\""), std::string::npos);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(res.trace_json, doc, &error)) << error;
}

TEST(SuperOffload, StvDisabledExposesOptimizer)
{
    SuperOffloadOptions no_stv;
    no_stv.stv = false;
    const TrainSetup setup = setupFor("13B");
    const auto with = SuperOffloadSystem().run(setup);
    const auto without = SuperOffloadSystem(no_stv).run(setup);
    ASSERT_TRUE(with.feasible && without.feasible);
    EXPECT_GT(with.gpu_utilization, without.gpu_utilization + 0.1);
}

} // namespace
} // namespace so::core
