#include "nn/attention_lm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic_corpus.h"
#include "nn/mlp_lm.h"
#include "optim/adam.h"
#include "stv/trainer.h"

namespace so::nn {
namespace {

AttentionLmConfig
tinyConfig()
{
    AttentionLmConfig cfg;
    cfg.vocab = 12;
    cfg.embed = 6;
    cfg.hidden = 10;
    return cfg;
}

TEST(AttentionLm, LayoutPartitionsAllParameters)
{
    const AttentionLm model(tinyConfig(), 1);
    const AttentionParamLayout &l = model.layout();
    EXPECT_EQ(l.embedding, 0u);
    EXPECT_EQ(l.pos, 12u * 6u);
    EXPECT_EQ(l.wq, l.pos + 64u * 6u);
    EXPECT_EQ(l.wk, l.wq + 36u);
    EXPECT_EQ(l.wv, l.wk + 36u);
    EXPECT_EQ(l.wo, l.wv + 36u);
    EXPECT_EQ(l.w1, l.wo + 36u);
    EXPECT_EQ(l.b1, l.w1 + 60u);
    EXPECT_EQ(l.w2, l.b1 + 10u);
    EXPECT_EQ(l.b2, l.w2 + 120u);
    EXPECT_EQ(model.paramCount(), l.b2 + 12u);
}

TEST(AttentionLm, TrainAndEvalLossesAgree)
{
    AttentionLm model(tinyConfig(), 3);
    const std::vector<std::uint32_t> in{3, 1, 5, 7, 2},
        tgt{1, 5, 7, 2, 9};
    const float eval = model.evalBatch(in.data(), tgt.data(), in.size());
    const float train =
        model.trainBatch(in.data(), tgt.data(), in.size());
    EXPECT_NEAR(eval, train, 1e-5f);
}

TEST(AttentionLm, InitialLossNearUniform)
{
    AttentionLm model(tinyConfig(), 5);
    const std::vector<std::uint32_t> in{0, 1, 2, 3}, tgt{1, 2, 3, 4};
    EXPECT_NEAR(model.evalBatch(in.data(), tgt.data(), 4),
                std::log(12.0f), 1.2f);
}

TEST(AttentionLm, GradientMatchesFiniteDifferences)
{
    // The load-bearing test for the hand-derived attention backward:
    // probe at least one parameter of EVERY tensor, including all four
    // attention projections.
    AttentionLm model(tinyConfig(), 7);
    const std::vector<std::uint32_t> in{1, 5, 9, 1, 3},
        tgt{2, 0, 3, 7, 11};
    model.trainBatch(in.data(), tgt.data(), in.size());
    std::vector<float> analytic(model.grads(),
                                model.grads() + model.paramCount());

    const AttentionParamLayout &l = model.layout();
    const std::size_t probes[] = {
        l.embedding + 1 * 6 + 2, // Embedding row of a used token.
        l.embedding + 5 * 6 + 0,
        l.pos + 0 * 6 + 1,       // Positional embeddings in use.
        l.pos + 3 * 6 + 4,
        l.wq + 7,  l.wq + 20,
        l.wk + 3,  l.wk + 31,
        l.wv + 11, l.wv + 25,
        l.wo + 0,  l.wo + 17,
        l.w1 + 13, l.b1 + 4,
        l.w2 + 37, l.b2 + 3,
    };
    const double h = 1e-3;
    for (std::size_t idx : probes) {
        const float saved = model.params()[idx];
        model.params()[idx] = static_cast<float>(saved + h);
        const double plus =
            model.evalBatch(in.data(), tgt.data(), in.size());
        model.params()[idx] = static_cast<float>(saved - h);
        const double minus =
            model.evalBatch(in.data(), tgt.data(), in.size());
        model.params()[idx] = saved;
        const double numeric = (plus - minus) / (2.0 * h);
        EXPECT_NEAR(analytic[idx], numeric,
                    5e-3 + 0.05 * std::fabs(numeric))
            << "param index " << idx;
    }
}

TEST(AttentionLm, CausalityFutureTokensDoNotAffectPastLoss)
{
    // Changing token i+1 must not change the loss contribution of
    // positions <= i. Compare the loss over the first k positions via
    // a prefix evaluation.
    AttentionLm model(tinyConfig(), 9);
    std::vector<std::uint32_t> in{4, 2, 8, 6}, tgt{2, 8, 6, 1};
    const float prefix_before =
        model.evalBatch(in.data(), tgt.data(), 3);
    in[3] = 11; // Mutate the future token.
    const float prefix_after =
        model.evalBatch(in.data(), tgt.data(), 3);
    EXPECT_EQ(prefix_before, prefix_after);
}

TEST(AttentionLm, LearnsOrderOneCorpus)
{
    AttentionLmConfig cfg;
    cfg.vocab = 32;
    cfg.embed = 12;
    cfg.hidden = 24;
    AttentionLm model(cfg, 11);

    data::CorpusConfig cc;
    cc.vocab = 32;
    cc.branching = 4;
    cc.seed = 13;
    data::SyntheticCorpus corpus(cc);

    optim::AdamConfig adam_cfg;
    adam_cfg.lr = 3e-3f;
    optim::Adam adam(adam_cfg, optim::AdamKernel::Fused);
    const std::size_t slot = adam.addParameter(model.paramCount());

    const std::size_t window = 24;
    std::vector<std::uint32_t> in(window), tgt(window);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 500; ++step) {
        corpus.nextBatch(in.data(), tgt.data(), window);
        const float loss =
            model.trainBatch(in.data(), tgt.data(), window);
        if (step == 0)
            first = loss;
        last = loss;
        adam.step(slot, model.params(), model.grads());
    }
    EXPECT_LT(last, 0.6f * first);
}

TEST(AttentionLm, BeatsMlpOnOrderTwoCorpus)
{
    // The separation property: order-2 structure is invisible to a
    // model that conditions only on the current token. Attention can
    // look one token further back; the MLP cannot, no matter how long
    // it trains.
    data::CorpusConfig cc;
    cc.vocab = 16;
    cc.branching = 2; // Low chain entropy; marginal entropy is high.
    cc.order = 2;
    cc.seed = 17;

    AttentionLmConfig att_cfg;
    att_cfg.vocab = 16;
    att_cfg.embed = 12;
    att_cfg.hidden = 24;
    AttentionLm attention(att_cfg, 19);

    MlpLmConfig mlp_cfg;
    mlp_cfg.vocab = 16;
    mlp_cfg.embed = 12;
    mlp_cfg.hidden = 24;
    MlpLm mlp(mlp_cfg, 19);

    optim::AdamConfig att_cfg_adam;
    att_cfg_adam.lr = 5e-3f; // Attention needs time/rate to form the
                             // position-(i-1) addressing pattern.
    optim::AdamConfig mlp_cfg_adam;
    mlp_cfg_adam.lr = 2e-3f; // The MLP plateaus regardless; this is
                             // its comfortable rate.
    optim::Adam att_adam(att_cfg_adam, optim::AdamKernel::Fused);
    optim::Adam mlp_adam(mlp_cfg_adam, optim::AdamKernel::Fused);
    const std::size_t att_slot =
        att_adam.addParameter(attention.paramCount());
    const std::size_t mlp_slot = mlp_adam.addParameter(mlp.paramCount());

    data::SyntheticCorpus att_data(cc), mlp_data(cc);
    const std::size_t window = 24;
    std::vector<std::uint32_t> in(window), tgt(window);
    double att_tail = 0.0, mlp_tail = 0.0;
    int tail_count = 0;
    const int steps = 5000;
    for (int step = 0; step < steps; ++step) {
        att_data.nextBatch(in.data(), tgt.data(), window);
        const float att_loss =
            attention.trainBatch(in.data(), tgt.data(), window);
        att_adam.step(att_slot, attention.params(), attention.grads());

        mlp_data.nextBatch(in.data(), tgt.data(), window);
        const float mlp_loss =
            mlp.trainBatch(in.data(), tgt.data(), window);
        mlp_adam.step(mlp_slot, mlp.params(), mlp.grads());

        if (step >= steps - 200) {
            att_tail += att_loss;
            mlp_tail += mlp_loss;
            ++tail_count;
        }
    }
    att_tail /= tail_count;
    mlp_tail /= tail_count;
    // The chain entropy (branching 2) is what attention approaches;
    // the MLP is stuck near the much higher order-1 marginal.
    const double chain_entropy =
        data::SyntheticCorpus(cc).conditionalEntropy();
    EXPECT_LT(att_tail, mlp_tail - 0.5)
        << "attention " << att_tail << " vs mlp " << mlp_tail;
    EXPECT_LT(att_tail, chain_entropy + 0.85);
}

TEST(AttentionLm, TrainsUnderStvSchedule)
{
    // The Model interface contract: the STV trainer drives the
    // attention model exactly like the MLP, rollbacks included.
    AttentionLmConfig cfg;
    cfg.vocab = 32;
    cfg.embed = 12;
    cfg.hidden = 24;
    AttentionLm model(cfg, 23);

    stv::TrainerConfig tc;
    tc.adam.lr = 2e-3f;
    tc.loss_scale = 1.0e6f; // Warm-up overflow -> rollback exercised.
    tc.clip_norm = 5.0;
    tc.buckets = 5;
    stv::StvTrainer trainer(model, tc);

    data::CorpusConfig cc;
    cc.vocab = 32;
    cc.branching = 4;
    cc.seed = 29;
    data::SyntheticCorpus corpus(cc);

    const std::size_t window = 24;
    std::vector<std::uint32_t> in(window), tgt(window);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 300; ++step) {
        corpus.nextBatch(in.data(), tgt.data(), window);
        const stv::StepStats s =
            trainer.step(in.data(), tgt.data(), window);
        if (step == 0)
            first = s.loss;
        last = s.loss;
    }
    EXPECT_GT(trainer.rollbackCount(), 0u);
    EXPECT_LT(last, 0.7f * first);
}

} // namespace
} // namespace so::nn
