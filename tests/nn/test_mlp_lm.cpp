#include "nn/mlp_lm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic_corpus.h"
#include "optim/adam.h"

namespace so::nn {
namespace {

MlpLmConfig
tinyConfig()
{
    MlpLmConfig cfg;
    cfg.vocab = 16;
    cfg.embed = 8;
    cfg.hidden = 12;
    return cfg;
}

TEST(MlpLm, LayoutPartitionsAllParameters)
{
    const MlpLm model(tinyConfig(), 1);
    const ParamLayout &l = model.layout();
    EXPECT_EQ(l.embedding, 0u);
    EXPECT_EQ(l.w1, 16u * 8u);
    EXPECT_EQ(l.b1, l.w1 + 12u * 8u);
    EXPECT_EQ(l.w2, l.b1 + 12u);
    EXPECT_EQ(l.b2, l.w2 + 16u * 12u);
    EXPECT_EQ(l.total, l.b2 + 16u);
    EXPECT_EQ(model.paramCount(), l.total);
}

TEST(MlpLm, InitialLossNearUniform)
{
    MlpLm model(tinyConfig(), 7);
    std::vector<std::uint32_t> in{0, 1, 2, 3}, tgt{1, 2, 3, 4};
    const float loss = model.evalBatch(in.data(), tgt.data(), 4);
    EXPECT_NEAR(loss, std::log(16.0f), 1.0f);
}

TEST(MlpLm, TrainAndEvalLossesAgree)
{
    MlpLm model(tinyConfig(), 7);
    std::vector<std::uint32_t> in{3, 1, 5}, tgt{2, 0, 7};
    const float eval = model.evalBatch(in.data(), tgt.data(), 3);
    const float train = model.trainBatch(in.data(), tgt.data(), 3);
    EXPECT_NEAR(eval, train, 1e-5f);
}

TEST(MlpLm, DeterministicInit)
{
    MlpLm a(tinyConfig(), 42), b(tinyConfig(), 42);
    for (std::size_t i = 0; i < a.paramCount(); ++i)
        ASSERT_EQ(a.params()[i], b.params()[i]);
}

TEST(MlpLm, GradientMatchesFiniteDifferences)
{
    // The load-bearing test: analytic backprop vs central differences
    // on a sample of parameters from every tensor.
    MlpLm model(tinyConfig(), 3);
    std::vector<std::uint32_t> in{1, 5, 9, 1}, tgt{2, 0, 3, 7};
    model.trainBatch(in.data(), tgt.data(), in.size());
    std::vector<float> analytic(model.grads(),
                                model.grads() + model.paramCount());

    const ParamLayout &l = model.layout();
    const std::size_t probes[] = {
        l.embedding + 1 * 8 + 3, // embedding row of token 1
        l.w1 + 5,
        l.b1 + 2,
        l.w2 + 20,
        l.b2 + 2,
    };
    const double h = 1e-3;
    for (std::size_t idx : probes) {
        const float saved = model.params()[idx];
        model.params()[idx] = static_cast<float>(saved + h);
        const double plus =
            model.evalBatch(in.data(), tgt.data(), in.size());
        model.params()[idx] = static_cast<float>(saved - h);
        const double minus =
            model.evalBatch(in.data(), tgt.data(), in.size());
        model.params()[idx] = saved;
        const double numeric = (plus - minus) / (2.0 * h);
        EXPECT_NEAR(analytic[idx], numeric,
                    5e-3 + 0.05 * std::fabs(numeric))
            << "param index " << idx;
    }
}

TEST(MlpLm, LossScaleMultipliesGradients)
{
    MlpLm a(tinyConfig(), 11), b(tinyConfig(), 11);
    std::vector<std::uint32_t> in{4, 2}, tgt{1, 3};
    a.trainBatch(in.data(), tgt.data(), 2, 1.0f);
    b.trainBatch(in.data(), tgt.data(), 2, 128.0f);
    for (std::size_t i = 0; i < a.paramCount(); ++i)
        ASSERT_NEAR(b.grads()[i], 128.0f * a.grads()[i],
                    1e-3f + std::fabs(a.grads()[i]) * 1e-3f);
}

TEST(MlpLm, Fp16RoundingCreatesInfOnHugeScale)
{
    MlpLm model(tinyConfig(), 13);
    std::vector<std::uint32_t> in{4, 2, 9, 12}, tgt{1, 3, 0, 5};
    model.trainBatch(in.data(), tgt.data(), 4, 1e9f);
    model.roundGradsThroughFp16();
    bool has_inf = false;
    for (std::size_t i = 0; i < model.paramCount(); ++i)
        has_inf |= std::isinf(model.grads()[i]);
    EXPECT_TRUE(has_inf);
}

TEST(MlpLm, Fp16RoundingIsLosslessAtModestScale)
{
    MlpLm model(tinyConfig(), 13);
    std::vector<std::uint32_t> in{4, 2}, tgt{1, 3};
    model.trainBatch(in.data(), tgt.data(), 2, 64.0f);
    std::vector<float> before(model.grads(),
                              model.grads() + model.paramCount());
    model.roundGradsThroughFp16();
    for (std::size_t i = 0; i < model.paramCount(); ++i) {
        ASSERT_TRUE(std::isfinite(model.grads()[i]));
        ASSERT_NEAR(model.grads()[i], before[i],
                    std::fabs(before[i]) * 1e-3f + 1e-7f);
    }
}

TEST(MlpLm, LearnsPlantedBigramStructure)
{
    // End-to-end: training on the synthetic corpus must pull the loss
    // well below the uniform baseline toward the chain entropy.
    MlpLmConfig cfg;
    cfg.vocab = 64;
    cfg.embed = 16;
    cfg.hidden = 32;
    MlpLm model(cfg, 5);

    data::CorpusConfig corpus_cfg;
    corpus_cfg.vocab = 64;
    corpus_cfg.branching = 4;
    corpus_cfg.seed = 9;
    data::SyntheticCorpus corpus(corpus_cfg);

    optim::Adam adam(optim::AdamConfig{}, optim::AdamKernel::Fused);
    const std::size_t slot = adam.addParameter(model.paramCount());

    const std::size_t batch = 32;
    std::vector<std::uint32_t> in(batch), tgt(batch);
    float first_loss = 0.0f, last_loss = 0.0f;
    for (int step = 0; step < 400; ++step) {
        corpus.nextBatch(in.data(), tgt.data(), batch);
        const float loss = model.trainBatch(in.data(), tgt.data(), batch);
        if (step == 0)
            first_loss = loss;
        last_loss = loss;
        adam.step(slot, model.params(), model.grads());
    }
    EXPECT_NEAR(first_loss, std::log(64.0f), 1.0f);
    EXPECT_LT(last_loss, 0.55f * first_loss);
}

} // namespace
} // namespace so::nn
