#include "hw/topology.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/presets.h"

namespace so::hw {
namespace {

TEST(GpuSpec, ComputeTimeUsesAchievablePeak)
{
    GpuSpec gpu;
    gpu.peak_flops = 100.0 * kTFLOPS;
    gpu.achievable_frac = 0.5;
    EXPECT_DOUBLE_EQ(gpu.effectiveFlops(), 50.0 * kTFLOPS);
    EXPECT_DOUBLE_EQ(gpu.computeTime(50.0 * kTFLOPS), 1.0);
}

TEST(GpuSpec, AttentionUsesItsOwnFraction)
{
    GpuSpec gpu;
    gpu.peak_flops = 100.0 * kTFLOPS;
    gpu.achievable_frac = 0.25;
    gpu.attn_achievable_frac = 0.5;
    EXPECT_DOUBLE_EQ(gpu.attnComputeTime(50.0 * kTFLOPS), 1.0);
    EXPECT_DOUBLE_EQ(gpu.computeTime(50.0 * kTFLOPS), 2.0);
}

TEST(GpuSpec, MemTime)
{
    GpuSpec gpu;
    gpu.mem_bw = 4000.0 * kGB;
    EXPECT_DOUBLE_EQ(gpu.memTime(4000.0 * kGB), 1.0);
}

TEST(CpuSpec, AdamEfficiencyOrdering)
{
    // GraceAdam > CPU-Adam > PT-CPU > torch-loop, per Table 3 / §5.2.
    EXPECT_GT(CpuSpec::adamEfficiency(AdamImpl::GraceAdam),
              CpuSpec::adamEfficiency(AdamImpl::CpuAdam));
    EXPECT_GT(CpuSpec::adamEfficiency(AdamImpl::CpuAdam),
              CpuSpec::adamEfficiency(AdamImpl::Naive));
    EXPECT_GT(CpuSpec::adamEfficiency(AdamImpl::Naive),
              CpuSpec::adamEfficiency(AdamImpl::PyTorchLoop));
}

TEST(CpuSpec, AdamStepTimeMatchesPaperTable3)
{
    // Grace CPU: 500 GB/s DDR. The paper's Table 3 reports per-step
    // latencies on Grace; our calibration should land within ~15%.
    const CpuSpec grace = gh200(480.0 * kGB).cpu;
    struct Row
    {
        double params;
        double pt_cpu;
        double cpu_adam;
        double grace_adam;
    };
    const Row rows[] = {
        {1e9, 0.289, 0.098, 0.082},
        {2e9, 0.531, 0.198, 0.160},
        {4e9, 0.958, 0.393, 0.316},
        {8e9, 1.834, 0.769, 0.608},
    };
    for (const Row &row : rows) {
        // PT-CPU scales sub-linearly in the paper's measurements (its
        // temporaries fit caches at small sizes); our linear model is
        // calibrated to the 1B point and allowed 30% elsewhere.
        EXPECT_NEAR(grace.adamStepTime(row.params, AdamImpl::Naive),
                    row.pt_cpu, row.pt_cpu * 0.30);
        EXPECT_NEAR(grace.adamStepTime(row.params, AdamImpl::CpuAdam),
                    row.cpu_adam, row.cpu_adam * 0.15);
        EXPECT_NEAR(grace.adamStepTime(row.params, AdamImpl::GraceAdam),
                    row.grace_adam, row.grace_adam * 0.15);
    }
}

TEST(CpuSpec, AdamStepTimeLinearInParams)
{
    const CpuSpec grace = gh200(480.0 * kGB).cpu;
    const double t1 = grace.adamStepTime(1e9, AdamImpl::GraceAdam);
    const double t4 = grace.adamStepTime(4e9, AdamImpl::GraceAdam);
    EXPECT_NEAR(t4, 4.0 * t1, 1e-9);
}

TEST(SuperchipSpec, FlopsRatioMatchesTable1)
{
    EXPECT_NEAR(gh200(480.0 * kGB).flopsRatio(), 330.0, 1.0);
    EXPECT_NEAR(dgx2().node.superchip.flopsRatio(), 60.39, 0.5);
    EXPECT_NEAR(dgxA100().node.superchip.flopsRatio(), 135.65, 0.5);
}

TEST(SuperchipSpec, GpuAdamMuchFasterThanCpuAdam)
{
    const SuperchipSpec chip = gh200(480.0 * kGB);
    EXPECT_LT(chip.gpuAdamStepTime(1e9) * 5.0,
              chip.cpu.adamStepTime(1e9, AdamImpl::GraceAdam));
}

TEST(ClusterSpec, SingleNodeUsesNvlink)
{
    const ClusterSpec cluster = gh200Cluster(4, 1);
    EXPECT_TRUE(cluster.singleNode());
    EXPECT_DOUBLE_EQ(cluster.collectiveBandwidthPerGpu(), 450.0 * kGB);
}

TEST(ClusterSpec, MultiNodeBottleneckedByNic)
{
    const ClusterSpec cluster = gh200Cluster(4, 4);
    EXPECT_FALSE(cluster.singleNode());
    EXPECT_DOUBLE_EQ(cluster.collectiveBandwidthPerGpu(), 25.0 * kGB);
    EXPECT_EQ(cluster.totalSuperchips(), 16u);
}

TEST(NumaBinding, RemoteBindingUsesSlowFabric)
{
    const ClusterSpec cluster = gh200Cluster(4, 1);
    const Link &local =
        effectiveHostLink(cluster.node, NumaBinding::Colocated);
    const Link &remote =
        effectiveHostLink(cluster.node, NumaBinding::Remote);
    EXPECT_GT(local.curve().peak(), 10.0 * remote.curve().peak());
}

} // namespace
} // namespace so::hw
