#include "hw/collective.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/presets.h"

namespace so::hw {
namespace {

CollectiveCost
cost(std::uint32_t ranks, double bw = 100.0 * kGB, double lat = 1.0 * kUs)
{
    CollectiveCost c;
    c.ranks = ranks;
    c.bw_per_gpu = bw;
    c.latency = lat;
    return c;
}

TEST(Collective, SingleRankIsFree)
{
    const CollectiveCost c = cost(1);
    EXPECT_DOUBLE_EQ(c.allReduce(kGB), 0.0);
    EXPECT_DOUBLE_EQ(c.reduceScatter(kGB), 0.0);
    EXPECT_DOUBLE_EQ(c.allGather(kGB), 0.0);
    EXPECT_DOUBLE_EQ(c.allToAll(kGB), 0.0);
    EXPECT_DOUBLE_EQ(c.broadcast(kGB), 0.0);
}

TEST(Collective, ZeroBytesIsFree)
{
    const CollectiveCost c = cost(8);
    EXPECT_DOUBLE_EQ(c.allReduce(0.0), 0.0);
}

TEST(Collective, AllReduceVolumeFactor)
{
    // Ring all-reduce over N ranks moves 2(N-1)/N of the payload.
    const CollectiveCost c = cost(4, 100.0 * kGB, 0.0);
    EXPECT_NEAR(c.allReduce(100.0 * kGB), 2.0 * 3.0 / 4.0, 1e-12);
}

TEST(Collective, AllReduceIsTwiceReduceScatter)
{
    const CollectiveCost c = cost(8, 50.0 * kGB, 0.0);
    EXPECT_NEAR(c.allReduce(kGB), 2.0 * c.reduceScatter(kGB), 1e-12);
}

TEST(Collective, AllGatherEqualsReduceScatter)
{
    const CollectiveCost c = cost(16);
    EXPECT_DOUBLE_EQ(c.allGather(kGB), c.reduceScatter(kGB));
}

TEST(Collective, LatencyScalesWithRanks)
{
    const CollectiveCost c2 = cost(2, 100.0 * kGB, 1.0 * kMs);
    const CollectiveCost c8 = cost(8, 100.0 * kGB, 1.0 * kMs);
    // Same tiny payload: latency term dominates, 7 hops vs 1.
    EXPECT_NEAR(c8.reduceScatter(1.0) / c2.reduceScatter(1.0), 7.0, 0.01);
}

TEST(Collective, AllReduceTimeDecreasesPerByteWithMoreRanks)
{
    // The 2(N-1)/N factor approaches 2: per-rank time is bounded.
    const CollectiveCost c2 = cost(2, 100.0 * kGB, 0.0);
    const CollectiveCost c64 = cost(64, 100.0 * kGB, 0.0);
    EXPECT_LT(c64.allReduce(kGB), 2.0 * c2.allReduce(kGB));
}

TEST(Collective, BroadcastBandwidthTerm)
{
    const CollectiveCost c = cost(8, 100.0 * kGB, 0.0);
    EXPECT_NEAR(c.broadcast(100.0 * kGB), 1.0, 1e-12);
}

TEST(Collective, AllToAllCheaperThanAllReduce)
{
    const CollectiveCost c = cost(8, 100.0 * kGB, 0.0);
    EXPECT_LT(c.allToAll(kGB), c.allReduce(kGB));
}

TEST(Collective, FromClusterSingleNode)
{
    const CollectiveCost c =
        CollectiveCost::fromCluster(gh200Cluster(4, 1));
    EXPECT_EQ(c.ranks, 4u);
    EXPECT_DOUBLE_EQ(c.bw_per_gpu, 450.0 * kGB);
}

TEST(Collective, FromClusterMultiNode)
{
    const CollectiveCost c =
        CollectiveCost::fromCluster(gh200Cluster(2, 8));
    EXPECT_EQ(c.ranks, 16u);
    EXPECT_DOUBLE_EQ(c.bw_per_gpu, 25.0 * kGB);
}

} // namespace
} // namespace so::hw
