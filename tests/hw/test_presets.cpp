#include "hw/presets.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace so::hw {
namespace {

TEST(Presets, Gh200MatchesTable1)
{
    const SuperchipSpec chip = gh200(480.0 * kGB);
    EXPECT_DOUBLE_EQ(chip.gpu.peak_flops, 990.0 * kTFLOPS);
    EXPECT_DOUBLE_EQ(chip.cpu.peak_flops, 3.0 * kTFLOPS);
    EXPECT_EQ(chip.cpu.cores, 72u);
    EXPECT_DOUBLE_EQ(chip.cpu.mem_bw, 500.0 * kGB);
    EXPECT_DOUBLE_EQ(chip.c2c.curve().peak(), 450.0 * kGB);
    EXPECT_DOUBLE_EQ(chip.gpu.mem_bytes, 96.0 * kGB);
}

TEST(Presets, Dgx2MatchesTable1)
{
    const SuperchipSpec chip = dgx2().node.superchip;
    EXPECT_DOUBLE_EQ(chip.gpu.peak_flops, 125.0 * kTFLOPS);
    EXPECT_DOUBLE_EQ(chip.cpu.peak_flops, 2.07 * kTFLOPS);
    EXPECT_EQ(chip.cpu.cores, 24u);
    EXPECT_DOUBLE_EQ(chip.cpu.mem_bw, 100.0 * kGB);
    // Table 1's 32 GB/s is the bidirectional total.
    EXPECT_DOUBLE_EQ(2.0 * chip.c2c.curve().peak(), 32.0 * kGB);
}

TEST(Presets, DgxA100MatchesTable1)
{
    const SuperchipSpec chip = dgxA100().node.superchip;
    EXPECT_DOUBLE_EQ(chip.gpu.peak_flops, 312.0 * kTFLOPS);
    EXPECT_DOUBLE_EQ(chip.cpu.peak_flops, 2.3 * kTFLOPS);
    EXPECT_EQ(chip.cpu.cores, 64u);
    EXPECT_DOUBLE_EQ(chip.cpu.mem_bw, 150.0 * kGB);
    // Table 1's 64 GB/s is the bidirectional total.
    EXPECT_DOUBLE_EQ(2.0 * chip.c2c.curve().peak(), 64.0 * kGB);
}

TEST(Presets, C2cBandwidthAdvantageOverPcie)
{
    // The paper's headline: 900 GB/s C2C is "14x the standard PCIe
    // Gen4 lanes" and ~28x PCIe Gen3 x16 (~"30x increase").
    const double c2c = gh200(480.0 * kGB).c2c.curve().peak();
    const double pcie4 = dgxA100().node.superchip.c2c.curve().peak();
    const double pcie3 = dgx2().node.superchip.c2c.curve().peak();
    EXPECT_NEAR(c2c / pcie4, 14.0, 0.1);  // 900/64.
    EXPECT_NEAR(c2c / pcie3, 28.1, 0.2);  // 900/32.
}

TEST(Presets, SingleGh200Has480GbDdr)
{
    const ClusterSpec cluster = gh200Single();
    EXPECT_EQ(cluster.totalSuperchips(), 1u);
    EXPECT_DOUBLE_EQ(cluster.node.superchip.cpu.mem_bytes, 480.0 * kGB);
}

TEST(Presets, Nvl2ChipsHave240GbDdr)
{
    const ClusterSpec cluster = gh200Cluster(2, 8);
    EXPECT_DOUBLE_EQ(cluster.node.superchip.cpu.mem_bytes, 240.0 * kGB);
}

TEST(Presets, ClusterOfMatchesPaperLayouts)
{
    EXPECT_EQ(gh200ClusterOf(1).node_count, 1u);
    EXPECT_EQ(gh200ClusterOf(1).node.superchips_per_node, 1u);
    // §5.4: 4 GPUs in one node, 16 across four nodes.
    EXPECT_EQ(gh200ClusterOf(4).node_count, 1u);
    EXPECT_EQ(gh200ClusterOf(4).node.superchips_per_node, 4u);
    EXPECT_EQ(gh200ClusterOf(16).node_count, 4u);
    EXPECT_EQ(gh200ClusterOf(16).node.superchips_per_node, 4u);
    // Other even counts become NVL2 nodes (§5.1's 8x GH200 NVL2).
    EXPECT_EQ(gh200ClusterOf(8).node.superchips_per_node, 2u);
    EXPECT_EQ(gh200ClusterOf(8).node_count, 4u);
}

TEST(Presets, SlingshotIs200Gbps)
{
    const ClusterSpec cluster = gh200Cluster(2, 2);
    EXPECT_DOUBLE_EQ(cluster.node.inter_node.curve().peak(), 25.0 * kGB);
}

TEST(PresetsDeath, OddChipCountRejected)
{
    EXPECT_DEATH(gh200ClusterOf(3), "cannot arrange");
}

TEST(Presets, Gh200HasNvmeTier)
{
    const SuperchipSpec chip = gh200(480.0 * kGB);
    EXPECT_GT(chip.nvme_bytes, 1.0 * kTB);
    EXPECT_GT(chip.nvme.curve().peak(), 1.0 * kGB);
    // NVMe is far slower than the C2C link.
    EXPECT_LT(chip.nvme.curve().peak() * 10.0, chip.c2c.curve().peak());
}

TEST(Presets, Gb200RaisesTheFlopsRatio)
{
    // §2.1: GB200 is "the next-generation Superchip"; the GPU/CPU
    // FLOPS ratio that drives §4.3's repartitioning pressure keeps
    // growing across generations.
    const double gh = gh200(480.0 * kGB).flopsRatio();
    const double gb = gb200Cluster().node.superchip.flopsRatio();
    EXPECT_GT(gb, 3.0 * gh);
    EXPECT_NEAR(gb, 1500.0, 10.0);
}

TEST(Presets, Gb200MemoryUpgrades)
{
    const SuperchipSpec chip = gb200Cluster().node.superchip;
    EXPECT_DOUBLE_EQ(chip.gpu.mem_bytes, 192.0 * kGB);
    EXPECT_GT(chip.gpu.mem_bw, gh200(480.0 * kGB).gpu.mem_bw);
}

TEST(Presets, Mi300aUnifiedPoolIsShared)
{
    // The documented caveat: GPU and CPU capacities alias the same
    // 128 GB pool, and the "link" runs at memory-like speed.
    const SuperchipSpec chip = mi300a().node.superchip;
    EXPECT_DOUBLE_EQ(chip.gpu.mem_bytes, chip.cpu.mem_bytes);
    EXPECT_DOUBLE_EQ(chip.gpu.mem_bw, chip.cpu.mem_bw);
    EXPECT_GT(chip.c2c.curve().peak(),
              gh200(480.0 * kGB).c2c.curve().peak());
    EXPECT_LT(chip.c2c.latency(), 1.0 * kUs);
}

} // namespace
} // namespace so::hw
