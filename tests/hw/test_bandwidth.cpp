#include "hw/bandwidth.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/presets.h"

namespace so::hw {
namespace {

TEST(BandwidthCurve, FlatCurveIsConstant)
{
    const BandwidthCurve c = BandwidthCurve::flat(100.0 * kGB);
    EXPECT_DOUBLE_EQ(c.bandwidth(1.0), 100.0 * kGB);
    EXPECT_DOUBLE_EQ(c.bandwidth(1e12), 100.0 * kGB);
}

TEST(BandwidthCurve, InterpolatesBetweenPoints)
{
    const BandwidthCurve c({{1024.0, 10.0}, {4096.0, 30.0}});
    EXPECT_DOUBLE_EQ(c.bandwidth(1024.0), 10.0);
    EXPECT_DOUBLE_EQ(c.bandwidth(4096.0), 30.0);
    // log2 midpoint of [1024, 4096] is 2048.
    EXPECT_DOUBLE_EQ(c.bandwidth(2048.0), 20.0);
}

TEST(BandwidthCurve, ClampsOutsideCalibration)
{
    const BandwidthCurve c({{1024.0, 10.0}, {4096.0, 30.0}});
    EXPECT_DOUBLE_EQ(c.bandwidth(1.0), 10.0);
    EXPECT_DOUBLE_EQ(c.bandwidth(1e9), 30.0);
}

TEST(BandwidthCurve, PeakAndSaturation)
{
    const BandwidthCurve c = c2cCurve(450.0 * kGB);
    EXPECT_DOUBLE_EQ(c.peak(), 450.0 * kGB);
    // Paper Fig. 7: saturation at ~64 MB.
    EXPECT_DOUBLE_EQ(c.saturationSize(), 64.0 * kMiB);
}

TEST(BandwidthCurve, C2cSmallTensorsAreSlow)
{
    // §5.2: "bandwidth can drop to as low as 50 GB/s with small tensor
    // sizes".
    const BandwidthCurve c = c2cCurve(450.0 * kGB);
    EXPECT_LT(c.bandwidth(256.0 * kKiB), 50.0 * kGB);
    EXPECT_GT(c.bandwidth(64.0 * kMiB), 400.0 * kGB);
}

class CurveMonotoneTest
    : public ::testing::TestWithParam<double> // peak bandwidth
{
};

TEST_P(CurveMonotoneTest, BandwidthIsNonDecreasingInSize)
{
    const BandwidthCurve c = c2cCurve(GetParam());
    double prev = 0.0;
    for (double bytes = 1024.0; bytes < 4.0 * kGiB; bytes *= 1.7) {
        const double bw = c.bandwidth(bytes);
        EXPECT_GE(bw, prev);
        prev = bw;
    }
}

INSTANTIATE_TEST_SUITE_P(Peaks, CurveMonotoneTest,
                         ::testing::Values(25.0 * kGB, 64.0 * kGB,
                                           450.0 * kGB, 900.0 * kGB));

TEST(Link, TransferTimeIncludesLatency)
{
    const Link link("test", BandwidthCurve::flat(100.0 * kGB), 1.0 * kUs);
    EXPECT_DOUBLE_EQ(link.transferTime(0.0), 0.0);
    EXPECT_NEAR(link.transferTime(100.0 * kGB), 1.0 + 1e-6, 1e-12);
}

TEST(Link, TransferTimeMonotoneBeyondRampRegion)
{
    // In the steep ramp region of the curve, doubling the message can
    // more than double the achievable bandwidth, so strict
    // monotonicity only holds once the curve flattens (>= 4 MiB).
    const Link link("c2c", c2cCurve(450.0 * kGB), 2.0 * kUs);
    double prev = 0.0;
    for (double bytes = 4.0 * kMiB; bytes < kGiB; bytes *= 2.0) {
        const double t = link.transferTime(bytes);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Link, UnpinnedIsSlower)
{
    const Link link("c2c", c2cCurve(450.0 * kGB), 2.0 * kUs);
    const double bytes = 256.0 * kMiB;
    EXPECT_GT(link.transferTimeUnpinned(bytes),
              link.transferTime(bytes) * 1.5);
}

TEST(Link, PcieCurveSaturatesEarlierThanC2c)
{
    const BandwidthCurve pcie = pcieCurve(32.0 * kGB);
    const BandwidthCurve c2c = c2cCurve(450.0 * kGB);
    EXPECT_LT(pcie.saturationSize(), c2c.saturationSize());
}

TEST(BandwidthCurveDeath, RejectsNonIncreasingSizes)
{
    EXPECT_DEATH(BandwidthCurve({{100.0, 1.0}, {100.0, 2.0}}),
                 "strictly increasing");
}

TEST(BandwidthCurveDeath, RejectsNonPositivePoints)
{
    EXPECT_DEATH(BandwidthCurve({{0.0, 1.0}}), "positive");
}

} // namespace
} // namespace so::hw
