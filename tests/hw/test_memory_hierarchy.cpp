#include "hw/memory.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/constants.h"
#include "hw/presets.h"

namespace so::hw {
namespace {

MemoryHierarchy
gh200Hierarchy(const HierarchyOptions &opts = {})
{
    const ClusterSpec cluster = gh200Single();
    return memoryHierarchy(cluster.node, NumaBinding::Colocated, opts);
}

TEST(MemoryHierarchy, Gh200HasThreeTiersHotToCold)
{
    const MemoryHierarchy hier = gh200Hierarchy();
    ASSERT_EQ(hier.tiers().size(), 3u);
    EXPECT_EQ(hier.tiers()[0].name, kTierHbm);
    EXPECT_EQ(hier.tiers()[1].name, kTierDdr);
    EXPECT_EQ(hier.tiers()[2].name, kTierNvme);
    EXPECT_EQ(hier.tier(kTierHbm).kind, TierKind::Device);
    EXPECT_EQ(hier.tier(kTierDdr).kind, TierKind::Host);
    EXPECT_EQ(hier.tier(kTierNvme).kind, TierKind::Cold);
}

TEST(MemoryHierarchy, TierDescriptionsMatchDiagnostics)
{
    // Capacity diagnostics embed these labels; they are part of the
    // user-visible message contract.
    const MemoryHierarchy hier = gh200Hierarchy();
    EXPECT_EQ(hier.tier(kTierHbm).description, "GPU memory");
    EXPECT_EQ(hier.tier(kTierDdr).description, "host DRAM");
    EXPECT_EQ(hier.tier(kTierNvme).description, "NVMe");
}

TEST(MemoryHierarchy, DdrUsableFractionReservesHostOverheads)
{
    const MemoryHierarchy hier = gh200Hierarchy();
    const MemoryTier &ddr = hier.tier(kTierDdr);
    EXPECT_DOUBLE_EQ(ddr.usable_fraction, kDdrUsableFraction);
    EXPECT_DOUBLE_EQ(ddr.usableBytes(),
                     ddr.capacity_bytes * kDdrUsableFraction);
    EXPECT_DOUBLE_EQ(hier.tier(kTierHbm).usable_fraction, 1.0);
}

TEST(MemoryHierarchy, CapacitiesComeFromTheChipSpec)
{
    const ClusterSpec cluster = gh200Single();
    const SuperchipSpec &chip = cluster.node.superchip;
    const MemoryHierarchy hier =
        memoryHierarchy(cluster.node, NumaBinding::Colocated);
    EXPECT_DOUBLE_EQ(hier.tier(kTierHbm).capacity_bytes,
                     chip.gpu.mem_bytes);
    EXPECT_DOUBLE_EQ(hier.tier(kTierDdr).capacity_bytes,
                     chip.cpu.mem_bytes);
    EXPECT_DOUBLE_EQ(hier.tier(kTierNvme).capacity_bytes, chip.nvme_bytes);
}

TEST(MemoryHierarchy, ChipWithoutNvmeHasNoColdTier)
{
    const ClusterSpec cluster = dgxA100();
    const MemoryHierarchy hier =
        memoryHierarchy(cluster.node, NumaBinding::Colocated);
    EXPECT_EQ(hier.tiers().size(), 2u);
    EXPECT_FALSE(hier.hasTier(kTierNvme));
    EXPECT_EQ(hier.paths().size(), 2u);
}

TEST(MemoryHierarchy, CanonicalPathsAndChannels)
{
    const MemoryHierarchy hier = gh200Hierarchy();
    EXPECT_EQ(hier.primaryPath(kTierDdr, kTierHbm).channel, kChannelH2d);
    EXPECT_EQ(hier.primaryPath(kTierHbm, kTierDdr).channel, kChannelD2h);
    // The drive is duplex: both directions share one channel, so reads
    // and writes serialize on the same DES resource.
    EXPECT_EQ(hier.primaryPath(kTierDdr, kTierNvme).channel, kChannelNvme);
    EXPECT_EQ(hier.primaryPath(kTierNvme, kTierDdr).channel, kChannelNvme);
    // No direct NVMe->HBM route in the canonical (seed) hierarchy.
    EXPECT_TRUE(hier.pathsBetween(kTierNvme, kTierHbm).empty());
}

TEST(MemoryHierarchy, GdsOptionAddsDirectNvmeHbmPaths)
{
    HierarchyOptions opts;
    opts.gds_paths = true;
    const MemoryHierarchy hier = gh200Hierarchy(opts);
    const auto up = hier.pathsBetween(kTierNvme, kTierHbm);
    const auto down = hier.pathsBetween(kTierHbm, kTierNvme);
    ASSERT_EQ(up.size(), 1u);
    ASSERT_EQ(down.size(), 1u);
    EXPECT_EQ(up[0]->channel, kChannelGds);
    EXPECT_EQ(down[0]->channel, kChannelGds);
    // The staged topology is untouched; GDS is purely additive.
    EXPECT_EQ(hier.primaryPath(kTierDdr, kTierHbm).channel, kChannelH2d);
    EXPECT_EQ(hier.pathsBetween(kTierNvme, kTierDdr).size(), 1u);
}

TEST(MemoryHierarchy, GdsOptionOnNvmelessChipIsNoop)
{
    HierarchyOptions opts;
    opts.gds_paths = true;
    const ClusterSpec cluster = dgxA100();
    const MemoryHierarchy hier =
        memoryHierarchy(cluster.node, NumaBinding::Colocated, opts);
    EXPECT_EQ(hier.tiers().size(), 2u);
    EXPECT_EQ(hier.paths().size(), 2u);
}

TEST(MemoryHierarchy, PathTimeMatchesItsLink)
{
    const MemoryHierarchy hier = gh200Hierarchy();
    const MemoryPath &h2d = hier.primaryPath(kTierDdr, kTierHbm);
    EXPECT_DOUBLE_EQ(h2d.transferTime(kGB), h2d.link.transferTime(kGB));
    EXPECT_DOUBLE_EQ(h2d.transferTime(kGB, /*pinned=*/false),
                     h2d.link.transferTimeUnpinned(kGB));
    EXPECT_GT(h2d.transferTime(kGB, false), h2d.transferTime(kGB));
}

TEST(MemoryHierarchy, AggregateBandwidthSumsConcurrentRoutes)
{
    HierarchyOptions opts;
    opts.gds_paths = true;
    const MemoryHierarchy staged = gh200Hierarchy();
    const MemoryHierarchy multi = gh200Hierarchy(opts);
    const double one = staged.aggregateBandwidth(kTierNvme, kTierDdr);
    EXPECT_GT(one, 0.0);
    // GDS adds an NVMe->HBM route without touching NVMe->DDR.
    EXPECT_DOUBLE_EQ(multi.aggregateBandwidth(kTierNvme, kTierDdr), one);
    EXPECT_GT(multi.aggregateBandwidth(kTierNvme, kTierHbm), 0.0);
    EXPECT_DOUBLE_EQ(staged.aggregateBandwidth(kTierNvme, kTierHbm), 0.0);
}

TEST(MemoryHierarchy, TierMemTimeIsBandwidthBound)
{
    MemoryTier tier;
    tier.name = "T";
    tier.bandwidth = 100.0 * kGB;
    EXPECT_DOUBLE_EQ(tier.memTime(100.0 * kGB), 1.0);
    EXPECT_DOUBLE_EQ(tier.memTime(0.0), 0.0);
}

TEST(MemoryHierarchyDeath, UnknownTierIsFatal)
{
    const MemoryHierarchy hier = gh200Hierarchy();
    EXPECT_DEATH(hier.tierIndex("L2"), "unknown memory tier");
    EXPECT_DEATH(hier.primaryPath(kTierNvme, kTierHbm), "no path");
}

TEST(MemoryHierarchyDeath, DuplicateTierIsFatal)
{
    MemoryHierarchy hier;
    MemoryTier tier;
    tier.name = "DDR";
    tier.capacity_bytes = kGB;
    hier.addTier(tier);
    EXPECT_DEATH(hier.addTier(tier), "duplicate tier");
}

} // namespace
} // namespace so::hw
