#include "hw/power.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "hw/constants.h"
#include "hw/memory.h"
#include "hw/presets.h"

namespace so::hw {
namespace {

PowerModel
gh200Power(const PowerOverrides &overrides = {},
           const HierarchyOptions &opts = {})
{
    const ClusterSpec cluster = gh200Single();
    const MemoryHierarchy hier =
        memoryHierarchy(cluster.node, NumaBinding::Colocated, opts);
    return powerModel(cluster.node.superchip, hier, overrides);
}

TEST(PowerModel, Gh200CoversTheSevenBuilderResources)
{
    const PowerModel model = gh200Power();
    for (const char *name :
         {"GPU", "CPU", "CPU-bg", "H2D", "D2H", "NIC", "NVMe"})
        EXPECT_NE(model.find(name), nullptr) << name;
}

TEST(PowerModel, Gh200AnchorsAreUnscaled)
{
    // gh200Single *is* the anchor chip: capability ratios are 1, so
    // the presets come through exactly.
    const PowerModel model = gh200Power();
    EXPECT_DOUBLE_EQ(model.find("GPU")->busy_w, kGpuBusyWatts);
    EXPECT_DOUBLE_EQ(model.find("GPU")->idle_w, kGpuIdleWatts);
    EXPECT_DOUBLE_EQ(model.find("CPU")->busy_w, kCpuBusyWatts);
    EXPECT_DOUBLE_EQ(model.find("H2D")->busy_w, kLinkBusyWatts);
    EXPECT_DOUBLE_EQ(model.find("H2D")->joules_per_byte,
                     kC2cPicojoulesPerByte * 1e-12);
    EXPECT_DOUBLE_EQ(model.find("NVMe")->joules_per_byte,
                     kNvmePicojoulesPerByte * 1e-12);
}

TEST(PowerModel, GpuWattsScaleWithPeakFlops)
{
    ClusterSpec cluster = gh200Single();
    cluster.node.superchip.gpu.peak_flops = kGpuPowerAnchorFlops / 2.0;
    const MemoryHierarchy hier =
        memoryHierarchy(cluster.node, NumaBinding::Colocated);
    const PowerModel model = powerModel(cluster.node.superchip, hier);
    EXPECT_DOUBLE_EQ(model.find("GPU")->busy_w, kGpuBusyWatts / 2.0);
    EXPECT_DOUBLE_EQ(model.find("GPU")->idle_w, kGpuIdleWatts / 2.0);
}

TEST(PowerModel, CpuWattsScaleWithCores)
{
    ClusterSpec cluster = gh200Single();
    cluster.node.superchip.cpu.cores =
        static_cast<std::uint32_t>(kCpuPowerAnchorCores) * 2;
    const MemoryHierarchy hier =
        memoryHierarchy(cluster.node, NumaBinding::Colocated);
    const PowerModel model = powerModel(cluster.node.superchip, hier);
    EXPECT_DOUBLE_EQ(model.find("CPU")->busy_w, kCpuBusyWatts * 2.0);
    EXPECT_DOUBLE_EQ(model.find("CPU-bg")->busy_w,
                     kCpuBgBusyWatts * 2.0);
}

TEST(PowerModel, BackgroundSliceDrawsIncrementally)
{
    // The CPU profile already pays the socket's idle floor; the
    // background-validation slice must not double-charge it.
    const PowerModel model = gh200Power();
    EXPECT_DOUBLE_EQ(model.find("CPU-bg")->idle_w, 0.0);
    EXPECT_GT(model.find("CPU-bg")->busy_w, 0.0);
}

TEST(PowerModel, OverridesReplaceDerivedValues)
{
    PowerOverrides overrides;
    overrides.gpu_busy_w = 123.0;
    overrides.nvme_pj_per_byte = 500.0;
    overrides.ddr_w_per_gib = 1.0;
    const PowerModel model = gh200Power(overrides);
    EXPECT_DOUBLE_EQ(model.find("GPU")->busy_w, 123.0);
    // Unset fields keep the derived value.
    EXPECT_DOUBLE_EQ(model.find("GPU")->idle_w, kGpuIdleWatts);
    EXPECT_DOUBLE_EQ(model.find("NVMe")->joules_per_byte, 500.0e-12);
    const ClusterSpec cluster = gh200Single();
    EXPECT_NEAR(model.backgroundWatts(),
                cluster.node.superchip.cpu.mem_bytes / kGiB, 1e-9);
}

TEST(PowerModel, OverridesAnyDetectsEveryField)
{
    EXPECT_FALSE(PowerOverrides{}.any());
    PowerOverrides overrides;
    overrides.c2c_pj_per_byte = 7.0;
    EXPECT_TRUE(overrides.any());
}

TEST(PowerModel, NvmeLessChipDrawsNoDriveWatts)
{
    ClusterSpec cluster = gh200Single();
    cluster.node.superchip.nvme_bytes = 0.0;
    const MemoryHierarchy hier =
        memoryHierarchy(cluster.node, NumaBinding::Colocated);
    const PowerModel model = powerModel(cluster.node.superchip, hier);
    const PowerProfile *nvme = model.find("NVMe");
    ASSERT_NE(nvme, nullptr);
    EXPECT_DOUBLE_EQ(nvme->busy_w, 0.0);
    EXPECT_DOUBLE_EQ(nvme->idle_w, 0.0);
    EXPECT_DOUBLE_EQ(nvme->joules_per_byte, 0.0);
}

TEST(PowerModel, GdsChannelDrawsLikeASecondDriveQueue)
{
    HierarchyOptions opts;
    opts.gds_paths = true;
    const PowerModel model = gh200Power({}, opts);
    const PowerProfile *gds = model.find(kChannelGds);
    ASSERT_NE(gds, nullptr);
    EXPECT_DOUBLE_EQ(gds->busy_w, kNvmeBusyWatts);
    // Idle floor already paid by the primary NVMe profile.
    EXPECT_DOUBLE_EQ(gds->idle_w, 0.0);
    EXPECT_DOUBLE_EQ(gds->joules_per_byte,
                     kNvmePicojoulesPerByte * 1e-12);
}

TEST(PowerModel, HostTierRefreshScalesWithCapacity)
{
    const ClusterSpec cluster = gh200Single();
    const PowerModel model = gh200Power();
    ASSERT_EQ(model.background().size(), 1u);
    EXPECT_EQ(model.background()[0].name,
              std::string(kTierDdr) + " refresh");
    EXPECT_NEAR(model.background()[0].watts,
                kDdrWattsPerGib *
                    cluster.node.superchip.cpu.mem_bytes / kGiB,
                1e-9);
}

} // namespace
} // namespace so::hw
