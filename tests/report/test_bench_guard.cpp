/**
 * @file
 * Harness guard-rail tests: --trace-dir pointing at an existing
 * regular file dies fast with a clear message (before any sweep work),
 * a valid --trace-dir is created up front, and --baseline runs the
 * in-process regression check, writing a machine-readable verdict
 * file while keeping the exit code 0 (warn-only).
 */
#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace so::bench {
namespace {

namespace fs = std::filesystem;

fs::path
tempPath(const std::string &name)
{
    return fs::temp_directory_path() / name;
}

Harness
makeHarness(const std::vector<std::string> &extra_args)
{
    static std::vector<std::string> storage;
    storage.assign({"bench_test"});
    storage.insert(storage.end(), extra_args.begin(),
                   extra_args.end());
    std::vector<const char *> argv;
    for (const std::string &arg : storage)
        argv.push_back(arg.c_str());
    return Harness(static_cast<int>(argv.size()), argv.data(),
                   "Guard Test", "harness guard rails", "n/a");
}

TEST(HarnessGuard, TraceDirOverRegularFileDiesFast)
{
    const fs::path file = tempPath("so_trace_dir_collision");
    fs::remove_all(file);
    std::ofstream(file.string()) << "not a directory\n";
    ASSERT_TRUE(fs::is_regular_file(file));

    EXPECT_EXIT(makeHarness({"--trace-dir", file.string()}),
                ::testing::ExitedWithCode(1), "not a directory");
    fs::remove_all(file);
}

TEST(HarnessGuard, TraceDirIsCreatedUpFront)
{
    const fs::path dir = tempPath("so_trace_dir_ok/nested");
    fs::remove_all(tempPath("so_trace_dir_ok"));
    {
        const Harness harness =
            makeHarness({"--trace-dir", dir.string()});
        EXPECT_TRUE(harness.profiling()); // --trace-dir implies it.
        EXPECT_TRUE(fs::is_directory(dir));
    }
    fs::remove_all(tempPath("so_trace_dir_ok"));
}

TEST(HarnessGuard, BaselineCheckIsWarnOnlyAndWritesVerdict)
{
    const fs::path json_path = tempPath("so_guard_record.json");
    const fs::path verdict_path =
        tempPath("so_guard_record.verdict.json");
    const fs::path baseline_path = tempPath("so_guard_baseline.json");
    fs::remove(json_path);
    fs::remove(verdict_path);

    // Baseline carries a gated metric the fresh record cannot have:
    // the check must flag it, yet finish() stays exit-code 0.
    std::ofstream(baseline_path.string())
        << R"({"vanished_per_s": 123.0})" << '\n';

    Harness harness = makeHarness(
        {"--json", json_path.string(), "--baseline",
         baseline_path.string()});
    EXPECT_EQ(harness.finish(), 0);

    ASSERT_TRUE(fs::exists(json_path));
    ASSERT_TRUE(fs::exists(verdict_path));
    std::ifstream in(verdict_path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue verdict;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(buf.str(), verdict, &error)) << error;
    EXPECT_FALSE(verdict.at("pass").boolean());
    EXPECT_EQ(verdict.at("regressions").items().size(), 1u);
    EXPECT_EQ(verdict.at("regressions").items()[0].text(),
              "vanished_per_s");

    fs::remove(json_path);
    fs::remove(verdict_path);
    fs::remove(baseline_path);
}

TEST(HarnessGuard, BaselineCheckPassesAgainstOwnRecord)
{
    const fs::path json_path = tempPath("so_guard_self.json");
    const fs::path verdict_path =
        tempPath("so_guard_self.verdict.json");
    fs::remove(json_path);
    fs::remove(verdict_path);

    // First run writes the record; second run checks against it.
    makeHarness({"--json", json_path.string()}).finish();
    ASSERT_TRUE(fs::exists(json_path));
    Harness second = makeHarness({"--json", json_path.string(),
                                  "--baseline", json_path.string()});
    EXPECT_EQ(second.finish(), 0);

    std::ifstream in(verdict_path.string());
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue verdict;
    ASSERT_TRUE(JsonValue::parse(buf.str(), verdict));
    EXPECT_TRUE(verdict.at("pass").boolean());

    fs::remove(json_path);
    fs::remove(verdict_path);
}

} // namespace
} // namespace so::bench
