/**
 * @file
 * Trace query engine tests (report/query.h): streaming aggregation
 * over bundle shards and Chrome traces with phase/resource/window
 * filters and top-N ranking, plus the `so-report` CLI contract — the
 * query subcommand answers over real artifacts and an unknown
 * subcommand exits with the distinct usage status listing the valid
 * ones.
 */
#include "report/query.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "common/json.h"

namespace so::report {
namespace {

/** Write @p text to a fresh file under the test temp dir. */
std::string
writeFile(const std::string &name, const std::string &text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return path;
}

/**
 * A hand-authored two-resource shard file with four spans chosen so
 * every aggregate below is exact in binary floating point:
 *
 *   id  phase  resource  span      slack  power_w
 *   0   fwd    GPU       [0, 2)    0      100
 *   1   bwd    GPU       [2, 6)    1.5    100
 *   2   adam   CPU       [1, 4)    0      0
 *   3   d2h    CPU       [4, 9)    3      0
 */
std::string
shardFixture()
{
    return writeFile(
        "query_fixture.bundle.jsonl",
        R"({"schema_version":2,"kind":"bundle_shard_header","label":"fix","makespan_s":10,"total_j":600,"avg_w":60,"task_count":4,"edge_count":1,"chunk":2,"resources":[{"resource":"GPU","slots":1,"busy_s":6,"idle_dependency_s":0,"idle_contention_s":0,"idle_tail_s":4,"busy_w":100,"idle_w":10},{"resource":"CPU","slots":1,"busy_s":8,"idle_dependency_s":0,"idle_contention_s":0,"idle_tail_s":2,"busy_w":0,"idle_w":0}]}
{"kind":"bundle_tasks","tasks":[{"id":0,"label":"fwd a","phase":"fwd","resource":0,"slot":0,"start_s":0,"end_s":2,"slack_s":0,"power_w":100},{"id":1,"label":"bwd a","phase":"bwd","resource":0,"slot":0,"start_s":2,"end_s":6,"slack_s":1.5,"power_w":100}]}
{"kind":"bundle_tasks","tasks":[{"id":2,"label":"adam shard","phase":"adam","resource":1,"slot":0,"start_s":1,"end_s":4,"slack_s":0,"power_w":0},{"id":3,"label":"d2h bucket","phase":"d2h","resource":1,"slot":0,"start_s":4,"end_s":9,"slack_s":3,"power_w":0}]}
{"kind":"bundle_edges","edges":[[0,1]]}
{"kind":"bundle_critical","tasks":[0,1]}
)");
}

/** A minimal Chrome trace over the same GPU spans, ts/dur in µs. */
std::string
traceFixture()
{
    return writeFile(
        "query_fixture.trace.json",
        R"({"traceEvents":[
{"ph":"M","pid":0,"name":"process_name","args":{"name":"GPU"}},
{"ph":"X","pid":0,"tid":0,"ts":0,"dur":2000000,"name":"fwd a"},
{"ph":"X","pid":0,"tid":0,"ts":2000000,"dur":4000000,"name":"bwd a"}
],"displayTimeUnit":"ms"})");
}

double
aggSeconds(const std::vector<std::pair<std::string, QueryAgg>> &rows,
           const std::string &name)
{
    for (const auto &[key, agg] : rows)
        if (key == name)
            return agg.seconds;
    return -1.0;
}

TEST(Query, UnfilteredAggregatesOverShards)
{
    QueryResult result;
    std::string error;
    ASSERT_TRUE(
        queryFiles({shardFixture()}, QueryOptions{}, result, &error))
        << error;
    EXPECT_EQ(result.files, 1u);
    EXPECT_EQ(result.scanned, 4u);
    EXPECT_EQ(result.matched, 4u);
    EXPECT_DOUBLE_EQ(result.busy_s, 14.0);
    EXPECT_DOUBLE_EQ(result.joules, 600.0);
    EXPECT_DOUBLE_EQ(aggSeconds(result.by_resource, "GPU"), 6.0);
    EXPECT_DOUBLE_EQ(aggSeconds(result.by_resource, "CPU"), 8.0);
    // Largest seconds first.
    EXPECT_EQ(result.by_resource.front().first, "CPU");
    EXPECT_DOUBLE_EQ(aggSeconds(result.by_phase, "adam"), 3.0);

    // Default rank: span duration, best first.
    ASSERT_EQ(result.top.size(), 4u);
    EXPECT_EQ(result.top[0].label, "d2h bucket");
    EXPECT_DOUBLE_EQ(result.top[0].value, 5.0);
    EXPECT_EQ(result.top[1].label, "bwd a");
    EXPECT_EQ(result.top[3].label, "fwd a");
}

TEST(Query, PhaseAndResourceFilters)
{
    QueryOptions by_phase;
    by_phase.phase = "adam";
    QueryResult result;
    ASSERT_TRUE(
        queryFiles({shardFixture()}, by_phase, result, nullptr));
    EXPECT_EQ(result.scanned, 4u);
    EXPECT_EQ(result.matched, 1u);
    EXPECT_DOUBLE_EQ(result.busy_s, 3.0);
    ASSERT_EQ(result.top.size(), 1u);
    EXPECT_EQ(result.top[0].resource, "CPU");

    QueryOptions by_resource;
    by_resource.resource = "GPU";
    result = QueryResult{};
    ASSERT_TRUE(
        queryFiles({shardFixture()}, by_resource, result, nullptr));
    EXPECT_EQ(result.matched, 2u);
    EXPECT_DOUBLE_EQ(result.busy_s, 6.0);
    EXPECT_DOUBLE_EQ(result.joules, 600.0);
}

TEST(Query, WindowClipsAggregatesButRanksFullSpans)
{
    QueryOptions options;
    options.begin_s = 2.0;
    options.end_s = 5.0;
    QueryResult result;
    ASSERT_TRUE(
        queryFiles({shardFixture()}, options, result, nullptr));
    // fwd [0,2) ends exactly at the window start: excluded.
    EXPECT_EQ(result.matched, 3u);
    // bwd clips to [2,5)=3, adam to [2,4)=2, d2h to [4,5)=1.
    EXPECT_DOUBLE_EQ(result.busy_s, 6.0);
    // Joules clip with the span: 100 W x 3 s of bwd.
    EXPECT_DOUBLE_EQ(result.joules, 300.0);
    // Ranking still uses the full span, not the clipped slice.
    ASSERT_FALSE(result.top.empty());
    EXPECT_EQ(result.top[0].label, "d2h bucket");
    EXPECT_DOUBLE_EQ(result.top[0].value, 5.0);
}

TEST(Query, RankBySlackAndJoules)
{
    QueryOptions options;
    options.rank = QueryOptions::Rank::Slack;
    QueryResult result;
    ASSERT_TRUE(
        queryFiles({shardFixture()}, options, result, nullptr));
    ASSERT_GE(result.top.size(), 2u);
    EXPECT_EQ(result.top[0].label, "d2h bucket");
    EXPECT_DOUBLE_EQ(result.top[0].value, 3.0);
    EXPECT_EQ(result.top[1].label, "bwd a");
    EXPECT_DOUBLE_EQ(result.top[1].value, 1.5);

    options.rank = QueryOptions::Rank::Joules;
    result = QueryResult{};
    ASSERT_TRUE(
        queryFiles({shardFixture()}, options, result, nullptr));
    EXPECT_EQ(result.top[0].label, "bwd a");
    EXPECT_DOUBLE_EQ(result.top[0].value, 400.0);
}

TEST(Query, TopNCapsRetainedSpans)
{
    QueryOptions options;
    options.top_n = 2;
    QueryResult result;
    ASSERT_TRUE(
        queryFiles({shardFixture()}, options, result, nullptr));
    EXPECT_EQ(result.matched, 4u);
    ASSERT_EQ(result.top.size(), 2u);
    EXPECT_EQ(result.top[0].label, "d2h bucket");
    EXPECT_EQ(result.top[1].label, "bwd a");
}

TEST(Query, ChromeTraceEventsResolveResourceNames)
{
    QueryResult result;
    std::string error;
    ASSERT_TRUE(
        queryFiles({traceFixture()}, QueryOptions{}, result, &error))
        << error;
    EXPECT_EQ(result.scanned, 2u);
    EXPECT_DOUBLE_EQ(result.busy_s, 6.0);
    EXPECT_DOUBLE_EQ(aggSeconds(result.by_resource, "GPU"), 6.0);
    EXPECT_DOUBLE_EQ(aggSeconds(result.by_phase, "bwd"), 4.0);
}

TEST(Query, MixedInputsAccumulateIntoOneResult)
{
    QueryResult result;
    ASSERT_TRUE(queryFiles({shardFixture(), traceFixture()},
                           QueryOptions{}, result, nullptr));
    EXPECT_EQ(result.files, 2u);
    EXPECT_EQ(result.scanned, 6u);
    // Shard GPU 6 s + trace GPU 6 s + shard CPU 8 s.
    EXPECT_DOUBLE_EQ(result.busy_s, 20.0);
    EXPECT_DOUBLE_EQ(aggSeconds(result.by_resource, "GPU"), 12.0);
}

TEST(Query, MissingFileAndSpanlessInputFail)
{
    QueryResult result;
    std::string error;
    EXPECT_FALSE(queryFiles({testing::TempDir() + "query_absent.jsonl"},
                            QueryOptions{}, result, &error));
    EXPECT_FALSE(error.empty());

    const std::string spanless =
        writeFile("query_spanless.json", R"({"hello":"world"})");
    error.clear();
    result = QueryResult{};
    EXPECT_FALSE(
        queryFiles({spanless}, QueryOptions{}, result, &error));
    EXPECT_NE(error.find("no spans"), std::string::npos) << error;
}

TEST(Query, TextAndJsonRenderings)
{
    QueryOptions options;
    options.phase = "bwd";
    QueryResult result;
    ASSERT_TRUE(
        queryFiles({shardFixture()}, options, result, nullptr));

    const std::string text = queryToText(result, options);
    EXPECT_NE(text.find("bwd"), std::string::npos);
    EXPECT_NE(text.find("GPU"), std::string::npos);

    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(queryToJson(result, options), doc));
    EXPECT_EQ(doc.at("kind").text(), "query_result");
    EXPECT_EQ(doc.at("filters").at("phase").text(), "bwd");
    EXPECT_TRUE(doc.at("filters").at("end_s").isNull());
    EXPECT_EQ(static_cast<std::uint64_t>(doc.at("matched").number()),
              result.matched);
    EXPECT_DOUBLE_EQ(doc.at("busy_s").number(), 4.0);
    ASSERT_FALSE(doc.at("top").items().empty());
    EXPECT_EQ(doc.at("top").items()[0].at("label").text(), "bwd a");
}

#ifdef SO_REPORT_BIN

/** Run the so-report binary, capturing stdout+stderr and exit code. */
int
runReport(const std::string &arguments, std::string &output)
{
    const std::string command =
        std::string(SO_REPORT_BIN) + " " + arguments + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return -1;
    char buffer[512];
    output.clear();
    while (std::fgets(buffer, sizeof buffer, pipe) != nullptr)
        output += buffer;
    const int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(Query, CliUnknownSubcommandExitsWithUsageStatus)
{
    std::string output;
    // 64 is EX_USAGE: distinct from the generic failure exit so CI
    // wrappers can tell a typo from a real report failure.
    EXPECT_EQ(runReport("frobnicate", output), 64);
    EXPECT_NE(output.find("unknown subcommand 'frobnicate'"),
              std::string::npos)
        << output;
    // The error names every valid subcommand.
    for (const char *name :
         {"diff", "check", "top", "html", "selftrace", "query"})
        EXPECT_NE(output.find(name), std::string::npos) << name;
}

TEST(Query, CliQueryAnswersOverShards)
{
    std::string output;
    ASSERT_EQ(runReport("query " + shardFixture() +
                            " --phase adam --json",
                        output), 0)
        << output;
    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(output, doc)) << output;
    EXPECT_EQ(doc.at("kind").text(), "query_result");
    EXPECT_EQ(static_cast<int>(doc.at("matched").number()), 1);

    // Bad rank key: usage failure, not a crash.
    EXPECT_NE(runReport("query " + shardFixture() + " --rank sideways",
                        output), 0);
}

#endif // SO_REPORT_BIN

} // namespace
} // namespace so::report
