/**
 * @file
 * Bench-guard contract tests: numeric leaves flatten to stable paths,
 * the suffix convention fixes each metric's better-direction, the
 * check passes on identical records and catches throughput drops /
 * latency growth / vanished metrics, tolerances (default and per-path)
 * are honored, the `metrics` subtree never gates, the verdict JSON
 * parses, and the JSONL history appends and reloads records.
 */
#include "report/history.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/json.h"

namespace so::report {
namespace {

JsonValue
parsed(const std::string &text)
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, doc, &error)) << error;
    return doc;
}

const char *kRecord = R"({
  "bench": "sim_kernel",
  "jobs": 4,
  "sizes": [
    {"tasks": 100, "reps": 3, "build_s_mean": 0.010,
     "build_tasks_per_s": 10000.0},
    {"tasks": 1000, "reps": 3, "build_s_mean": 0.100,
     "build_tasks_per_s": 10000.0}
  ],
  "metrics": {"histograms": {"wall_s": {"count": 3, "sum": 0.5}}}
})";

TEST(BenchGuard, FlattenProducesIndexedPaths)
{
    std::vector<std::pair<std::string, double>> flat;
    flattenNumericLeaves(parsed(kRecord), "", flat);
    auto value_of = [&](const std::string &path, double *out) {
        for (const auto &[p, v] : flat)
            if (p == path) {
                *out = v;
                return true;
            }
        return false;
    };
    double v = 0.0;
    EXPECT_TRUE(value_of("jobs", &v));
    EXPECT_DOUBLE_EQ(v, 4.0);
    EXPECT_TRUE(value_of("sizes[0].build_tasks_per_s", &v));
    EXPECT_DOUBLE_EQ(v, 10000.0);
    EXPECT_TRUE(value_of("sizes[1].build_s_mean", &v));
    EXPECT_DOUBLE_EQ(v, 0.1);
    // The metrics subtree is invisible to the guard.
    EXPECT_FALSE(value_of("metrics.histograms.wall_s.sum", &v));
}

TEST(BenchGuard, MetaSubtreeNeverGates)
{
    // The provenance block carries numbers (schema_version) that must
    // not be compared across runs, exactly like `metrics`.
    const char *record = R"({
      "bench": "sim_kernel",
      "iter_s": 0.5,
      "meta": {"schema_version": 1,
               "git_sha": "abc1234",
               "argv": ["bench", "--jobs", "4"]}
    })";
    std::vector<std::pair<std::string, double>> flat;
    flattenNumericLeaves(parsed(record), "", flat);
    for (const auto &[path, value] : flat) {
        (void)value;
        EXPECT_EQ(path.rfind("meta", 0), std::string::npos)
            << "meta leaked into the gate: " << path;
    }
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_EQ(flat[0].first, "iter_s");
}

TEST(BenchGuard, DirectionFollowsSuffixConvention)
{
    EXPECT_EQ(metricDirection("sizes[0].build_tasks_per_s"), 1);
    EXPECT_EQ(metricDirection("sizes[0].build_s_mean"), -1);
    EXPECT_EQ(metricDirection("cells[2].result.iter_time_s"), -1);
    EXPECT_EQ(metricDirection("latency_ms"), -1);
    EXPECT_EQ(metricDirection("sizes[0].tasks"), 0);
    EXPECT_EQ(metricDirection("jobs"), 0);
    EXPECT_EQ(metricDirection("share"), 0);
}

TEST(BenchGuard, EnergySuffixesGateLowerIsBetter)
{
    // Joules are a cost (docs/ENERGY.md): burning more regresses.
    EXPECT_EQ(metricDirection("cells[0].result.energy.total_j"), -1);
    EXPECT_EQ(metricDirection("systems[1].energy_j_per_iter"), -1);
    EXPECT_EQ(metricDirection("systems[1].energy_j_per_token"), -1);
    // Watts are a rate, not a cost: a faster schedule may draw more
    // average power while spending fewer joules, so `_w` never gates.
    EXPECT_EQ(metricDirection("cells[0].result.energy.avg_w"), 0);
    EXPECT_EQ(metricDirection("gpu_busy_w"), 0);
}

TEST(BenchGuard, EnergyGrowthRegressesAndWattsNeverGate)
{
    const JsonValue baseline =
        parsed(R"({"energy_j_per_iter": 100.0, "avg_w": 500.0})");
    // +100% joules: regresses; watts doubling alone never does.
    const CheckVerdict hot = checkAgainstBaseline(
        baseline,
        parsed(R"({"energy_j_per_iter": 200.0, "avg_w": 500.0})"));
    EXPECT_FALSE(hot.pass);
    ASSERT_EQ(hot.regressions().size(), 1u);
    EXPECT_EQ(hot.regressions()[0], "energy_j_per_iter");
    EXPECT_TRUE(checkAgainstBaseline(
                    baseline,
                    parsed(R"({"energy_j_per_iter": 100.0,
                               "avg_w": 1000.0})"))
                    .pass);
    // Spending fewer joules is never a regression.
    EXPECT_TRUE(checkAgainstBaseline(
                    baseline,
                    parsed(R"({"energy_j_per_iter": 10.0,
                               "avg_w": 500.0})"))
                    .pass);
    // A vanished energy metric regresses like any gated leaf.
    EXPECT_FALSE(
        checkAgainstBaseline(baseline, parsed(R"({"avg_w": 500.0})"))
            .pass);
}

TEST(BenchGuard, IdenticalRecordsPass)
{
    const JsonValue doc = parsed(kRecord);
    const CheckVerdict verdict = checkAgainstBaseline(doc, doc);
    EXPECT_TRUE(verdict.pass);
    EXPECT_TRUE(verdict.regressions().empty());
    EXPECT_EQ(verdict.gated, 4u); // 2 sizes x (per_s + s_mean).
    EXPECT_GT(verdict.checked, verdict.gated);
    EXPECT_NE(verdict.summary().find("pass"), std::string::npos);
}

TEST(BenchGuard, ThroughputDropRegresses)
{
    const JsonValue baseline = parsed(
        R"({"sizes": [{"build_tasks_per_s": 1000.0}]})");
    // -50% throughput: beyond the default 25% tolerance.
    const JsonValue slow =
        parsed(R"({"sizes": [{"build_tasks_per_s": 500.0}]})");
    CheckVerdict verdict = checkAgainstBaseline(baseline, slow);
    EXPECT_FALSE(verdict.pass);
    ASSERT_EQ(verdict.regressions().size(), 1u);
    EXPECT_EQ(verdict.regressions()[0], "sizes[0].build_tasks_per_s");
    EXPECT_NE(verdict.summary().find("REGRESSED"), std::string::npos);

    // -10% is within tolerance; +200% (an improvement) always passes.
    EXPECT_TRUE(checkAgainstBaseline(
                    baseline,
                    parsed(R"({"sizes": [{"build_tasks_per_s": 900.0}]})"))
                    .pass);
    EXPECT_TRUE(checkAgainstBaseline(
                    baseline,
                    parsed(R"({"sizes": [{"build_tasks_per_s": 3000.0}]})"))
                    .pass);
}

TEST(BenchGuard, LatencyGrowthRegresses)
{
    const JsonValue baseline = parsed(R"({"build_s_mean": 1.0})");
    EXPECT_FALSE(
        checkAgainstBaseline(baseline, parsed(R"({"build_s_mean": 2.0})"))
            .pass);
    EXPECT_TRUE(
        checkAgainstBaseline(baseline, parsed(R"({"build_s_mean": 1.1})"))
            .pass);
    // Getting faster is never a regression.
    EXPECT_TRUE(
        checkAgainstBaseline(baseline, parsed(R"({"build_s_mean": 0.1})"))
            .pass);
}

TEST(BenchGuard, MissingGatedMetricRegresses)
{
    const JsonValue baseline =
        parsed(R"({"a_per_s": 10.0, "count": 3})");
    const CheckVerdict verdict =
        checkAgainstBaseline(baseline, parsed(R"({"count": 3})"));
    EXPECT_FALSE(verdict.pass);
    ASSERT_EQ(verdict.metrics.size(), 1u);
    EXPECT_TRUE(verdict.metrics[0].missing);
    EXPECT_NE(verdict.summary().find("missing"), std::string::npos);

    // An ungated metric vanishing is not a regression.
    const JsonValue no_gates = parsed(R"({"count": 3, "extra": 1.0})");
    EXPECT_TRUE(
        checkAgainstBaseline(no_gates, parsed(R"({"count": 3})")).pass);
}

TEST(BenchGuard, ToleranceAndOverridesAreHonored)
{
    const JsonValue baseline = parsed(R"({"x_per_s": 100.0})");
    const JsonValue fresh = parsed(R"({"x_per_s": 60.0})"); // -40%.
    CheckOptions loose;
    loose.tolerance = 0.5;
    EXPECT_TRUE(checkAgainstBaseline(baseline, fresh, loose).pass);
    CheckOptions strict;
    strict.tolerance = 0.5;
    strict.overrides["x_per_s"] = 0.1;
    EXPECT_FALSE(checkAgainstBaseline(baseline, fresh, strict).pass);
}

TEST(BenchGuard, MetricsSubtreeNeverGates)
{
    const JsonValue baseline = parsed(
        R"({"metrics": {"histograms": {"wall_s": {"sum": 1.0}}}})");
    const JsonValue fresh = parsed(
        R"({"metrics": {"histograms": {"wall_s": {"sum": 99.0}}}})");
    const CheckVerdict verdict = checkAgainstBaseline(baseline, fresh);
    EXPECT_TRUE(verdict.pass);
    EXPECT_EQ(verdict.gated, 0u);
}

TEST(BenchGuard, VerdictJsonIsMachineReadable)
{
    const JsonValue baseline = parsed(R"({"a_per_s": 10.0})");
    const JsonValue fresh = parsed(R"({"a_per_s": 1.0})");
    const CheckVerdict verdict = checkAgainstBaseline(baseline, fresh);
    const JsonValue doc = parsed(verdict.json());
    EXPECT_FALSE(doc.at("pass").boolean());
    EXPECT_EQ(doc.at("regressions").items().size(), 1u);
    EXPECT_EQ(doc.at("regressions").items()[0].text(), "a_per_s");
    const JsonValue &metric = doc.at("metrics").items()[0];
    EXPECT_DOUBLE_EQ(metric.at("baseline").number(), 10.0);
    EXPECT_DOUBLE_EQ(metric.at("fresh").number(), 1.0);
    EXPECT_TRUE(metric.at("regressed").boolean());
}

TEST(BenchGuard, HistoryAppendsAndReloads)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "so_test_history.jsonl")
            .string();
    std::filesystem::remove(path);
    BenchHistory history(path);

    std::vector<JsonValue> records;
    std::string error;
    ASSERT_TRUE(history.load(records, &error)) << error;
    EXPECT_TRUE(records.empty()); // Missing file = empty history.

    ASSERT_TRUE(history.append(kRecord, &error)) << error;
    ASSERT_TRUE(history.append(R"({"bench": "second"})", &error))
        << error;
    EXPECT_FALSE(history.append("{not json", &error));

    records.clear();
    ASSERT_TRUE(history.load(records, &error)) << error;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].at("bench").text(), "sim_kernel");
    EXPECT_EQ(records[1].at("bench").text(), "second");
    std::filesystem::remove(path);
}

TEST(BenchGuard, CompactJsonRoundTrips)
{
    const JsonValue doc = parsed(kRecord);
    const std::string compact = compactJson(doc);
    EXPECT_EQ(compact.find('\n'), std::string::npos);
    const JsonValue again = parsed(compact);
    EXPECT_EQ(again.at("bench").text(), "sim_kernel");
    EXPECT_DOUBLE_EQ(
        again.at("sizes").items()[1].at("build_s_mean").number(), 0.1);
}

} // namespace
} // namespace so::report
