/**
 * @file
 * Schedule Explorer safety-contract tests (see report/html.h): hostile
 * task labels — quotes, UTF-8, a literal script-closing tag — cannot
 * escape the embedded data island or the markup, the rendered document
 * references no external resource, and the data island round-trips
 * through the JSON parser with every task id intact.
 */
#include "report/html.h"

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"
#include "sim/graph.h"
#include "sim/inspect.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"

namespace so::report {
namespace {

/** A bundle whose labels are actively hostile to HTML embedding. */
std::string
hostileBundleJson()
{
    sim::TaskGraph g;
    const sim::ResourceId gpu = g.addResource("GPU <&> \"quoted\"");
    const sim::TaskId a =
        g.addTask(gpu, 0.010, "fwd </script><script>alert(1)", {});
    const sim::TaskId b = g.addTask(gpu, 0.020, "bwd \"λ∑β\" 'mixed'", {a});
    g.addTask(gpu, 0.005, "cast <img src=x onerror=alert(2)>", {b});
    const sim::Schedule s = sim::Scheduler().run(g);
    const sim::ScheduleProfile prof = sim::profileSchedule(g, s);
    return sim::bundleToJson(
        sim::makeInspectionBundle(g, s, prof, "hostile <title>"));
}

HtmlReport
hostileReport()
{
    HtmlReport report;
    report.title = "report of <doom> & \"quotes\"";
    report.schedules.push_back(hostileBundleJson());
    return report;
}

/** The text between the data island's script tags. */
std::string
extractDataIsland(const std::string &html)
{
    const std::string open =
        "<script id=\"so-data\" type=\"application/json\">";
    const std::size_t begin = html.find(open);
    EXPECT_NE(begin, std::string::npos);
    if (begin == std::string::npos)
        return "";
    const std::size_t start = begin + open.size();
    const std::size_t end = html.find("</script>", start);
    EXPECT_NE(end, std::string::npos);
    return html.substr(start, end - start);
}

TEST(HtmlEscape, CoversTheFiveSignificantCharacters)
{
    EXPECT_EQ(htmlEscape("a<b>&\"'z"),
              "a&lt;b&gt;&amp;&quot;&#39;z");
    EXPECT_EQ(htmlEscape("plain text stays"), "plain text stays");
    // UTF-8 passes through untouched.
    EXPECT_EQ(htmlEscape("λ∑β"), "λ∑β");
}

TEST(EscapeJsonForScript, OnlyRewritesAngleOpens)
{
    EXPECT_EQ(escapeJsonForScript("{\"a\":\"</script>\"}"),
              "{\"a\":\"\\u003c/script>\"}");
    EXPECT_EQ(escapeJsonForScript("{\"n\":1}"), "{\"n\":1}");
}

TEST(HtmlReportRender, HostileLabelsCannotTerminateTheDataIsland)
{
    const std::string html = renderHtmlReport(hostileReport());

    // The raw injection sequence must not appear anywhere: inside the
    // island `<` is \u003c-escaped, and in markup it is &lt;-escaped.
    EXPECT_EQ(html.find("</script><script>alert"), std::string::npos);
    EXPECT_EQ(html.find("<img src=x"), std::string::npos);
    EXPECT_NE(html.find("\\u003c/script>"), std::string::npos);

    // The island itself contains no `<` at all, so nothing inside it
    // can open or close a tag.
    const std::string island = extractDataIsland(html);
    ASSERT_FALSE(island.empty());
    EXPECT_EQ(island.find('<'), std::string::npos);

    // The title is escaped into <title> and the header.
    EXPECT_EQ(html.find("<doom>"), std::string::npos);
    EXPECT_NE(html.find("&lt;doom&gt;"), std::string::npos);
}

TEST(HtmlReportRender, DataIslandRoundTripsWithEveryTask)
{
    const std::string bundle_text = hostileBundleJson();
    HtmlReport report;
    report.schedules.push_back(bundle_text);
    const std::string html = renderHtmlReport(report);

    JsonValue island;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(html), island,
                                 &error))
        << error;
    const JsonValue &schedules = island.at("schedules");
    ASSERT_EQ(schedules.items().size(), 1u);

    // The embedded bundle is byte-equivalent to the input after JSON
    // decoding: same tasks, same labels (UTF-8 and quotes intact).
    JsonValue original;
    ASSERT_TRUE(JsonValue::parse(bundle_text, original, &error));
    const auto &in_tasks = original.at("tasks").items();
    const auto &out_tasks = schedules.items()[0].at("tasks").items();
    ASSERT_EQ(out_tasks.size(), in_tasks.size());
    for (std::size_t i = 0; i < in_tasks.size(); ++i) {
        EXPECT_DOUBLE_EQ(out_tasks[i].at("id").number(),
                         in_tasks[i].at("id").number());
        EXPECT_EQ(out_tasks[i].at("label").text(),
                  in_tasks[i].at("label").text());
    }
    EXPECT_EQ(out_tasks[1].at("label").text(), "bwd \"λ∑β\" 'mixed'");
}

TEST(HtmlReportRender, DocumentIsSelfContained)
{
    // Exercise every section at once: schedule, profile, record,
    // history, verdict, diff, links — then require zero external
    // resource references in the whole document.
    HtmlReport report;
    report.title = "full page";
    report.schedules.push_back(hostileBundleJson());
    report.profiles.emplace_back(
        "p", R"({"makespan_s":1.0,"critical_path":{"length_s":1.0,)"
             R"("phases":[{"phase":"fwd","seconds":1.0}]},)"
             R"("resources":[]})");
    report.records.emplace_back("r", R"({"bench":"x","cells":[]})");
    report.history_jsonl = "{\"bench\":\"x\",\"iter_s\":1.0}\n"
                           "not json at all\n"
                           "{\"bench\":\"x\",\"iter_s\":0.9}\n";
    report.verdict_json =
        R"({"pass":true,"tolerance":0.25,"checked":1,"gated":1,)"
        R"("regressions":[],"metrics":[]})";
    report.diff_json =
        R"({"before":{"label":"a","makespan_s":1.0},)"
        R"("after":{"label":"b","makespan_s":0.9},)"
        R"("makespan_delta_s":-0.1,"phases":[],"unattributed_s":-0.1,)"
        R"("resources":[]})";
    report.links.emplace_back("cell 0", "cell0.html");

    const std::string html = renderHtmlReport(report);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("//cdn"), std::string::npos);

    // Malformed history lines were dropped, valid ones kept.
    JsonValue island;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(html), island,
                                 &error))
        << error;
    EXPECT_EQ(island.at("history").items().size(), 2u);
    EXPECT_TRUE(island.at("verdict").at("pass").boolean());
    EXPECT_DOUBLE_EQ(island.at("diff").at("makespan_delta_s").number(),
                     -0.1);

    // Relative links render escaped but intact.
    EXPECT_NE(html.find("<a href=\"cell0.html\">cell 0</a>"),
              std::string::npos);
}

TEST(HtmlReportRender, MalformedSectionDegradesToNull)
{
    HtmlReport report;
    report.schedules.push_back("{truncated");
    report.verdict_json = "also broken";
    report.records.emplace_back("ok", "{\"bench\":\"x\"}");
    const std::string html = renderHtmlReport(report);

    JsonValue island;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(html), island,
                                 &error))
        << error;
    ASSERT_EQ(island.at("schedules").items().size(), 1u);
    EXPECT_TRUE(island.at("schedules").items()[0].isNull());
    EXPECT_TRUE(island.at("verdict").isNull());
    EXPECT_EQ(island.at("records").items().size(), 1u);
}

TEST(HtmlReportRender, HostileTierNamesCannotEscapeTheRecordView)
{
    // Tier and channel names flow from result JSON into the drill
    // view's occupancy/traffic strips. A <script>-named tier must not
    // survive un-escaped anywhere in the rendered document.
    HtmlReport report;
    report.records.emplace_back(
        "hostile tiers",
        R"({"bench":"x","cells":[{"system":"s","result":{)"
        R"("feasible":true,)"
        R"("memory":{"tiers":[{)"
        R"("tier":"</script><script>alert(7)</script>",)"
        R"("bytes":1e9,"capacity":2e9,)"
        R"("description":"<b onmouseover=alert(8)>hot</b>"}]},)"
        R"("tier_traffic":[{"from":"<svg onload=alert(9)>",)"
        R"("to":"DDR","channel":"<img src=x onerror=alert(10)>",)"
        R"("bytes":5e8}]}}]})");
    const std::string html = renderHtmlReport(report);

    EXPECT_EQ(html.find("<script>alert(7)"), std::string::npos);
    EXPECT_EQ(html.find("<b onmouseover"), std::string::npos);
    EXPECT_EQ(html.find("<svg onload"), std::string::npos);
    EXPECT_EQ(html.find("<img src=x"), std::string::npos);

    // The island stays `<`-free yet round-trips the names intact.
    const std::string island = extractDataIsland(html);
    ASSERT_FALSE(island.empty());
    EXPECT_EQ(island.find('<'), std::string::npos);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(island, doc, &error)) << error;
    const JsonValue &tier = doc.at("records")
                                .items()[0]
                                .at("doc")
                                .at("cells")
                                .items()[0]
                                .at("result")
                                .at("memory")
                                .at("tiers")
                                .items()[0];
    EXPECT_EQ(tier.at("tier").text(),
              "</script><script>alert(7)</script>");
}

TEST(HtmlReportRender, MeteredBundleShipsThePowerTimelineOffline)
{
    // An energy-attributed bundle carries the watt fields the power
    // timeline samples, and the renderer for it ships in the page —
    // with zero external references, like every other section.
    sim::TaskGraph g;
    const sim::ResourceId gpu = g.addResource("GPU");
    const sim::ResourceId d2h = g.addResource("D2H");
    const sim::TaskId a = g.addTask(gpu, 0.010, "fwd", {});
    const sim::TaskId b = g.addTask(d2h, 0.005, "d2h grads", {a});
    g.addTask(gpu, 0.020, "bwd", {b});
    const sim::Schedule s = sim::Scheduler().run(g);
    const sim::ScheduleProfile prof = sim::profileSchedule(g, s);
    sim::EnergyInputs inputs;
    inputs.resources = {{700.0, 75.0, 0.0}, {15.0, 5.0, 1e-11}};
    inputs.task_bytes = {0.0, 1e9, 0.0};
    inputs.background.emplace_back("DDR refresh", 20.0);
    const sim::EnergyProfile energy =
        sim::attributeEnergy(g, s, prof, inputs);
    ASSERT_TRUE(energy.valid);

    HtmlReport report;
    report.title = "power";
    report.schedules.push_back(sim::bundleToJson(
        sim::makeInspectionBundle(g, s, prof, "metered", &energy)));
    const std::string html = renderHtmlReport(report);

    // The renderer, its styling, and its caption are all inline.
    EXPECT_NE(html.find("so-power"), std::string::npos);
    EXPECT_NE(html.find("power draw over time"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("//cdn"), std::string::npos);

    // The island's bundle carries the fields the timeline reads.
    JsonValue island;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(html), island,
                                 &error))
        << error;
    const JsonValue &bundle = island.at("schedules").items()[0];
    EXPECT_GT(bundle.at("total_j").number(), 0.0);
    EXPECT_GT(bundle.at("avg_w").number(), 0.0);
    const JsonValue &res0 = bundle.at("resources").items()[0];
    EXPECT_DOUBLE_EQ(res0.at("busy_w").number(), 700.0);
    EXPECT_DOUBLE_EQ(res0.at("idle_w").number(), 75.0);
    EXPECT_DOUBLE_EQ(
        bundle.at("tasks").items()[0].at("power_w").number(), 700.0);
}

TEST(HtmlReportRender, EngineTabRendersOfflineAndXssPinned)
{
    // The Engine tab embeds the host self-profile (so::trace
    // selfProfileJson) like every other section: validated into the
    // island, rendered by inline JS, no external references — and a
    // hostile document cannot escape.
    HtmlReport report;
    report.title = "engine";
    report.self_profile_json =
        R"({"schema_version":2,"kind":"self_profile","pid":1,)"
        R"("wall_s":2.0,"spans":10,"dropped":0,)"
        R"("categories":{"pool":{"count":8,"total_s":1.5},)"
        R"("sweep":{"count":2,"total_s":0.4}},)"
        R"("workers":[{"tid":1,"jobs":4,"busy_s":0.8,"busy_frac":0.4},)"
        R"({"tid":2,"jobs":4,"busy_s":0.7,"busy_frac":0.35}],)"
        R"("queue_wait":{"count":8,"mean_s":0.001,)"
        R"("p50_s":0.001,"p95_s":0.002},)"
        R"("cache":{"hits":3,"misses":7,)"
        R"("hit_mean_s":1e-6,"miss_mean_s":0.05}})";
    const std::string html = renderHtmlReport(report);

    // The renderer ships in the page and stays self-contained.
    EXPECT_NE(html.find("renderEngine"), std::string::npos);
    EXPECT_NE(html.find("'Engine'"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);

    // The island carries the document under the self_profile key.
    JsonValue island;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(html), island,
                                 &error))
        << error;
    const JsonValue &profile = island.at("self_profile");
    EXPECT_EQ(profile.at("kind").text(), "self_profile");
    EXPECT_DOUBLE_EQ(
        profile.at("categories").at("pool").at("total_s").number(),
        1.5);
    EXPECT_EQ(profile.at("workers").items().size(), 2u);
}

TEST(HtmlReportRender, HostileSelfProfileCannotEscapeTheIsland)
{
    // A category key carrying a script-closing tag must be <-
    // escaped inside the island, and a malformed document degrades to
    // null instead of breaking the page.
    HtmlReport hostile;
    hostile.self_profile_json =
        R"({"kind":"self_profile","wall_s":1.0,"spans":1,"dropped":0,)"
        R"("categories":{"</script><script>alert(11)</script>":)"
        R"({"count":1,"total_s":1.0}},"workers":[],)"
        R"("queue_wait":{"count":0,"mean_s":0,"p50_s":0,"p95_s":0},)"
        R"("cache":{"hits":0,"misses":0,"hit_mean_s":0,)"
        R"("miss_mean_s":0}})";
    const std::string html = renderHtmlReport(hostile);
    EXPECT_EQ(html.find("<script>alert(11)"), std::string::npos);
    const std::string island = extractDataIsland(html);
    ASSERT_FALSE(island.empty());
    EXPECT_EQ(island.find('<'), std::string::npos);

    HtmlReport broken;
    broken.self_profile_json = "{not json";
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(
        extractDataIsland(renderHtmlReport(broken)), parsed, &error))
        << error;
    EXPECT_TRUE(parsed.at("self_profile").isNull());
}

TEST(HtmlReportRender, OversizeBundleBecomesTruncationStub)
{
    // A bundle over the inline cap must not reach the island at all —
    // not even parsed — so a hostile label inside it cannot appear
    // anywhere in the page. The stub it becomes drives the visible
    // truncation banner and the shard drill-down loader.
    const std::string bundle_text = hostileBundleJson();
    HtmlReport report;
    report.title = "capped";
    report.schedules.push_back(bundle_text);
    report.max_inline_bundle_bytes = 64; // far below the bundle size

    const std::string html = renderHtmlReport(report);
    EXPECT_EQ(html.find("hostile"), std::string::npos);
    EXPECT_EQ(html.find("alert(1)"), std::string::npos);

    JsonValue island;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(html), island,
                                 &error))
        << error;
    ASSERT_EQ(island.at("schedules").items().size(), 1u);
    const JsonValue &stub = island.at("schedules").items()[0];
    EXPECT_EQ(stub.at("kind").text(), "bundle_truncated");
    EXPECT_DOUBLE_EQ(stub.at("bytes").number(),
                     static_cast<double>(bundle_text.size()));
    EXPECT_DOUBLE_EQ(stub.at("limit").number(), 64.0);

    // The banner renderer and shard loader ship in the page, which
    // stays fully offline.
    EXPECT_NE(html.find("bundle_truncated"), std::string::npos);
    EXPECT_NE(html.find("shardLoader"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);

    // Cap 0 disables the ceiling: the same bundle embeds whole.
    report.max_inline_bundle_bytes = 0;
    const std::string uncapped = renderHtmlReport(report);
    JsonValue full_island;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(uncapped),
                                 full_island, &error))
        << error;
    EXPECT_EQ(full_island.at("schedules")
                  .items()[0]
                  .at("kind")
                  .text(),
              "inspection_bundle");
}

TEST(HtmlReportRender, SummaryProfileShipsLodRenderers)
{
    // A Summary-detail profile document renders through the banner +
    // histogram-strip path; those renderers must ship inline.
    sim::ProfileOptions options;
    options.detail = sim::ProfileOptions::Detail::Summary;
    sim::TaskGraph g;
    const sim::ResourceId gpu = g.addResource("GPU");
    const sim::TaskId a = g.addTask(gpu, 0.010, "fwd", {});
    g.addTask(gpu, 0.020, "bwd", {a});
    const sim::Schedule s = sim::Scheduler().run(g);
    const sim::ScheduleProfile prof = sim::profileSchedule(g, s, options);

    HtmlReport report;
    report.profiles.emplace_back("summary cell",
                                 sim::profileToJson(prof, g, s));
    const std::string html = renderHtmlReport(report);

    EXPECT_NE(html.find("binStrips"), std::string::npos);
    EXPECT_NE(html.find("so-banner"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);

    JsonValue island;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(extractDataIsland(html), island,
                                 &error))
        << error;
    const JsonValue &doc =
        island.at("profiles").items()[0].at("doc");
    EXPECT_EQ(doc.at("detail").text(), "summary");
    EXPECT_FALSE(doc.at("bins").at("resources").items().empty());
}

TEST(HtmlReportRender, EmptyReportStillRenders)
{
    const std::string html = renderHtmlReport(HtmlReport{});
    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("Schedule Explorer"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
}

} // namespace
} // namespace so::report
