/**
 * @file
 * bench_sim_kernel CLI contract (satellite of the observability work):
 * the --max-tasks skip notice goes to stderr so stdout stays a clean
 * scrapeable table, --json writes a record that parses cleanly even
 * when sizes were skipped, --trace-dir streams the full artifact set
 * (Chrome trace, profile document, bundle shards) at the requested
 * level of detail, and a bad --detail value is a usage error.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/json.h"

#ifdef SO_SIM_KERNEL_BIN

namespace so {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Run the bench binary, routing stdout/stderr to separate files. */
int
runBench(const std::string &arguments, const fs::path &out_path,
         const fs::path &err_path)
{
    const std::string command = std::string(SO_SIM_KERNEL_BIN) + " " +
                                arguments + " >" + out_path.string() +
                                " 2>" + err_path.string();
    const int status = std::system(command.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(BenchSimKernelCli, SkipNoticeStaysOffStdoutAndJsonParses)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / "bench_cli_skip";
    fs::create_directories(dir);
    const fs::path json = dir / "out.json";

    ASSERT_EQ(runBench("--max-tasks 2000 --json " + json.string(),
                       dir / "stdout.txt", dir / "stderr.txt"),
              0);

    // Every capped size is announced once, on stderr only.
    const std::string err = slurp(dir / "stderr.txt");
    EXPECT_NE(err.find("(skipped: --max-tasks 2000)"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("10000000"), std::string::npos);
    const std::string out = slurp(dir / "stdout.txt");
    EXPECT_EQ(out.find("skipped"), std::string::npos) << out;

    // The record parses cleanly and carries only the measured sizes.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(slurp(json), doc, &error)) << error;
    EXPECT_EQ(doc.at("bench").text(), "sim_kernel");
    const auto &sizes = doc.at("sizes").items();
    ASSERT_EQ(sizes.size(), 1u);
    EXPECT_LE(sizes[0].at("tasks").number(), 2000.0);
    EXPECT_GT(sizes[0].at("total_tasks_per_s").number(), 0.0);

    fs::remove_all(dir);
}

TEST(BenchSimKernelCli, TraceDirStreamsTheArtifactTriple)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / "bench_cli_trace";
    fs::create_directories(dir);
    const fs::path traces = dir / "traces";

    ASSERT_EQ(runBench("--max-tasks 1000 --detail summary --trace-dir " +
                           traces.string(),
                       dir / "stdout.txt", dir / "stderr.txt"),
              0);
    EXPECT_NE(slurp(dir / "stdout.txt").find("summary detail"),
              std::string::npos);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(
        slurp(traces / "sim_kernel_1000.profile.json"), doc, &error))
        << error;
    EXPECT_EQ(doc.at("detail").text(), "summary");

    ASSERT_TRUE(JsonValue::parse(
        slurp(traces / "sim_kernel_1000.trace.json"), doc, &error))
        << error;
    EXPECT_FALSE(doc.at("traceEvents").items().empty());

    std::ifstream shards(traces / "sim_kernel_1000.bundle.jsonl");
    std::string header;
    ASSERT_TRUE(static_cast<bool>(std::getline(shards, header)));
    ASSERT_TRUE(JsonValue::parse(header, doc, &error)) << error;
    EXPECT_EQ(doc.at("kind").text(), "bundle_shard_header");

    fs::remove_all(dir);
}

TEST(BenchSimKernelCli, BadDetailIsAUsageError)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / "bench_cli_usage";
    fs::create_directories(dir);
    EXPECT_EQ(runBench("--detail sideways", dir / "stdout.txt",
                       dir / "stderr.txt"),
              2);
    EXPECT_NE(slurp(dir / "stderr.txt").find("unknown --detail"),
              std::string::npos);
    fs::remove_all(dir);
}

} // namespace
} // namespace so

#endif // SO_SIM_KERNEL_BIN
