/**
 * @file
 * ProfileDiff contract tests: identical profiles diff to zero,
 * disjoint phase sets are flagged appeared/vanished, empty schedules
 * are handled, the signed phase contributions (plus the explicit
 * residual) sum to the makespan delta — exactly by construction, and
 * within 1e-9 even without the residual for profiler-produced inputs,
 * including randomized graphs and real systems diffed through their
 * result-JSON documents.
 */
#include "report/diff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "hw/presets.h"
#include "model/config.h"
#include "runtime/registry.h"
#include "runtime/result_json.h"
#include "runtime/sweep.h"
#include "sim/graph.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"

namespace so::report {
namespace {

/** Sum invariant: phase deltas + residual == makespan delta. */
void
expectDiffInvariants(const ProfileDiff &diff)
{
    double sum = 0.0;
    for (const PhaseDelta &phase : diff.phases)
        sum += phase.delta;
    const double scale =
        std::max({std::abs(diff.makespan_before),
                  std::abs(diff.makespan_after), 1.0});
    // Exact including the residual...
    EXPECT_NEAR(sum + diff.unattributed, diff.makespan_delta,
                1e-12 * scale);
    // ...and within 1e-9 without it for profiler-produced inputs,
    // because each side's phases sum to its makespan.
    EXPECT_NEAR(sum, diff.makespan_delta, 1e-9 * scale);
    EXPECT_NEAR(diff.makespan_delta,
                diff.makespan_after - diff.makespan_before,
                1e-12 * scale);
    // Ranked largest |delta| first.
    for (std::size_t i = 1; i < diff.phases.size(); ++i)
        EXPECT_GE(std::abs(diff.phases[i - 1].delta),
                  std::abs(diff.phases[i].delta) - 1e-15);
}

/** A small offload-shaped pipeline with tunable phase durations. */
sim::TaskGraph
pipelineGraph(double fwd, double bwd, double adam, std::uint32_t layers)
{
    sim::TaskGraph g;
    const sim::ResourceId gpu = g.addResource("GPU");
    const sim::ResourceId cpu = g.addResource("CPU");
    const sim::ResourceId d2h = g.addResource("D2H");
    std::vector<sim::TaskId> chain;
    for (std::uint32_t l = 0; l < layers; ++l) {
        std::vector<sim::TaskId> deps;
        if (!chain.empty())
            deps.push_back(chain.back());
        chain.push_back(g.addTask(gpu, fwd,
                                  "fwd L" + std::to_string(l), deps));
    }
    for (std::uint32_t l = 0; l < layers; ++l) {
        chain.push_back(g.addTask(gpu, bwd,
                                  "bwd L" + std::to_string(l),
                                  {chain.back()}));
        const sim::TaskId grad = g.addTask(
            d2h, fwd / 2.0, "d2h bucket " + std::to_string(l),
            {chain.back()});
        g.addTask(cpu, adam, "adam bucket " + std::to_string(l),
                  {grad});
    }
    return g;
}

ProfileView
viewOf(const sim::TaskGraph &g, const std::string &label)
{
    const sim::Schedule s = sim::Scheduler().run(g);
    return viewFromProfile(sim::profileSchedule(g, s), label);
}

TEST(ProfileDiff, IdenticalProfilesDiffToZero)
{
    const sim::TaskGraph g = pipelineGraph(0.01, 0.02, 0.015, 4);
    const ProfileView view = viewOf(g, "same");
    const ProfileDiff diff = diffProfiles(view, view);
    EXPECT_DOUBLE_EQ(diff.makespan_delta, 0.0);
    EXPECT_DOUBLE_EQ(diff.unattributed, 0.0);
    ASSERT_FALSE(diff.phases.empty());
    for (const PhaseDelta &phase : diff.phases) {
        EXPECT_DOUBLE_EQ(phase.delta, 0.0);
        EXPECT_FALSE(phase.appeared);
        EXPECT_FALSE(phase.vanished);
    }
    for (const ResourceDelta &res : diff.resources) {
        EXPECT_DOUBLE_EQ(res.busy, 0.0);
        EXPECT_DOUBLE_EQ(res.dependency, 0.0);
        EXPECT_DOUBLE_EQ(res.contention, 0.0);
        EXPECT_DOUBLE_EQ(res.tail, 0.0);
    }
    expectDiffInvariants(diff);
}

TEST(ProfileDiff, DisjointPhaseSetsAppearAndVanish)
{
    ProfileView before, after;
    before.label = "before";
    before.makespan = 3.0;
    before.phases = {{"alpha", 1.0}, {"beta", 2.0}};
    after.label = "after";
    after.makespan = 5.0;
    after.phases = {{"gamma", 5.0}};

    const ProfileDiff diff = diffProfiles(before, after);
    EXPECT_DOUBLE_EQ(diff.makespan_delta, 2.0);
    ASSERT_EQ(diff.phases.size(), 3u);
    // Largest |delta| first: gamma +5, beta -2, alpha -1.
    EXPECT_EQ(diff.phases[0].phase, "gamma");
    EXPECT_TRUE(diff.phases[0].appeared);
    EXPECT_DOUBLE_EQ(diff.phases[0].delta, 5.0);
    EXPECT_EQ(diff.phases[1].phase, "beta");
    EXPECT_TRUE(diff.phases[1].vanished);
    EXPECT_DOUBLE_EQ(diff.phases[1].delta, -2.0);
    EXPECT_EQ(diff.phases[2].phase, "alpha");
    EXPECT_TRUE(diff.phases[2].vanished);
    EXPECT_DOUBLE_EQ(diff.phases[2].delta, -1.0);
    EXPECT_DOUBLE_EQ(diff.unattributed, 0.0);
    expectDiffInvariants(diff);
}

TEST(ProfileDiff, EmptySchedulesDiffToZero)
{
    sim::TaskGraph g;
    g.addResource("GPU");
    const ProfileView empty = viewOf(g, "empty");
    EXPECT_DOUBLE_EQ(empty.makespan, 0.0);
    EXPECT_TRUE(empty.phases.empty());

    const ProfileDiff zero = diffProfiles(empty, empty);
    EXPECT_DOUBLE_EQ(zero.makespan_delta, 0.0);
    EXPECT_TRUE(zero.phases.empty());
    EXPECT_DOUBLE_EQ(zero.unattributed, 0.0);

    // Empty vs non-empty: everything appears, residual stays 0.
    const sim::TaskGraph g2 = pipelineGraph(0.01, 0.02, 0.015, 3);
    const ProfileDiff grow = diffProfiles(empty, viewOf(g2, "real"));
    EXPECT_GT(grow.makespan_delta, 0.0);
    for (const PhaseDelta &phase : grow.phases)
        EXPECT_TRUE(phase.appeared);
    expectDiffInvariants(grow);
}

TEST(ProfileDiff, UnattributedResidualMakesSumExact)
{
    // Hand-built views that do NOT satisfy the profiler invariant:
    // the residual must absorb the gap exactly.
    ProfileView before, after;
    before.makespan = 10.0;
    before.phases = {{"a", 4.0}}; // 6 s unexplained.
    after.makespan = 12.0;
    after.phases = {{"a", 5.0}};
    const ProfileDiff diff = diffProfiles(before, after);
    EXPECT_DOUBLE_EQ(diff.makespan_delta, 2.0);
    EXPECT_DOUBLE_EQ(diff.phases[0].delta, 1.0);
    EXPECT_DOUBLE_EQ(diff.unattributed, 1.0);
}

TEST(ProfileDiff, SumInvariantUnderRandomizedGraphs)
{
    // Random DAGs over a small phase vocabulary, diffed pairwise: the
    // phase contributions must always sum to the makespan delta.
    Rng rng(1234);
    const char *kPhases[] = {"fwd", "bwd", "adam", "d2h", "h2d",
                             "cast"};
    auto random_view = [&](int tag) {
        sim::TaskGraph g;
        const sim::ResourceId gpu = g.addResource("GPU");
        const sim::ResourceId cpu = g.addResource("CPU", 2);
        const sim::ResourceId link = g.addResource("D2H");
        const sim::ResourceId resources[] = {gpu, cpu, link};
        const std::uint32_t n =
            8 + static_cast<std::uint32_t>(rng.next() % 40);
        std::vector<sim::TaskId> ids;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::vector<sim::TaskId> deps;
            for (const sim::TaskId id : ids)
                if (rng.uniform() < 0.15)
                    deps.push_back(id);
            const char *phase = kPhases[rng.next() % 6];
            ids.push_back(g.addTask(
                resources[rng.next() % 3],
                0.001 + 0.02 * rng.uniform(),
                std::string(phase) + " t" + std::to_string(i), deps));
        }
        return viewOf(g, "random " + std::to_string(tag));
    };
    for (int round = 0; round < 25; ++round) {
        const ProfileView a = random_view(2 * round);
        const ProfileView b = random_view(2 * round + 1);
        SCOPED_TRACE("round " + std::to_string(round));
        expectDiffInvariants(diffProfiles(a, b));
        expectDiffInvariants(diffProfiles(b, a));
    }
}

TEST(ProfileDiff, ResultJsonOfTwoSystemsDiffsWithinTolerance)
{
    // The acceptance path: evaluate two real systems on one cell with
    // profiling on, export each result as JSON, re-load the documents
    // through viewFromJson, and pin the sum invariant at 1e-9.
    runtime::TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(1);
    setup.model = model::modelPreset("5B");
    setup.global_batch = 8;
    setup.seq = 1024;
    setup.capture_profile = true;

    const runtime::SystemPtr before_sys =
        runtime::makeBaseline("zero-offload");
    const runtime::SystemPtr after_sys =
        runtime::makeBaseline("zero-infinity");
    const runtime::IterationResult before_res = before_sys->run(setup);
    const runtime::IterationResult after_res = after_sys->run(setup);
    ASSERT_TRUE(before_res.feasible);
    ASSERT_TRUE(after_res.feasible);
    ASSERT_TRUE(before_res.profile.valid);
    ASSERT_TRUE(after_res.profile.valid);

    JsonValue before_doc, after_doc;
    ASSERT_TRUE(
        JsonValue::parse(runtime::toJson(before_res), before_doc));
    ASSERT_TRUE(
        JsonValue::parse(runtime::toJson(after_res), after_doc));

    ProfileView before, after;
    std::string error;
    ASSERT_TRUE(viewFromJson(before_doc, before, &error)) << error;
    ASSERT_TRUE(viewFromJson(after_doc, after, &error)) << error;
    EXPECT_GT(before.makespan, 0.0);
    EXPECT_FALSE(before.phases.empty());
    EXPECT_FALSE(before.resources.empty());

    const ProfileDiff diff = diffProfiles(before, after);
    expectDiffInvariants(diff);
    // JSON serialization rounds doubles, so the round-tripped makespan
    // matches to the acceptance tolerance rather than bit-exactly.
    EXPECT_NEAR(diff.makespan_before, before_res.profile.makespan,
                1e-9);
    EXPECT_NEAR(diff.makespan_after, after_res.profile.makespan,
                1e-9);
}

TEST(ProfileDiff, EnergyDeltasAttributePhaseByPhase)
{
    // The energy acceptance path: two real systems on one cell with
    // profiling on, diffed through viewFromIteration. Phase joule
    // deltas plus the explicit residual must rebuild the total joule
    // delta exactly, and the residual must be precisely the idle +
    // background joule change (phases attribute only active joules).
    runtime::TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(1);
    setup.model = model::modelPreset("5B");
    setup.global_batch = 8;
    setup.seq = 1024;
    setup.capture_profile = true;

    const runtime::SystemPtr before_sys =
        runtime::makeBaseline("zero-offload");
    const runtime::SystemPtr after_sys =
        runtime::makeBaseline("zero-infinity");
    const runtime::IterationResult before_res = before_sys->run(setup);
    const runtime::IterationResult after_res = after_sys->run(setup);
    ASSERT_TRUE(before_res.feasible && before_res.energy.valid);
    ASSERT_TRUE(after_res.feasible && after_res.energy.valid);

    const ProfileView before =
        viewFromIteration(before_res, before_sys->name());
    const ProfileView after =
        viewFromIteration(after_res, after_sys->name());
    ASSERT_TRUE(before.has_energy);
    ASSERT_TRUE(after.has_energy);
    EXPECT_FALSE(before.energy_phases.empty());

    const ProfileDiff diff = diffProfiles(before, after);
    expectDiffInvariants(diff);
    ASSERT_TRUE(diff.has_energy);
    const double scale = std::max(
        {std::abs(diff.energy_before_j), std::abs(diff.energy_after_j),
         1.0});
    EXPECT_NEAR(diff.energy_delta_j,
                after_res.energy.total_j - before_res.energy.total_j,
                1e-12 * scale);
    double attributed = 0.0;
    for (const PhaseDelta &phase : diff.energy_phases)
        attributed += phase.delta;
    EXPECT_NEAR(attributed + diff.energy_unattributed_j,
                diff.energy_delta_j, 1e-12 * scale);
    // Residual == idle + background joule change, pinned at 1e-9.
    const double idle_bg_before =
        before_res.energy.idle_j + before_res.energy.background_j;
    const double idle_bg_after =
        after_res.energy.idle_j + after_res.energy.background_j;
    EXPECT_NEAR(diff.energy_unattributed_j,
                idle_bg_after - idle_bg_before, 1e-9 * scale);
    // Ranked largest |joule delta| first.
    for (std::size_t i = 1; i < diff.energy_phases.size(); ++i)
        EXPECT_GE(std::abs(diff.energy_phases[i - 1].delta),
                  std::abs(diff.energy_phases[i].delta) - 1e-15);

    // Both renderers surface the attribution.
    const std::string text = diffToText(diff);
    EXPECT_NE(text.find("energy"), std::string::npos);
    EXPECT_NE(text.find("(idle+background)"), std::string::npos);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(diffToJson(diff), doc, &error))
        << error;
    const JsonValue *energy = doc.find("energy");
    ASSERT_NE(energy, nullptr);
    EXPECT_NEAR(energy->find("delta_j")->number(), diff.energy_delta_j,
                1e-9 * scale);
    EXPECT_NE(energy->find("phases"), nullptr);
    EXPECT_NE(energy->find("unattributed_j"), nullptr);

    // The same energy attribution survives the JSON round trip.
    JsonValue before_doc, after_doc;
    ASSERT_TRUE(
        JsonValue::parse(runtime::toJson(before_res), before_doc));
    ASSERT_TRUE(
        JsonValue::parse(runtime::toJson(after_res), after_doc));
    ProfileView before_rt, after_rt;
    ASSERT_TRUE(viewFromJson(before_doc, before_rt, &error)) << error;
    ASSERT_TRUE(viewFromJson(after_doc, after_rt, &error)) << error;
    ASSERT_TRUE(before_rt.has_energy);
    EXPECT_NEAR(before_rt.energy_j, before_res.energy.total_j,
                1e-9 * scale);
    EXPECT_EQ(before_rt.energy_phases.size(),
              before.energy_phases.size());
}

TEST(ProfileDiff, EnergyFreeViewsDiffWithoutEnergy)
{
    // viewFromProfile carries no metering: the diff must stay usable
    // and simply omit the energy block (old documents behave the same).
    const sim::TaskGraph g = pipelineGraph(0.01, 0.02, 0.015, 4);
    const ProfileView a = viewOf(g, "a");
    const ProfileView b = viewOf(g, "b");
    EXPECT_FALSE(a.has_energy);
    const ProfileDiff diff = diffProfiles(a, b);
    EXPECT_FALSE(diff.has_energy);
    EXPECT_EQ(diffToText(diff).find("(idle+background)"),
              std::string::npos);
    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(diffToJson(diff), doc));
    EXPECT_EQ(doc.find("energy"), nullptr);
}

TEST(ProfileDiff, DiffSweepCellsMatchesDirectDiff)
{
    runtime::TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(1);
    setup.model = model::modelPreset("5B");
    setup.global_batch = 8;
    setup.seq = 1024;
    setup.capture_profile = true;

    const runtime::SystemPtr a = runtime::makeBaseline("ddp");
    const runtime::SystemPtr b = runtime::makeBaseline("zero-offload");
    runtime::SweepEngine engine;
    const std::size_t ia = engine.add(*a, setup);
    const std::size_t ib = engine.add(*b, setup);
    engine.run();

    ProfileDiff diff;
    std::string error;
    ASSERT_TRUE(diffSweepCells(engine, ia, ib, diff, &error)) << error;
    EXPECT_EQ(diff.before_label, a->name());
    EXPECT_EQ(diff.after_label, b->name());
    expectDiffInvariants(diff);

    // Out-of-range and profile-free cells are diagnosed, not crashed.
    ProfileDiff bad;
    EXPECT_FALSE(diffSweepCells(engine, 99, ib, bad, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(ProfileDiff, JsonDocumentsRoundTrip)
{
    const sim::TaskGraph g = pipelineGraph(0.01, 0.02, 0.015, 4);
    const sim::Schedule s = sim::Scheduler().run(g);
    const sim::ScheduleProfile prof = sim::profileSchedule(g, s);

    // Standalone profile document (sim::profileToJson shape).
    JsonValue profile_doc;
    ASSERT_TRUE(
        JsonValue::parse(sim::profileToJson(prof, g, s), profile_doc));
    ProfileView from_doc;
    std::string error;
    ASSERT_TRUE(viewFromJson(profile_doc, from_doc, &error)) << error;

    const ProfileView direct = viewFromProfile(prof, "direct");
    EXPECT_NEAR(from_doc.makespan, direct.makespan, 1e-12);
    ASSERT_EQ(from_doc.phases.size(), direct.phases.size());
    for (std::size_t i = 0; i < direct.phases.size(); ++i) {
        EXPECT_EQ(from_doc.phases[i].phase, direct.phases[i].phase);
        EXPECT_NEAR(from_doc.phases[i].seconds,
                    direct.phases[i].seconds, 1e-12);
    }
    ASSERT_EQ(from_doc.resources.size(), direct.resources.size());

    // The diff's own JSON parses and repeats the invariant fields.
    const ProfileDiff diff = diffProfiles(direct, from_doc);
    JsonValue diff_doc;
    ASSERT_TRUE(JsonValue::parse(diffToJson(diff), diff_doc));
    EXPECT_NEAR(diff_doc.at("makespan_delta_s").number(),
                diff.makespan_delta, 1e-12);
    EXPECT_EQ(diff_doc.at("phases").items().size(),
              diff.phases.size());

    // And the human rendering mentions every phase.
    const std::string text = diffToText(diff);
    for (const PhaseDelta &phase : diff.phases)
        EXPECT_NE(text.find(phase.phase), std::string::npos);
    EXPECT_NE(text.find("unattributed"), std::string::npos);
}

TEST(ProfileDiff, ViewFromJsonRejectsUnusableDocuments)
{
    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse("{\"unrelated\": 1}", doc));
    ProfileView view;
    std::string error;
    EXPECT_FALSE(viewFromJson(doc, view, &error));
    EXPECT_FALSE(error.empty());

    // Feasible result without a profile section names the fix.
    ASSERT_TRUE(JsonValue::parse(
        "{\"feasible\": true, \"iter_time_s\": 1.0}", doc));
    EXPECT_FALSE(viewFromJson(doc, view, &error));
    EXPECT_NE(error.find("profile"), std::string::npos);
}

TEST(ProfileDiff, TopContributorsTruncates)
{
    ProfileView before, after;
    before.makespan = 6.0;
    before.phases = {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}};
    after.makespan = 3.0;
    after.phases = {{"a", 0.5}, {"b", 1.5}, {"c", 1.0}};
    const ProfileDiff diff = diffProfiles(before, after);
    const std::vector<PhaseDelta> top = topContributors(diff, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].phase, "c"); // -2.0, the largest magnitude.
}

} // namespace
} // namespace so::report
