/**
 * @file
 * Cross-system property sweep: invariants that must hold for EVERY
 * training system on EVERY configuration, feasible or not. Catches
 * accounting bugs (utilization > 1, memory reports that don't fit,
 * batch mismatches) anywhere in the registry.
 */
#include <gtest/gtest.h>

#include "core/superoffload.h"
#include "core/superoffload_ulysses.h"
#include "runtime/registry.h"

namespace so {
namespace {

enum class Platform { Gh200, DgxA100, Gb200 };

struct SweepCase
{
    std::string system;
    const char *model;
    std::uint32_t chips;
    std::uint32_t batch;
    Platform platform = Platform::Gh200;
};

std::ostream &
operator<<(std::ostream &os, const SweepCase &c)
{
    return os << c.system << '/' << c.model << '/' << c.chips << "chips";
}

hw::ClusterSpec
clusterFor(const SweepCase &c)
{
    switch (c.platform) {
      case Platform::Gh200:
        return hw::gh200ClusterOf(c.chips);
      case Platform::DgxA100: {
        hw::ClusterSpec cluster = hw::dgxA100(1);
        cluster.node.superchips_per_node = c.chips;
        return cluster;
      }
      case Platform::Gb200:
        return hw::gb200Cluster(c.chips, 1);
    }
    return hw::gh200ClusterOf(c.chips);
}

class SystemPropertyTest : public ::testing::TestWithParam<SweepCase>
{
};

runtime::SystemPtr
makeSystem(const std::string &name)
{
    if (name == "superoffload")
        return std::make_unique<core::SuperOffloadSystem>();
    if (name == "superoffload-ulysses")
        return std::make_unique<core::SuperOffloadUlyssesSystem>();
    return runtime::makeBaseline(name);
}

TEST_P(SystemPropertyTest, InvariantsHold)
{
    const SweepCase &c = GetParam();
    runtime::TrainSetup setup;
    setup.cluster = clusterFor(c);
    setup.model = model::modelPreset(c.model);
    setup.global_batch = c.batch;
    setup.seq = 1024;

    const auto sys = makeSystem(c.system);
    const auto res = sys->run(setup);

    if (!res.feasible) {
        // Infeasibility must always be explained.
        EXPECT_FALSE(res.infeasible_reason.empty());
        EXPECT_DOUBLE_EQ(res.tflopsPerGpu(), 0.0);
        return;
    }

    // Timing sanity.
    EXPECT_GT(res.iter_time, 0.0);
    EXPECT_LT(res.iter_time, 600.0);

    // Utilizations are fractions.
    EXPECT_GE(res.gpu_utilization, 0.0);
    EXPECT_LE(res.gpu_utilization, 1.0 + 1e-9);
    EXPECT_GE(res.cpu_utilization, 0.0);
    EXPECT_LE(res.cpu_utilization, 1.0 + 1e-9);
    EXPECT_GE(res.link_utilization, 0.0);
    EXPECT_LE(res.link_utilization, 1.0 + 1e-9);

    // The reported memory must actually fit.
    EXPECT_TRUE(res.memory.fits())
        << res.memory.gpu_bytes << " / " << res.memory.gpu_capacity;

    // Throughput cannot exceed the attention-efficiency bound (the
    // fastest any kernel runs in this model).
    const auto &gpu = setup.cluster.node.superchip.gpu;
    EXPECT_LT(res.tflopsPerGpu() * 1e12,
              gpu.peak_flops * gpu.attn_achievable_frac * 1.01);

    // FLOPs accounting is self-consistent.
    EXPECT_GT(res.flops.modelFlops(), 0.0);
    EXPECT_GE(res.flops.executedFlops(), res.flops.modelFlops());
    if (!res.activation_checkpointing) {
        EXPECT_DOUBLE_EQ(res.flops.executedFlops(),
                         res.flops.modelFlops());
    }

    // Batch bookkeeping (sequence-parallel systems use the global
    // batch per rank; everyone else splits it).
    EXPECT_GE(res.micro_batch, 1u);
    EXPECT_GE(res.accum_steps, 1u);
    const bool sp = c.system.find("ulysses") != std::string::npos;
    const std::uint32_t per_rank =
        sp ? setup.global_batch : setup.perGpuBatch();
    EXPECT_EQ(res.micro_batch * res.accum_steps, per_rank);

    // A schedule trace is always attached.
    EXPECT_FALSE(res.gantt.empty());
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    const std::vector<std::string> systems = [] {
        auto names = runtime::baselineNames();
        names.push_back("superoffload");
        names.push_back("superoffload-ulysses");
        return names;
    }();
    for (const std::string &system : systems) {
        for (const char *model : {"1B", "5B", "13B"}) {
            cases.push_back(SweepCase{system, model, 1, 8});
            cases.push_back(SweepCase{system, model, 4, 16});
        }
        // Off the GH200 happy path: the invariants must hold on
        // PCIe-era and next-generation hardware too.
        cases.push_back(
            SweepCase{system, "1B", 4, 16, Platform::DgxA100});
        cases.push_back(SweepCase{system, "5B", 2, 8, Platform::Gb200});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<SweepCase> &info)
{
    const char *platform =
        info.param.platform == Platform::Gh200
            ? "gh200"
            : (info.param.platform == Platform::DgxA100 ? "dgxa100"
                                                        : "gb200");
    std::string name = info.param.system + "_" + info.param.model + "_" +
                       std::to_string(info.param.chips) + "chips_" +
                       platform;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemPropertyTest,
                         ::testing::ValuesIn(sweepCases()), caseName);

} // namespace
} // namespace so
