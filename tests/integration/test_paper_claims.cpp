/**
 * @file
 * Cross-module integration tests asserting the paper's headline claims
 * end-to-end — the same quantities the bench/ binaries print, pinned
 * here as regression guards.
 */
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/superoffload.h"
#include "core/superoffload_ulysses.h"
#include "runtime/registry.h"
#include "runtime/scale.h"

namespace so {
namespace {

using core::SuperOffloadSystem;
using runtime::TrainSetup;

TrainSetup
setupFor(const char *model, std::uint32_t chips, std::uint32_t batch,
         std::uint32_t seq = 1024)
{
    TrainSetup setup;
    setup.cluster = hw::gh200ClusterOf(chips);
    setup.model = model::modelPreset(model);
    setup.global_batch = batch;
    setup.seq = seq;
    return setup;
}

TEST(PaperClaims, Abstract_UpTo2p5xOverOffloadBaselines)
{
    // "up to 2.5x throughput improvement compared to state-of-the-art
    // offloading-based systems".
    SuperOffloadSystem so_sys;
    auto zo = runtime::makeBaseline("zero-offload");
    double best_ratio = 0.0;
    for (const char *m : {"5B", "10B", "13B", "15B"}) {
        const TrainSetup setup = setupFor(m, 1, 8);
        const auto a = so_sys.run(setup);
        const auto b = zo->run(setup);
        if (a.feasible && b.feasible)
            best_ratio = std::max(best_ratio,
                                  a.tflopsPerGpu() / b.tflopsPerGpu());
    }
    EXPECT_GT(best_ratio, 2.0);
    EXPECT_LT(best_ratio, 3.2);
}

TEST(PaperClaims, Abstract_25BOnASingleSuperchip)
{
    SuperOffloadSystem so_sys;
    EXPECT_TRUE(so_sys.run(setupFor("25B", 1, 8)).feasible);
}

TEST(PaperClaims, Intro_7xLargerThanGpuOnly)
{
    // "training of up to 25B model on a single Superchip ... 7x larger
    // than GPU-only solutions". Ours: ~27B vs ~5.3B => ~5x (our DDP
    // allows gradient accumulation; see EXPERIMENTS.md).
    SuperOffloadSystem so_sys;
    auto ddp = runtime::makeBaseline("ddp");
    const TrainSetup setup = setupFor("1B", 1, 8);
    const double so_max =
        runtime::largestTrainableModel(so_sys, setup).max_params;
    const double ddp_max =
        runtime::largestTrainableModel(*ddp, setup).max_params;
    EXPECT_GT(so_max / ddp_max, 4.0);
}

TEST(PaperClaims, Sec52_OutperformsGpuOnlyAcrossAllSizes)
{
    // "it also outperforms GPU-only approaches across all tested model
    // sizes" (Fig. 10).
    SuperOffloadSystem so_sys;
    auto ddp = runtime::makeBaseline("ddp");
    for (const char *m : {"1B", "2B", "3B", "4B", "5B"}) {
        const TrainSetup setup = setupFor(m, 1, 8);
        const auto a = so_sys.run(setup);
        const auto b = ddp->run(setup);
        ASSERT_TRUE(a.feasible) << m;
        if (!b.feasible)
            continue;
        EXPECT_GT(a.tflopsPerGpu(), b.tflopsPerGpu()) << m;
    }
}

TEST(PaperClaims, Sec52_UpTo67PercentOverDdp)
{
    // "achieves up to 67% higher throughput (TFLOPS) compared to
    // PyTorch DDP".
    SuperOffloadSystem so_sys;
    auto ddp = runtime::makeBaseline("ddp");
    double best = 0.0;
    for (const char *m : {"1B", "3B", "5B"}) {
        const TrainSetup setup = setupFor(m, 1, 8);
        const auto a = so_sys.run(setup);
        const auto b = ddp->run(setup);
        if (a.feasible && b.feasible)
            best = std::max(best, a.tflopsPerGpu() / b.tflopsPerGpu());
    }
    EXPECT_GT(best, 1.5);
}

TEST(PaperClaims, Sec54_ScaleLadderOnSixteenChips)
{
    // Fig. 13 orderings at 16 chips: SuperOffload > {ZeRO-3, Megatron}
    // > {ZeRO-2, ZeRO-Offload} > DDP.
    const TrainSetup setup = setupFor("1B", 16, 128);
    SuperOffloadSystem so_sys;
    auto scale = [&](runtime::TrainingSystem &sys) {
        return runtime::largestTrainableModel(sys, setup).max_params;
    };
    const double so_max = scale(so_sys);
    const double z3 = scale(*runtime::makeBaseline("zero3"));
    const double meg = scale(*runtime::makeBaseline("megatron"));
    const double z2 = scale(*runtime::makeBaseline("zero2"));
    const double zo = scale(*runtime::makeBaseline("zero-offload"));
    const double ddp = scale(*runtime::makeBaseline("ddp"));

    EXPECT_GT(so_max, 190e9); // Paper: 200B.
    EXPECT_GT(so_max, z3);
    EXPECT_GT(z3, z2);
    EXPECT_GT(meg, z2);
    EXPECT_GT(z2, ddp);
    EXPECT_GT(zo, ddp);
    // Paper's 10x over ZeRO-Offload and 57x over DDP are directional:
    EXPECT_GT(so_max / zo, 7.0);
    EXPECT_GT(so_max / ddp, 30.0);
}

TEST(PaperClaims, Sec54_50BOnFourSuperchips)
{
    // "SuperOffload enables LLM training with 50B parameters using
    // only four Superchips, 2.5x larger than ... ZeRO-Offload".
    SuperOffloadSystem so_sys;
    auto zo = runtime::makeBaseline("zero-offload");
    const TrainSetup setup = setupFor("1B", 4, 16);
    const double so_max =
        runtime::largestTrainableModel(so_sys, setup).max_params;
    const double zo_max =
        runtime::largestTrainableModel(*zo, setup).max_params;
    EXPECT_GT(so_max, 48e9);
    EXPECT_GT(so_max / zo_max, 2.2);
}

TEST(PaperClaims, Fig4_ZeroOffloadIdleVsFig15_SuperOffloadBusy)
{
    auto zo = runtime::makeBaseline("zero-offload");
    SuperOffloadSystem so_sys;
    const TrainSetup setup = setupFor("13B", 1, 8);
    const auto zo_res = zo->run(setup);
    const auto so_res = so_sys.run(setup);
    ASSERT_TRUE(zo_res.feasible && so_res.feasible);
    // Fig. 4: 40-50% idle; Fig. 15: near-zero idle.
    EXPECT_GT(1.0 - zo_res.gpu_utilization, 0.35);
    EXPECT_LT(1.0 - so_res.gpu_utilization, 0.05);
}

TEST(PaperClaims, Sec54_6p7xOverZeroInfinity)
{
    // "SuperOffload achieves on average 6.7x higher throughput (up to
    // 12.6x) than ZeRO-Infinity."
    SuperOffloadSystem so_sys;
    auto zi = runtime::makeBaseline("zero-infinity");
    std::vector<double> ratios;
    for (const char *m : {"5B", "10B", "15B", "20B"}) {
        const TrainSetup setup = setupFor(m, 1, 8);
        const auto a = so_sys.run(setup);
        const auto b = zi->run(setup);
        if (a.feasible && b.feasible)
            ratios.push_back(a.tflopsPerGpu() / b.tflopsPerGpu());
    }
    ASSERT_FALSE(ratios.empty());
    double sum = 0.0;
    for (double r : ratios)
        sum += r;
    const double avg = sum / ratios.size();
    EXPECT_GT(avg, 4.0);
    EXPECT_LT(avg, 13.0);
}

TEST(PaperClaims, Engine_EndToEndPlanForQuickstartScenario)
{
    // The README quickstart scenario must work out of the box.
    core::SuperOffloadEngine engine;
    const TrainSetup setup = setupFor("10B", 1, 8);
    const core::PlanReport report = engine.plan(setup);
    ASSERT_TRUE(report.feasible);
    EXPECT_GT(report.iteration.tflopsPerGpu(), 200.0);
    EXPECT_FALSE(report.summary(setup).empty());
}

} // namespace
} // namespace so
