#include "stv/offload_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic_corpus.h"
#include "nn/mlp_lm.h"
#include "optim/kernels.h"

namespace so::stv {
namespace {

nn::MlpLmConfig
modelConfig()
{
    nn::MlpLmConfig cfg;
    cfg.vocab = 64;
    cfg.embed = 16;
    cfg.hidden = 32;
    return cfg;
}

data::SyntheticCorpus
corpus(std::uint64_t seed)
{
    data::CorpusConfig cfg;
    cfg.vocab = 64;
    cfg.branching = 8;
    cfg.seed = seed;
    return data::SyntheticCorpus(cfg);
}

TrainerConfig
trainerConfig()
{
    TrainerConfig cfg;
    cfg.adam.lr = 2e-3f;
    cfg.loss_scale = 4096.0f;
    cfg.clip_norm = 5.0;
    cfg.buckets = 6;
    return cfg;
}

TEST(OffloadTrainer, ConvergesWithFp16Weights)
{
    nn::MlpLm model(modelConfig(), 3);
    OffloadTrainer trainer(model, trainerConfig());
    auto data = corpus(17);
    std::vector<std::uint32_t> in(32), tgt(32);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 600; ++step) {
        data.nextBatch(in.data(), tgt.data(), 32);
        const StepStats s = trainer.step(in.data(), tgt.data(), 32);
        if (step == 0)
            first = s.loss;
        last = s.loss;
    }
    EXPECT_LT(last, 0.75f * first);
    EXPECT_EQ(trainer.stepsTaken(), 600);
}

TEST(OffloadTrainer, DeviceParamsAreAlwaysTheFp16Shadow)
{
    // The invariant mixed-precision training guarantees: the device
    // copy equals the fp16 rounding of the fp32 master, bit for bit.
    nn::MlpLm model(modelConfig(), 5);
    OffloadTrainer trainer(model, trainerConfig());
    auto data = corpus(23);
    std::vector<std::uint32_t> in(16), tgt(16);
    for (int step = 0; step < 50; ++step) {
        data.nextBatch(in.data(), tgt.data(), 16);
        trainer.step(in.data(), tgt.data(), 16);
        const auto &master = trainer.masterParams();
        const auto &device = trainer.deviceParams();
        for (std::size_t i = 0; i < master.size(); ++i) {
            ASSERT_EQ(device[i].bits,
                      optim::floatToHalf(master[i]).bits)
                << "step " << step << " param " << i;
        }
    }
}

TEST(OffloadTrainer, SacAndClassicPipelinesAreNumericallyIdentical)
{
    // §4.5's claim is about COST, not values: both casting pipelines
    // must deliver identical numerics; they differ only in wire bytes.
    nn::MlpLm model_sac(modelConfig(), 7);
    nn::MlpLm model_classic(modelConfig(), 7);
    OffloadTrainer sac(model_sac, trainerConfig(),
                       CastStrategy::CastGpuMoveFp32);
    OffloadTrainer classic(model_classic, trainerConfig(),
                           CastStrategy::CastCpuMoveFp16);
    auto d1 = corpus(31), d2 = corpus(31);
    std::vector<std::uint32_t> in(16), tgt(16);
    for (int step = 0; step < 100; ++step) {
        d1.nextBatch(in.data(), tgt.data(), 16);
        sac.step(in.data(), tgt.data(), 16);
        d2.nextBatch(in.data(), tgt.data(), 16);
        classic.step(in.data(), tgt.data(), 16);
    }
    for (std::size_t i = 0; i < sac.masterParams().size(); ++i)
        ASSERT_EQ(sac.masterParams()[i], classic.masterParams()[i]);
    // SAC ships fp32 both ways: exactly twice the classic volume.
    EXPECT_EQ(sac.bytesMoved(), 2u * classic.bytesMoved());
}

TEST(OffloadTrainer, OverflowSkipsWithoutTouchingState)
{
    nn::MlpLm model(modelConfig(), 9);
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1e9f;
    OffloadTrainer trainer(model, cfg);
    const std::vector<float> master_before = trainer.masterParams();
    auto data = corpus(41);
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const StepStats stats = trainer.step(in.data(), tgt.data(), 16);
    EXPECT_TRUE(stats.overflowed);
    EXPECT_EQ(trainer.stepsTaken(), 0);
    EXPECT_LT(trainer.lossScale(), 1e9f);
    EXPECT_EQ(trainer.masterParams(), master_before);
}

TEST(OffloadTrainer, MatchesDirectMixedPrecisionReference)
{
    // Reference: the same mixed-precision math with no staging at all.
    nn::MlpLm staged_model(modelConfig(), 11);
    nn::MlpLm ref_model(modelConfig(), 11);
    TrainerConfig cfg = trainerConfig();
    cfg.clip_norm = 100.0; // The bare reference below never clips.
    OffloadTrainer staged(staged_model, cfg);

    const std::size_t n = ref_model.paramCount();
    std::vector<float> master(ref_model.params(),
                              ref_model.params() + n);
    optim::Adam ref_adam(cfg.adam, cfg.kernel);
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    for (std::uint32_t b = 0; b < cfg.buckets; ++b) {
        const std::size_t base = n / cfg.buckets;
        const std::size_t extra = n % cfg.buckets;
        const std::size_t begin =
            b * base + std::min<std::size_t>(b, extra);
        const std::size_t end = begin + base + (b < extra ? 1 : 0);
        ranges.emplace_back(begin, end);
        ref_adam.addParameter(end - begin);
    }

    auto d1 = corpus(53), d2 = corpus(53);
    std::vector<std::uint32_t> in(16), tgt(16);
    for (int step = 0; step < 80; ++step) {
        d1.nextBatch(in.data(), tgt.data(), 16);
        staged.step(in.data(), tgt.data(), 16);

        d2.nextBatch(in.data(), tgt.data(), 16);
        // Reference: compute with fp16-rounded weights...
        for (std::size_t i = 0; i < n; ++i) {
            ref_model.params()[i] = optim::halfToFloat(
                optim::floatToHalf(master[i]));
        }
        ref_model.trainBatch(in.data(), tgt.data(), 16,
                             cfg.loss_scale);
        // ...round gradients through fp16, unscale, step the master.
        ref_model.roundGradsThroughFp16();
        optim::scaleInPlace(ref_model.grads(), n, 1.0f / cfg.loss_scale);
        for (std::uint32_t b = 0; b < cfg.buckets; ++b) {
            ref_adam.step(b, master.data() + ranges[b].first,
                          ref_model.grads() + ranges[b].first);
        }

        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(staged.masterParams()[i], master[i])
                << "step " << step << " param " << i;
    }
}

} // namespace
} // namespace so::stv
