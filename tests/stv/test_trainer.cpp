#include "stv/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic_corpus.h"
#include "nn/mlp_lm.h"

namespace so::stv {
namespace {

nn::MlpLmConfig
modelConfig()
{
    nn::MlpLmConfig cfg;
    cfg.vocab = 64;
    cfg.embed = 16;
    cfg.hidden = 32;
    return cfg;
}

data::SyntheticCorpus
corpus(std::uint64_t seed = 21)
{
    data::CorpusConfig cfg;
    cfg.vocab = 64;
    cfg.branching = 8;
    cfg.seed = seed;
    return data::SyntheticCorpus(cfg);
}

TrainerConfig
trainerConfig()
{
    TrainerConfig cfg;
    cfg.adam.lr = 2e-3f;
    cfg.loss_scale = 4096.0f;
    cfg.clip_norm = 5.0; // Loose: convergence tests rarely clip.
    cfg.buckets = 6;
    return cfg;
}

/** Run @p steps of training; returns final loss. */
template <typename Trainer>
float
runSteps(Trainer &trainer, data::SyntheticCorpus &data, int steps,
         std::size_t batch = 16)
{
    std::vector<std::uint32_t> in(batch), tgt(batch);
    float loss = 0.0f;
    for (int i = 0; i < steps; ++i) {
        data.nextBatch(in.data(), tgt.data(), batch);
        loss = trainer.step(in.data(), tgt.data(), batch).loss;
    }
    return loss;
}

TEST(SyncTrainer, LossDecreases)
{
    nn::MlpLm model(modelConfig(), 1);
    SyncTrainer trainer(model, trainerConfig());
    auto data = corpus();
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const float first = trainer.step(in.data(), tgt.data(), 16).loss;
    const float last = runSteps(trainer, data, 600);
    EXPECT_LT(last, 0.75f * first);
}

TEST(SyncTrainer, OverflowSkipsAndHalvesLossScale)
{
    nn::MlpLm model(modelConfig(), 2);
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1e9f; // Guaranteed fp16 overflow.
    SyncTrainer trainer(model, cfg);
    const std::vector<float> before(model.params(),
                                    model.params() + model.paramCount());
    auto data = corpus();
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const StepStats stats = trainer.step(in.data(), tgt.data(), 16);
    EXPECT_TRUE(stats.overflowed);
    EXPECT_EQ(trainer.stepsTaken(), 0);
    EXPECT_LT(trainer.lossScale(), cfg.loss_scale);
    // Parameters untouched.
    for (std::size_t i = 0; i < model.paramCount(); ++i)
        ASSERT_EQ(model.params()[i], before[i]);
}

TEST(SyncTrainer, ClippingFiresOnTightThreshold)
{
    nn::MlpLm model(modelConfig(), 3);
    TrainerConfig cfg = trainerConfig();
    cfg.clip_norm = 1e-3; // Everything clips.
    SyncTrainer trainer(model, cfg);
    auto data = corpus();
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const StepStats stats = trainer.step(in.data(), tgt.data(), 16);
    EXPECT_FALSE(stats.overflowed);
    EXPECT_TRUE(stats.clipped);
    EXPECT_EQ(trainer.stepsTaken(), 1);
}

TEST(StvTrainer, RollsBackOnOverflow)
{
    nn::MlpLm model(modelConfig(), 4);
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1e9f;
    StvTrainer trainer(model, cfg);
    auto data = corpus();
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const StepStats stats = trainer.step(in.data(), tgt.data(), 16);
    EXPECT_TRUE(stats.overflowed);
    EXPECT_TRUE(stats.rolled_back);
    EXPECT_EQ(trainer.rollbackCount(), 1u);
    EXPECT_EQ(trainer.stepsTaken(), 0);
}

TEST(StvTrainer, RollsBackAndReExecutesOnClipping)
{
    nn::MlpLm model(modelConfig(), 5);
    TrainerConfig cfg = trainerConfig();
    cfg.clip_norm = 1e-3;
    StvTrainer trainer(model, cfg);
    auto data = corpus();
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const StepStats stats = trainer.step(in.data(), tgt.data(), 16);
    EXPECT_TRUE(stats.clipped);
    EXPECT_TRUE(stats.rolled_back);
    EXPECT_EQ(trainer.stepsTaken(), 1); // Re-executed, not skipped.
}

class RollbackModeTest : public ::testing::TestWithParam<RollbackMode>
{
};

TEST_P(RollbackModeTest, StvMatchesSyncTrajectoryExactly)
{
    // THE §4.4 exactness claim: STV and STE produce the same
    // optimization trajectory, including overflow skips and clipping
    // rollbacks, on identical data.
    nn::MlpLm sync_model(modelConfig(), 7);
    nn::MlpLm stv_model(modelConfig(), 7);
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1.0e6f;   // High: guarantees early overflows.
    cfg.clip_norm = 0.9;       // Tight-ish: clipping fires in warmup.
    cfg.rollback = GetParam();

    SyncTrainer sync_trainer(sync_model, cfg);
    StvTrainer stv_trainer(stv_model, cfg);
    auto sync_data = corpus(33);
    auto stv_data = corpus(33);

    std::vector<std::uint32_t> in(16), tgt(16);
    // Snapshot restores are bit-exact. The algebraic inverse leaves a
    // bounded residue that Adam's sqrt(v) denominator amplifies for
    // near-zero-gradient parameters (see RollbackMode docs), so those
    // elements may differ by a small fraction of one update.
    const float tol =
        GetParam() == RollbackMode::Snapshot ? 0.0f : 5e-3f;
    int overflows = 0, clips = 0;
    for (int step = 0; step < 150; ++step) {
        sync_data.nextBatch(in.data(), tgt.data(), 16);
        const StepStats a = sync_trainer.step(in.data(), tgt.data(), 16);
        stv_data.nextBatch(in.data(), tgt.data(), 16);
        const StepStats b = stv_trainer.step(in.data(), tgt.data(), 16);

        // Decisions must coincide exactly.
        ASSERT_EQ(a.overflowed, b.overflowed) << "step " << step;
        ASSERT_EQ(a.clipped, b.clipped) << "step " << step;
        overflows += a.overflowed;
        clips += a.clipped;

        // Parameter trajectories match (bit-exact for snapshots,
        // float-rounding-exact for the algebraic inverse).
        const float *p_sync = sync_model.params();
        const float *p_stv = stv_model.params();
        for (std::size_t i = 0; i < sync_model.paramCount(); ++i) {
            ASSERT_NEAR(p_stv[i], p_sync[i],
                        tol * (1.0f + std::fabs(p_sync[i])))
                << "step " << step << " param " << i;
        }
    }
    // The run must actually have exercised both rollback scenarios.
    EXPECT_GT(overflows, 0);
    EXPECT_GT(clips, 0);
    EXPECT_EQ(stv_trainer.rollbackCount(),
              static_cast<std::uint64_t>(overflows + clips));
    EXPECT_EQ(sync_trainer.stepsTaken(), stv_trainer.stepsTaken());
    EXPECT_EQ(sync_trainer.lossScale(), stv_trainer.lossScale());
}

INSTANTIATE_TEST_SUITE_P(Modes, RollbackModeTest,
                         ::testing::Values(RollbackMode::Algebraic,
                                           RollbackMode::Snapshot));

TEST(StvTrainer, RollbacksBecomeRareAfterWarmup)
{
    // Fig. 14's shape: frequent rollbacks early, rare later.
    nn::MlpLm model(modelConfig(), 9);
    TrainerConfig cfg = trainerConfig();
    // Rollbacks come from loss-scale settling: the scale starts far
    // too high, halves through the warm-up overflows, then only the
    // occasional growth attempt overflows again.
    cfg.loss_scale = 1.0e6f;
    StvTrainer trainer(model, cfg);
    auto data = corpus(55);
    std::vector<std::uint32_t> in(16), tgt(16);

    std::uint64_t early = 0, late = 0;
    for (int step = 0; step < 600; ++step) {
        data.nextBatch(in.data(), tgt.data(), 16);
        trainer.step(in.data(), tgt.data(), 16);
        if (step == 99)
            early = trainer.rollbackCount();
    }
    late = trainer.rollbackCount() - early;
    EXPECT_GT(early, 0u);
    // Rollbacks per step must drop by at least 3x after warmup.
    const double early_rate = static_cast<double>(early) / 100.0;
    const double late_rate = static_cast<double>(late) / 500.0;
    EXPECT_LT(late_rate, early_rate / 3.0);
}

TEST(StvTrainer, ConvergesDespiteRollbacks)
{
    nn::MlpLm model(modelConfig(), 11);
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1.0e6f;
    StvTrainer trainer(model, cfg);
    auto data = corpus(77);
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const float first = trainer.step(in.data(), tgt.data(), 16).loss;
    const float last = runSteps(trainer, data, 800, 32);
    EXPECT_LT(last, 0.75f * first);
}

TEST(StvTrainer, LossScaleRecoversViaGrowth)
{
    nn::MlpLm model(modelConfig(), 13);
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1024.0f;
    cfg.scale_growth_interval = 50;
    StvTrainer trainer(model, cfg);
    auto data = corpus(88);
    runSteps(trainer, data, 120);
    // With no overflows at this modest scale, growth must have fired.
    EXPECT_GE(trainer.lossScale(), 2048.0f);
}

TEST(TrainerBase, BucketRangesPartitionParameters)
{
    nn::MlpLm model(modelConfig(), 15);
    TrainerConfig cfg = trainerConfig();
    cfg.buckets = 7; // Does not divide the parameter count evenly.
    SyncTrainer trainer(model, cfg);
    // Indirect check: training still works and converges a little.
    auto data = corpus(99);
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    const float first = trainer.step(in.data(), tgt.data(), 16).loss;
    const float last = runSteps(trainer, data, 200);
    EXPECT_LT(last, first);
}

} // namespace
} // namespace so::stv
