#include "stv/pipelined_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic_corpus.h"
#include "nn/mlp_lm.h"

namespace so::stv {
namespace {

nn::MlpLmConfig
modelConfig()
{
    nn::MlpLmConfig cfg;
    cfg.vocab = 64;
    cfg.embed = 16;
    cfg.hidden = 32;
    return cfg;
}

data::SyntheticCorpus
corpus(std::uint64_t seed)
{
    data::CorpusConfig cfg;
    cfg.vocab = 64;
    cfg.branching = 8;
    cfg.seed = seed;
    return data::SyntheticCorpus(cfg);
}

TrainerConfig
trainerConfig()
{
    TrainerConfig cfg;
    cfg.adam.lr = 2e-3f;
    cfg.loss_scale = 1.0e6f; // Warm-up overflows guaranteed.
    cfg.clip_norm = 0.9;     // Clipping fires in warm-up too.
    cfg.buckets = 6;
    cfg.rollback = RollbackMode::Snapshot;
    return cfg;
}

TEST(PipelinedStv, ConvergesWithBackgroundValidation)
{
    nn::MlpLm model(modelConfig(), 3);
    TrainerConfig cfg = trainerConfig();
    cfg.clip_norm = 5.0;
    PipelinedStvTrainer trainer(model, cfg);
    auto data = corpus(17);
    std::vector<std::uint32_t> in(32), tgt(32);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 600; ++step) {
        data.nextBatch(in.data(), tgt.data(), 32);
        const StepStats s = trainer.step(in.data(), tgt.data(), 32);
        if (step == 0)
            first = s.loss;
        last = s.loss;
    }
    trainer.drain();
    EXPECT_LT(last, 0.75f * first);
    EXPECT_GT(trainer.rollbackCount(), 0u);
}

TEST(PipelinedStv, TrajectoryBitwiseMatchesSynchronous)
{
    // The load-bearing concurrency test: despite validation running on
    // a background thread one step behind, the settled trajectory must
    // equal the synchronous schedule bit for bit (snapshot rollback).
    nn::MlpLm pipe_model(modelConfig(), 7);
    nn::MlpLm sync_model(modelConfig(), 7);
    const TrainerConfig cfg = trainerConfig();
    PipelinedStvTrainer pipe(pipe_model, cfg);
    SyncTrainer sync(sync_model, cfg);
    auto pipe_data = corpus(33);
    auto sync_data = corpus(33);

    std::vector<std::uint32_t> in(16), tgt(16);
    for (int step = 0; step < 300; ++step) {
        pipe_data.nextBatch(in.data(), tgt.data(), 16);
        pipe.step(in.data(), tgt.data(), 16);
        sync_data.nextBatch(in.data(), tgt.data(), 16);
        sync.step(in.data(), tgt.data(), 16);
    }
    // The pipelined trainer is one validation behind: settle it.
    pipe.drain();

    ASSERT_EQ(pipe.stepsTaken(), sync.stepsTaken());
    EXPECT_EQ(pipe.lossScale(), sync.lossScale());
    for (std::size_t i = 0; i < pipe_model.paramCount(); ++i) {
        ASSERT_EQ(pipe_model.params()[i], sync_model.params()[i])
            << "param " << i;
    }
}

TEST(PipelinedStv, RecomputesForwardAfterMisSpeculation)
{
    nn::MlpLm model(modelConfig(), 9);
    PipelinedStvTrainer trainer(model, trainerConfig());
    auto data = corpus(55);
    std::vector<std::uint32_t> in(16), tgt(16);
    for (int step = 0; step < 100; ++step) {
        data.nextBatch(in.data(), tgt.data(), 16);
        trainer.step(in.data(), tgt.data(), 16);
    }
    trainer.drain();
    // The warm-up overflows and clips forced wasted-forward recomputes.
    EXPECT_GT(trainer.recomputeCount(), 0u);
    EXPECT_GE(trainer.recomputeCount(), trainer.rollbackCount());
}

TEST(PipelinedStv, VerdictsArriveOneStepLate)
{
    // The first step can never report a validation outcome (nothing
    // was in flight); a guaranteed overflow surfaces on step two.
    nn::MlpLm model(modelConfig(), 11);
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1e9f;
    PipelinedStvTrainer trainer(model, cfg);
    auto data = corpus(66);
    std::vector<std::uint32_t> in(16), tgt(16);

    data.nextBatch(in.data(), tgt.data(), 16);
    const StepStats first = trainer.step(in.data(), tgt.data(), 16);
    EXPECT_FALSE(first.overflowed);
    EXPECT_FALSE(first.rolled_back);

    data.nextBatch(in.data(), tgt.data(), 16);
    const StepStats second = trainer.step(in.data(), tgt.data(), 16);
    EXPECT_TRUE(second.overflowed);
    EXPECT_TRUE(second.rolled_back);
    trainer.drain();
}

TEST(PipelinedStv, ExactUnderLearningRateSchedule)
{
    // The schedule introduces a rate change at every step; pipelined
    // and synchronous schedules must still agree bitwise (the rollback
    // must revert with the rate the speculation used).
    nn::MlpLm pipe_model(modelConfig(), 21);
    nn::MlpLm sync_model(modelConfig(), 21);
    TrainerConfig cfg = trainerConfig();
    cfg.lr_schedule = optim::LrSchedule(2e-3f, 20, 200,
                                        optim::LrDecay::Cosine, 1e-5f);
    PipelinedStvTrainer pipe(pipe_model, cfg);
    SyncTrainer sync(sync_model, cfg);
    auto d1 = corpus(91), d2 = corpus(91);
    std::vector<std::uint32_t> in(16), tgt(16);
    for (int step = 0; step < 200; ++step) {
        d1.nextBatch(in.data(), tgt.data(), 16);
        pipe.step(in.data(), tgt.data(), 16);
        d2.nextBatch(in.data(), tgt.data(), 16);
        sync.step(in.data(), tgt.data(), 16);
    }
    pipe.drain();
    for (std::size_t i = 0; i < pipe_model.paramCount(); ++i)
        ASSERT_EQ(pipe_model.params()[i], sync_model.params()[i]);
}

TEST(PipelinedStv, DrainIsIdempotent)
{
    nn::MlpLm model(modelConfig(), 13);
    PipelinedStvTrainer trainer(model, trainerConfig());
    auto data = corpus(77);
    std::vector<std::uint32_t> in(16), tgt(16);
    data.nextBatch(in.data(), tgt.data(), 16);
    trainer.step(in.data(), tgt.data(), 16);
    trainer.drain();
    const std::uint64_t after_first = trainer.rollbackCount();
    trainer.drain();
    EXPECT_EQ(trainer.rollbackCount(), after_first);
}

TEST(PipelinedStv, AlgebraicModeAlsoConverges)
{
    nn::MlpLm model(modelConfig(), 15);
    TrainerConfig cfg = trainerConfig();
    cfg.rollback = RollbackMode::Algebraic;
    cfg.clip_norm = 5.0;
    PipelinedStvTrainer trainer(model, cfg);
    auto data = corpus(88);
    std::vector<std::uint32_t> in(32), tgt(32);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 500; ++step) {
        data.nextBatch(in.data(), tgt.data(), 32);
        const StepStats s = trainer.step(in.data(), tgt.data(), 32);
        if (step == 0)
            first = s.loss;
        last = s.loss;
    }
    trainer.drain();
    EXPECT_LT(last, 0.8f * first);
}

} // namespace
} // namespace so::stv
