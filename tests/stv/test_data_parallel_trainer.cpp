#include "stv/data_parallel_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic_corpus.h"
#include "nn/attention_lm.h"

namespace so::stv {
namespace {

nn::MlpLmConfig
modelConfig()
{
    nn::MlpLmConfig cfg;
    cfg.vocab = 64;
    cfg.embed = 16;
    cfg.hidden = 32;
    return cfg;
}

data::SyntheticCorpus
corpus(std::uint64_t seed)
{
    data::CorpusConfig cfg;
    cfg.vocab = 64;
    cfg.branching = 8;
    cfg.seed = seed;
    return data::SyntheticCorpus(cfg);
}

TrainerConfig
trainerConfig()
{
    TrainerConfig cfg;
    cfg.adam.lr = 2e-3f;
    cfg.loss_scale = 1.0f;  // Equivalence tests want clean arithmetic.
    cfg.fp16_grads = false; // Per-rank rounding would break exactness.
    cfg.clip_norm = 100.0;
    cfg.buckets = 8;
    return cfg;
}

TEST(DataParallel, ReplicasStayBitwiseIdentical)
{
    DataParallelTrainer dp(modelConfig(), 4, trainerConfig(), 7);
    auto data = corpus(11);
    std::vector<std::uint32_t> in(4 * 8), tgt(4 * 8);
    for (int step = 0; step < 50; ++step) {
        data.nextBatch(in.data(), tgt.data(), in.size());
        dp.step(in.data(), tgt.data(), 8);
        ASSERT_TRUE(dp.replicasInSync()) << "step " << step;
    }
    EXPECT_EQ(dp.stepsTaken(), 50);
}

class DpDegreeTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DpDegreeTest, MatchesSingleRankBigBatch)
{
    // The defining DP property: K ranks x count samples == one rank x
    // K*count samples (up to float summation order in the reduce).
    const std::uint32_t ranks = GetParam();
    const std::size_t per_rank = 8;
    DataParallelTrainer dp(modelConfig(), ranks, trainerConfig(), 21);

    nn::MlpLm single_model(modelConfig(), 21);
    SyncTrainer single(single_model, trainerConfig());

    auto d1 = corpus(31), d2 = corpus(31);
    const std::size_t total = ranks * per_rank;
    std::vector<std::uint32_t> in(total), tgt(total);
    for (int step = 0; step < 60; ++step) {
        d1.nextBatch(in.data(), tgt.data(), total);
        dp.step(in.data(), tgt.data(), per_rank);
        d2.nextBatch(in.data(), tgt.data(), total);
        single.step(in.data(), tgt.data(), total);
    }
    const nn::Model &dp_model = dp.replica(0);
    for (std::size_t i = 0; i < dp_model.paramCount(); ++i) {
        ASSERT_NEAR(dp_model.params()[i], single_model.params()[i],
                    5e-4f * (1.0f + std::fabs(single_model.params()[i])))
            << "param " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DpDegreeTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(DataParallel, SingleRankIsExactlySyncTrainer)
{
    // With one rank the DP machinery must collapse to the plain loop.
    DataParallelTrainer dp(modelConfig(), 1, trainerConfig(), 33);
    nn::MlpLm ref_model(modelConfig(), 33);
    SyncTrainer ref(ref_model, trainerConfig());
    auto d1 = corpus(41), d2 = corpus(41);
    std::vector<std::uint32_t> in(16), tgt(16);
    for (int step = 0; step < 80; ++step) {
        d1.nextBatch(in.data(), tgt.data(), 16);
        dp.step(in.data(), tgt.data(), 16);
        d2.nextBatch(in.data(), tgt.data(), 16);
        ref.step(in.data(), tgt.data(), 16);
    }
    for (std::size_t i = 0; i < ref_model.paramCount(); ++i)
        ASSERT_EQ(dp.replica(0).params()[i], ref_model.params()[i]);
}

TEST(DataParallel, ConvergesWithMixedPrecision)
{
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 4096.0f;
    cfg.fp16_grads = true;
    cfg.clip_norm = 5.0;
    DataParallelTrainer dp(modelConfig(), 4, cfg, 51);
    auto data = corpus(61);
    std::vector<std::uint32_t> in(4 * 16), tgt(4 * 16);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 400; ++step) {
        data.nextBatch(in.data(), tgt.data(), in.size());
        const StepStats s = dp.step(in.data(), tgt.data(), 16);
        if (step == 0)
            first = s.loss;
        last = s.loss;
    }
    EXPECT_LT(last, 0.75f * first);
    EXPECT_TRUE(dp.replicasInSync());
}

TEST(DataParallel, OverflowSkipsGlobally)
{
    TrainerConfig cfg = trainerConfig();
    cfg.loss_scale = 1e9f;
    cfg.fp16_grads = true;
    DataParallelTrainer dp(modelConfig(), 2, cfg, 71);
    auto data = corpus(81);
    std::vector<std::uint32_t> in(2 * 16), tgt(2 * 16);
    data.nextBatch(in.data(), tgt.data(), in.size());
    const StepStats stats = dp.step(in.data(), tgt.data(), 16);
    EXPECT_TRUE(stats.overflowed);
    EXPECT_EQ(dp.stepsTaken(), 0);
    EXPECT_TRUE(dp.replicasInSync());
}

TEST(DataParallel, FactoryFormSupportsAttentionReplicas)
{
    // The generic constructor accepts any Model; attention replicas
    // train in sync exactly like MLPs.
    nn::AttentionLmConfig acfg;
    acfg.vocab = 16;
    acfg.embed = 8;
    acfg.hidden = 12;
    DataParallelTrainer dp(
        [&acfg] { return std::make_unique<nn::AttentionLm>(acfg, 3); },
        2, trainerConfig());
    data::CorpusConfig cc;
    cc.vocab = 16;
    cc.branching = 4;
    cc.seed = 91;
    data::SyntheticCorpus data(cc);
    std::vector<std::uint32_t> in(2 * 12), tgt(2 * 12);
    for (int step = 0; step < 30; ++step) {
        data.nextBatch(in.data(), tgt.data(), in.size());
        dp.step(in.data(), tgt.data(), 12);
        ASSERT_TRUE(dp.replicasInSync());
    }
    EXPECT_EQ(dp.stepsTaken(), 30);
}

TEST(DataParallelDeath, NeedsShardPerRank)
{
    TrainerConfig cfg = trainerConfig();
    cfg.buckets = 2;
    EXPECT_DEATH(DataParallelTrainer(modelConfig(), 4, cfg, 1),
                 "shard per rank");
}

} // namespace
} // namespace so::stv
