#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "data/synthetic_corpus.h"
#include "nn/mlp_lm.h"
#include "stv/trainer.h"

namespace so::stv {
namespace {

nn::MlpLmConfig
modelConfig()
{
    nn::MlpLmConfig cfg;
    cfg.vocab = 64;
    cfg.embed = 16;
    cfg.hidden = 32;
    return cfg;
}

TrainerConfig
trainerConfig()
{
    TrainerConfig cfg;
    cfg.adam.lr = 2e-3f;
    cfg.loss_scale = 65536.0f;
    cfg.clip_norm = 5.0;
    cfg.buckets = 6;
    cfg.rollback = RollbackMode::Snapshot;
    return cfg;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

/** Pre-generate a deterministic batch stream. */
std::vector<std::vector<std::uint32_t>>
batchStream(int steps, std::size_t batch)
{
    data::CorpusConfig cc;
    cc.vocab = 64;
    cc.branching = 8;
    cc.seed = 101;
    data::SyntheticCorpus corpus(cc);
    std::vector<std::vector<std::uint32_t>> stream;
    for (int s = 0; s < steps; ++s) {
        std::vector<std::uint32_t> in(batch), tgt(batch);
        corpus.nextBatch(in.data(), tgt.data(), batch);
        std::vector<std::uint32_t> both = in;
        both.insert(both.end(), tgt.begin(), tgt.end());
        stream.push_back(std::move(both));
    }
    return stream;
}

void
runSteps(TrainerBase &trainer,
         const std::vector<std::vector<std::uint32_t>> &stream, int from,
         int to, std::size_t batch)
{
    for (int s = from; s < to; ++s) {
        const std::uint32_t *in = stream[s].data();
        const std::uint32_t *tgt = stream[s].data() + batch;
        trainer.step(in, tgt, batch);
    }
}

TEST(Checkpoint, ResumeReproducesUninterruptedRunBitwise)
{
    const std::size_t batch = 16;
    const auto stream = batchStream(200, batch);
    const std::string path = tempPath("so_ckpt_resume.bin");

    // Uninterrupted reference run.
    nn::MlpLm ref_model(modelConfig(), 5);
    StvTrainer ref(ref_model, trainerConfig());
    runSteps(ref, stream, 0, 200, batch);

    // Interrupted run: 120 steps, checkpoint, fresh process state,
    // resume for the remaining 80.
    nn::MlpLm model_a(modelConfig(), 5);
    {
        StvTrainer first_half(model_a, trainerConfig());
        runSteps(first_half, stream, 0, 120, batch);
        ASSERT_TRUE(first_half.saveCheckpoint(path));
    }
    nn::MlpLm model_b(modelConfig(), 999); // Different init: must not matter.
    StvTrainer second_half(model_b, trainerConfig());
    ASSERT_TRUE(second_half.loadCheckpoint(path));
    EXPECT_EQ(second_half.stepsTaken(), 120);
    runSteps(second_half, stream, 120, 200, batch);

    ASSERT_EQ(second_half.stepsTaken(), ref.stepsTaken());
    EXPECT_EQ(second_half.lossScale(), ref.lossScale());
    for (std::size_t i = 0; i < ref_model.paramCount(); ++i)
        ASSERT_EQ(model_b.params()[i], ref_model.params()[i]) << i;

    std::remove(path.c_str());
}

TEST(Checkpoint, WorksAcrossTrainerKinds)
{
    // A SyncTrainer can resume from an StvTrainer's checkpoint: the
    // state format is schedule-independent (the schedules are
    // equivalent, after all).
    const std::size_t batch = 16;
    const auto stream = batchStream(100, batch);
    const std::string path = tempPath("so_ckpt_kinds.bin");

    nn::MlpLm model_a(modelConfig(), 7);
    StvTrainer stv(model_a, trainerConfig());
    runSteps(stv, stream, 0, 50, batch);
    ASSERT_TRUE(stv.saveCheckpoint(path));
    runSteps(stv, stream, 50, 100, batch);

    nn::MlpLm model_b(modelConfig(), 7);
    SyncTrainer sync(model_b, trainerConfig());
    ASSERT_TRUE(sync.loadCheckpoint(path));
    runSteps(sync, stream, 50, 100, batch);

    for (std::size_t i = 0; i < model_a.paramCount(); ++i)
        ASSERT_EQ(model_b.params()[i], model_a.params()[i]) << i;
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsShapeMismatch)
{
    const std::string path = tempPath("so_ckpt_shape.bin");
    nn::MlpLm model(modelConfig(), 9);
    SyncTrainer trainer(model, trainerConfig());
    ASSERT_TRUE(trainer.saveCheckpoint(path));

    // Different bucket count.
    TrainerConfig other_cfg = trainerConfig();
    other_cfg.buckets = 5;
    nn::MlpLm model2(modelConfig(), 9);
    SyncTrainer other(model2, other_cfg);
    EXPECT_FALSE(other.loadCheckpoint(path));

    // Different model size.
    nn::MlpLmConfig big = modelConfig();
    big.hidden = 64;
    nn::MlpLm model3(big, 9);
    SyncTrainer bigger(model3, trainerConfig());
    EXPECT_FALSE(bigger.loadCheckpoint(path));

    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageFiles)
{
    const std::string path = tempPath("so_ckpt_garbage.bin");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("definitely not a checkpoint", f);
        std::fclose(f);
    }
    nn::MlpLm model(modelConfig(), 11);
    SyncTrainer trainer(model, trainerConfig());
    EXPECT_FALSE(trainer.loadCheckpoint(path));
    EXPECT_FALSE(trainer.loadCheckpoint("/nonexistent/ckpt.bin"));
    std::remove(path.c_str());
}

} // namespace
} // namespace so::stv
