#include "model/memory.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "model/config.h"

namespace so::model {
namespace {

TEST(StateSizes, SixteenBytesPerParam)
{
    // §2.2: "a model with P parameters consumes a total of 16P bytes".
    const StateSizes s = StateSizes::forParams(1e9);
    EXPECT_DOUBLE_EQ(s.totalBytes(), 16e9);
    EXPECT_DOUBLE_EQ(s.fp16_params, 2e9);
    EXPECT_DOUBLE_EQ(s.fp16_grads, 2e9);
    EXPECT_DOUBLE_EQ(s.optimizerBytes(), 12e9);
}

TEST(StateSizes, PaperSixBillionExample)
{
    // §2.2: a 96 GB H100 accommodates only ~6B params of model states.
    const StateSizes s = StateSizes::forParams(6e9);
    EXPECT_DOUBLE_EQ(s.totalBytes(), 96e9);
}

TEST(Activations, LinearInBatchAndSeq)
{
    const ModelConfig cfg = modelPreset("5B");
    ActivationOptions opts;
    const double a1 = activationBytes(cfg, 1.0, 1024.0, opts);
    const double a2 = activationBytes(cfg, 2.0, 1024.0, opts);
    const double a4 = activationBytes(cfg, 1.0, 4096.0, opts);
    EXPECT_GT(a2, 1.8 * a1);
    EXPECT_GT(a4, 3.0 * a1);
}

TEST(Activations, CheckpointingShrinksFootprint)
{
    const ModelConfig cfg = modelPreset("13B");
    ActivationOptions plain;
    ActivationOptions ckpt;
    ckpt.checkpointing = true;
    const double a = activationBytes(cfg, 4.0, 4096.0, plain);
    const double c = activationBytes(cfg, 4.0, 4096.0, ckpt);
    EXPECT_LT(c, a / 4.0);
}

TEST(Activations, SequenceParallelDividesFootprint)
{
    const ModelConfig cfg = modelPreset("13B");
    ActivationOptions sp1;
    ActivationOptions sp8;
    sp8.sequence_parallel = 8;
    const double a1 = activationBytes(cfg, 1.0, 65536.0, sp1);
    const double a8 = activationBytes(cfg, 1.0, 65536.0, sp8);
    // Close to 8x smaller (the logit tile does not shrink).
    EXPECT_GT(a1 / a8, 6.0);
}

TEST(Activations, PaperSevenBExample)
{
    // §4.2: "a 7B-parameter model ... needs ~2TB of memory for
    // activations with a sequence length of 1 million tokens". Our
    // flash-era model should land within a factor of ~1.6 of that.
    const ModelConfig cfg = makeConfig("7B", 32, 4096);
    ActivationOptions opts;
    const double bytes = activationBytes(cfg, 1.0, 1e6, opts);
    EXPECT_GT(bytes, 2e12 / 1.6);
    EXPECT_LT(bytes, 2e12 * 2.5);
}

TEST(Activations, CheckpointScalesWithLayerCount)
{
    const ModelConfig shallow = makeConfig("s", 10, 4096);
    const ModelConfig deep = makeConfig("d", 100, 4096);
    ActivationOptions ckpt;
    ckpt.checkpointing = true;
    const double a_s = activationBytes(shallow, 1.0, 8192.0, ckpt);
    const double a_d = activationBytes(deep, 1.0, 8192.0, ckpt);
    EXPECT_GT(a_d, 3.0 * a_s);
    EXPECT_LT(a_d, 10.0 * a_s);
}

TEST(GpuResident, AppliesOverheads)
{
    const double raw = 10e9;
    const double resident = gpuResidentBytes(raw);
    EXPECT_DOUBLE_EQ(resident, raw * kFragmentationFactor +
                                   kGpuFixedOverhead);
    EXPECT_GT(resident, raw);
}

TEST(GpuResident, ZeroStillHasFixedOverhead)
{
    EXPECT_DOUBLE_EQ(gpuResidentBytes(0.0), kGpuFixedOverhead);
}

class ActivationMonotoneTest
    : public ::testing::TestWithParam<std::uint32_t> // SP degree
{
};

TEST_P(ActivationMonotoneTest, MonotoneInBatch)
{
    const ModelConfig cfg = modelPreset("5B");
    ActivationOptions opts;
    opts.sequence_parallel = GetParam();
    double prev = 0.0;
    for (double batch = 1.0; batch <= 64.0; batch *= 2.0) {
        const double a = activationBytes(cfg, batch, 2048.0, opts);
        EXPECT_GT(a, prev);
        prev = a;
    }
}

INSTANTIATE_TEST_SUITE_P(SpDegrees, ActivationMonotoneTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace so::model
