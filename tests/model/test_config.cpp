#include "model/config.h"

#include <gtest/gtest.h>

namespace so::model {
namespace {

TEST(ModelConfig, ParameterCountFormula)
{
    const ModelConfig cfg = makeConfig("test", 10, 1024);
    EXPECT_DOUBLE_EQ(cfg.matmulParams(), 12.0 * 10 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(cfg.embeddingParams(), 51200.0 * 1024);
    EXPECT_DOUBLE_EQ(cfg.params(),
                     cfg.matmulParams() + cfg.embeddingParams());
    EXPECT_DOUBLE_EQ(cfg.paramsPerLayer(), 12.0 * 1024 * 1024);
}

TEST(ModelConfig, HeadsDerivedFromHidden)
{
    EXPECT_EQ(makeConfig("a", 2, 2048).heads, 16u);
    EXPECT_EQ(makeConfig("b", 2, 8192).heads, 64u);
}

TEST(ModelConfig, SummaryMentionsDimensions)
{
    const std::string s = modelPreset("5B").summary();
    EXPECT_NE(s.find("44L"), std::string::npos);
    EXPECT_NE(s.find("3072h"), std::string::npos);
}

struct PresetSize
{
    const char *name;
    double billions;
};

class PresetSizeTest : public ::testing::TestWithParam<PresetSize>
{
};

TEST_P(PresetSizeTest, ParameterCountNearNominal)
{
    // Appendix A configurations should land within 20% of their
    // nominal sizes (the paper rounds aggressively).
    const ModelConfig cfg = modelPreset(GetParam().name);
    const double nominal = GetParam().billions * 1e9;
    EXPECT_NEAR(cfg.params(), nominal, nominal * 0.20)
        << cfg.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AppendixA, PresetSizeTest,
    ::testing::Values(PresetSize{"1B", 1.0}, PresetSize{"2B", 2.0},
                      PresetSize{"3B", 3.0}, PresetSize{"4B", 4.0},
                      PresetSize{"5B", 5.0}, PresetSize{"6B", 6.0},
                      PresetSize{"8B", 8.0}, PresetSize{"10B", 10.0},
                      PresetSize{"11B", 11.0}, PresetSize{"12B", 12.0},
                      PresetSize{"13B", 13.0}, PresetSize{"15B", 15.0},
                      PresetSize{"20B", 20.0}, PresetSize{"25B", 25.0},
                      PresetSize{"30B", 30.0}, PresetSize{"50B", 50.0},
                      PresetSize{"60B", 60.0}, PresetSize{"70B", 70.0},
                      PresetSize{"80B", 80.0}, PresetSize{"150B", 150.0},
                      PresetSize{"175B", 175.0},
                      PresetSize{"200B", 200.0}));

TEST(ModelPresets, MatchAppendixADimensions)
{
    // Spot-check Table 4 rows.
    EXPECT_EQ(modelPreset("1B").layers, 20u);
    EXPECT_EQ(modelPreset("1B").hidden, 2048u);
    EXPECT_EQ(modelPreset("5B").layers, 44u);
    EXPECT_EQ(modelPreset("5B").hidden, 3072u);
    EXPECT_EQ(modelPreset("25B").layers, 30u);
    EXPECT_EQ(modelPreset("25B").hidden, 8192u);
    EXPECT_EQ(modelPreset("200B").layers, 60u);
    EXPECT_EQ(modelPreset("200B").hidden, 16384u);
}

TEST(ModelPresets, ListIsSortedAscendingInSize)
{
    const auto presets = modelPresets();
    ASSERT_GT(presets.size(), 10u);
    for (std::size_t i = 1; i < presets.size(); ++i)
        EXPECT_LT(presets[i - 1].params(), presets[i].params());
}

TEST(ModelPresets, HasModelPreset)
{
    EXPECT_TRUE(hasModelPreset("13B"));
    EXPECT_FALSE(hasModelPreset("13.5B"));
}

TEST(ModelPresetsDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(modelPreset("999B"), ::testing::ExitedWithCode(1),
                "unknown model preset");
}

TEST(ModelConfigDeath, HiddenMustBeMultipleOf128)
{
    EXPECT_DEATH(makeConfig("bad", 2, 100), "multiple of 128");
}

} // namespace
} // namespace so::model
