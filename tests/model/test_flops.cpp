#include "model/flops.h"

#include <gtest/gtest.h>

#include "model/config.h"

namespace so::model {
namespace {

TEST(Flops, ForwardGemmMatchesTwoPsTimesTokens)
{
    const ModelConfig cfg = modelPreset("5B");
    const double tokens = 8.0 * 1024.0;
    const double expected =
        2.0 * tokens * cfg.matmulParams() +
        2.0 * tokens * cfg.hidden * cfg.vocab;
    EXPECT_DOUBLE_EQ(fwdGemmFlops(cfg, 8.0, 1024.0), expected);
}

TEST(Flops, AttentionQuadraticInSequence)
{
    const ModelConfig cfg = modelPreset("5B");
    const double a1 = fwdAttnFlops(cfg, 1.0, 1024.0);
    const double a2 = fwdAttnFlops(cfg, 1.0, 2048.0);
    EXPECT_NEAR(a2 / a1, 4.0, 1e-9);
}

TEST(Flops, GemmLinearInSequence)
{
    const ModelConfig cfg = modelPreset("5B");
    const double g1 = fwdGemmFlops(cfg, 1.0, 1024.0);
    const double g2 = fwdGemmFlops(cfg, 1.0, 2048.0);
    EXPECT_NEAR(g2 / g1, 2.0, 1e-9);
}

TEST(Flops, BackwardIsTwiceForward)
{
    const IterationFlops f =
        iterationFlops(modelPreset("5B"), 8.0, 1024.0, false);
    EXPECT_DOUBLE_EQ(f.bwd_gemm, 2.0 * f.fwd_gemm);
    EXPECT_DOUBLE_EQ(f.bwd_attn, 2.0 * f.fwd_attn);
    EXPECT_DOUBLE_EQ(f.recompute_gemm, 0.0);
}

TEST(Flops, CheckpointingAddsOneForward)
{
    const ModelConfig cfg = modelPreset("5B");
    const IterationFlops plain = iterationFlops(cfg, 8.0, 1024.0, false);
    const IterationFlops ckpt = iterationFlops(cfg, 8.0, 1024.0, true);
    EXPECT_DOUBLE_EQ(ckpt.recompute_gemm, plain.fwd_gemm);
    EXPECT_DOUBLE_EQ(ckpt.recompute_attn, plain.fwd_attn);
    // Model flops (the effective-TFLOPS numerator) exclude recompute.
    EXPECT_DOUBLE_EQ(ckpt.modelFlops(), plain.modelFlops());
    EXPECT_GT(ckpt.executedFlops(), plain.executedFlops());
    EXPECT_NEAR(ckpt.executedFlops() / plain.executedFlops(), 4.0 / 3.0,
                1e-9);
}

TEST(Flops, AttentionDominatesAtMillionTokens)
{
    // §5.3's regime: at 1M tokens the quadratic term dwarfs the GEMMs.
    const ModelConfig cfg = modelPreset("13B");
    const IterationFlops f = iterationFlops(cfg, 1.0, 1048576.0, false);
    EXPECT_GT(f.fwd_attn, 10.0 * f.fwd_gemm);
}

TEST(Flops, GemmDominatesAtShortSequences)
{
    const ModelConfig cfg = modelPreset("13B");
    const IterationFlops f = iterationFlops(cfg, 8.0, 1024.0, false);
    EXPECT_GT(f.fwd_gemm, 10.0 * f.fwd_attn);
}

TEST(Flops, SixPsTokensRuleOfThumb)
{
    // fwd+bwd GEMM flops ~ 6 * params * tokens for short sequences.
    const ModelConfig cfg = modelPreset("10B");
    const double tokens = 4.0 * 1024.0;
    const IterationFlops f = iterationFlops(cfg, 4.0, 1024.0, false);
    const double six_pt = 6.0 * cfg.params() * tokens;
    EXPECT_NEAR((f.fwd_gemm + f.bwd_gemm) / six_pt, 1.0, 0.05);
}

TEST(Mfu, KnownValue)
{
    IterationFlops f;
    f.fwd_gemm = 1e12;
    f.bwd_gemm = 2e12;
    // 3e12 flops in 1 s on 1 GPU with 10 TFLOPS peak = 30% MFU.
    EXPECT_DOUBLE_EQ(mfu(f, 1.0, 1.0, 10e12), 0.3);
}

TEST(Mfu, ExcludesRecompute)
{
    IterationFlops f;
    f.fwd_gemm = 1e12;
    f.bwd_gemm = 2e12;
    f.recompute_gemm = 1e12;
    EXPECT_DOUBLE_EQ(mfu(f, 1.0, 1.0, 10e12), 0.3);
}

TEST(Flops, TotalsAggregateCorrectly)
{
    const IterationFlops f =
        iterationFlops(modelPreset("1B"), 2.0, 512.0, true);
    EXPECT_DOUBLE_EQ(f.totalGemm(),
                     f.fwd_gemm + f.bwd_gemm + f.recompute_gemm);
    EXPECT_DOUBLE_EQ(f.totalAttn(),
                     f.fwd_attn + f.bwd_attn + f.recompute_attn);
    EXPECT_DOUBLE_EQ(f.executedFlops(), f.totalGemm() + f.totalAttn());
}

} // namespace
} // namespace so::model
