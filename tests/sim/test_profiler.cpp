/**
 * @file
 * Schedule-profiler invariant tests: the critical path is a contiguous
 * chain whose length equals the makespan, slack is zero exactly on the
 * path and positive off it, per-resource idle gaps agree with
 * Timeline::idleTime and the three idle causes partition each
 * resource's idle time — including on a SuperOffload-shaped offloading
 * pipeline. The JSON/trace exports round-trip through the common JSON
 * parser.
 */
#include "sim/profiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/json.h"
#include "sim/graph.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace so::sim {
namespace {

/**
 * A miniature SuperOffload iteration: forward + backward layer chains
 * on the GPU, per-layer gradient buckets draining over D2H into a CPU
 * Adam step, updated parameters returning over H2D, and a final GPU
 * cast gated on every returned bucket — the shape whose idle structure
 * the profiler exists to explain.
 */
TaskGraph
superOffloadLikeGraph(std::uint32_t layers = 5)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    const ResourceId h2d = g.addResource("H2D");
    const ResourceId d2h = g.addResource("D2H");

    std::vector<TaskId> fwd, bwd;
    for (std::uint32_t l = 0; l < layers; ++l) {
        std::vector<TaskId> deps;
        if (l > 0)
            deps.push_back(fwd.back());
        fwd.push_back(g.addTask(gpu, 0.010, "fwd L" + std::to_string(l),
                                std::move(deps)));
    }
    for (std::uint32_t l = layers; l-- > 0;) {
        std::vector<TaskId> deps{bwd.empty() ? fwd.back() : bwd.back()};
        bwd.push_back(g.addTask(gpu, 0.020, "bwd L" + std::to_string(l),
                                std::move(deps)));
    }
    std::vector<TaskId> returns;
    for (std::uint32_t l = 0; l < layers; ++l) {
        const TaskId grad = g.addTask(
            d2h, 0.008, "d2h bucket " + std::to_string(l), {bwd[l]});
        const TaskId adam = g.addTask(
            cpu, 0.015, "adam bucket " + std::to_string(l), {grad});
        returns.push_back(g.addTask(
            h2d, 0.008, "h2d bucket " + std::to_string(l), {adam}));
    }
    g.addTask(gpu, 0.004, "cast params", returns);
    return g;
}

void
expectProfileInvariants(const TaskGraph &g, const Schedule &s)
{
    const ScheduleProfile prof = profileSchedule(g, s);

    // Critical-path length reproduces the makespan.
    EXPECT_NEAR(prof.critical_length, s.makespan, 1e-9);
    ASSERT_FALSE(prof.critical_path.empty());

    // The chain is contiguous: starts at 0, each start coincides with
    // the previous finish, and it ends at the last finish.
    EXPECT_DOUBLE_EQ(s.start[prof.critical_path.front().task], 0.0);
    EXPECT_EQ(prof.critical_path.front().link, CriticalLink::Start);
    for (std::size_t i = 1; i < prof.critical_path.size(); ++i) {
        const TaskId prev = prof.critical_path[i - 1].task;
        const TaskId cur = prof.critical_path[i].task;
        EXPECT_NEAR(s.finish[prev], s.start[cur], 1e-12);
        EXPECT_NE(prof.critical_path[i].link, CriticalLink::Start);
    }
    EXPECT_NEAR(s.finish[prof.critical_path.back().task], s.makespan,
                1e-12);

    // Critical-path tasks have zero slack.
    for (const CriticalStep &step : prof.critical_path)
        EXPECT_NEAR(prof.slack[step.task], 0.0, 1e-9);

    // Per resource: gaps agree with the timeline's own idle
    // accounting, and the three causes partition the idle time.
    ASSERT_EQ(prof.resources.size(), g.resourceCount());
    for (ResourceId r = 0; r < g.resourceCount(); ++r) {
        const ResourceProfile &rp = prof.resources[r];
        EXPECT_NEAR(rp.idle, s.timelines[r].idleTime(0.0, s.makespan),
                    1e-9);
        EXPECT_NEAR(rp.busy + rp.idle, s.makespan, 1e-9);
        EXPECT_NEAR(rp.idle_dependency + rp.idle_contention +
                        rp.idle_tail,
                    rp.idle, 1e-12);
        double gap_total = 0.0;
        for (const IdleGap &gap : rp.gaps) {
            EXPECT_GT(gap.end, gap.begin);
            gap_total += gap.length();
        }
        EXPECT_NEAR(gap_total, rp.idle, 1e-12);
    }
}

TEST(Profiler, ChainCriticalPathCoversEverything)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const TaskId a = g.addTask(gpu, 1.0, "a");
    const TaskId b = g.addTask(gpu, 2.0, "b", {a});
    g.addTask(gpu, 3.0, "c", {b});
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    EXPECT_DOUBLE_EQ(prof.critical_length, 6.0);
    ASSERT_EQ(prof.critical_path.size(), 3u);
    EXPECT_EQ(prof.critical_path[0].task, a);
    EXPECT_EQ(prof.critical_path[2].task, 2u);
    for (double sl : prof.slack)
        EXPECT_DOUBLE_EQ(sl, 0.0);
    expectProfileInvariants(g, s);
}

TEST(Profiler, DiamondOffPathTaskHasSlack)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    const TaskId a = g.addTask(gpu, 1.0, "a");
    const TaskId fast = g.addTask(cpu, 0.5, "fast", {a});
    const TaskId slow = g.addTask(gpu, 2.0, "slow", {a});
    g.addTask(gpu, 1.0, "join", {fast, slow});
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    // The fast branch could slip until the slow branch finishes.
    EXPECT_DOUBLE_EQ(prof.slack[fast], 1.5);
    EXPECT_DOUBLE_EQ(prof.slack[slow], 0.0);
    EXPECT_DOUBLE_EQ(prof.slack[a], 0.0);
    expectProfileInvariants(g, s);
}

TEST(Profiler, ResourceLinkAppearsWhenSlotHandsOff)
{
    // Two independent tasks serialize on one GPU slot; the second is
    // on the critical path via a Resource link, not a Dependency link.
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    g.addTask(gpu, 1.0, "first");
    const TaskId second = g.addTask(gpu, 2.0, "second");
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    ASSERT_EQ(prof.critical_path.size(), 2u);
    EXPECT_EQ(prof.critical_path[1].task, second);
    EXPECT_EQ(prof.critical_path[1].link, CriticalLink::Resource);
    expectProfileInvariants(g, s);
}

TEST(Profiler, IdleCauseDependencyWait)
{
    // CPU waits for a GPU producer that ran unobstructed: the CPU's
    // leading gap is dependency-wait; its trailing gap is tail.
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    const TaskId produce = g.addTask(gpu, 2.0, "produce");
    g.addTask(cpu, 1.0, "consume", {produce});
    g.addTask(gpu, 3.0, "more gpu", {produce});
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    const ResourceProfile &cpu_prof = prof.resources[cpu];
    ASSERT_EQ(cpu_prof.gaps.size(), 2u);
    EXPECT_EQ(cpu_prof.gaps[0].cause, IdleCause::DependencyWait);
    EXPECT_DOUBLE_EQ(cpu_prof.gaps[0].length(), 2.0);
    EXPECT_EQ(cpu_prof.gaps[1].cause, IdleCause::Tail);
    EXPECT_DOUBLE_EQ(cpu_prof.gaps[1].length(), 2.0);
    expectProfileInvariants(g, s);
}

TEST(Profiler, IdleCauseResourceContention)
{
    // The consumer's producer was ready at t=0 but queued behind
    // another GPU task: the consumer-side gap is contention, not
    // dependency-wait.
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    g.addTask(gpu, 1.0, "other work");
    const TaskId produce = g.addTask(gpu, 1.0, "produce");
    g.addTask(cpu, 0.5, "consume", {produce});
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    ASSERT_FALSE(prof.resources[cpu].gaps.empty());
    EXPECT_EQ(prof.resources[cpu].gaps[0].cause,
              IdleCause::ResourceContention);
    EXPECT_GT(prof.resources[cpu].idle_contention, 0.0);
    expectProfileInvariants(g, s);
}

TEST(Profiler, NeverUsedResourceIsAllTail)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId spare = g.addResource("NVMe");
    g.addTask(gpu, 1.0, "work");
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    EXPECT_DOUBLE_EQ(prof.resources[spare].idle_tail, 1.0);
    EXPECT_DOUBLE_EQ(prof.resources[spare].busy, 0.0);
    expectProfileInvariants(g, s);
}

TEST(Profiler, SuperOffloadShapedScheduleInvariants)
{
    const TaskGraph g = superOffloadLikeGraph();
    const Schedule s = Scheduler().run(g);
    expectProfileInvariants(g, s);
    const ScheduleProfile prof = profileSchedule(g, s);
    // The offload pipeline spans several resources: the path must
    // leave the GPU (D2H/CPU/H2D tasks on it).
    bool off_gpu = false;
    for (const CriticalStep &step : prof.critical_path)
        off_gpu |= g.taskResource(step.task) != 0;
    EXPECT_TRUE(off_gpu);
    // Phase attribution covers the whole path.
    double phase_total = 0.0;
    for (const auto &[phase, seconds] : prof.critical_phases)
        phase_total += seconds;
    EXPECT_NEAR(phase_total, prof.critical_length, 1e-12);
}

TEST(Profiler, TopZeroSlackTasksAreSortedAndCapped)
{
    const TaskGraph g = superOffloadLikeGraph();
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    const std::vector<TaskId> hot = topZeroSlackTasks(prof, g, 3);
    ASSERT_LE(hot.size(), 3u);
    ASSERT_FALSE(hot.empty());
    const double eps = std::max(prof.makespan, 1.0) * 1e-12;
    for (std::size_t i = 0; i < hot.size(); ++i) {
        EXPECT_LE(prof.slack[hot[i]], eps);
        EXPECT_GT(g.duration(hot[i]), 0.0);
        if (i > 0)
            EXPECT_GE(g.duration(hot[i - 1]), g.duration(hot[i]));
    }
}

TEST(Profiler, EmptyGraphProfilesCleanly)
{
    TaskGraph g;
    g.addResource("GPU");
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    EXPECT_DOUBLE_EQ(prof.makespan, 0.0);
    EXPECT_TRUE(prof.critical_path.empty());
    ASSERT_EQ(prof.resources.size(), 1u);
    EXPECT_TRUE(prof.resources[0].gaps.empty());
}

TEST(Profiler, ProfileJsonParsesWithExpectedStructure)
{
    const TaskGraph g = superOffloadLikeGraph();
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    const std::string doc_text = profileToJson(prof, g, s, 4);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(doc_text, doc, &error)) << error;
    EXPECT_NEAR(doc.at("makespan_s").number(), s.makespan, 1e-9);
    EXPECT_NEAR(doc.at("critical_path").at("length_s").number(),
                s.makespan, 1e-6);
    EXPECT_FALSE(doc.at("critical_path").at("tasks").items().empty());

    // Phase shares sum to 1 over the critical path.
    double share = 0.0;
    for (const JsonValue &phase :
         doc.at("critical_path").at("phases").items())
        share += phase.at("share").number();
    EXPECT_NEAR(share, 1.0, 1e-9);

    EXPECT_LE(doc.at("zero_slack_tasks").items().size(), 4u);

    // Idle causes partition each resource's idle time.
    for (const JsonValue &res : doc.at("resources").items()) {
        const double idle = res.at("idle_s").number();
        const double split = res.at("idle_dependency_s").number() +
                             res.at("idle_contention_s").number() +
                             res.at("idle_tail_s").number();
        EXPECT_NEAR(split, idle, 1e-9);
        EXPECT_EQ(res.at("gaps").items().size() == 0, idle == 0.0);
    }
}

TEST(Profiler, ProfileAwareTraceCarriesFlowAndCounters)
{
    const TaskGraph g = superOffloadLikeGraph();
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    const std::string trace = toChromeTrace(g, s, prof);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(trace, doc, &error)) << error;
    std::size_t flow_start = 0, flow_finish = 0, counters = 0,
                complete = 0;
    for (const JsonValue &ev : doc.at("traceEvents").items()) {
        const std::string &ph = ev.at("ph").text();
        if (ph == "s")
            ++flow_start;
        else if (ph == "f")
            ++flow_finish;
        else if (ph == "C")
            ++counters;
        else if (ph == "X")
            ++complete;
    }
    EXPECT_EQ(flow_start, prof.critical_path.size() - 1);
    EXPECT_EQ(flow_finish, prof.critical_path.size() - 1);
    EXPECT_GT(counters, 0u);
    EXPECT_EQ(complete, g.taskCount());

    // The base (2-argument) trace is a strict prefix structurally: the
    // profile overload only appends events.
    const std::string base = toChromeTrace(g, s);
    JsonValue base_doc;
    ASSERT_TRUE(JsonValue::parse(base, base_doc, &error)) << error;
    EXPECT_LT(base_doc.at("traceEvents").items().size(),
              doc.at("traceEvents").items().size());
}

} // namespace
} // namespace so::sim
