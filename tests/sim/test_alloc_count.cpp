/**
 * @file
 * Pinned allocation-count test for the simulation hot path.
 *
 * Overrides global operator new/delete with counting versions (which is
 * why this test lives in its own binary) and compares one simulated
 * "cell" — build a task graph, schedule it — against a mock of the
 * pre-SoA representation: array-of-structs tasks each owning a
 * heap-allocated label string and dependency vector, plus per-run
 * scheduler scratch. The SoA graph + reusable workspace must come in at
 * least 3x under that baseline.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "sim/graph.h"
#include "sim/scheduler.h"

namespace {

std::atomic<std::size_t> g_alloc_calls{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(align),
                       size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace so::sim {
namespace {

constexpr std::uint32_t kLayers = 64;
constexpr std::uint32_t kAccumSteps = 4;

std::size_t
allocsDuring(const std::function<void()> &fn)
{
    const std::size_t before =
        g_alloc_calls.load(std::memory_order_relaxed);
    fn();
    return g_alloc_calls.load(std::memory_order_relaxed) - before;
}

/** Labels shaped like the runtime systems', some beyond SSO length. */
std::string
layerLabel(const char *phase, std::uint32_t l)
{
    return std::string(phase) + " L" + std::to_string(l);
}

/**
 * One representative simulated cell on the current implementation:
 * reserve-sized SoA graph, offload-shaped schedule, reused workspace.
 */
void
buildAndScheduleCell(Scheduler::Workspace &ws)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId d2h = g.addResource("D2H");
    const ResourceId cpu = g.addResource("CPU");
    g.reserveTasks(static_cast<std::size_t>(kAccumSteps) * 2 * kLayers +
                       2 * kLayers + 1,
                   16 * kLayers);
    g.reserveEdges(static_cast<std::size_t>(kAccumSteps) * 2 * kLayers +
                   3 * kLayers + 1);

    TaskId prev = kInvalidTask;
    std::vector<TaskId> casts;
    casts.reserve(kLayers);
    for (std::uint32_t step = 0; step < kAccumSteps; ++step) {
        for (std::uint32_t l = 0; l < kLayers; ++l) {
            if (prev == kInvalidTask)
                prev = g.addTask(gpu, 1e-3, layerLabel("fwd", l));
            else
                prev = g.addTask(gpu, 1e-3, layerLabel("fwd", l), {prev});
        }
        const bool last = step + 1 == kAccumSteps;
        for (std::uint32_t l = kLayers; l-- > 0;) {
            prev = g.addTask(gpu, 2e-3, layerLabel("bwd", l), {prev});
            if (!last)
                continue;
            const TaskId moved =
                g.addTask(d2h, 5e-4, layerLabel("d2h g", l), {prev});
            casts.push_back(g.addTask(
                cpu, 8e-4, "adam (fused, per-bucket dispatch)", {moved}));
        }
    }
    g.addTask(cpu, 1e-4, "grad-norm+check", casts);
    const Schedule sched = Scheduler().run(g, ws);
    ASSERT_GT(sched.makespan, 0.0);
}

/**
 * Allocation-faithful mock of the pre-refactor representation: what one
 * cell used to cost. Tasks are array-of-structs with owned label +
 * deps; the scheduler re-allocates its scratch every run.
 */
void
buildAndScheduleAosBaseline()
{
    struct AosTask
    {
        double duration = 0.0;
        ResourceId resource = 0;
        std::int32_t priority = 0;
        std::string label;
        std::vector<TaskId> deps;
    };
    std::vector<AosTask> tasks; // No reserve: push_back growth, as before.

    auto add = [&tasks](ResourceId r, double dur, std::string label,
                        std::vector<TaskId> deps) {
        tasks.push_back(
            AosTask{dur, r, 0, std::move(label), std::move(deps)});
        return static_cast<TaskId>(tasks.size() - 1);
    };

    TaskId prev = kInvalidTask;
    std::vector<TaskId> casts;
    for (std::uint32_t step = 0; step < kAccumSteps; ++step) {
        for (std::uint32_t l = 0; l < kLayers; ++l) {
            std::vector<TaskId> deps;
            if (prev != kInvalidTask)
                deps.push_back(prev);
            prev = add(0, 1e-3, layerLabel("fwd", l), std::move(deps));
        }
        const bool last = step + 1 == kAccumSteps;
        for (std::uint32_t l = kLayers; l-- > 0;) {
            prev = add(0, 2e-3, layerLabel("bwd", l), {prev});
            if (!last)
                continue;
            const TaskId moved =
                add(1, 5e-4, layerLabel("d2h g", l), {prev});
            casts.push_back(add(
                2, 8e-4, "adam (fused, per-bucket dispatch)", {moved}));
        }
    }
    add(2, 1e-4, "grad-norm+check", casts);

    // Scheduler scratch, fresh per run as the old implementation did:
    // pending counts, one dependents vector per task, per-resource
    // ready queues and slot lists, completion flags, event queue.
    const std::size_t n = tasks.size();
    std::vector<std::uint32_t> pending(n, 0);
    std::vector<std::vector<TaskId>> dependents(n);
    for (TaskId id = 0; id < n; ++id) {
        pending[id] = static_cast<std::uint32_t>(tasks[id].deps.size());
        for (TaskId dep : tasks[id].deps)
            dependents[dep].push_back(id);
    }
    std::vector<std::priority_queue<std::pair<std::int32_t, TaskId>>>
        ready(3);
    std::vector<std::vector<double>> slot_free(3,
                                               std::vector<double>(1));
    std::vector<char> done(n, 0);
    std::vector<double> start(n, 0.0), finish(n, 0.0);
    // Drive a trivial topological pass so the mock's scratch is really
    // touched (the exact policy is irrelevant to allocation counts).
    double clock = 0.0;
    for (TaskId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            ready[tasks[id].resource].push({tasks[id].priority, id});
    }
    std::size_t scheduled = 0;
    while (scheduled < n) {
        for (std::size_t r = 0; r < ready.size(); ++r) {
            while (!ready[r].empty()) {
                const TaskId id = ready[r].top().second;
                ready[r].pop();
                start[id] = clock;
                clock += tasks[id].duration;
                finish[id] = clock;
                done[id] = 1;
                ++scheduled;
                for (TaskId next : dependents[id])
                    if (--pending[next] == 0)
                        ready[tasks[next].resource].push(
                            {tasks[next].priority, next});
            }
        }
    }
    ASSERT_GT(clock, 0.0);
}

TEST(AllocCount, SoaCellAllocatesThreeTimesLessThanAosBaseline)
{
    // Warm the reusable workspace (and any lazy library state) so the
    // measured cell reflects the sweep steady state, where thousands of
    // cells share one workspace per worker thread.
    Scheduler::Workspace ws;
    buildAndScheduleCell(ws);

    const std::size_t baseline =
        allocsDuring([] { buildAndScheduleAosBaseline(); });
    const std::size_t measured =
        allocsDuring([&ws] { buildAndScheduleCell(ws); });

    RecordProperty("baseline_allocs", static_cast<int>(baseline));
    RecordProperty("measured_allocs", static_cast<int>(measured));

    ASSERT_GT(measured, 0u);
    EXPECT_GE(baseline, 3 * measured)
        << "SoA cell allocates " << measured << " times vs AoS baseline "
        << baseline << " — expected at least a 3x reduction";
}

TEST(AllocCount, RepeatCellsDoNotGrowAllocationCount)
{
    // Workspace reuse means cell N+1 never allocates more than cell N
    // once warm (same graph shape): the scratch heaps are retained.
    Scheduler::Workspace ws;
    buildAndScheduleCell(ws);
    const std::size_t second =
        allocsDuring([&ws] { buildAndScheduleCell(ws); });
    const std::size_t third =
        allocsDuring([&ws] { buildAndScheduleCell(ws); });
    EXPECT_LE(third, second);
}

} // namespace
} // namespace so::sim
