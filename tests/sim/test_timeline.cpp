#include "sim/timeline.h"

#include <gtest/gtest.h>

namespace so::sim {
namespace {

TEST(Timeline, EmptyTimeline)
{
    Timeline t;
    EXPECT_TRUE(t.empty());
    EXPECT_DOUBLE_EQ(t.busyTime(0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(t.idleTime(0.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(t.utilization(0.0, 10.0), 0.0);
}

TEST(Timeline, SingleInterval)
{
    Timeline t;
    t.add(1.0, 3.0, 0);
    EXPECT_DOUBLE_EQ(t.busyTime(0.0, 10.0), 2.0);
    EXPECT_DOUBLE_EQ(t.idleTime(0.0, 10.0), 8.0);
    EXPECT_DOUBLE_EQ(t.utilization(0.0, 10.0), 0.2);
}

TEST(Timeline, ClampsToWindow)
{
    Timeline t;
    t.add(0.0, 10.0, 0);
    EXPECT_DOUBLE_EQ(t.busyTime(2.0, 5.0), 3.0);
    EXPECT_DOUBLE_EQ(t.busyTime(-5.0, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(t.busyTime(10.0, 20.0), 0.0);
}

TEST(Timeline, OverlappingIntervalsCountOnce)
{
    Timeline t;
    t.add(0.0, 4.0, 0, 0);
    t.add(2.0, 6.0, 1, 1); // Second slot overlaps.
    EXPECT_DOUBLE_EQ(t.busyTime(0.0, 10.0), 6.0);
    EXPECT_DOUBLE_EQ(t.totalSlotSeconds(), 8.0);
}

TEST(Timeline, DisjointIntervals)
{
    Timeline t;
    t.add(0.0, 1.0, 0);
    t.add(5.0, 6.0, 1);
    t.add(2.0, 3.0, 2); // Out of order insertion is fine.
    EXPECT_DOUBLE_EQ(t.busyTime(0.0, 10.0), 3.0);
}

TEST(Timeline, AdjacentIntervalsMerge)
{
    Timeline t;
    t.add(0.0, 1.0, 0);
    t.add(1.0, 2.0, 1);
    EXPECT_DOUBLE_EQ(t.busyTime(0.0, 2.0), 2.0);
}

TEST(Timeline, ZeroLengthIntervalIgnored)
{
    Timeline t;
    t.add(1.0, 1.0, 0);
    EXPECT_TRUE(t.empty());
}

TEST(Timeline, FirstStartAndLastEnd)
{
    Timeline t;
    t.add(3.0, 4.0, 0);
    t.add(1.0, 2.0, 1);
    t.add(5.0, 9.0, 2);
    EXPECT_DOUBLE_EQ(t.firstStart(), 1.0);
    EXPECT_DOUBLE_EQ(t.lastEnd(), 9.0);
}

TEST(Timeline, EmptyWindowReturnsZero)
{
    Timeline t;
    t.add(0.0, 1.0, 0);
    EXPECT_DOUBLE_EQ(t.busyTime(5.0, 5.0), 0.0);
    EXPECT_DOUBLE_EQ(t.utilization(5.0, 5.0), 0.0);
}

TEST(TimelineDeath, RejectsBackwardsInterval)
{
    Timeline t;
    EXPECT_DEATH(t.add(2.0, 1.0, 0), "ends before");
}

} // namespace
} // namespace so::sim
