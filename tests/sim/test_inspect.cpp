/**
 * @file
 * Inspection-bundle tests: makeInspectionBundle flattens exactly the
 * schedule it was given (every task id, every dependency edge, the
 * profiler's slack/critical/idle data), and the JSON export round-trips
 * through bundleFromJson field for field. Malformed documents are
 * rejected with an error instead of producing a half-filled bundle.
 */
#include "sim/inspect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/json.h"
#include "common/schema.h"
#include "sim/graph.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace so::sim {
namespace {

/** Two-resource pipeline with a fan-in, enough to exercise slots. */
TaskGraph
pipelineGraph()
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId d2h = g.addResource("D2H", 2);
    const TaskId f0 = g.addTask(gpu, 0.010, "fwd L0", {});
    const TaskId f1 = g.addTask(gpu, 0.010, "fwd L1", {f0});
    const TaskId b1 = g.addTask(gpu, 0.020, "bwd L1", {f1});
    const TaskId b0 = g.addTask(gpu, 0.020, "bwd L0", {b1});
    const TaskId g1 = g.addTask(d2h, 0.015, "d2h bucket 1", {b1});
    const TaskId g0 = g.addTask(d2h, 0.015, "d2h bucket 0", {b0});
    g.addTask(gpu, 0.005, "cast params", {g0, g1});
    return g;
}

struct Built
{
    TaskGraph graph;
    Schedule schedule;
    ScheduleProfile profile;
    InspectionBundle bundle;
};

Built
buildBundle(const std::string &label = "unit")
{
    Built b;
    b.graph = pipelineGraph();
    b.schedule = Scheduler().run(b.graph);
    b.profile = profileSchedule(b.graph, b.schedule);
    b.bundle =
        makeInspectionBundle(b.graph, b.schedule, b.profile, label);
    return b;
}

TEST(InspectionBundle, FlattensScheduleExactly)
{
    const Built b = buildBundle();
    EXPECT_EQ(b.bundle.label, "unit");
    EXPECT_DOUBLE_EQ(b.bundle.makespan, b.schedule.makespan);
    ASSERT_EQ(b.bundle.tasks.size(), b.graph.taskCount());
    ASSERT_EQ(b.bundle.resources.size(), b.graph.resourceCount());

    for (TaskId id = 0; id < b.graph.taskCount(); ++id) {
        const TaskSpan &span = b.bundle.tasks[id];
        EXPECT_EQ(span.task, id);
        EXPECT_EQ(span.label, b.graph.label(id));
        EXPECT_EQ(span.phase, phaseKey(b.graph.label(id)));
        EXPECT_EQ(span.resource, b.graph.taskResource(id));
        EXPECT_DOUBLE_EQ(span.start, b.schedule.start[id]);
        EXPECT_DOUBLE_EQ(span.end, b.schedule.finish[id]);
        EXPECT_DOUBLE_EQ(span.slack, b.profile.slack[id]);
    }

    // Every dependency edge appears exactly once, as (before, after).
    std::set<std::pair<TaskId, TaskId>> edges(b.bundle.edges.begin(),
                                              b.bundle.edges.end());
    EXPECT_EQ(edges.size(), b.bundle.edges.size());
    std::size_t expected = 0;
    for (TaskId id = 0; id < b.graph.taskCount(); ++id)
        for (TaskId dep : b.graph.deps(id)) {
            EXPECT_TRUE(edges.count({dep, id}))
                << "missing edge " << dep << " -> " << id;
            ++expected;
        }
    EXPECT_EQ(edges.size(), expected);

    // The critical path mirrors the profiler's, and every task on it
    // carries the critical flag (and zero slack).
    ASSERT_EQ(b.bundle.critical_path.size(),
              b.profile.critical_path.size());
    for (std::size_t i = 0; i < b.bundle.critical_path.size(); ++i) {
        const TaskId id = b.bundle.critical_path[i];
        EXPECT_EQ(id, b.profile.critical_path[i].task);
        EXPECT_TRUE(b.bundle.tasks[id].critical);
    }

    // Slot lanes stay within each resource's declared slot count.
    for (const TaskSpan &span : b.bundle.tasks)
        EXPECT_LT(span.slot, b.bundle.resources[span.resource].slots);

    // Resource summaries restate the profiler's idle attribution.
    for (ResourceId r = 0; r < b.graph.resourceCount(); ++r) {
        EXPECT_EQ(b.bundle.resources[r].name, b.graph.resource(r).name);
        EXPECT_DOUBLE_EQ(b.bundle.resources[r].busy,
                         b.profile.resources[r].busy);
        EXPECT_EQ(b.bundle.resources[r].gaps.size(),
                  b.profile.resources[r].gaps.size());
    }
}

TEST(InspectionBundle, JsonRoundTripPreservesEveryField)
{
    const Built b = buildBundle("round-trip");
    const std::string doc = bundleToJson(b.bundle);

    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(doc, parsed, &error)) << error;
    EXPECT_EQ(parsed.at("kind").text(), "inspection_bundle");
    EXPECT_DOUBLE_EQ(parsed.at("schema_version").number(),
                     static_cast<double>(kSchemaVersion));

    InspectionBundle back;
    ASSERT_TRUE(bundleFromJson(parsed, back, &error)) << error;

    // Doubles compare with a tolerance: the JSON writer prints ~15
    // significant digits, one ulp short of binary round-tripping.
    constexpr double kUlp = 1e-12;
    EXPECT_EQ(back.label, b.bundle.label);
    EXPECT_NEAR(back.makespan, b.bundle.makespan, kUlp);
    ASSERT_EQ(back.tasks.size(), b.bundle.tasks.size());
    for (std::size_t i = 0; i < back.tasks.size(); ++i) {
        const TaskSpan &a = b.bundle.tasks[i];
        const TaskSpan &c = back.tasks[i];
        EXPECT_EQ(c.task, a.task);
        EXPECT_EQ(c.label, a.label);
        EXPECT_EQ(c.phase, a.phase);
        EXPECT_EQ(c.resource, a.resource);
        EXPECT_EQ(c.slot, a.slot);
        EXPECT_NEAR(c.start, a.start, kUlp);
        EXPECT_NEAR(c.end, a.end, kUlp);
        EXPECT_NEAR(c.slack, a.slack, kUlp);
        EXPECT_EQ(c.critical, a.critical);
    }
    EXPECT_EQ(back.edges, b.bundle.edges);
    EXPECT_EQ(back.critical_path, b.bundle.critical_path);
    ASSERT_EQ(back.resources.size(), b.bundle.resources.size());
    for (std::size_t r = 0; r < back.resources.size(); ++r) {
        const ResourceSummary &a = b.bundle.resources[r];
        const ResourceSummary &c = back.resources[r];
        EXPECT_EQ(c.name, a.name);
        EXPECT_EQ(c.slots, a.slots);
        EXPECT_NEAR(c.busy, a.busy, kUlp);
        EXPECT_NEAR(c.idle_dependency, a.idle_dependency, kUlp);
        EXPECT_NEAR(c.idle_contention, a.idle_contention, kUlp);
        EXPECT_NEAR(c.idle_tail, a.idle_tail, kUlp);
        ASSERT_EQ(c.gaps.size(), a.gaps.size());
        for (std::size_t i = 0; i < c.gaps.size(); ++i) {
            EXPECT_NEAR(c.gaps[i].begin, a.gaps[i].begin, kUlp);
            EXPECT_NEAR(c.gaps[i].end, a.gaps[i].end, kUlp);
            EXPECT_EQ(c.gaps[i].cause, a.gaps[i].cause);
        }
    }
}

TEST(InspectionBundle, MeteredBundleRoundTripsWattFields)
{
    // With an EnergyProfile attached, the bundle carries per-resource
    // watts, per-span draw, and the energy totals — and every one of
    // them survives the JSON round trip.
    Built b = buildBundle("metered");
    EnergyInputs inputs;
    inputs.resources = {{700.0, 75.0, 0.0}, {15.0, 5.0, 1e-11}};
    inputs.task_bytes.assign(b.graph.taskCount(), 0.0);
    inputs.task_bytes[4] = 1e9; // "d2h bucket 1" moves a gigabyte.
    inputs.background.emplace_back("DDR refresh", 20.0);
    const EnergyProfile energy =
        attributeEnergy(b.graph, b.schedule, b.profile, inputs);
    ASSERT_TRUE(energy.valid);
    b.bundle = makeInspectionBundle(b.graph, b.schedule, b.profile,
                                    "metered", &energy);
    EXPECT_GT(b.bundle.total_j, 0.0);
    EXPECT_GT(b.bundle.avg_w, 0.0);

    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(
        JsonValue::parse(bundleToJson(b.bundle), parsed, &error))
        << error;
    InspectionBundle back;
    ASSERT_TRUE(bundleFromJson(parsed, back, &error)) << error;

    constexpr double kUlp = 1e-12;
    EXPECT_NEAR(back.total_j, b.bundle.total_j,
                kUlp * b.bundle.total_j);
    EXPECT_NEAR(back.avg_w, b.bundle.avg_w, kUlp * b.bundle.avg_w);
    ASSERT_EQ(back.resources.size(), b.bundle.resources.size());
    for (std::size_t r = 0; r < back.resources.size(); ++r) {
        EXPECT_NEAR(back.resources[r].busy_w,
                    b.bundle.resources[r].busy_w, kUlp);
        EXPECT_NEAR(back.resources[r].idle_w,
                    b.bundle.resources[r].idle_w, kUlp);
    }
    // Draws mix busy watts with a per-byte toll (700 + bytes/s × jpb),
    // so compare relative to the value, not to one second.
    ASSERT_EQ(back.tasks.size(), b.bundle.tasks.size());
    for (std::size_t i = 0; i < back.tasks.size(); ++i)
        EXPECT_NEAR(back.tasks[i].power_w, b.bundle.tasks[i].power_w,
                    1e-11 * std::max(b.bundle.tasks[i].power_w, 1.0));
    // GPU spans draw GPU busy watts; the unmetered-bundle path keeps
    // every watt field at zero.
    EXPECT_DOUBLE_EQ(b.bundle.tasks[0].power_w, 700.0);
    const Built plain = buildBundle("plain");
    EXPECT_DOUBLE_EQ(plain.bundle.total_j, 0.0);
    EXPECT_DOUBLE_EQ(plain.bundle.resources[0].busy_w, 0.0);
}

TEST(InspectionBundle, RejectsForeignAndBrokenDocuments)
{
    JsonValue doc;
    std::string error;

    // Not a bundle at all (a profile document shape).
    ASSERT_TRUE(JsonValue::parse(
        R"({"makespan_s": 1.0, "critical_path": {}})", doc));
    InspectionBundle out;
    EXPECT_FALSE(bundleFromJson(doc, out, &error));
    EXPECT_FALSE(error.empty());

    // A span pointing at a resource beyond the resource array. Task
    // spans carry numeric resource ids (`"resource":0,"slot"`); the
    // resources array uses the same key for names, so anchor on the
    // adjacent slot field.
    const Built b = buildBundle();
    std::string text = bundleToJson(b.bundle);
    const std::string span_field = "\"resource\":0,\"slot\"";
    const std::size_t pos = text.find(span_field);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, span_field.size(), "\"resource\":99,\"slot\"");
    ASSERT_TRUE(JsonValue::parse(text, doc, &error)) << error;
    EXPECT_FALSE(bundleFromJson(doc, out, &error));

    // An edge naming a task id beyond the task array.
    std::string edge_text = bundleToJson(b.bundle);
    const std::size_t epos = edge_text.find("\"edges\":[[");
    ASSERT_NE(epos, std::string::npos);
    edge_text.replace(epos, 10, "\"edges\":[[999,");
    if (JsonValue::parse(edge_text, doc))
        EXPECT_FALSE(bundleFromJson(doc, out, &error));
}

TEST(InspectionBundle, ZeroDurationTasksKeepTheirSpans)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const TaskId a = g.addTask(gpu, 0.0, "barrier enter", {});
    g.addTask(gpu, 0.010, "fwd L0", {a});
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    const InspectionBundle bundle = makeInspectionBundle(g, s, prof);
    ASSERT_EQ(bundle.tasks.size(), 2u);
    EXPECT_DOUBLE_EQ(bundle.tasks[0].duration(), 0.0);
}

} // namespace
} // namespace so::sim
