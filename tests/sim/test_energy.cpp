/**
 * @file
 * Energy-attribution invariant tests (docs/ENERGY.md): per-phase
 * joules sum to the active joules, per-resource idle-cause joules
 * partition the idle joules, busy/idle joules reproduce watts × time,
 * and the grand total splits exactly into active + idle + background —
 * on handmade graphs and randomized capacity-1 graphs, all to 1e-9
 * relative. The JSON export carries the energy subtree and parses
 * back.
 */
#include "sim/profiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "sim/graph.h"
#include "sim/scheduler.h"

namespace so::sim {
namespace {

/** Relative tolerance shared by every conservation check. */
void
expectNear(double actual, double expected, double scale)
{
    EXPECT_NEAR(actual, expected, 1e-9 * std::max(scale, 1.0));
}

/**
 * Capacity-1 random graphs: union busy time equals the sum of task
 * durations per resource, so task-attributed joules and busy-time
 * joules must agree exactly. (Every resource the runtime builder
 * creates is capacity 1, so this is the deployed regime.)
 */
TaskGraph
randomUnitCapacityGraph(std::uint64_t seed, std::size_t n_resources,
                        std::size_t n_tasks)
{
    Rng rng(seed);
    TaskGraph g;
    for (std::size_t r = 0; r < n_resources; ++r)
        g.addResource("R" + std::to_string(r), 1);
    static const char *kPhases[] = {"fwd", "bwd", "adam", "d2h",
                                    "h2d", "cast"};
    for (std::size_t t = 0; t < n_tasks; ++t) {
        std::vector<TaskId> deps;
        const std::size_t n_deps = t == 0 ? 0 : rng.below(4);
        for (std::size_t d = 0; d < n_deps; ++d) {
            const auto dep = static_cast<TaskId>(rng.below(t));
            bool dup = false;
            for (const TaskId existing : deps)
                dup = dup || existing == dep;
            if (!dup)
                deps.push_back(dep);
        }
        const auto resource =
            static_cast<ResourceId>(rng.below(n_resources));
        const double duration =
            rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.01, 1.0);
        g.addTask(resource, duration,
                  std::string(kPhases[rng.below(6)]) + " t" +
                      std::to_string(t),
                  std::move(deps));
    }
    return g;
}

EnergyInputs
meteredInputs(const TaskGraph &g, Rng &rng)
{
    EnergyInputs inputs;
    for (std::size_t r = 0; r < g.resourceCount(); ++r) {
        ResourcePower p;
        p.busy_w = rng.uniform(5.0, 700.0);
        p.idle_w = rng.uniform(0.0, 75.0);
        p.joules_per_byte = rng.bernoulli(0.5) ? 1e-11 : 0.0;
        inputs.resources.push_back(p);
    }
    for (std::size_t t = 0; t < g.taskCount(); ++t)
        inputs.task_bytes.push_back(
            rng.bernoulli(0.3) ? rng.uniform(0.0, 1e9) : 0.0);
    inputs.background.emplace_back("DDR refresh",
                                   rng.uniform(0.0, 60.0));
    return inputs;
}

void
expectEnergyInvariants(const TaskGraph &g, const Schedule &s,
                       const EnergyInputs &inputs)
{
    const ScheduleProfile prof = profileSchedule(g, s);
    const EnergyProfile e = attributeEnergy(g, s, prof, inputs);
    ASSERT_TRUE(e.valid);
    EXPECT_DOUBLE_EQ(e.makespan, s.makespan);

    // Per-task joules reproduce the formula.
    ASSERT_EQ(e.task_j.size(), g.taskCount());
    double task_sum = 0.0;
    for (std::size_t t = 0; t < g.taskCount(); ++t) {
        const ResourcePower &p = inputs.resources[g.taskResource(
            static_cast<TaskId>(t))];
        const double bytes = t < inputs.task_bytes.size()
                                 ? inputs.task_bytes[t]
                                 : 0.0;
        const double expected =
            p.busy_w * g.duration(static_cast<TaskId>(t)) +
            p.joules_per_byte * bytes;
        expectNear(e.task_j[t], expected, expected);
        task_sum += e.task_j[t];
    }

    // Phase joules are a regrouping of the task joules, and on
    // capacity-1 resources both equal the active joules.
    double phase_sum = 0.0;
    for (const auto &[phase, joules] : e.phases)
        phase_sum += joules;
    expectNear(phase_sum, task_sum, task_sum);
    expectNear(e.active_j, task_sum, task_sum);

    // Per-resource: busy/idle joules are watts × time, the cause
    // joules partition idle_j, and the resource sums rebuild the
    // totals.
    ASSERT_EQ(e.resources.size(), g.resourceCount());
    double active = 0.0, idle = 0.0;
    for (std::size_t r = 0; r < g.resourceCount(); ++r) {
        const ResourceEnergy &re = e.resources[r];
        const ResourceProfile &rp = prof.resources[r];
        expectNear(re.busy_j, re.busy_w * rp.busy, re.busy_j);
        expectNear(re.idle_j, re.idle_w * rp.idle, re.idle_j);
        expectNear(re.idle_dependency_j + re.idle_contention_j +
                       re.idle_tail_j,
                   re.idle_j, re.idle_j);
        active += re.busy_j + re.transfer_j;
        idle += re.idle_j;
    }
    expectNear(e.active_j, active, active);
    expectNear(e.idle_j, idle, idle);

    // Background is watts × makespan, and the grand total splits
    // exactly three ways.
    double bg = 0.0;
    for (const auto &[name, watts] : inputs.background)
        bg += watts * s.makespan;
    expectNear(e.background_j, bg, bg);
    expectNear(e.total_j, e.active_j + e.idle_j + e.background_j,
               e.total_j);
    if (s.makespan > 0.0)
        expectNear(e.avg_w, e.total_j / s.makespan, e.avg_w);
}

TEST(Energy, HandmadeTwoResourcePipeline)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId d2h = g.addResource("D2H");
    const TaskId bwd = g.addTask(gpu, 0.020, "bwd L0", {});
    const TaskId copy = g.addTask(d2h, 0.010, "d2h bucket 0", {bwd});
    g.addTask(gpu, 0.005, "cast params", {copy});

    EnergyInputs inputs;
    inputs.resources = {{700.0, 75.0, 0.0}, {15.0, 5.0, 1e-11}};
    inputs.task_bytes = {0.0, 1e9, 0.0};
    inputs.background.emplace_back("DDR refresh", 60.0);

    const Schedule s = Scheduler().run(g);
    expectEnergyInvariants(g, s, inputs);

    // Spot-check the numbers themselves: GPU busy 25 ms at 700 W, D2H
    // moves 1 GB at 10 pJ/B on top of 10 ms at 15 W.
    const ScheduleProfile prof = profileSchedule(g, s);
    const EnergyProfile e = attributeEnergy(g, s, prof, inputs);
    EXPECT_NEAR(e.resources[0].busy_j, 700.0 * 0.025, 1e-9);
    EXPECT_NEAR(e.resources[1].busy_j, 15.0 * 0.010, 1e-9);
    EXPECT_NEAR(e.resources[1].transfer_j, 1e-11 * 1e9, 1e-9);
    EXPECT_NEAR(e.background_j, 60.0 * s.makespan, 1e-9);
    EXPECT_NEAR(e.task_j[1], 15.0 * 0.010 + 1e-11 * 1e9, 1e-9);
}

TEST(Energy, ShortInputVectorsMeterAsZero)
{
    // Missing resource powers and task bytes are zero, not UB.
    TaskGraph g;
    const ResourceId a = g.addResource("A");
    g.addResource("B");
    g.addTask(a, 0.010, "fwd", {});
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    EnergyInputs inputs; // everything empty
    const EnergyProfile e = attributeEnergy(g, s, prof, inputs);
    ASSERT_TRUE(e.valid);
    EXPECT_DOUBLE_EQ(e.total_j, 0.0);
    EXPECT_DOUBLE_EQ(e.avg_w, 0.0);
}

TEST(Energy, RandomizedGraphsHoldTheConservationInvariants)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        Rng rng(seed * 977);
        const TaskGraph g = randomUnitCapacityGraph(
            seed, 2 + seed % 5, 20 + (seed * 13) % 60);
        const EnergyInputs inputs = meteredInputs(g, rng);
        const Schedule s = Scheduler().run(g);
        expectEnergyInvariants(g, s, inputs);
    }
}

TEST(Energy, ProfileJsonCarriesTheEnergySubtree)
{
    Rng rng(7);
    const TaskGraph g = randomUnitCapacityGraph(7, 3, 30);
    const EnergyInputs inputs = meteredInputs(g, rng);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    const EnergyProfile e = attributeEnergy(g, s, prof, inputs);

    const std::string json = profileToJson(prof, g, s, 8, &e);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(json, doc, &error)) << error;
    const JsonValue *energy = doc.find("energy");
    ASSERT_NE(energy, nullptr);
    EXPECT_NEAR(energy->find("total_j")->number(), e.total_j,
                1e-9 * std::max(e.total_j, 1.0));
    const JsonValue *phases = energy->find("phases");
    ASSERT_NE(phases, nullptr);
    double phase_sum = 0.0;
    for (const JsonValue &phase : phases->items())
        phase_sum += phase.find("joules")->number();
    EXPECT_NEAR(phase_sum, e.active_j,
                1e-9 * std::max(e.active_j, 1.0));
    const JsonValue *resources = energy->find("resources");
    ASSERT_NE(resources, nullptr);
    EXPECT_EQ(resources->items().size(), g.resourceCount());

    // Without the energy argument the subtree is absent (and for
    // readers of old documents, absent means "no attribution").
    const std::string plain = profileToJson(prof, g, s, 8);
    JsonValue plain_doc;
    ASSERT_TRUE(JsonValue::parse(plain, plain_doc, &error)) << error;
    EXPECT_EQ(plain_doc.find("energy"), nullptr);
}

} // namespace
} // namespace so::sim
