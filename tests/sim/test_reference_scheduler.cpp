/**
 * @file
 * Differential tests: the optimized discrete-event scheduler against
 * the naive O(V·E) reference implementation. Both claim the same
 * deterministic list-scheduling semantics, so on any DAG the schedules
 * must agree bit for bit — start/finish times, makespan, and every
 * timeline interval including slot assignment.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "reference_scheduler.h"
#include "sim/graph.h"
#include "sim/scheduler.h"

namespace so::sim {
namespace {

void
expectBitIdentical(const TaskGraph &graph, const Schedule &got,
                   const Schedule &want)
{
    ASSERT_EQ(got.start.size(), want.start.size());
    for (TaskId id = 0; id < graph.taskCount(); ++id) {
        ASSERT_EQ(got.start[id], want.start[id]) << "task " << id;
        ASSERT_EQ(got.finish[id], want.finish[id]) << "task " << id;
    }
    ASSERT_EQ(got.makespan, want.makespan);
    ASSERT_EQ(got.timelines.size(), want.timelines.size());
    for (ResourceId r = 0; r < graph.resourceCount(); ++r) {
        // Timelines append in start order; within one instant the two
        // implementations may enumerate resources differently, so
        // compare as (start, slot)-sorted sets of intervals.
        auto fetch = [](const Timeline &t) {
            std::vector<Interval> ivs(t.intervals().begin(),
                                      t.intervals().end());
            std::sort(ivs.begin(), ivs.end(),
                      [](const Interval &a, const Interval &b) {
                          if (a.start != b.start)
                              return a.start < b.start;
                          return a.slot < b.slot;
                      });
            return ivs;
        };
        const std::vector<Interval> gi = fetch(got.timelines[r]);
        const std::vector<Interval> wi = fetch(want.timelines[r]);
        ASSERT_EQ(gi.size(), wi.size()) << "resource " << r;
        for (std::size_t i = 0; i < gi.size(); ++i) {
            ASSERT_EQ(gi[i].task, wi[i].task) << "resource " << r;
            ASSERT_EQ(gi[i].slot, wi[i].slot) << "resource " << r;
            ASSERT_EQ(gi[i].start, wi[i].start) << "resource " << r;
            ASSERT_EQ(gi[i].end, wi[i].end) << "resource " << r;
        }
    }
}

/**
 * Random DAG tuned to stress tie-breaking: durations come from a small
 * discrete set so many tasks finish at exactly the same instant, and
 * priorities collide constantly.
 */
TaskGraph
makeAdversarialGraph(std::uint64_t seed, std::size_t n_resources,
                     std::size_t n_tasks)
{
    Rng rng(seed);
    TaskGraph graph;
    for (std::size_t r = 0; r < n_resources; ++r)
        graph.addResource("R" + std::to_string(r),
                          static_cast<std::uint32_t>(1 + rng.below(3)));
    // Discrete durations force mass-equal completion timestamps.
    const double durations[] = {0.0, 0.25, 0.25, 0.5, 1.0};
    for (std::size_t t = 0; t < n_tasks; ++t) {
        std::vector<TaskId> deps;
        const std::size_t n_deps = t == 0 ? 0 : rng.below(4);
        for (std::size_t d = 0; d < n_deps; ++d)
            deps.push_back(static_cast<TaskId>(rng.below(t)));
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        graph.addTask(static_cast<ResourceId>(rng.below(n_resources)),
                      durations[rng.below(5)], "t" + std::to_string(t),
                      std::move(deps),
                      static_cast<std::int32_t>(rng.below(3)) - 1);
    }
    return graph;
}

class DifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> // seed
{
};

TEST_P(DifferentialTest, RandomDagsMatchReference)
{
    const TaskGraph graph = makeAdversarialGraph(GetParam(), 4, 250);
    expectBitIdentical(graph, Scheduler().run(graph),
                       testing::referenceSchedule(graph));
}

TEST_P(DifferentialTest, ContinuousDurationsMatchReference)
{
    // Same generator family as the property tests: continuous durations
    // plus zero-duration barriers.
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
    TaskGraph graph;
    const std::size_t n_resources = 1 + rng.below(5);
    for (std::size_t r = 0; r < n_resources; ++r)
        graph.addResource("R" + std::to_string(r),
                          static_cast<std::uint32_t>(1 + rng.below(4)));
    const std::size_t n_tasks = 50 + rng.below(250);
    for (std::size_t t = 0; t < n_tasks; ++t) {
        std::vector<TaskId> deps;
        const std::size_t n_deps = t == 0 ? 0 : rng.below(5);
        for (std::size_t d = 0; d < n_deps; ++d)
            deps.push_back(static_cast<TaskId>(rng.below(t)));
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        graph.addTask(static_cast<ResourceId>(rng.below(n_resources)),
                      rng.bernoulli(0.15) ? 0.0 : rng.uniform(0.001, 2.0),
                      "t" + std::to_string(t), std::move(deps),
                      static_cast<std::int32_t>(rng.below(7)) - 3);
    }
    expectBitIdentical(graph, Scheduler().run(graph),
                       testing::referenceSchedule(graph));
}

TEST_P(DifferentialTest, WorkspaceReuseMatchesReference)
{
    // The sweep hot path (one Workspace across many graphs) must agree
    // with the oracle too, not just with a fresh-workspace run.
    Scheduler::Workspace ws;
    for (std::uint64_t salt = 0; salt < 3; ++salt) {
        const TaskGraph graph = makeAdversarialGraph(
            GetParam() ^ (salt * 0x517cc1b727220a95ull), 3, 150);
        expectBitIdentical(graph, Scheduler().run(graph, ws),
                           testing::referenceSchedule(graph));
    }
}

TEST_P(DifferentialTest, RecycledScheduleMatchesReference)
{
    // The output-recycling overload writes into a Schedule that still
    // holds a previous (differently sized) graph's results; no stale
    // interval, time, or makespan may leak through.
    Scheduler::Workspace ws;
    Schedule recycled;
    const std::size_t sizes[] = {180, 40, 220};
    for (std::uint64_t salt = 0; salt < 3; ++salt) {
        const TaskGraph graph = makeAdversarialGraph(
            GetParam() ^ (salt * 0x2545f4914f6cdd1dull), 3,
            sizes[salt]);
        Scheduler().run(graph, ws, recycled);
        expectBitIdentical(graph, recycled,
                           testing::referenceSchedule(graph));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u, 144u, 233u));

TEST(DifferentialEdgeCases, EmptyGraph)
{
    TaskGraph graph;
    graph.addResource("gpu", 2);
    expectBitIdentical(graph, Scheduler().run(graph),
                       testing::referenceSchedule(graph));
    EXPECT_EQ(Scheduler().run(graph).makespan, 0.0);
}

TEST(DifferentialEdgeCases, AllZeroDurations)
{
    // Pure barrier cascade: everything starts and finishes at t=0.
    TaskGraph graph;
    graph.addResource("gpu", 1);
    TaskId prev = kInvalidTask;
    for (int i = 0; i < 40; ++i) {
        std::vector<TaskId> deps;
        if (prev != kInvalidTask)
            deps.push_back(prev);
        prev = graph.addTask(0, 0.0, "z" + std::to_string(i),
                             std::move(deps));
    }
    expectBitIdentical(graph, Scheduler().run(graph),
                       testing::referenceSchedule(graph));
    EXPECT_EQ(Scheduler().run(graph).makespan, 0.0);
}

TEST(DifferentialEdgeCases, SingleChainMakespanIsSum)
{
    TaskGraph graph;
    graph.addResource("gpu", 3);
    TaskId prev = kInvalidTask;
    double total = 0.0;
    for (int i = 0; i < 64; ++i) {
        std::vector<TaskId> deps;
        if (prev != kInvalidTask)
            deps.push_back(prev);
        const double d = 0.125 * (1 + i % 4);
        total += d;
        prev = graph.addTask(0, d, "c" + std::to_string(i),
                             std::move(deps));
    }
    const Schedule sched = Scheduler().run(graph);
    expectBitIdentical(graph, sched, testing::referenceSchedule(graph));
    EXPECT_DOUBLE_EQ(sched.makespan, total);
}

TEST(DifferentialEdgeCases, WideFanOutManyPriorityTies)
{
    // One root, 300 children all ready at once on a 2-slot resource,
    // only two distinct priorities: the (priority, id) tie-break does
    // all the work.
    TaskGraph graph;
    graph.addResource("gpu", 2);
    const TaskId root = graph.addTask(0, 0.5, "root");
    for (int i = 0; i < 300; ++i)
        graph.addTask(0, 0.25, "f" + std::to_string(i), {root},
                      i % 2 == 0 ? 1 : -1);
    expectBitIdentical(graph, Scheduler().run(graph),
                       testing::referenceSchedule(graph));
}

TEST(DifferentialEdgeCases, SparsePriorityRangeUsesCompressedRanks)
{
    // Priorities far apart (beyond the dense-span threshold) push the
    // scheduler through its rank-compression path; the oracle doesn't
    // care and the results must still match exactly.
    Rng rng(7);
    TaskGraph graph;
    graph.addResource("gpu", 2);
    graph.addResource("cpu", 1);
    const std::int32_t levels[] = {-2'000'000'000, -65536, 0, 65536,
                                   2'000'000'000};
    for (int i = 0; i < 200; ++i) {
        std::vector<TaskId> deps;
        if (i > 0 && rng.bernoulli(0.5))
            deps.push_back(static_cast<TaskId>(
                rng.below(static_cast<std::size_t>(i))));
        graph.addTask(static_cast<ResourceId>(rng.below(2)),
                      0.125 * (1 + rng.below(3)),
                      "s" + std::to_string(i), std::move(deps),
                      levels[rng.below(5)]);
    }
    expectBitIdentical(graph, Scheduler().run(graph),
                       testing::referenceSchedule(graph));
}

} // namespace
} // namespace so::sim
