#include "reference_scheduler.h"

#include <limits>

#include "common/logging.h"

namespace so::sim::testing {

Schedule
referenceSchedule(const TaskGraph &graph)
{
    const std::size_t n = graph.taskCount();
    const std::size_t nres = graph.resourceCount();

    Schedule schedule;
    schedule.start.assign(n, 0.0);
    schedule.finish.assign(n, 0.0);
    schedule.timelines.resize(nres);

    std::vector<char> started(n, 0);
    std::vector<char> done(n, 0);
    // A slot is free only while it has no occupant; an occupant holds
    // it until its completion *retires* — a zero-duration task blocks
    // its slot for the rest of the start phase it began in, exactly
    // like an event-queue completion that hasn't drained yet.
    // slot_vacated records when the slot last became free (the slot
    // pick prefers the earliest-vacated, ties to the lowest index).
    std::vector<std::vector<TaskId>> slot_occupant(nres);
    std::vector<std::vector<double>> slot_vacated(nres);
    for (ResourceId r = 0; r < nres; ++r) {
        slot_occupant[r].assign(graph.resource(r).slots, kInvalidTask);
        slot_vacated[r].assign(graph.resource(r).slots, 0.0);
    }

    const auto deps_done = [&](TaskId id) {
        for (TaskId dep : graph.deps(id))
            if (!done[dep])
                return false;
        return true;
    };

    std::size_t completed = 0;
    double now = 0.0;
    for (;;) {
        // Start phase: each resource greedily starts ready tasks in
        // ascending (priority, id) order onto the slot that freed
        // earliest (ties toward the lowest slot index) — every pick a
        // fresh linear scan.
        for (ResourceId r = 0; r < nres; ++r) {
            for (;;) {
                std::vector<TaskId> &occupant = slot_occupant[r];
                std::vector<double> &vacated = slot_vacated[r];
                std::size_t slot = occupant.size();
                for (std::size_t s = 0; s < occupant.size(); ++s)
                    if (occupant[s] == kInvalidTask &&
                        (slot == occupant.size() ||
                         vacated[s] < vacated[slot]))
                        slot = s;
                if (slot == occupant.size())
                    break;
                TaskId pick = kInvalidTask;
                for (TaskId id = 0; id < n; ++id) {
                    if (started[id] || graph.taskResource(id) != r)
                        continue;
                    if (!deps_done(id))
                        continue;
                    if (pick == kInvalidTask ||
                        graph.priority(id) < graph.priority(pick))
                        pick = id;
                }
                if (pick == kInvalidTask)
                    break;
                started[pick] = 1;
                schedule.start[pick] = now;
                schedule.finish[pick] = now + graph.duration(pick);
                occupant[slot] = pick;
                schedule.timelines[r].add(now, schedule.finish[pick],
                                          pick,
                                          static_cast<std::uint32_t>(slot));
            }
        }

        // Advance to the earliest unfinished completion and retire
        // everything that finishes at that instant (ascending id).
        double next = std::numeric_limits<double>::infinity();
        for (TaskId id = 0; id < n; ++id)
            if (started[id] && !done[id])
                next = std::min(next, schedule.finish[id]);
        if (next == std::numeric_limits<double>::infinity())
            break;
        now = next;
        for (TaskId id = 0; id < n; ++id) {
            if (started[id] && !done[id] && schedule.finish[id] == now) {
                done[id] = 1;
                ++completed;
                const ResourceId r = graph.taskResource(id);
                for (std::size_t s = 0; s < slot_occupant[r].size(); ++s)
                    if (slot_occupant[r][s] == id) {
                        slot_occupant[r][s] = kInvalidTask;
                        slot_vacated[r][s] = now;
                        break;
                    }
            }
        }
        schedule.makespan = now;
    }

    SO_ASSERT(completed == n,
              "reference scheduler: graph has a cycle (", n - completed,
              " task(s) unreachable)");
    return schedule;
}

} // namespace so::sim::testing
