#include "sim/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "sim/graph.h"
#include "sim/scheduler.h"

namespace so::sim {
namespace {

TaskGraph
smallGraph()
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    const TaskId a = g.addTask(gpu, 1.0, "fwd");
    g.addTask(cpu, 0.5, "adam \"step\"", {a});
    return g;
}

TEST(Trace, ChromeTraceContainsEventsAndMetadata)
{
    const TaskGraph g = smallGraph();
    const Schedule s = Scheduler().run(g);
    const std::string json = toChromeTrace(g, s);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("fwd"), std::string::npos);
    // The embedded quote must be escaped.
    EXPECT_NE(json.find("adam \\\"step\\\""), std::string::npos);
    EXPECT_EQ(json.find("adam \"step\""), std::string::npos);
}

TEST(Trace, WriteChromeTraceCreatesFile)
{
    const TaskGraph g = smallGraph();
    const Schedule s = Scheduler().run(g);
    const std::string path = ::testing::TempDir() + "/so_trace.json";
    ASSERT_TRUE(writeChromeTrace(g, s, path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), toChromeTrace(g, s));
    std::remove(path.c_str());
}

TEST(Trace, AsciiGanttHasOneRowPerResource)
{
    const TaskGraph g = smallGraph();
    const Schedule s = Scheduler().run(g);
    const std::string gantt = toAsciiGantt(g, s, 40);
    EXPECT_NE(gantt.find("GPU"), std::string::npos);
    EXPECT_NE(gantt.find("CPU"), std::string::npos);
    // Two newline-terminated rows.
    EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'), 2);
    EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(Trace, AsciiGanttBusyFractionRoughlyMatches)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    g.addTask(gpu, 1.0, "a");
    const TaskId b = g.addTask(gpu, 0.0, "zero");
    g.addDep(0, b);
    // Add an idle tail via another resource.
    const ResourceId cpu = g.addResource("CPU");
    g.addTask(cpu, 1.0, "c", {0});
    const Schedule s = Scheduler().run(g);
    const std::string gantt = toAsciiGantt(g, s, 100);
    // The GPU row should be roughly half busy.
    const std::string gpu_row = gantt.substr(0, gantt.find('\n'));
    const auto busy = std::count(gpu_row.begin(), gpu_row.end(), '#');
    EXPECT_GT(busy, 40);
    EXPECT_LT(busy, 60);
}

TEST(Trace, ChromeTraceRoundTripsThroughJsonParser)
{
    const TaskGraph g = smallGraph();
    const Schedule s = Scheduler().run(g);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(toChromeTrace(g, s), doc, &error))
        << error;
    ASSERT_TRUE(doc.at("traceEvents").isArray());
    std::size_t complete = 0, metadata = 0;
    for (const JsonValue &ev : doc.at("traceEvents").items()) {
        const std::string &ph = ev.at("ph").text();
        if (ph == "X") {
            ++complete;
            EXPECT_GE(ev.at("dur").number(), 0.0);
            EXPECT_GE(ev.at("ts").number(), 0.0);
        } else if (ph == "M") {
            ++metadata;
        }
    }
    EXPECT_EQ(complete, g.taskCount());
    EXPECT_EQ(metadata, g.resourceCount());
    // The escaped label survives the round trip intact.
    bool found = false;
    for (const JsonValue &ev : doc.at("traceEvents").items())
        if (ev.at("ph").text() == "X" &&
            ev.at("name").text() == "adam \"step\"")
            found = true;
    EXPECT_TRUE(found);
}

TEST(Trace, PhaseKeyRules)
{
    // Documented grouping rules, pinned: first space-delimited token,
    // trailing digit run stripped; all-digit tokens keep their digits;
    // empty (or blank-leading) labels get a synthetic phase.
    EXPECT_EQ(phaseKey(""), "(unnamed)");
    EXPECT_EQ(phaseKey("fwd L3"), "fwd");
    EXPECT_EQ(phaseKey("fwd3"), "fwd");
    EXPECT_EQ(phaseKey("adam(gpu) b3"), "adam(gpu)");
    EXPECT_EQ(phaseKey("128k prefetch"), "128k");
    EXPECT_EQ(phaseKey("128k"), "128k");
    EXPECT_EQ(phaseKey("d2h bucket 4"), "d2h");
    EXPECT_EQ(phaseKey("42 things"), "42");
    EXPECT_EQ(phaseKey(" leading space"), "(unnamed)");
}

TEST(Trace, LabelBreakdownDigitLeadingAndEmptyLabels)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const TaskId a = g.addTask(gpu, 1.0, "128k prefetch");
    const TaskId b = g.addTask(gpu, 0.5, "128k flush", {a});
    g.addTask(gpu, 0.25, "", {b});
    const Schedule s = Scheduler().run(g);
    const auto breakdown = labelBreakdown(g, s, gpu);
    ASSERT_EQ(breakdown.size(), 2u);
    EXPECT_EQ(breakdown[0].first, "128k");
    EXPECT_DOUBLE_EQ(breakdown[0].second, 1.5);
    EXPECT_EQ(breakdown[1].first, "(unnamed)");
    EXPECT_DOUBLE_EQ(breakdown[1].second, 0.25);
}

TEST(Trace, LabelBreakdownGroupsPhases)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const TaskId a = g.addTask(gpu, 1.0, "fwd L0");
    const TaskId b = g.addTask(gpu, 1.5, "fwd L1", {a});
    const TaskId c = g.addTask(gpu, 2.0, "bwd L1", {b});
    g.addTask(gpu, 0.5, "adam(gpu) b3", {c});
    const Schedule s = Scheduler().run(g);
    const auto breakdown = labelBreakdown(g, s, gpu);
    ASSERT_EQ(breakdown.size(), 3u);
    // Sorted by time, descending.
    EXPECT_EQ(breakdown[0].first, "fwd");
    EXPECT_DOUBLE_EQ(breakdown[0].second, 2.5);
    EXPECT_EQ(breakdown[1].first, "bwd");
    EXPECT_DOUBLE_EQ(breakdown[1].second, 2.0);
    EXPECT_EQ(breakdown[2].first, "adam(gpu)");
    EXPECT_DOUBLE_EQ(breakdown[2].second, 0.5);
}

TEST(Trace, LabelBreakdownEmptyResource)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId idle = g.addResource("idle");
    g.addTask(gpu, 1.0, "work");
    const Schedule s = Scheduler().run(g);
    EXPECT_TRUE(labelBreakdown(g, s, idle).empty());
}

TEST(Trace, EmptyScheduleGantt)
{
    TaskGraph g;
    g.addResource("GPU");
    const Schedule s = Scheduler().run(g);
    EXPECT_EQ(toAsciiGantt(g, s), "(empty schedule)\n");
}

} // namespace
} // namespace so::sim
