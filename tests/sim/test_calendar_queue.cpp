/**
 * @file
 * Tests for the calendar event queue behind the scheduler's event loop.
 *
 * The queue's whole contract is one sentence: events pop in ascending
 * (time, id) order, no matter how buckets resize, years advance, or the
 * overflow ladder fills. Every test here checks the drain sequence
 * against a sorted model while deliberately provoking one of those
 * internal reorganizations: timestamps spanning twelve orders of
 * magnitude, mass-equal timestamps, pushes that cross bucket-resize
 * thresholds mid-drain, and sparse events that force repeated
 * empty-year rotations. All inputs are fixed-seed, so failures replay
 * deterministically.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/calendar_queue.h"

namespace so::sim {
namespace {

bool
before(const SimEvent &a, const SimEvent &b)
{
    if (a.time != b.time)
        return a.time < b.time;
    return a.id < b.id;
}

/** Drain @p q fully and require exactly the sorted @p model sequence. */
void
expectDrainsSorted(CalendarQueue &q, std::vector<SimEvent> model)
{
    std::sort(model.begin(), model.end(), before);
    ASSERT_EQ(q.size(), model.size());
    for (const SimEvent &want : model) {
        ASSERT_FALSE(q.empty());
        EXPECT_EQ(q.peek().time, want.time);
        EXPECT_EQ(q.peek().id, want.id);
        const SimEvent got = q.pop();
        ASSERT_EQ(got.time, want.time);
        ASSERT_EQ(got.id, want.id);
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(CalendarQueue, EmptyQueue)
{
    CalendarQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, MixedTimestampMagnitudes)
{
    // Nanoseconds to kiloseconds in one queue: the initial bucket
    // layout is dominated by the 1e3 outlier, squeezing everything
    // small into bucket zero — order must survive anyway.
    CalendarQueue q;
    std::vector<SimEvent> model;
    TaskId id = 0;
    for (double decade = 1e-9; decade <= 1.01e3; decade *= 10.0) {
        for (int k = 1; k <= 4; ++k) {
            const SimEvent ev{decade * k, id++};
            model.push_back(ev);
            q.push(ev.time, ev.id);
        }
    }
    expectDrainsSorted(q, std::move(model));
}

TEST(CalendarQueue, MassEqualTimestamps)
{
    // A handful of distinct instants, hundreds of events each, pushed
    // in scrambled id order: ties must drain in ascending id.
    Rng rng(42);
    CalendarQueue q;
    std::vector<SimEvent> model;
    const double instants[] = {0.0, 0.5, 0.5 + 1e-12, 2.0};
    for (TaskId id = 0; id < 800; ++id)
        model.push_back(SimEvent{instants[rng.below(4)], id});
    std::vector<SimEvent> scrambled = model;
    for (std::size_t i = scrambled.size(); i > 1; --i)
        std::swap(scrambled[i - 1], scrambled[rng.below(i)]);
    for (const SimEvent &ev : scrambled)
        q.push(ev.time, ev.id);
    expectDrainsSorted(q, std::move(model));
}

TEST(CalendarQueue, SeedOrderDoesNotMatter)
{
    // The same staged set pushed in two different orders drains in the
    // same sequence — the queue's output depends only on its contents.
    Rng rng(7);
    std::vector<SimEvent> events;
    for (TaskId id = 0; id < 300; ++id)
        events.push_back(SimEvent{rng.uniform(0.0, 10.0), id});

    CalendarQueue forward;
    for (const SimEvent &ev : events)
        forward.push(ev.time, ev.id);
    CalendarQueue backward;
    for (std::size_t i = events.size(); i-- > 0;)
        backward.push(events[i].time, events[i].id);

    ASSERT_EQ(forward.size(), backward.size());
    while (!forward.empty()) {
        const SimEvent a = forward.pop();
        const SimEvent b = backward.pop();
        ASSERT_EQ(a.time, b.time);
        ASSERT_EQ(a.id, b.id);
    }
    EXPECT_TRUE(backward.empty());
}

TEST(CalendarQueue, GrowRebuildMidDrain)
{
    // Seed with a few events, then keep the drain alive while pushing
    // far more than the initial layout was sized for: the queue must
    // grow (rebuild) without disturbing the ascending order.
    CalendarQueue q;
    std::vector<SimEvent> model;
    for (TaskId id = 0; id < 4; ++id) {
        q.push(0.001 * id, id);
        model.push_back(SimEvent{0.001 * id, id});
    }
    std::sort(model.begin(), model.end(), before);

    Rng rng(11);
    TaskId next_id = 4;
    std::size_t popped = 0;
    double now = 0.0;
    std::size_t max_buckets_seen = 0;
    while (popped < 20'000) {
        ASSERT_FALSE(q.empty()) << "queue drained early at " << popped;
        const SimEvent got = q.pop();
        ASSERT_EQ(got.time, model[popped].time);
        ASSERT_EQ(got.id, model[popped].id);
        now = got.time;
        ++popped;
        max_buckets_seen = std::max(max_buckets_seen, q.bucketCount());
        // Push 0-3 successors slightly in the future: the live count
        // climbs, crossing the grow threshold many times.
        const std::size_t births = popped < 10'000 ? rng.below(4) : 0;
        for (std::size_t b = 0; b < births; ++b) {
            const SimEvent ev{now + rng.uniform(0.0, 0.01), next_id++};
            q.push(ev.time, ev.id);
            model.insert(
                std::upper_bound(model.begin() +
                                     static_cast<std::ptrdiff_t>(popped),
                                 model.end(), ev, before),
                ev);
        }
        if (model.size() == popped)
            break;
    }
    // The initial 8-bucket layout must have actually grown, or this
    // test is not exercising the resize path.
    EXPECT_GT(max_buckets_seen, 8u);
    while (popped < model.size()) {
        const SimEvent got = q.pop();
        ASSERT_EQ(got.time, model[popped].time);
        ASSERT_EQ(got.id, model[popped].id);
        ++popped;
    }
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EmptyRotationSweeps)
{
    // Seed a tight microsecond-wide cluster so the calendar year is
    // tiny, then chain successors ~1e6 s apart during the drain: every
    // chained event lands far beyond the year end, so the queue
    // repeatedly spills to the overflow ladder and rotates to a new
    // year whose buckets are mostly empty. The pop sequence must stay
    // exactly 0..95 ascending throughout.
    CalendarQueue q;
    for (TaskId id = 0; id < 32; ++id)
        q.push(1e-6 * id, id);
    TaskId expect_id = 0;
    TaskId next_id = 32;
    std::size_t overflow_peak = 0;
    double last_time = -1.0;
    while (!q.empty()) {
        const SimEvent got = q.pop();
        ASSERT_EQ(got.id, expect_id++);
        ASSERT_GT(got.time, last_time);
        last_time = got.time;
        if (next_id < 96) {
            q.push(got.time + 1e6, next_id++);
            overflow_peak = std::max(overflow_peak, q.overflowSize());
        }
    }
    EXPECT_EQ(expect_id, 96u);
    // If nothing ever reached the overflow ladder, the year advances
    // this test exists for never happened.
    EXPECT_GT(overflow_peak, 0u);
}

TEST(CalendarQueue, OverflowLadderMonotonePushes)
{
    // DES usage pattern: every push is >= the last popped time, but
    // jumps far beyond the current year so it lands in overflow first.
    CalendarQueue q;
    q.push(0.0, 0);
    q.push(1e-6, 1);
    std::vector<SimEvent> pending{{0.0, 0}, {1e-6, 1}};
    std::sort(pending.begin(), pending.end(), before);

    Rng rng(23);
    TaskId next_id = 2;
    std::size_t popped = 0;
    while (!q.empty()) {
        const SimEvent got = q.pop();
        ASSERT_LT(popped, pending.size());
        ASSERT_EQ(got.time, pending[popped].time);
        ASSERT_EQ(got.id, pending[popped].id);
        ++popped;
        if (next_id < 2'000) {
            // Alternate near-future and far-future successors; the far
            // ones overshoot the year on purpose.
            const double step = rng.bernoulli(0.3)
                                    ? rng.uniform(1e2, 1e5)
                                    : rng.uniform(0.0, 1e-3);
            const SimEvent ev{got.time + step, next_id++};
            q.push(ev.time, ev.id);
            pending.insert(
                std::upper_bound(pending.begin() +
                                     static_cast<std::ptrdiff_t>(popped),
                                 pending.end(), ev, before),
                ev);
        }
    }
    EXPECT_EQ(popped, pending.size());
}

TEST(CalendarQueue, ZeroSpanStagedSet)
{
    // All staged events at one instant: the layout span is zero (the
    // width fallback path) and ids alone define the order.
    CalendarQueue q;
    for (TaskId id = 100; id-- > 0;)
        q.push(3.25, id);
    for (TaskId want = 0; want < 100; ++want) {
        const SimEvent got = q.pop();
        EXPECT_EQ(got.time, 3.25);
        ASSERT_EQ(got.id, want);
    }
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, ReuseAfterDrainResets)
{
    // Once drained the queue returns to the staging state, so a second
    // run may use entirely different (even earlier) timestamps — the
    // Workspace reuse model depends on this.
    CalendarQueue q;
    q.push(1e9, 0);
    q.push(2e9, 1);
    EXPECT_EQ(q.pop().id, 0u);
    EXPECT_EQ(q.pop().id, 1u);
    ASSERT_TRUE(q.empty());

    std::vector<SimEvent> model;
    for (TaskId id = 0; id < 50; ++id) {
        const double t = 1e-9 * id;
        model.push_back(SimEvent{t, id});
        q.push(t, id);
    }
    expectDrainsSorted(q, std::move(model));
}

TEST(CalendarQueue, ClearDiscardsEverything)
{
    CalendarQueue q;
    for (TaskId id = 0; id < 500; ++id)
        q.push(0.25 * id, id);
    EXPECT_EQ(q.pop().id, 0u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    // Usable again from scratch.
    q.push(5.0, 9);
    EXPECT_EQ(q.pop().id, 9u);
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, RandomizedDesSoak)
{
    // 50k-event soak in the exact shape run() uses the queue: staged
    // seed, then monotone pushes interleaved with pops. Checked
    // pop-for-pop against a sorted model across several seeds.
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        CalendarQueue q;
        std::vector<SimEvent> pending;
        TaskId next_id = 0;
        for (; next_id < 32; ++next_id) {
            const SimEvent ev{rng.uniform(0.0, 1.0), next_id};
            q.push(ev.time, ev.id);
            pending.push_back(ev);
        }
        std::sort(pending.begin(), pending.end(), before);
        std::size_t popped = 0;
        const std::size_t total_births = 50'000;
        while (!q.empty()) {
            const SimEvent got = q.pop();
            ASSERT_EQ(got.time, pending[popped].time);
            ASSERT_EQ(got.id, pending[popped].id);
            ++popped;
            std::size_t births =
                next_id < total_births ? rng.below(3) : 0;
            for (std::size_t b = 0; b < births; ++b) {
                // Heavy-tailed increments: exercises tight clusters,
                // resizes, and year-crossing jumps in one run.
                double step;
                switch (rng.below(4)) {
                case 0: step = 0.0; break;
                case 1: step = rng.uniform(0.0, 1e-6); break;
                case 2: step = rng.uniform(0.0, 1.0); break;
                default: step = rng.uniform(0.0, 1e4); break;
                }
                const SimEvent ev{got.time + step, next_id++};
                q.push(ev.time, ev.id);
                pending.insert(
                    std::upper_bound(pending.begin() +
                                         static_cast<std::ptrdiff_t>(
                                             popped),
                                     pending.end(), ev, before),
                    ev);
            }
        }
        EXPECT_EQ(popped, pending.size());
    }
}

} // namespace
} // namespace so::sim
