/**
 * @file
 * Naive O(V·E) reference scheduler — tests only.
 *
 * A deliberately simple re-implementation of the list-scheduling
 * semantics in src/sim/scheduler.h: no event queue, no ready heaps, no
 * CSR — every decision is a fresh linear scan over tasks, dependencies,
 * and slots. It is the executable specification the optimized
 * discrete-event path is differential-tested against (the ROADMAP item
 * 5 oracle): on any DAG, both must produce bit-identical start/finish
 * times, slot assignments, and makespan.
 *
 * Semantics (must match src/sim/scheduler.cpp exactly):
 *  - time advances to the earliest unfinished completion;
 *  - all completions at that instant retire before anything starts;
 *  - a freed resource starts ready tasks in ascending (priority, id)
 *    order while it has a vacant slot;
 *  - the slot chosen is the one that vacated earliest (ties toward the
 *    lowest slot index);
 *  - a slot stays occupied until its task's completion retires: a
 *    zero-duration task started at t blocks its slot until the next
 *    retire step at t, just like a completion event that hasn't
 *    drained from the event queue yet.
 *
 * Keep this file free of scheduler internals: it may only use the
 * public TaskGraph/Timeline/Schedule surface.
 */
#ifndef SO_TESTS_SIM_REFERENCE_SCHEDULER_H
#define SO_TESTS_SIM_REFERENCE_SCHEDULER_H

#include "sim/graph.h"
#include "sim/scheduler.h"

namespace so::sim::testing {

/**
 * Schedule @p graph with the naive reference algorithm. The graph must
 * be acyclic (cycles fail the calling test via ADD_FAILURE semantics:
 * the function asserts every task completes).
 */
Schedule referenceSchedule(const TaskGraph &graph);

} // namespace so::sim::testing

#endif // SO_TESTS_SIM_REFERENCE_SCHEDULER_H
