/**
 * @file
 * Level-of-detail profiling tests (sim::ProfileOptions): Summary mode
 * elides exactly the per-task arrays and nothing else, the binned
 * occupancy/energy histograms conserve the full profile's per-resource
 * busy seconds and task joules to 1e-9 relative, the retained top-K
 * task lists are exact prefixes of the full per-task arrays under the
 * same total order, and the streaming exporters (profile JSON, Chrome
 * trace, bundle JSON, bundle shards) emit byte-identical or
 * line-consistent documents versus their buffering counterparts.
 */
#include "sim/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "sim/graph.h"
#include "sim/inspect.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace so::sim {
namespace {

/** Relative tolerance shared by every conservation check. */
void
expectNear(double actual, double expected, double scale)
{
    EXPECT_NEAR(actual, expected, 1e-9 * std::max(scale, 1.0));
}

/** Random DAG over a few phase-labelled resources (test_energy idiom). */
TaskGraph
randomGraph(std::uint64_t seed, std::size_t n_resources,
            std::size_t n_tasks)
{
    Rng rng(seed);
    TaskGraph g;
    for (std::size_t r = 0; r < n_resources; ++r)
        g.addResource("R" + std::to_string(r), 1);
    static const char *kPhases[] = {"fwd", "bwd", "adam", "d2h",
                                    "h2d", "cast"};
    for (std::size_t t = 0; t < n_tasks; ++t) {
        std::vector<TaskId> deps;
        const std::size_t n_deps = t == 0 ? 0 : rng.below(4);
        for (std::size_t d = 0; d < n_deps; ++d) {
            const auto dep = static_cast<TaskId>(rng.below(t));
            bool dup = false;
            for (const TaskId existing : deps)
                dup = dup || existing == dep;
            if (!dup)
                deps.push_back(dep);
        }
        const auto resource =
            static_cast<ResourceId>(rng.below(n_resources));
        const double duration =
            rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.01, 1.0);
        g.addTask(resource, duration,
                  std::string(kPhases[rng.below(6)]) + " t" +
                      std::to_string(t),
                  std::move(deps));
    }
    return g;
}

EnergyInputs
meteredInputs(const TaskGraph &g, std::uint64_t seed)
{
    Rng rng(seed);
    EnergyInputs inputs;
    for (std::size_t r = 0; r < g.resourceCount(); ++r) {
        ResourcePower p;
        p.busy_w = rng.uniform(5.0, 700.0);
        p.idle_w = rng.uniform(0.0, 75.0);
        p.joules_per_byte = rng.bernoulli(0.5) ? 1e-11 : 0.0;
        inputs.resources.push_back(p);
    }
    for (std::size_t t = 0; t < g.taskCount(); ++t)
        inputs.task_bytes.push_back(
            rng.bernoulli(0.3) ? rng.uniform(0.0, 1e9) : 0.0);
    return inputs;
}

ProfileOptions
summaryOptions()
{
    ProfileOptions options;
    options.detail = ProfileOptions::Detail::Summary;
    return options;
}

TEST(ProfileLod, AutoThresholdAndExplicitModes)
{
    ProfileOptions options;
    EXPECT_FALSE(
        options.summarized(ProfileOptions::kAutoSummaryTasks - 1));
    EXPECT_TRUE(options.summarized(ProfileOptions::kAutoSummaryTasks));
    options.detail = ProfileOptions::Detail::Full;
    EXPECT_FALSE(options.summarized(1u << 30));
    options.detail = ProfileOptions::Detail::Summary;
    EXPECT_TRUE(options.summarized(1));
}

TEST(ProfileLod, SummaryElidesOnlyPerTaskArrays)
{
    const TaskGraph g = randomGraph(11, 4, 400);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile full = profileSchedule(g, s);
    const ScheduleProfile sum = profileSchedule(g, s, summaryOptions());

    EXPECT_FALSE(full.summarized);
    EXPECT_TRUE(sum.summarized);
    EXPECT_EQ(sum.task_count, g.taskCount());

    // Elided: the O(V) arrays.
    EXPECT_TRUE(sum.slack.empty());
    EXPECT_TRUE(sum.critical_path.empty());
    for (const ResourceProfile &rp : sum.resources)
        EXPECT_TRUE(rp.gaps.empty());

    // Retained bit-identically: every bounded aggregate.
    EXPECT_DOUBLE_EQ(sum.makespan, full.makespan);
    EXPECT_DOUBLE_EQ(sum.critical_length, full.critical_length);
    EXPECT_EQ(sum.critical_steps, full.critical_path.size());
    ASSERT_EQ(sum.critical_phases.size(), full.critical_phases.size());
    for (std::size_t i = 0; i < sum.critical_phases.size(); ++i) {
        EXPECT_EQ(sum.critical_phases[i].first,
                  full.critical_phases[i].first);
        EXPECT_DOUBLE_EQ(sum.critical_phases[i].second,
                         full.critical_phases[i].second);
    }
    ASSERT_EQ(sum.resources.size(), full.resources.size());
    for (std::size_t r = 0; r < sum.resources.size(); ++r) {
        EXPECT_DOUBLE_EQ(sum.resources[r].busy, full.resources[r].busy);
        EXPECT_DOUBLE_EQ(sum.resources[r].idle, full.resources[r].idle);
        EXPECT_DOUBLE_EQ(sum.resources[r].idle_dependency,
                         full.resources[r].idle_dependency);
        EXPECT_DOUBLE_EQ(sum.resources[r].idle_contention,
                         full.resources[r].idle_contention);
        EXPECT_DOUBLE_EQ(sum.resources[r].idle_tail,
                         full.resources[r].idle_tail);
    }
}

TEST(ProfileLod, BinnedBusyConservesPerResourceBusy)
{
    for (std::uint64_t seed : {1u, 7u, 23u, 99u}) {
        const TaskGraph g = randomGraph(seed, 3 + seed % 3, 300);
        const Schedule s = Scheduler().run(g);
        for (const auto detail : {ProfileOptions::Detail::Full,
                                  ProfileOptions::Detail::Summary}) {
            ProfileOptions options;
            options.detail = detail;
            const ScheduleProfile prof = profileSchedule(g, s, options);
            ASSERT_EQ(prof.busy_bins.size(), g.resourceCount());
            EXPECT_GT(prof.bin_s, 0.0);
            for (ResourceId r = 0; r < g.resourceCount(); ++r) {
                ASSERT_EQ(prof.busy_bins[r].size(), options.bins);
                double binned = 0.0;
                for (double v : prof.busy_bins[r]) {
                    EXPECT_GE(v, 0.0);
                    // No bin can hold more than its own width.
                    EXPECT_LE(v, prof.bin_s * (1.0 + 1e-9));
                    binned += v;
                }
                expectNear(binned, prof.resources[r].busy,
                           prof.makespan);
            }
        }
    }
}

TEST(ProfileLod, BinnedEnergyConservesTaskJoules)
{
    for (std::uint64_t seed : {3u, 17u, 41u}) {
        const TaskGraph g = randomGraph(seed, 4, 250);
        const Schedule s = Scheduler().run(g);
        const EnergyInputs inputs = meteredInputs(g, seed + 1);

        // The full profile's task_j array is the ground truth the
        // binned rows must conserve.
        const ScheduleProfile full_prof = profileSchedule(g, s);
        const EnergyProfile full =
            attributeEnergy(g, s, full_prof, inputs);
        ASSERT_TRUE(full.valid);
        ASSERT_EQ(full.task_j.size(), g.taskCount());

        const ScheduleProfile sum_prof =
            profileSchedule(g, s, summaryOptions());
        const EnergyProfile sum =
            attributeEnergy(g, s, sum_prof, inputs, summaryOptions());
        ASSERT_TRUE(sum.valid);
        EXPECT_TRUE(sum.summarized);
        EXPECT_TRUE(sum.task_j.empty());
        EXPECT_DOUBLE_EQ(sum.total_j, full.total_j);
        EXPECT_DOUBLE_EQ(sum.active_j, full.active_j);
        EXPECT_DOUBLE_EQ(sum.idle_j, full.idle_j);

        ASSERT_EQ(sum.energy_bins.size(), g.resourceCount());
        for (ResourceId r = 0; r < g.resourceCount(); ++r) {
            double expected = 0.0;
            for (TaskId id = 0; id < g.taskCount(); ++id)
                if (g.taskResource(id) == r)
                    expected += full.task_j[id];
            double binned = 0.0;
            for (double v : sum.energy_bins[r])
                binned += v;
            expectNear(binned, expected, full.active_j);
        }
    }
}

/** The total order both the profiler's TopK heap and a full-array sort
 *  use: value descending, task id ascending on ties. */
bool
outranks(const TopTask &a, const TopTask &b)
{
    if (a.value != b.value)
        return a.value > b.value;
    return a.task < b.task;
}

void
expectExactPrefix(const std::vector<TopTask> &top,
                  std::vector<TopTask> ranked, std::size_t top_k)
{
    std::sort(ranked.begin(), ranked.end(), outranks);
    ASSERT_EQ(top.size(), std::min(top_k, ranked.size()));
    for (std::size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i].task, ranked[i].task);
        EXPECT_DOUBLE_EQ(top[i].value, ranked[i].value);
    }
}

TEST(ProfileLod, TopKListsAreExactPrefixesOfFullArrays)
{
    for (std::uint64_t seed : {5u, 29u, 71u}) {
        const TaskGraph g = randomGraph(seed, 4, 350);
        const Schedule s = Scheduler().run(g);
        const ProfileOptions options; // Auto -> Full at this size.
        const ScheduleProfile prof = profileSchedule(g, s, options);
        ASSERT_EQ(prof.slack.size(), g.taskCount());

        const double eps = std::max(prof.makespan, 1.0) * 1e-12;
        std::vector<TopTask> slackers, zeros;
        for (TaskId id = 0; id < g.taskCount(); ++id) {
            if (prof.slack[id] > eps)
                slackers.push_back(TopTask{id, prof.slack[id]});
            else if (g.duration(id) > 0.0)
                zeros.push_back(TopTask{id, g.duration(id)});
        }
        expectExactPrefix(prof.top_slack, slackers, options.top_k);
        expectExactPrefix(prof.top_zero_slack, zeros, options.top_k);

        // Summary mode retains the same lists without the full array.
        const ScheduleProfile sum =
            profileSchedule(g, s, summaryOptions());
        ASSERT_EQ(sum.top_slack.size(), prof.top_slack.size());
        for (std::size_t i = 0; i < sum.top_slack.size(); ++i) {
            EXPECT_EQ(sum.top_slack[i].task, prof.top_slack[i].task);
            EXPECT_DOUBLE_EQ(sum.top_slack[i].value,
                             prof.top_slack[i].value);
        }

        // Energy top-K against the full task_j / task_bytes arrays.
        const EnergyInputs inputs = meteredInputs(g, seed + 2);
        const EnergyProfile energy =
            attributeEnergy(g, s, prof, inputs);
        ASSERT_TRUE(energy.valid);
        std::vector<TopTask> by_joules, by_bytes;
        for (TaskId id = 0; id < g.taskCount(); ++id) {
            if (energy.task_j[id] > 0.0)
                by_joules.push_back(TopTask{id, energy.task_j[id]});
            if (inputs.task_bytes[id] > 0.0)
                by_bytes.push_back(
                    TopTask{id, inputs.task_bytes[id]});
        }
        expectExactPrefix(energy.top_tasks, by_joules, options.top_k);
        expectExactPrefix(energy.top_bytes, by_bytes, options.top_k);
    }
}

TEST(ProfileLod, PhaseBusyRollupSumsToTotalDuration)
{
    const TaskGraph g = randomGraph(13, 3, 200);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s, summaryOptions());
    double rolled = 0.0;
    for (const auto &[phase, seconds] : prof.phase_busy)
        rolled += seconds;
    double total = 0.0;
    for (TaskId id = 0; id < g.taskCount(); ++id)
        total += g.duration(id);
    expectNear(rolled, total, total);
}

TEST(ProfileLod, SummaryProfileJsonCarriesBoundedViews)
{
    const TaskGraph g = randomGraph(19, 3, 150);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s, summaryOptions());

    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(profileToJson(prof, g, s), doc));
    EXPECT_EQ(doc.at("detail").text(), "summary");
    EXPECT_EQ(static_cast<std::size_t>(doc.at("task_count").number()),
              g.taskCount());

    // The diff viewer's hard requirements stay satisfied in Summary.
    const JsonValue &cp = doc.at("critical_path");
    EXPECT_GT(cp.at("length_s").number(), 0.0);
    EXPECT_TRUE(cp.at("tasks").items().empty());
    EXPECT_GT(cp.at("steps").number(), 0.0);

    const JsonValue &bins = doc.at("bins");
    EXPECT_GT(bins.at("bin_s").number(), 0.0);
    EXPECT_EQ(static_cast<std::size_t>(bins.at("count").number()),
              ProfileOptions{}.bins);
    ASSERT_EQ(bins.at("resources").items().size(), g.resourceCount());

    double share = 0.0;
    for (const JsonValue &p : doc.at("phase_busy").items())
        share += p.at("share").number();
    EXPECT_NEAR(share, 1.0, 1e-9);
    EXPECT_FALSE(doc.at("top_slack_tasks").items().empty());
}

TEST(ProfileLod, StreamingExportersMatchBufferingOnes)
{
    const TaskGraph g = randomGraph(31, 3, 120);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);

    std::ostringstream profile_stream;
    streamProfileJson(profile_stream, prof, g, s);
    EXPECT_EQ(profile_stream.str(), profileToJson(prof, g, s));

    std::ostringstream trace_stream;
    streamChromeTrace(trace_stream, g, s, prof);
    EXPECT_EQ(trace_stream.str(), toChromeTrace(g, s, prof));

    std::ostringstream bundle_stream;
    streamBundleJson(bundle_stream, g, s, prof, "lod");
    JsonValue direct, streamed;
    ASSERT_TRUE(JsonValue::parse(
        bundleToJson(makeInspectionBundle(g, s, prof, "lod")), direct));
    ASSERT_TRUE(JsonValue::parse(bundle_stream.str(), streamed));
    EXPECT_EQ(streamed.at("tasks").items().size(),
              direct.at("tasks").items().size());
    EXPECT_EQ(streamed.at("edges").items().size(),
              direct.at("edges").items().size());
    EXPECT_DOUBLE_EQ(streamed.at("makespan_s").number(),
                     direct.at("makespan_s").number());
}

TEST(ProfileLod, SummaryTraceOmitsFlowArrows)
{
    const TaskGraph g = randomGraph(37, 3, 100);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile sum = profileSchedule(g, s, summaryOptions());
    const std::string trace = toChromeTrace(g, s, sum);
    // Complete events and counters survive; critical-path flow arrows
    // need the elided chain.
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_EQ(trace.find("\"ph\":\"s\""), std::string::npos);
    JsonValue doc;
    EXPECT_TRUE(JsonValue::parse(trace, doc));
}

TEST(ProfileLod, BundleShardsRoundTripLineByLine)
{
    const TaskGraph g = randomGraph(43, 3, 180);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, s);
    const EnergyInputs inputs = meteredInputs(g, 44);
    const EnergyProfile energy = attributeEnergy(g, s, prof, inputs);

    const std::string path =
        testing::TempDir() + "lod_roundtrip.bundle.jsonl";
    ASSERT_TRUE(
        writeBundleShards(path, g, s, prof, "shards", &energy, 32));

    // Task lines mirror the resource timelines, which zero-duration
    // tasks never occupy.
    std::size_t spanning = 0;
    for (TaskId id = 0; id < g.taskCount(); ++id)
        spanning += g.duration(id) > 0.0 ? 1 : 0;

    std::ifstream in(path);
    ASSERT_TRUE(static_cast<bool>(in));
    std::string line;
    std::size_t tasks = 0, edges = 0, critical = 0, headers = 0;
    bool first = true;
    while (std::getline(in, line)) {
        JsonValue doc;
        ASSERT_TRUE(JsonValue::parse(line, doc)) << line.substr(0, 80);
        const std::string kind = doc.at("kind").text();
        if (first) {
            EXPECT_EQ(kind, "bundle_shard_header");
            first = false;
        }
        if (kind == "bundle_shard_header") {
            ++headers;
            EXPECT_EQ(static_cast<std::size_t>(
                          doc.at("task_count").number()),
                      g.taskCount());
            EXPECT_EQ(doc.at("resources").items().size(),
                      g.resourceCount());
            expectNear(doc.at("makespan_s").number(), prof.makespan,
                       prof.makespan);
        } else if (kind == "bundle_tasks") {
            const auto &items = doc.at("tasks").items();
            EXPECT_LE(items.size(), 32u);
            for (const JsonValue &t : items) {
                const auto id =
                    static_cast<TaskId>(t.at("id").number());
                // JSON numbers round-trip at writer precision, not
                // bit-exactly.
                expectNear(t.at("start_s").number(), s.start[id],
                           prof.makespan);
                expectNear(t.at("end_s").number(), s.finish[id],
                           prof.makespan);
                expectNear(t.at("slack_s").number(), prof.slack[id],
                           prof.makespan);
                EXPECT_NE(t.find("power_w"), nullptr);
                ++tasks;
            }
        } else if (kind == "bundle_edges") {
            edges += doc.at("edges").items().size();
        } else if (kind == "bundle_critical") {
            critical += doc.at("tasks").items().size();
        } else {
            ADD_FAILURE() << "unknown shard kind " << kind;
        }
    }
    EXPECT_EQ(headers, 1u);
    EXPECT_EQ(tasks, spanning);
    EXPECT_EQ(edges, g.edgeCount());
    EXPECT_EQ(critical, prof.critical_path.size());
    std::remove(path.c_str());
}

TEST(ProfileLod, SummaryShardsSkipSlackAndCritical)
{
    const TaskGraph g = randomGraph(47, 3, 150);
    const Schedule s = Scheduler().run(g);
    const ScheduleProfile sum = profileSchedule(g, s, summaryOptions());

    const std::string path =
        testing::TempDir() + "lod_summary.bundle.jsonl";
    ASSERT_TRUE(writeBundleShards(path, g, s, sum, "summary"));

    std::ifstream in(path);
    ASSERT_TRUE(static_cast<bool>(in));
    std::string line;
    std::size_t tasks = 0;
    while (std::getline(in, line)) {
        JsonValue doc;
        ASSERT_TRUE(JsonValue::parse(line, doc));
        const std::string kind = doc.at("kind").text();
        EXPECT_NE(kind, "bundle_critical");
        if (kind != "bundle_tasks")
            continue;
        for (const JsonValue &t : doc.at("tasks").items()) {
            EXPECT_EQ(t.find("slack_s"), nullptr);
            ++tasks;
        }
    }
    std::size_t spanning = 0;
    for (TaskId id = 0; id < g.taskCount(); ++id)
        spanning += g.duration(id) > 0.0 ? 1 : 0;
    EXPECT_EQ(tasks, spanning);
    std::remove(path.c_str());
}

} // namespace
} // namespace so::sim
