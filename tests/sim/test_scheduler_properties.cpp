/**
 * @file
 * Property-based tests of the discrete-event scheduler over randomly
 * generated DAGs: every schedule it emits must satisfy the defining
 * invariants regardless of graph shape.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/graph.h"
#include "sim/scheduler.h"

namespace so::sim {
namespace {

struct RandomGraph
{
    TaskGraph graph;
    std::vector<std::uint32_t> slots;
};

RandomGraph
makeRandomGraph(std::uint64_t seed, std::size_t n_resources,
                std::size_t n_tasks)
{
    Rng rng(seed);
    RandomGraph out;
    for (std::size_t r = 0; r < n_resources; ++r) {
        const auto s =
            static_cast<std::uint32_t>(1 + rng.below(3));
        out.slots.push_back(s);
        out.graph.addResource("R" + std::to_string(r), s);
    }
    for (std::size_t t = 0; t < n_tasks; ++t) {
        std::vector<TaskId> deps;
        // Up to 3 backward dependencies.
        const std::size_t n_deps = t == 0 ? 0 : rng.below(4);
        for (std::size_t d = 0; d < n_deps; ++d)
            deps.push_back(static_cast<TaskId>(rng.below(t)));
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        const auto resource =
            static_cast<ResourceId>(rng.below(n_resources));
        // Mix zero-duration barriers in.
        const double duration =
            rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.01, 1.0);
        const auto priority =
            static_cast<std::int32_t>(rng.below(5)) - 2;
        out.graph.addTask(resource, duration, "t" + std::to_string(t),
                          std::move(deps), priority);
    }
    return out;
}

class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> // seed
{
};

TEST_P(SchedulerPropertyTest, ScheduleSatisfiesAllInvariants)
{
    const RandomGraph rg = makeRandomGraph(GetParam(), 4, 200);
    const Schedule sched = Scheduler().run(rg.graph);
    const auto &tasks = rg.graph.tasks();

    double latest_finish = 0.0;
    for (TaskId id = 0; id < tasks.size(); ++id) {
        // Duration honored.
        ASSERT_NEAR(sched.finish[id] - sched.start[id],
                    tasks[id].duration, 1e-12);
        ASSERT_GE(sched.start[id], 0.0);
        latest_finish = std::max(latest_finish, sched.finish[id]);
        // Dependencies strictly precede.
        for (TaskId dep : tasks[id].deps)
            ASSERT_GE(sched.start[id], sched.finish[dep] - 1e-12)
                << "task " << id << " started before dep " << dep;
    }
    // Makespan is exactly the last finish.
    ASSERT_NEAR(sched.makespan, latest_finish, 1e-12);

    // Resource concurrency never exceeds the slot count: sweep each
    // resource's intervals.
    for (ResourceId r = 0; r < rg.graph.resourceCount(); ++r) {
        std::vector<std::pair<double, int>> events;
        for (const Interval &iv : sched.timelines[r].intervals()) {
            events.emplace_back(iv.start, +1);
            events.emplace_back(iv.end, -1);
        }
        std::sort(events.begin(), events.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second; // Ends before starts.
                  });
        int live = 0;
        for (const auto &[time, delta] : events) {
            (void)time;
            live += delta;
            ASSERT_LE(live, static_cast<int>(rg.slots[r]))
                << "resource " << r << " oversubscribed";
        }
    }

    // Work conservation: total busy slot-seconds equals the summed
    // durations of the tasks bound to each resource.
    for (ResourceId r = 0; r < rg.graph.resourceCount(); ++r) {
        ASSERT_NEAR(sched.timelines[r].totalSlotSeconds(),
                    rg.graph.totalWork(r), 1e-9);
    }
}

TEST_P(SchedulerPropertyTest, ReRunIsBitwiseIdentical)
{
    const RandomGraph rg = makeRandomGraph(GetParam() ^ 0xabcd, 3, 120);
    const Schedule a = Scheduler().run(rg.graph);
    const Schedule b = Scheduler().run(rg.graph);
    for (std::size_t i = 0; i < a.start.size(); ++i) {
        ASSERT_EQ(a.start[i], b.start[i]);
        ASSERT_EQ(a.finish[i], b.finish[i]);
    }
}

TEST_P(SchedulerPropertyTest, MakespanAtLeastCriticalPath)
{
    const RandomGraph rg = makeRandomGraph(GetParam() ^ 0x1234, 5, 150);
    const Schedule sched = Scheduler().run(rg.graph);
    const auto &tasks = rg.graph.tasks();
    // Longest dependency chain is a lower bound on the makespan.
    std::vector<double> chain(tasks.size(), 0.0);
    double critical = 0.0;
    for (TaskId id = 0; id < tasks.size(); ++id) {
        double ready = 0.0;
        for (TaskId dep : tasks[id].deps)
            ready = std::max(ready, chain[dep]);
        chain[id] = ready + tasks[id].duration;
        critical = std::max(critical, chain[id]);
    }
    EXPECT_GE(sched.makespan + 1e-12, critical);
    // And no worse than fully serial execution.
    double total = 0.0;
    for (const Task &task : tasks)
        total += task.duration;
    EXPECT_LE(sched.makespan, total + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

} // namespace
} // namespace so::sim
