/**
 * @file
 * Property-based tests of the discrete-event scheduler over randomly
 * generated DAGs: every schedule it emits must satisfy the defining
 * invariants regardless of graph shape.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/graph.h"
#include "sim/scheduler.h"

namespace so::sim {
namespace {

struct RandomGraph
{
    TaskGraph graph;
    std::vector<std::uint32_t> slots;
};

RandomGraph
makeRandomGraph(std::uint64_t seed, std::size_t n_resources,
                std::size_t n_tasks)
{
    Rng rng(seed);
    RandomGraph out;
    for (std::size_t r = 0; r < n_resources; ++r) {
        const auto s =
            static_cast<std::uint32_t>(1 + rng.below(3));
        out.slots.push_back(s);
        out.graph.addResource("R" + std::to_string(r), s);
    }
    for (std::size_t t = 0; t < n_tasks; ++t) {
        std::vector<TaskId> deps;
        // Up to 3 backward dependencies.
        const std::size_t n_deps = t == 0 ? 0 : rng.below(4);
        for (std::size_t d = 0; d < n_deps; ++d)
            deps.push_back(static_cast<TaskId>(rng.below(t)));
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        const auto resource =
            static_cast<ResourceId>(rng.below(n_resources));
        // Mix zero-duration barriers in.
        const double duration =
            rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.01, 1.0);
        const auto priority =
            static_cast<std::int32_t>(rng.below(5)) - 2;
        out.graph.addTask(resource, duration, "t" + std::to_string(t),
                          std::move(deps), priority);
    }
    return out;
}

class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> // seed
{
};

TEST_P(SchedulerPropertyTest, ScheduleSatisfiesAllInvariants)
{
    const RandomGraph rg = makeRandomGraph(GetParam(), 4, 200);
    const Schedule sched = Scheduler().run(rg.graph);

    double latest_finish = 0.0;
    for (TaskId id = 0; id < rg.graph.taskCount(); ++id) {
        // Duration honored.
        ASSERT_NEAR(sched.finish[id] - sched.start[id],
                    rg.graph.duration(id), 1e-12);
        ASSERT_GE(sched.start[id], 0.0);
        latest_finish = std::max(latest_finish, sched.finish[id]);
        // Dependencies strictly precede.
        for (TaskId dep : rg.graph.deps(id))
            ASSERT_GE(sched.start[id], sched.finish[dep] - 1e-12)
                << "task " << id << " started before dep " << dep;
    }
    // Makespan is exactly the last finish.
    ASSERT_NEAR(sched.makespan, latest_finish, 1e-12);

    // Resource concurrency never exceeds the slot count: sweep each
    // resource's intervals.
    for (ResourceId r = 0; r < rg.graph.resourceCount(); ++r) {
        std::vector<std::pair<double, int>> events;
        for (const Interval &iv : sched.timelines[r].intervals()) {
            events.emplace_back(iv.start, +1);
            events.emplace_back(iv.end, -1);
        }
        std::sort(events.begin(), events.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second; // Ends before starts.
                  });
        int live = 0;
        for (const auto &[time, delta] : events) {
            (void)time;
            live += delta;
            ASSERT_LE(live, static_cast<int>(rg.slots[r]))
                << "resource " << r << " oversubscribed";
        }
    }

    // Work conservation: total busy slot-seconds equals the summed
    // durations of the tasks bound to each resource.
    for (ResourceId r = 0; r < rg.graph.resourceCount(); ++r) {
        ASSERT_NEAR(sched.timelines[r].totalSlotSeconds(),
                    rg.graph.totalWork(r), 1e-9);
    }

    // Slot assignments are physical: intervals sharing a slot index
    // never overlap in time, and indices stay below the slot count.
    for (ResourceId r = 0; r < rg.graph.resourceCount(); ++r) {
        std::vector<std::vector<std::pair<double, double>>> by_slot(
            rg.slots[r]);
        for (const Interval &iv : sched.timelines[r].intervals()) {
            ASSERT_LT(iv.slot, rg.slots[r]);
            if (iv.end > iv.start)
                by_slot[iv.slot].emplace_back(iv.start, iv.end);
        }
        for (auto &intervals : by_slot) {
            std::sort(intervals.begin(), intervals.end());
            for (std::size_t i = 1; i < intervals.size(); ++i)
                ASSERT_LE(intervals[i - 1].second,
                          intervals[i].first + 1e-12)
                    << "resource " << r << " double-books a slot";
        }
    }
}

TEST_P(SchedulerPropertyTest, SharedWorkspaceIsBitwiseIdentical)
{
    // Reusing one workspace across many runs (the sweep hot path) must
    // not leak state between graphs: results match fresh-workspace runs
    // bit for bit.
    Scheduler::Workspace ws;
    for (std::uint64_t salt = 0; salt < 4; ++salt) {
        const RandomGraph rg =
            makeRandomGraph(GetParam() ^ (salt * 0x9e3779b9), 4, 150);
        const Schedule fresh = Scheduler().run(rg.graph);
        const Schedule reused = Scheduler().run(rg.graph, ws);
        ASSERT_EQ(fresh.start.size(), reused.start.size());
        for (std::size_t i = 0; i < fresh.start.size(); ++i) {
            ASSERT_EQ(fresh.start[i], reused.start[i]);
            ASSERT_EQ(fresh.finish[i], reused.finish[i]);
        }
        for (ResourceId r = 0; r < rg.graph.resourceCount(); ++r) {
            const auto &fi = fresh.timelines[r].intervals();
            const auto &ri = reused.timelines[r].intervals();
            ASSERT_EQ(fi.size(), ri.size());
            for (std::size_t i = 0; i < fi.size(); ++i) {
                ASSERT_EQ(fi[i].task, ri[i].task);
                ASSERT_EQ(fi[i].slot, ri[i].slot);
                ASSERT_EQ(fi[i].start, ri[i].start);
                ASSERT_EQ(fi[i].end, ri[i].end);
            }
        }
    }
}

TEST_P(SchedulerPropertyTest, ReRunIsBitwiseIdentical)
{
    const RandomGraph rg = makeRandomGraph(GetParam() ^ 0xabcd, 3, 120);
    const Schedule a = Scheduler().run(rg.graph);
    const Schedule b = Scheduler().run(rg.graph);
    for (std::size_t i = 0; i < a.start.size(); ++i) {
        ASSERT_EQ(a.start[i], b.start[i]);
        ASSERT_EQ(a.finish[i], b.finish[i]);
    }
}

TEST_P(SchedulerPropertyTest, MakespanAtLeastCriticalPath)
{
    const RandomGraph rg = makeRandomGraph(GetParam() ^ 0x1234, 5, 150);
    const Schedule sched = Scheduler().run(rg.graph);
    // Longest dependency chain is a lower bound on the makespan.
    std::vector<double> chain(rg.graph.taskCount(), 0.0);
    double critical = 0.0;
    for (TaskId id = 0; id < rg.graph.taskCount(); ++id) {
        double ready = 0.0;
        for (TaskId dep : rg.graph.deps(id))
            ready = std::max(ready, chain[dep]);
        chain[id] = ready + rg.graph.duration(id);
        critical = std::max(critical, chain[id]);
    }
    EXPECT_GE(sched.makespan + 1e-12, critical);
    // And no worse than fully serial execution.
    double total = 0.0;
    for (TaskId id = 0; id < rg.graph.taskCount(); ++id)
        total += rg.graph.duration(id);
    EXPECT_LE(sched.makespan, total + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

} // namespace
} // namespace so::sim
