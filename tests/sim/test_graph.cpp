#include "sim/graph.h"

#include <gtest/gtest.h>

namespace so::sim {
namespace {

TEST(TaskGraph, AddResourceAssignsSequentialIds)
{
    TaskGraph g;
    EXPECT_EQ(g.addResource("GPU"), 0u);
    EXPECT_EQ(g.addResource("CPU", 2), 1u);
    EXPECT_EQ(g.resourceCount(), 2u);
    EXPECT_EQ(g.resource(0).name, "GPU");
    EXPECT_EQ(g.resource(1).slots, 2u);
}

TEST(TaskGraph, AddTaskStoresFields)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.5, "fwd");
    const TaskId b = g.addTask(r, 0.5, "bwd", {a}, 3);
    EXPECT_EQ(g.taskCount(), 2u);
    EXPECT_DOUBLE_EQ(g.task(a).duration, 1.5);
    EXPECT_EQ(g.task(b).deps.size(), 1u);
    EXPECT_EQ(g.task(b).deps[0], a);
    EXPECT_EQ(g.task(b).priority, 3);
}

TEST(TaskGraph, AddDepAppends)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId b = g.addTask(r, 1.0, "b");
    g.addDep(a, b);
    EXPECT_EQ(g.task(b).deps.size(), 1u);
}

TEST(TaskGraph, TotalWorkSumsPerResource)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    g.addTask(gpu, 1.0, "x");
    g.addTask(gpu, 2.0, "y");
    g.addTask(cpu, 4.0, "z");
    EXPECT_DOUBLE_EQ(g.totalWork(gpu), 3.0);
    EXPECT_DOUBLE_EQ(g.totalWork(cpu), 4.0);
}

TEST(TaskGraph, ZeroDurationTaskAllowed)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    EXPECT_NO_THROW(g.addTask(r, 0.0, "barrier"));
}

TEST(TaskGraphDeath, RejectsUnknownResource)
{
    TaskGraph g;
    EXPECT_DEATH(g.addTask(3, 1.0, "bad"), "unknown resource");
}

TEST(TaskGraphDeath, RejectsForwardDependency)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    // Dependencies must reference previously added tasks.
    EXPECT_DEATH(g.addTask(r, 1.0, "b", {static_cast<TaskId>(a + 5)}),
                 "already-added");
}

TEST(TaskGraphDeath, RejectsNegativeDuration)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    EXPECT_DEATH(g.addTask(r, -1.0, "bad"), "negative");
}

TEST(TaskGraphDeath, RejectsZeroSlotResource)
{
    TaskGraph g;
    EXPECT_DEATH(g.addResource("bad", 0), "at least one slot");
}

} // namespace
} // namespace so::sim
