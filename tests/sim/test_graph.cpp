#include "sim/graph.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace so::sim {
namespace {

TEST(TaskGraph, AddResourceAssignsSequentialIds)
{
    TaskGraph g;
    EXPECT_EQ(g.addResource("GPU"), 0u);
    EXPECT_EQ(g.addResource("CPU", 2), 1u);
    EXPECT_EQ(g.resourceCount(), 2u);
    EXPECT_EQ(g.resource(0).name, "GPU");
    EXPECT_EQ(g.resource(1).slots, 2u);
}

TEST(TaskGraph, AddTaskStoresFields)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.5, "fwd");
    const TaskId b = g.addTask(r, 0.5, "bwd", {a}, 3);
    EXPECT_EQ(g.taskCount(), 2u);
    EXPECT_DOUBLE_EQ(g.duration(a), 1.5);
    EXPECT_EQ(g.taskResource(a), r);
    EXPECT_EQ(g.label(a), "fwd");
    ASSERT_EQ(g.depCount(b), 1u);
    EXPECT_EQ(g.deps(b)[0], a);
    EXPECT_EQ(g.priority(b), 3);
}

TEST(TaskGraph, AddDepAppends)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId b = g.addTask(r, 1.0, "b");
    g.addDep(a, b);
    ASSERT_EQ(g.depCount(b), 1u);
    EXPECT_EQ(g.deps(b)[0], a);
}

TEST(TaskGraph, AddDepAfterLaterTasksRelocatesRun)
{
    // Appending a dep to a task whose dependency run is no longer at the
    // tail of the edge pool must relocate the run, not corrupt its
    // neighbours.
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId b = g.addTask(r, 1.0, "b", {a});
    const TaskId c = g.addTask(r, 1.0, "c", {a, b});
    const TaskId d = g.addTask(r, 1.0, "d");
    g.addDep(a, d); // d's run starts fresh at the tail.
    g.addDep(b, d); // still at the tail: extends in place.
    g.addDep(c, b); // b's run is interior: relocated.
    g.addDep(a, c); // c's run is interior: relocated.
    ASSERT_EQ(g.depCount(b), 2u);
    EXPECT_EQ(g.deps(b)[0], a);
    EXPECT_EQ(g.deps(b)[1], c);
    ASSERT_EQ(g.depCount(c), 3u);
    EXPECT_EQ(g.deps(c)[0], a);
    EXPECT_EQ(g.deps(c)[1], b);
    EXPECT_EQ(g.deps(c)[2], a);
    ASSERT_EQ(g.depCount(d), 2u);
    EXPECT_EQ(g.deps(d)[0], a);
    EXPECT_EQ(g.deps(d)[1], b);
    EXPECT_EQ(g.edgeCount(), 7u); // Live entries only, not dead pool space.
}

TEST(TaskGraph, DepsAcceptVectorSpanAndBraces)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const std::vector<TaskId> vec{a};
    const TaskId b = g.addTask(r, 1.0, "b", vec);
    const TaskId c = g.addTask(r, 1.0, "c", g.deps(b));
    EXPECT_EQ(g.deps(b)[0], a);
    EXPECT_EQ(g.deps(c)[0], a);
}

TEST(TaskGraph, TotalWorkSumsPerResource)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    g.addTask(gpu, 1.0, "x");
    g.addTask(gpu, 2.0, "y");
    g.addTask(cpu, 4.0, "z");
    EXPECT_DOUBLE_EQ(g.totalWork(gpu), 3.0);
    EXPECT_DOUBLE_EQ(g.totalWork(cpu), 4.0);
}

TEST(TaskGraph, ZeroDurationTaskAllowed)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    EXPECT_NO_THROW(g.addTask(r, 0.0, "barrier"));
}

TEST(TaskGraph, ReserveDoesNotChangeContents)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    g.reserveTasks(100, 1024);
    g.reserveEdges(200);
    const TaskId a = g.addTask(r, 1.0, "alpha");
    const TaskId b = g.addTask(r, 2.0, "beta", {a});
    EXPECT_EQ(g.taskCount(), 2u);
    EXPECT_EQ(g.label(a), "alpha");
    EXPECT_EQ(g.label(b), "beta");
    EXPECT_EQ(g.deps(b)[0], a);
}

// ---------------------------------------------------------------------
// Label interning.

TEST(TaskGraphIntern, EmptyLabelRoundTrips)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "");
    EXPECT_EQ(g.label(a), "");
    EXPECT_TRUE(g.label(a).empty());
}

TEST(TaskGraphIntern, DuplicateLabelsShareArenaStorage)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "fwd layer");
    const std::size_t after_first = g.labelArenaBytes();
    const TaskId b = g.addTask(r, 2.0, "fwd layer");
    // Distinct tasks, same text — the second intern reuses storage.
    EXPECT_NE(a, b);
    EXPECT_EQ(g.label(a), g.label(b));
    EXPECT_EQ(g.labelArenaBytes(), after_first);
    EXPECT_EQ(g.label(a).data(), g.label(b).data());
}

TEST(TaskGraphIntern, DistinctLabelsKeepDistinctText)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    std::vector<TaskId> ids;
    for (int i = 0; i < 64; ++i)
        ids.push_back(
            g.addTask(r, 1.0, "task-" + std::to_string(i)));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(g.label(ids[static_cast<std::size_t>(i)]),
                  "task-" + std::to_string(i));
}

TEST(TaskGraphIntern, LabelSurvivesArenaGrowth)
{
    // string_views are documented as invalidated by the *next* addTask;
    // re-fetching after heavy growth must still return the right text.
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId first = g.addTask(r, 1.0, "the very first label");
    for (int i = 0; i < 1000; ++i)
        g.addTask(r, 1.0, "filler-" + std::to_string(i));
    EXPECT_EQ(g.label(first), "the very first label");
}

TEST(TaskGraphIntern, QuotesAndUtf8SurviveProfileJson)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const std::string quoted = "say \"hi\"\\path";
    const std::string utf8 = "épöch-θ∇";
    const TaskId a = g.addTask(r, 1.0, quoted);
    g.addTask(r, 2.0, utf8, {a});
    const Schedule sched = Scheduler().run(g);
    const ScheduleProfile prof = profileSchedule(g, sched);
    const std::string json = profileToJson(prof, g, sched);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(json, doc, &error)) << error;
    // Both labels must appear verbatim somewhere in the parsed document
    // (critical path steps carry task labels).
    bool saw_quoted = false, saw_utf8 = false;
    const JsonValue &steps = doc.at("critical_path").at("tasks");
    for (const JsonValue &step : steps.items()) {
        const std::string &label = step.at("label").text();
        saw_quoted |= label == quoted;
        saw_utf8 |= label == utf8;
    }
    EXPECT_TRUE(saw_quoted);
    EXPECT_TRUE(saw_utf8);
}

TEST(TaskGraphIntern, QuotesAndUtf8SurviveChromeTrace)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const std::string quoted = "tab\there \"q\"";
    const std::string utf8 = "Übergabe-µs";
    const TaskId a = g.addTask(r, 1.0, quoted);
    g.addTask(r, 2.0, utf8, {a});
    const Schedule sched = Scheduler().run(g);
    const std::string json = toChromeTrace(g, sched);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(json, doc, &error)) << error;
    bool saw_quoted = false, saw_utf8 = false;
    for (const JsonValue &event : doc.at("traceEvents").items()) {
        const JsonValue *name = event.find("name");
        if (!name || !name->isString())
            continue;
        saw_quoted |= name->text() == quoted;
        saw_utf8 |= name->text() == utf8;
    }
    EXPECT_TRUE(saw_quoted);
    EXPECT_TRUE(saw_utf8);
}

// ---------------------------------------------------------------------
// Dependents CSR cache and priority range.

TEST(TaskGraphDependents, MirrorsForwardEdges)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId b = g.addTask(r, 1.0, "b", {a});
    const TaskId c = g.addTask(r, 1.0, "c", {a, b});
    const TaskId d = g.addTask(r, 1.0, "d", {a});
    ASSERT_EQ(g.dependents(a).size(), 3u);
    EXPECT_EQ(g.dependents(a)[0], b);
    EXPECT_EQ(g.dependents(a)[1], c);
    EXPECT_EQ(g.dependents(a)[2], d);
    ASSERT_EQ(g.dependents(b).size(), 1u);
    EXPECT_EQ(g.dependents(b)[0], c);
    EXPECT_TRUE(g.dependents(c).empty());
    EXPECT_TRUE(g.dependents(d).empty());
}

TEST(TaskGraphDependents, InvalidatedByAddTaskAndAddDep)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId b = g.addTask(r, 1.0, "b", {a});
    EXPECT_EQ(g.dependents(a).size(), 1u); // Builds the cache.

    const TaskId c = g.addTask(r, 1.0, "c", {a});
    ASSERT_EQ(g.dependents(a).size(), 2u); // Rebuilt after addTask.
    EXPECT_EQ(g.dependents(a)[1], c);

    g.addDep(b, c);
    ASSERT_EQ(g.dependents(b).size(), 1u); // Rebuilt after addDep.
    EXPECT_EQ(g.dependents(b)[0], c);
}

TEST(TaskGraphDependents, RelocatedDepRunsStayConsistent)
{
    // The edge pool leaves dead gaps behind when addDep relocates an
    // interior run; the CSR must index live edges only.
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId b = g.addTask(r, 1.0, "b", {a});
    const TaskId c = g.addTask(r, 1.0, "c", {a, b});
    g.addDep(a, b); // Duplicate edge, relocates b's interior run.
    ASSERT_EQ(g.dependents(a).size(), 3u);
    EXPECT_EQ(g.dependents(a)[0], b);
    EXPECT_EQ(g.dependents(a)[1], b); // Duplicate preserved.
    EXPECT_EQ(g.dependents(a)[2], c);
    std::size_t total = 0;
    for (TaskId id = 0; id < g.taskCount(); ++id)
        total += g.dependents(id).size();
    EXPECT_EQ(total, g.edgeCount());
}

TEST(TaskGraphDependents, FinalizeIsIdempotent)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    g.addTask(r, 1.0, "b", {a});
    g.finalizeDependents();
    const TaskId *data = g.dependents(a).data();
    g.finalizeDependents(); // No mutation since: must not rebuild.
    EXPECT_EQ(g.dependents(a).data(), data);
}

TEST(TaskGraphDependents, EmptyGraph)
{
    TaskGraph g;
    g.addResource("GPU");
    g.finalizeDependents();
    EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(TaskGraphPriorities, RangeTracksMinAndMax)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    EXPECT_EQ(g.minPriority(), 0);
    EXPECT_EQ(g.maxPriority(), 0);
    g.addTask(r, 1.0, "a", {}, 5);
    EXPECT_EQ(g.minPriority(), 5);
    EXPECT_EQ(g.maxPriority(), 5);
    g.addTask(r, 1.0, "b", {}, -3);
    g.addTask(r, 1.0, "c", {}, 2);
    EXPECT_EQ(g.minPriority(), -3);
    EXPECT_EQ(g.maxPriority(), 5);
    ASSERT_EQ(g.priorities().size(), 3u);
    EXPECT_EQ(g.priorities()[0], 5);
    EXPECT_EQ(g.priorities()[1], -3);
    EXPECT_EQ(g.priorities()[2], 2);
}

// ---------------------------------------------------------------------
// Death tests.

TEST(TaskGraphDeath, RejectsUnknownResource)
{
    TaskGraph g;
    EXPECT_DEATH(g.addTask(3, 1.0, "bad"), "unknown resource");
}

TEST(TaskGraphDeath, RejectsForwardDependency)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    // Dependencies must reference previously added tasks.
    EXPECT_DEATH(g.addTask(r, 1.0, "b", {static_cast<TaskId>(a + 5)}),
                 "already-added");
}

TEST(TaskGraphDeath, RejectsNegativeDuration)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    EXPECT_DEATH(g.addTask(r, -1.0, "bad"), "negative");
}

TEST(TaskGraphDeath, RejectsZeroSlotResource)
{
    TaskGraph g;
    EXPECT_DEATH(g.addResource("bad", 0), "at least one slot");
}

} // namespace
} // namespace so::sim
