#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sim/graph.h"

namespace so::sim {
namespace {

TEST(Scheduler, SingleTask)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    g.addTask(r, 2.0, "a");
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[0], 0.0);
    EXPECT_DOUBLE_EQ(s.finish[0], 2.0);
    EXPECT_DOUBLE_EQ(s.makespan, 2.0);
}

TEST(Scheduler, ChainRespectsDependencies)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId b = g.addTask(r, 2.0, "b", {a});
    const TaskId c = g.addTask(r, 3.0, "c", {b});
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[b], 1.0);
    EXPECT_DOUBLE_EQ(s.start[c], 3.0);
    EXPECT_DOUBLE_EQ(s.makespan, 6.0);
}

TEST(Scheduler, IndependentTasksSerializeOnOneSlot)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU", 1);
    g.addTask(r, 1.0, "a");
    g.addTask(r, 1.0, "b");
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.makespan, 2.0);
}

TEST(Scheduler, IndependentTasksRunConcurrentlyOnTwoSlots)
{
    TaskGraph g;
    const ResourceId r = g.addResource("CPU", 2);
    g.addTask(r, 1.0, "a");
    g.addTask(r, 1.0, "b");
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.makespan, 1.0);
}

TEST(Scheduler, SlotAssignmentTracksActualFreeSlot)
{
    // Two slots, staggered durations: task c must land on whichever
    // slot actually freed first (slot 1, where the short b ran), not on
    // a round-robin counter that ignores completion order.
    TaskGraph g;
    const ResourceId r = g.addResource("CPU", 2);
    const TaskId a = g.addTask(r, 4.0, "a"); // slot 0, busy until 4.
    const TaskId b = g.addTask(r, 1.0, "b"); // slot 1, frees at 1.
    const TaskId c = g.addTask(r, 1.0, "c", {b});
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[c], 1.0);

    std::uint32_t slot_a = 99, slot_b = 99, slot_c = 99;
    for (const Interval &iv : s.timelines[r].intervals()) {
        if (iv.task == a)
            slot_a = iv.slot;
        else if (iv.task == b)
            slot_b = iv.slot;
        else if (iv.task == c)
            slot_c = iv.slot;
    }
    EXPECT_EQ(slot_a, 0u);
    EXPECT_EQ(slot_b, 1u);
    EXPECT_EQ(slot_c, 1u); // c reuses b's freed slot while a still runs.
}

TEST(Scheduler, OverlappingIntervalsNeverShareASlot)
{
    // Pinned regression for the old `next_slot++ % slots` assignment:
    // with overlapping occupancy, no two time-overlapping intervals may
    // report the same slot index.
    TaskGraph g;
    const ResourceId r = g.addResource("CPU", 2);
    TaskId chain = g.addTask(r, 0.5, "seed");
    for (int i = 0; i < 16; ++i) {
        // A long task and a short chain sharing two slots produces many
        // overlapping pairs with non-uniform completion order.
        g.addTask(r, 2.5, "long" + std::to_string(i), {chain});
        chain = g.addTask(r, 0.7, "short" + std::to_string(i), {chain});
    }
    const Schedule s = Scheduler().run(g);
    const auto &intervals = s.timelines[r].intervals();
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        for (std::size_t j = i + 1; j < intervals.size(); ++j) {
            const Interval &x = intervals[i];
            const Interval &y = intervals[j];
            const bool overlap =
                x.start < y.end - 1e-12 && y.start < x.end - 1e-12;
            if (overlap)
                EXPECT_NE(x.slot, y.slot)
                    << "tasks " << x.task << " and " << y.task
                    << " double-book slot " << x.slot;
        }
    }
}

TEST(Scheduler, CrossResourceOverlap)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId link = g.addResource("D2H");
    // GPU computes two chunks; each chunk's transfer overlaps the next
    // chunk's compute.
    const TaskId c0 = g.addTask(gpu, 1.0, "c0");
    const TaskId t0 = g.addTask(link, 1.0, "t0", {c0});
    const TaskId c1 = g.addTask(gpu, 1.0, "c1", {c0});
    const TaskId t1 = g.addTask(link, 1.0, "t1", {c1});
    (void)t0;
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[c1], 1.0);       // Right after c0.
    EXPECT_DOUBLE_EQ(s.start[t1], 2.0);       // t0 done at 2.0.
    EXPECT_DOUBLE_EQ(s.makespan, 3.0);        // One transfer exposed.
}

TEST(Scheduler, PriorityBreaksTies)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId low = g.addTask(r, 1.0, "low", {}, 5);
    const TaskId high = g.addTask(r, 1.0, "high", {}, -5);
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[high], 0.0);
    EXPECT_DOUBLE_EQ(s.start[low], 1.0);
}

TEST(Scheduler, InsertionOrderBreaksEqualPriority)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId first = g.addTask(r, 1.0, "first");
    const TaskId second = g.addTask(r, 1.0, "second");
    const Schedule s = Scheduler().run(g);
    EXPECT_LT(s.start[first], s.start[second]);
}

TEST(Scheduler, ZeroDurationTasksActAsOrderingPoints)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "a");
    const TaskId barrier = g.addTask(r, 0.0, "barrier", {a});
    const TaskId b = g.addTask(r, 1.0, "b", {barrier});
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[b], 1.0);
    EXPECT_DOUBLE_EQ(s.makespan, 2.0);
}

TEST(Scheduler, DiamondDependency)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU", 2);
    const TaskId src = g.addTask(r, 1.0, "src");
    const TaskId left = g.addTask(r, 2.0, "left", {src});
    const TaskId right = g.addTask(r, 3.0, "right", {src});
    const TaskId sink = g.addTask(r, 1.0, "sink", {left, right});
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[sink], 4.0); // After the slower branch.
    EXPECT_DOUBLE_EQ(s.makespan, 5.0);
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU", 3);
    TaskId prev = kInvalidTask;
    for (int i = 0; i < 50; ++i) {
        std::vector<TaskId> deps;
        if (prev != kInvalidTask)
            deps.push_back(prev);
        prev = g.addTask(gpu, 0.1 + i * 0.01, "g", deps);
        g.addTask(cpu, 0.2, "c", {prev});
    }
    const Schedule s1 = Scheduler().run(g);
    const Schedule s2 = Scheduler().run(g);
    ASSERT_EQ(s1.start.size(), s2.start.size());
    for (std::size_t i = 0; i < s1.start.size(); ++i) {
        EXPECT_DOUBLE_EQ(s1.start[i], s2.start[i]);
        EXPECT_DOUBLE_EQ(s1.finish[i], s2.finish[i]);
    }
}

TEST(Scheduler, UtilizationAndIdleFractions)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId cpu = g.addResource("CPU");
    const TaskId a = g.addTask(gpu, 1.0, "a");
    g.addTask(cpu, 1.0, "b", {a});
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.makespan, 2.0);
    EXPECT_DOUBLE_EQ(s.utilization(gpu), 0.5);
    EXPECT_DOUBLE_EQ(s.idleFraction(gpu), 0.5);
    EXPECT_DOUBLE_EQ(s.utilization(cpu), 0.5);
}

TEST(Scheduler, ManyTasksStress)
{
    TaskGraph g;
    const ResourceId gpu = g.addResource("GPU");
    const ResourceId link = g.addResource("link");
    TaskId prev = kInvalidTask;
    double total = 0.0;
    for (int i = 0; i < 5000; ++i) {
        std::vector<TaskId> deps;
        if (prev != kInvalidTask)
            deps.push_back(prev);
        prev = g.addTask(gpu, 0.001, "g", deps);
        g.addTask(link, 0.0005, "l", {prev});
        total += 0.001;
    }
    const Schedule s = Scheduler().run(g);
    // GPU chain dominates; last transfer adds its tail.
    EXPECT_NEAR(s.makespan, total + 0.0005, 1e-9);
}

TEST(Scheduler, EmptyGraph)
{
    TaskGraph g;
    g.addResource("GPU");
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.makespan, 0.0);
}

TEST(SchedulerDeathTest, CycleNamesTheUnreachableTasks)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId head = g.addTask(r, 1.0, "prologue");
    const TaskId a = g.addTask(r, 1.0, "opt-step", {head});
    const TaskId b = g.addTask(r, 1.0, "grad-sync", {a});
    g.addDep(b, a); // opt-step <-> grad-sync: a cycle.
    EXPECT_DEATH(Scheduler().run(g),
                 "unreachable.*opt-step.*grad-sync");
}

TEST(SchedulerDeathTest, CycleDiagnosisTruncatesLongLists)
{
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId first = g.addTask(r, 1.0, "stuck0");
    TaskId prev = first;
    for (int i = 1; i < 12; ++i)
        prev = g.addTask(r, 1.0, "stuck" + std::to_string(i), {prev});
    g.addDep(prev, first); // 12-task ring: all unreachable.
    EXPECT_DEATH(Scheduler().run(g), "stuck0.*stuck7.*4 more");
}

TEST(Scheduler, ForwardWiredDagStillRuns)
{
    // addDep accepts edges in any order; only true cycles are fatal.
    TaskGraph g;
    const ResourceId r = g.addResource("GPU");
    const TaskId a = g.addTask(r, 1.0, "late-dep");
    const TaskId b = g.addTask(r, 1.0, "early");
    g.addDep(b, a); // a waits for the later-added b.
    const Schedule s = Scheduler().run(g);
    EXPECT_DOUBLE_EQ(s.start[b], 0.0);
    EXPECT_DOUBLE_EQ(s.start[a], 1.0);
    EXPECT_DOUBLE_EQ(s.makespan, 2.0);
}

TEST(Scheduler, ConcurrentRunsAreIndependentAndIdentical)
{
    // The scheduler must be reentrant: many threads simulating the same
    // graph shape concurrently produce bit-identical schedules.
    auto build = [] {
        TaskGraph g;
        const ResourceId gpu = g.addResource("GPU");
        const ResourceId cpu = g.addResource("CPU", 4);
        const ResourceId link = g.addResource("link");
        TaskId prev = kInvalidTask;
        for (int i = 0; i < 800; ++i) {
            std::vector<TaskId> deps;
            if (prev != kInvalidTask)
                deps.push_back(prev);
            prev = g.addTask(gpu, 0.001 + 0.0001 * (i % 7), "g", deps,
                             i % 3 - 1);
            const TaskId moved =
                g.addTask(link, 0.0004, "d2h", {prev});
            g.addTask(cpu, 0.002, "adam", {moved});
        }
        return g;
    };

    const TaskGraph reference_graph = build();
    const Schedule reference = Scheduler().run(reference_graph);

    constexpr int kThreads = 8;
    std::vector<Schedule> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const TaskGraph g = build();
            results[t] = Scheduler().run(g);
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int t = 0; t < kThreads; ++t) {
        ASSERT_EQ(results[t].start.size(), reference.start.size());
        EXPECT_EQ(results[t].makespan, reference.makespan);
        EXPECT_EQ(results[t].start, reference.start);
        EXPECT_EQ(results[t].finish, reference.finish);
    }
}

} // namespace
} // namespace so::sim
