file(REMOVE_RECURSE
  "CMakeFiles/so_tests_hw.dir/hw/test_bandwidth.cpp.o"
  "CMakeFiles/so_tests_hw.dir/hw/test_bandwidth.cpp.o.d"
  "CMakeFiles/so_tests_hw.dir/hw/test_collective.cpp.o"
  "CMakeFiles/so_tests_hw.dir/hw/test_collective.cpp.o.d"
  "CMakeFiles/so_tests_hw.dir/hw/test_presets.cpp.o"
  "CMakeFiles/so_tests_hw.dir/hw/test_presets.cpp.o.d"
  "CMakeFiles/so_tests_hw.dir/hw/test_topology.cpp.o"
  "CMakeFiles/so_tests_hw.dir/hw/test_topology.cpp.o.d"
  "so_tests_hw"
  "so_tests_hw.pdb"
  "so_tests_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
