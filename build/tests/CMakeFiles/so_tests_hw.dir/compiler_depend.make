# Empty compiler generated dependencies file for so_tests_hw.
# This may be replaced when dependencies are built.
