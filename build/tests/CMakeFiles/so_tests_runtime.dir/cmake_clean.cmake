file(REMOVE_RECURSE
  "CMakeFiles/so_tests_runtime.dir/runtime/test_baselines.cpp.o"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_baselines.cpp.o.d"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_builder.cpp.o"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_builder.cpp.o.d"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_extensions.cpp.o"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_extensions.cpp.o.d"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_scale.cpp.o"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_scale.cpp.o.d"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_system.cpp.o"
  "CMakeFiles/so_tests_runtime.dir/runtime/test_system.cpp.o.d"
  "so_tests_runtime"
  "so_tests_runtime.pdb"
  "so_tests_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
