# Empty dependencies file for so_tests_runtime.
# This may be replaced when dependencies are built.
