
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/test_baselines.cpp" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_baselines.cpp.o.d"
  "/root/repo/tests/runtime/test_builder.cpp" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_builder.cpp.o" "gcc" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_builder.cpp.o.d"
  "/root/repo/tests/runtime/test_extensions.cpp" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_extensions.cpp.o.d"
  "/root/repo/tests/runtime/test_scale.cpp" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_scale.cpp.o" "gcc" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_scale.cpp.o.d"
  "/root/repo/tests/runtime/test_system.cpp" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_system.cpp.o" "gcc" "tests/CMakeFiles/so_tests_runtime.dir/runtime/test_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/so_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/so_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stv/CMakeFiles/so_stv.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/so_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/so_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/so_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/so_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/so_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/so_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
