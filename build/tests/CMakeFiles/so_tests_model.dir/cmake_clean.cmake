file(REMOVE_RECURSE
  "CMakeFiles/so_tests_model.dir/model/test_config.cpp.o"
  "CMakeFiles/so_tests_model.dir/model/test_config.cpp.o.d"
  "CMakeFiles/so_tests_model.dir/model/test_flops.cpp.o"
  "CMakeFiles/so_tests_model.dir/model/test_flops.cpp.o.d"
  "CMakeFiles/so_tests_model.dir/model/test_memory.cpp.o"
  "CMakeFiles/so_tests_model.dir/model/test_memory.cpp.o.d"
  "so_tests_model"
  "so_tests_model.pdb"
  "so_tests_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
