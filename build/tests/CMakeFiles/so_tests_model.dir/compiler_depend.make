# Empty compiler generated dependencies file for so_tests_model.
# This may be replaced when dependencies are built.
