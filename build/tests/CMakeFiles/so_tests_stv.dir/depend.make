# Empty dependencies file for so_tests_stv.
# This may be replaced when dependencies are built.
