file(REMOVE_RECURSE
  "CMakeFiles/so_tests_stv.dir/stv/test_checkpoint.cpp.o"
  "CMakeFiles/so_tests_stv.dir/stv/test_checkpoint.cpp.o.d"
  "CMakeFiles/so_tests_stv.dir/stv/test_data_parallel_trainer.cpp.o"
  "CMakeFiles/so_tests_stv.dir/stv/test_data_parallel_trainer.cpp.o.d"
  "CMakeFiles/so_tests_stv.dir/stv/test_offload_trainer.cpp.o"
  "CMakeFiles/so_tests_stv.dir/stv/test_offload_trainer.cpp.o.d"
  "CMakeFiles/so_tests_stv.dir/stv/test_pipelined_trainer.cpp.o"
  "CMakeFiles/so_tests_stv.dir/stv/test_pipelined_trainer.cpp.o.d"
  "CMakeFiles/so_tests_stv.dir/stv/test_trainer.cpp.o"
  "CMakeFiles/so_tests_stv.dir/stv/test_trainer.cpp.o.d"
  "so_tests_stv"
  "so_tests_stv.pdb"
  "so_tests_stv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_stv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
