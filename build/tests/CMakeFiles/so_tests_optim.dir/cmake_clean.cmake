file(REMOVE_RECURSE
  "CMakeFiles/so_tests_optim.dir/optim/test_adam.cpp.o"
  "CMakeFiles/so_tests_optim.dir/optim/test_adam.cpp.o.d"
  "CMakeFiles/so_tests_optim.dir/optim/test_half.cpp.o"
  "CMakeFiles/so_tests_optim.dir/optim/test_half.cpp.o.d"
  "CMakeFiles/so_tests_optim.dir/optim/test_kernels.cpp.o"
  "CMakeFiles/so_tests_optim.dir/optim/test_kernels.cpp.o.d"
  "CMakeFiles/so_tests_optim.dir/optim/test_lr_schedule.cpp.o"
  "CMakeFiles/so_tests_optim.dir/optim/test_lr_schedule.cpp.o.d"
  "so_tests_optim"
  "so_tests_optim.pdb"
  "so_tests_optim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
