file(REMOVE_RECURSE
  "CMakeFiles/so_tests_integration.dir/integration/test_paper_claims.cpp.o"
  "CMakeFiles/so_tests_integration.dir/integration/test_paper_claims.cpp.o.d"
  "CMakeFiles/so_tests_integration.dir/integration/test_system_properties.cpp.o"
  "CMakeFiles/so_tests_integration.dir/integration/test_system_properties.cpp.o.d"
  "so_tests_integration"
  "so_tests_integration.pdb"
  "so_tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
