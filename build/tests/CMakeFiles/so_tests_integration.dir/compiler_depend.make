# Empty compiler generated dependencies file for so_tests_integration.
# This may be replaced when dependencies are built.
