# Empty dependencies file for so_tests_core.
# This may be replaced when dependencies are built.
