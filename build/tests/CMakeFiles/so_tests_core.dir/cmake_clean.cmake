file(REMOVE_RECURSE
  "CMakeFiles/so_tests_core.dir/core/test_bucketization.cpp.o"
  "CMakeFiles/so_tests_core.dir/core/test_bucketization.cpp.o.d"
  "CMakeFiles/so_tests_core.dir/core/test_engine.cpp.o"
  "CMakeFiles/so_tests_core.dir/core/test_engine.cpp.o.d"
  "CMakeFiles/so_tests_core.dir/core/test_policy.cpp.o"
  "CMakeFiles/so_tests_core.dir/core/test_policy.cpp.o.d"
  "CMakeFiles/so_tests_core.dir/core/test_report_json.cpp.o"
  "CMakeFiles/so_tests_core.dir/core/test_report_json.cpp.o.d"
  "CMakeFiles/so_tests_core.dir/core/test_sac.cpp.o"
  "CMakeFiles/so_tests_core.dir/core/test_sac.cpp.o.d"
  "CMakeFiles/so_tests_core.dir/core/test_superoffload.cpp.o"
  "CMakeFiles/so_tests_core.dir/core/test_superoffload.cpp.o.d"
  "CMakeFiles/so_tests_core.dir/core/test_superoffload_ulysses.cpp.o"
  "CMakeFiles/so_tests_core.dir/core/test_superoffload_ulysses.cpp.o.d"
  "so_tests_core"
  "so_tests_core.pdb"
  "so_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
