
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_bucketization.cpp" "tests/CMakeFiles/so_tests_core.dir/core/test_bucketization.cpp.o" "gcc" "tests/CMakeFiles/so_tests_core.dir/core/test_bucketization.cpp.o.d"
  "/root/repo/tests/core/test_engine.cpp" "tests/CMakeFiles/so_tests_core.dir/core/test_engine.cpp.o" "gcc" "tests/CMakeFiles/so_tests_core.dir/core/test_engine.cpp.o.d"
  "/root/repo/tests/core/test_policy.cpp" "tests/CMakeFiles/so_tests_core.dir/core/test_policy.cpp.o" "gcc" "tests/CMakeFiles/so_tests_core.dir/core/test_policy.cpp.o.d"
  "/root/repo/tests/core/test_report_json.cpp" "tests/CMakeFiles/so_tests_core.dir/core/test_report_json.cpp.o" "gcc" "tests/CMakeFiles/so_tests_core.dir/core/test_report_json.cpp.o.d"
  "/root/repo/tests/core/test_sac.cpp" "tests/CMakeFiles/so_tests_core.dir/core/test_sac.cpp.o" "gcc" "tests/CMakeFiles/so_tests_core.dir/core/test_sac.cpp.o.d"
  "/root/repo/tests/core/test_superoffload.cpp" "tests/CMakeFiles/so_tests_core.dir/core/test_superoffload.cpp.o" "gcc" "tests/CMakeFiles/so_tests_core.dir/core/test_superoffload.cpp.o.d"
  "/root/repo/tests/core/test_superoffload_ulysses.cpp" "tests/CMakeFiles/so_tests_core.dir/core/test_superoffload_ulysses.cpp.o" "gcc" "tests/CMakeFiles/so_tests_core.dir/core/test_superoffload_ulysses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/so_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/so_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stv/CMakeFiles/so_stv.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/so_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/so_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/so_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/so_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/so_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/so_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
