# Empty compiler generated dependencies file for so_tests_nn_data.
# This may be replaced when dependencies are built.
