file(REMOVE_RECURSE
  "CMakeFiles/so_tests_nn_data.dir/data/test_corpus.cpp.o"
  "CMakeFiles/so_tests_nn_data.dir/data/test_corpus.cpp.o.d"
  "CMakeFiles/so_tests_nn_data.dir/nn/test_attention_lm.cpp.o"
  "CMakeFiles/so_tests_nn_data.dir/nn/test_attention_lm.cpp.o.d"
  "CMakeFiles/so_tests_nn_data.dir/nn/test_mlp_lm.cpp.o"
  "CMakeFiles/so_tests_nn_data.dir/nn/test_mlp_lm.cpp.o.d"
  "so_tests_nn_data"
  "so_tests_nn_data.pdb"
  "so_tests_nn_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_nn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
