file(REMOVE_RECURSE
  "CMakeFiles/so_tests_sim.dir/sim/test_graph.cpp.o"
  "CMakeFiles/so_tests_sim.dir/sim/test_graph.cpp.o.d"
  "CMakeFiles/so_tests_sim.dir/sim/test_scheduler.cpp.o"
  "CMakeFiles/so_tests_sim.dir/sim/test_scheduler.cpp.o.d"
  "CMakeFiles/so_tests_sim.dir/sim/test_scheduler_properties.cpp.o"
  "CMakeFiles/so_tests_sim.dir/sim/test_scheduler_properties.cpp.o.d"
  "CMakeFiles/so_tests_sim.dir/sim/test_timeline.cpp.o"
  "CMakeFiles/so_tests_sim.dir/sim/test_timeline.cpp.o.d"
  "CMakeFiles/so_tests_sim.dir/sim/test_trace.cpp.o"
  "CMakeFiles/so_tests_sim.dir/sim/test_trace.cpp.o.d"
  "so_tests_sim"
  "so_tests_sim.pdb"
  "so_tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
