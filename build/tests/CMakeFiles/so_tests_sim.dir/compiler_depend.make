# Empty compiler generated dependencies file for so_tests_sim.
# This may be replaced when dependencies are built.
