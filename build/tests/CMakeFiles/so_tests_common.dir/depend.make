# Empty dependencies file for so_tests_common.
# This may be replaced when dependencies are built.
