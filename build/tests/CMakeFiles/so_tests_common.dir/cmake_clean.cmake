file(REMOVE_RECURSE
  "CMakeFiles/so_tests_common.dir/common/test_argparse.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_argparse.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_config_file.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_config_file.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_json.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_json.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_logging.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_logging.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_table.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_thread_pool.cpp.o.d"
  "CMakeFiles/so_tests_common.dir/common/test_units.cpp.o"
  "CMakeFiles/so_tests_common.dir/common/test_units.cpp.o.d"
  "so_tests_common"
  "so_tests_common.pdb"
  "so_tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
