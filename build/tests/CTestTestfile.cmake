# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/so_tests_common[1]_include.cmake")
include("/root/repo/build/tests/so_tests_sim[1]_include.cmake")
include("/root/repo/build/tests/so_tests_hw[1]_include.cmake")
include("/root/repo/build/tests/so_tests_model[1]_include.cmake")
include("/root/repo/build/tests/so_tests_optim[1]_include.cmake")
include("/root/repo/build/tests/so_tests_nn_data[1]_include.cmake")
include("/root/repo/build/tests/so_tests_runtime[1]_include.cmake")
include("/root/repo/build/tests/so_tests_core[1]_include.cmake")
include("/root/repo/build/tests/so_tests_stv[1]_include.cmake")
include("/root/repo/build/tests/so_tests_integration[1]_include.cmake")
