# Empty compiler generated dependencies file for bench_fig04_idle_time.
# This may be replaced when dependencies are built.
