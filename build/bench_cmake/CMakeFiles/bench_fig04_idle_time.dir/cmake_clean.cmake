file(REMOVE_RECURSE
  "../bench/bench_fig04_idle_time"
  "../bench/bench_fig04_idle_time.pdb"
  "CMakeFiles/bench_fig04_idle_time.dir/fig04_idle_time.cpp.o"
  "CMakeFiles/bench_fig04_idle_time.dir/fig04_idle_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_idle_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
