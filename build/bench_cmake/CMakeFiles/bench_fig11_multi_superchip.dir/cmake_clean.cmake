file(REMOVE_RECURSE
  "../bench/bench_fig11_multi_superchip"
  "../bench/bench_fig11_multi_superchip.pdb"
  "CMakeFiles/bench_fig11_multi_superchip.dir/fig11_multi_superchip.cpp.o"
  "CMakeFiles/bench_fig11_multi_superchip.dir/fig11_multi_superchip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_multi_superchip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
