# Empty compiler generated dependencies file for bench_fig11_multi_superchip.
# This may be replaced when dependencies are built.
