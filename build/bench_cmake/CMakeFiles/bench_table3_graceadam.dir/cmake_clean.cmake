file(REMOVE_RECURSE
  "../bench/bench_table3_graceadam"
  "../bench/bench_table3_graceadam.pdb"
  "CMakeFiles/bench_table3_graceadam.dir/table3_graceadam.cpp.o"
  "CMakeFiles/bench_table3_graceadam.dir/table3_graceadam.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_graceadam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
