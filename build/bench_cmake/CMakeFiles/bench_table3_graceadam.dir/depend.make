# Empty dependencies file for bench_table3_graceadam.
# This may be replaced when dependencies are built.
