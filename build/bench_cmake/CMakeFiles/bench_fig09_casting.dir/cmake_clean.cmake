file(REMOVE_RECURSE
  "../bench/bench_fig09_casting"
  "../bench/bench_fig09_casting.pdb"
  "CMakeFiles/bench_fig09_casting.dir/fig09_casting.cpp.o"
  "CMakeFiles/bench_fig09_casting.dir/fig09_casting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_casting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
