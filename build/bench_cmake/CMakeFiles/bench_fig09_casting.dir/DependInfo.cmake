
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_casting.cpp" "bench_cmake/CMakeFiles/bench_fig09_casting.dir/fig09_casting.cpp.o" "gcc" "bench_cmake/CMakeFiles/bench_fig09_casting.dir/fig09_casting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/so_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/so_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stv/CMakeFiles/so_stv.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/so_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/so_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/so_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/so_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/so_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/so_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
