# Empty dependencies file for bench_fig12_ulysses.
# This may be replaced when dependencies are built.
