file(REMOVE_RECURSE
  "../bench/bench_fig12_ulysses"
  "../bench/bench_fig12_ulysses.pdb"
  "CMakeFiles/bench_fig12_ulysses.dir/fig12_ulysses.cpp.o"
  "CMakeFiles/bench_fig12_ulysses.dir/fig12_ulysses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ulysses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
