file(REMOVE_RECURSE
  "../bench/bench_table1_hardware"
  "../bench/bench_table1_hardware.pdb"
  "CMakeFiles/bench_table1_hardware.dir/table1_hardware.cpp.o"
  "CMakeFiles/bench_table1_hardware.dir/table1_hardware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
