file(REMOVE_RECURSE
  "../bench/bench_fig14_stv_convergence"
  "../bench/bench_fig14_stv_convergence.pdb"
  "CMakeFiles/bench_fig14_stv_convergence.dir/fig14_stv_convergence.cpp.o"
  "CMakeFiles/bench_fig14_stv_convergence.dir/fig14_stv_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_stv_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
