file(REMOVE_RECURSE
  "../bench/bench_fig10_single_superchip"
  "../bench/bench_fig10_single_superchip.pdb"
  "CMakeFiles/bench_fig10_single_superchip.dir/fig10_single_superchip.cpp.o"
  "CMakeFiles/bench_fig10_single_superchip.dir/fig10_single_superchip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_single_superchip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
