# Empty compiler generated dependencies file for bench_fig15_gpu_utilization.
# This may be replaced when dependencies are built.
