# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench_cmake
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[smoke_bench_table1_hardware]=] "/root/repo/build/bench/bench_table1_hardware")
set_tests_properties([=[smoke_bench_table1_hardware]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_table2_ablation]=] "/root/repo/build/bench/bench_table2_ablation")
set_tests_properties([=[smoke_bench_table2_ablation]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_table3_graceadam]=] "/root/repo/build/bench/bench_table3_graceadam")
set_tests_properties([=[smoke_bench_table3_graceadam]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig04_idle_time]=] "/root/repo/build/bench/bench_fig04_idle_time")
set_tests_properties([=[smoke_bench_fig04_idle_time]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig06_efficiency]=] "/root/repo/build/bench/bench_fig06_efficiency")
set_tests_properties([=[smoke_bench_fig06_efficiency]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig07_bandwidth]=] "/root/repo/build/bench/bench_fig07_bandwidth")
set_tests_properties([=[smoke_bench_fig07_bandwidth]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig09_casting]=] "/root/repo/build/bench/bench_fig09_casting")
set_tests_properties([=[smoke_bench_fig09_casting]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig10_single_superchip]=] "/root/repo/build/bench/bench_fig10_single_superchip")
set_tests_properties([=[smoke_bench_fig10_single_superchip]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig11_multi_superchip]=] "/root/repo/build/bench/bench_fig11_multi_superchip")
set_tests_properties([=[smoke_bench_fig11_multi_superchip]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig12_ulysses]=] "/root/repo/build/bench/bench_fig12_ulysses")
set_tests_properties([=[smoke_bench_fig12_ulysses]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig13_model_scale]=] "/root/repo/build/bench/bench_fig13_model_scale")
set_tests_properties([=[smoke_bench_fig13_model_scale]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig14_stv_convergence]=] "/root/repo/build/bench/bench_fig14_stv_convergence")
set_tests_properties([=[smoke_bench_fig14_stv_convergence]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_fig15_gpu_utilization]=] "/root/repo/build/bench/bench_fig15_gpu_utilization")
set_tests_properties([=[smoke_bench_fig15_gpu_utilization]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[smoke_bench_ablation_bucket_size]=] "/root/repo/build/bench/bench_ablation_bucket_size")
set_tests_properties([=[smoke_bench_ablation_bucket_size]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
