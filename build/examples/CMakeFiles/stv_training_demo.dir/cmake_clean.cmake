file(REMOVE_RECURSE
  "CMakeFiles/stv_training_demo.dir/stv_training_demo.cpp.o"
  "CMakeFiles/stv_training_demo.dir/stv_training_demo.cpp.o.d"
  "stv_training_demo"
  "stv_training_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stv_training_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
