# Empty dependencies file for stv_training_demo.
# This may be replaced when dependencies are built.
