file(REMOVE_RECURSE
  "CMakeFiles/attention_context_demo.dir/attention_context_demo.cpp.o"
  "CMakeFiles/attention_context_demo.dir/attention_context_demo.cpp.o.d"
  "attention_context_demo"
  "attention_context_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_context_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
