# Empty compiler generated dependencies file for attention_context_demo.
# This may be replaced when dependencies are built.
