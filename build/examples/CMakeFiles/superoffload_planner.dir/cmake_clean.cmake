file(REMOVE_RECURSE
  "CMakeFiles/superoffload_planner.dir/superoffload_planner.cpp.o"
  "CMakeFiles/superoffload_planner.dir/superoffload_planner.cpp.o.d"
  "superoffload_planner"
  "superoffload_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superoffload_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
