# Empty compiler generated dependencies file for superoffload_planner.
# This may be replaced when dependencies are built.
