# Empty dependencies file for next_gen_superchips.
# This may be replaced when dependencies are built.
