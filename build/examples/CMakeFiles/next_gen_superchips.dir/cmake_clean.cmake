file(REMOVE_RECURSE
  "CMakeFiles/next_gen_superchips.dir/next_gen_superchips.cpp.o"
  "CMakeFiles/next_gen_superchips.dir/next_gen_superchips.cpp.o.d"
  "next_gen_superchips"
  "next_gen_superchips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/next_gen_superchips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
