# Empty dependencies file for long_context_1m_tokens.
# This may be replaced when dependencies are built.
