file(REMOVE_RECURSE
  "CMakeFiles/long_context_1m_tokens.dir/long_context_1m_tokens.cpp.o"
  "CMakeFiles/long_context_1m_tokens.dir/long_context_1m_tokens.cpp.o.d"
  "long_context_1m_tokens"
  "long_context_1m_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context_1m_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
