file(REMOVE_RECURSE
  "CMakeFiles/era_contrast.dir/era_contrast.cpp.o"
  "CMakeFiles/era_contrast.dir/era_contrast.cpp.o.d"
  "era_contrast"
  "era_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/era_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
