# Empty dependencies file for era_contrast.
# This may be replaced when dependencies are built.
