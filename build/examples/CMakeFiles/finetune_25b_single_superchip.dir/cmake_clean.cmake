file(REMOVE_RECURSE
  "CMakeFiles/finetune_25b_single_superchip.dir/finetune_25b_single_superchip.cpp.o"
  "CMakeFiles/finetune_25b_single_superchip.dir/finetune_25b_single_superchip.cpp.o.d"
  "finetune_25b_single_superchip"
  "finetune_25b_single_superchip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_25b_single_superchip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
