# Empty dependencies file for finetune_25b_single_superchip.
# This may be replaced when dependencies are built.
