# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_finetune_25b_single_superchip]=] "/root/repo/build/examples/finetune_25b_single_superchip")
set_tests_properties([=[example_finetune_25b_single_superchip]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_long_context_1m_tokens]=] "/root/repo/build/examples/long_context_1m_tokens")
set_tests_properties([=[example_long_context_1m_tokens]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_stv_training_demo]=] "/root/repo/build/examples/stv_training_demo")
set_tests_properties([=[example_stv_training_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_next_gen_superchips]=] "/root/repo/build/examples/next_gen_superchips")
set_tests_properties([=[example_next_gen_superchips]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_era_contrast]=] "/root/repo/build/examples/era_contrast")
set_tests_properties([=[example_era_contrast]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_attention_context_demo]=] "/root/repo/build/examples/attention_context_demo")
set_tests_properties([=[example_attention_context_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_planner_cli]=] "/root/repo/build/examples/superoffload_planner" "--model" "5B" "--chips" "1" "--batch" "8" "--json")
set_tests_properties([=[example_planner_cli]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_planner_list_models]=] "/root/repo/build/examples/superoffload_planner" "--list-models")
set_tests_properties([=[example_planner_list_models]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
