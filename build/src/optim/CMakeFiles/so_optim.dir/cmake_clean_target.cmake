file(REMOVE_RECURSE
  "libso_optim.a"
)
