file(REMOVE_RECURSE
  "CMakeFiles/so_optim.dir/adam.cpp.o"
  "CMakeFiles/so_optim.dir/adam.cpp.o.d"
  "CMakeFiles/so_optim.dir/half.cpp.o"
  "CMakeFiles/so_optim.dir/half.cpp.o.d"
  "CMakeFiles/so_optim.dir/kernels.cpp.o"
  "CMakeFiles/so_optim.dir/kernels.cpp.o.d"
  "CMakeFiles/so_optim.dir/lr_schedule.cpp.o"
  "CMakeFiles/so_optim.dir/lr_schedule.cpp.o.d"
  "libso_optim.a"
  "libso_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
