# Empty compiler generated dependencies file for so_optim.
# This may be replaced when dependencies are built.
