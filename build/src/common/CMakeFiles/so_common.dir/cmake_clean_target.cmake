file(REMOVE_RECURSE
  "libso_common.a"
)
