# Empty dependencies file for so_common.
# This may be replaced when dependencies are built.
