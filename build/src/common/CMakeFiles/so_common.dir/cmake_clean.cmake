file(REMOVE_RECURSE
  "CMakeFiles/so_common.dir/argparse.cpp.o"
  "CMakeFiles/so_common.dir/argparse.cpp.o.d"
  "CMakeFiles/so_common.dir/config_file.cpp.o"
  "CMakeFiles/so_common.dir/config_file.cpp.o.d"
  "CMakeFiles/so_common.dir/json.cpp.o"
  "CMakeFiles/so_common.dir/json.cpp.o.d"
  "CMakeFiles/so_common.dir/logging.cpp.o"
  "CMakeFiles/so_common.dir/logging.cpp.o.d"
  "CMakeFiles/so_common.dir/stats.cpp.o"
  "CMakeFiles/so_common.dir/stats.cpp.o.d"
  "CMakeFiles/so_common.dir/table.cpp.o"
  "CMakeFiles/so_common.dir/table.cpp.o.d"
  "CMakeFiles/so_common.dir/thread_pool.cpp.o"
  "CMakeFiles/so_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/so_common.dir/units.cpp.o"
  "CMakeFiles/so_common.dir/units.cpp.o.d"
  "libso_common.a"
  "libso_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
