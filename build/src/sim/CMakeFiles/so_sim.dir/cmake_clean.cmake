file(REMOVE_RECURSE
  "CMakeFiles/so_sim.dir/graph.cpp.o"
  "CMakeFiles/so_sim.dir/graph.cpp.o.d"
  "CMakeFiles/so_sim.dir/scheduler.cpp.o"
  "CMakeFiles/so_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/so_sim.dir/timeline.cpp.o"
  "CMakeFiles/so_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/so_sim.dir/trace.cpp.o"
  "CMakeFiles/so_sim.dir/trace.cpp.o.d"
  "libso_sim.a"
  "libso_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
