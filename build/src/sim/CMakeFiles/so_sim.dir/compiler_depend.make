# Empty compiler generated dependencies file for so_sim.
# This may be replaced when dependencies are built.
