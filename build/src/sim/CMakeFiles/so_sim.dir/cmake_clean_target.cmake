file(REMOVE_RECURSE
  "libso_sim.a"
)
