file(REMOVE_RECURSE
  "libso_data.a"
)
