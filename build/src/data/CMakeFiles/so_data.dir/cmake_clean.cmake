file(REMOVE_RECURSE
  "CMakeFiles/so_data.dir/synthetic_corpus.cpp.o"
  "CMakeFiles/so_data.dir/synthetic_corpus.cpp.o.d"
  "libso_data.a"
  "libso_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
