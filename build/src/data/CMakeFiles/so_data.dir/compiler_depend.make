# Empty compiler generated dependencies file for so_data.
# This may be replaced when dependencies are built.
