file(REMOVE_RECURSE
  "libso_nn.a"
)
