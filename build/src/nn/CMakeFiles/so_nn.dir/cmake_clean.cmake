file(REMOVE_RECURSE
  "CMakeFiles/so_nn.dir/attention_lm.cpp.o"
  "CMakeFiles/so_nn.dir/attention_lm.cpp.o.d"
  "CMakeFiles/so_nn.dir/mlp_lm.cpp.o"
  "CMakeFiles/so_nn.dir/mlp_lm.cpp.o.d"
  "CMakeFiles/so_nn.dir/model.cpp.o"
  "CMakeFiles/so_nn.dir/model.cpp.o.d"
  "libso_nn.a"
  "libso_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
