
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention_lm.cpp" "src/nn/CMakeFiles/so_nn.dir/attention_lm.cpp.o" "gcc" "src/nn/CMakeFiles/so_nn.dir/attention_lm.cpp.o.d"
  "/root/repo/src/nn/mlp_lm.cpp" "src/nn/CMakeFiles/so_nn.dir/mlp_lm.cpp.o" "gcc" "src/nn/CMakeFiles/so_nn.dir/mlp_lm.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/so_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/so_nn.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/so_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
