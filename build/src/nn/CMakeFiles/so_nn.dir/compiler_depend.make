# Empty compiler generated dependencies file for so_nn.
# This may be replaced when dependencies are built.
