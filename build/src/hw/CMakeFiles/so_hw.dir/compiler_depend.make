# Empty compiler generated dependencies file for so_hw.
# This may be replaced when dependencies are built.
