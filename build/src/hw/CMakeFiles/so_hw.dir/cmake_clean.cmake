file(REMOVE_RECURSE
  "CMakeFiles/so_hw.dir/bandwidth.cpp.o"
  "CMakeFiles/so_hw.dir/bandwidth.cpp.o.d"
  "CMakeFiles/so_hw.dir/collective.cpp.o"
  "CMakeFiles/so_hw.dir/collective.cpp.o.d"
  "CMakeFiles/so_hw.dir/presets.cpp.o"
  "CMakeFiles/so_hw.dir/presets.cpp.o.d"
  "CMakeFiles/so_hw.dir/topology.cpp.o"
  "CMakeFiles/so_hw.dir/topology.cpp.o.d"
  "libso_hw.a"
  "libso_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
