file(REMOVE_RECURSE
  "libso_hw.a"
)
