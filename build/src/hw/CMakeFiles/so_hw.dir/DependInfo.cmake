
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/bandwidth.cpp" "src/hw/CMakeFiles/so_hw.dir/bandwidth.cpp.o" "gcc" "src/hw/CMakeFiles/so_hw.dir/bandwidth.cpp.o.d"
  "/root/repo/src/hw/collective.cpp" "src/hw/CMakeFiles/so_hw.dir/collective.cpp.o" "gcc" "src/hw/CMakeFiles/so_hw.dir/collective.cpp.o.d"
  "/root/repo/src/hw/presets.cpp" "src/hw/CMakeFiles/so_hw.dir/presets.cpp.o" "gcc" "src/hw/CMakeFiles/so_hw.dir/presets.cpp.o.d"
  "/root/repo/src/hw/topology.cpp" "src/hw/CMakeFiles/so_hw.dir/topology.cpp.o" "gcc" "src/hw/CMakeFiles/so_hw.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
