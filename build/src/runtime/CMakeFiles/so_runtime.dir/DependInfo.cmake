
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/builder.cpp" "src/runtime/CMakeFiles/so_runtime.dir/builder.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/builder.cpp.o.d"
  "/root/repo/src/runtime/ddp.cpp" "src/runtime/CMakeFiles/so_runtime.dir/ddp.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/ddp.cpp.o.d"
  "/root/repo/src/runtime/deep_opt_states.cpp" "src/runtime/CMakeFiles/so_runtime.dir/deep_opt_states.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/deep_opt_states.cpp.o.d"
  "/root/repo/src/runtime/fsdp_offload.cpp" "src/runtime/CMakeFiles/so_runtime.dir/fsdp_offload.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/fsdp_offload.cpp.o.d"
  "/root/repo/src/runtime/megatron.cpp" "src/runtime/CMakeFiles/so_runtime.dir/megatron.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/megatron.cpp.o.d"
  "/root/repo/src/runtime/pipeline.cpp" "src/runtime/CMakeFiles/so_runtime.dir/pipeline.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/pipeline.cpp.o.d"
  "/root/repo/src/runtime/registry.cpp" "src/runtime/CMakeFiles/so_runtime.dir/registry.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/registry.cpp.o.d"
  "/root/repo/src/runtime/scale.cpp" "src/runtime/CMakeFiles/so_runtime.dir/scale.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/scale.cpp.o.d"
  "/root/repo/src/runtime/system.cpp" "src/runtime/CMakeFiles/so_runtime.dir/system.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/system.cpp.o.d"
  "/root/repo/src/runtime/ulysses.cpp" "src/runtime/CMakeFiles/so_runtime.dir/ulysses.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/ulysses.cpp.o.d"
  "/root/repo/src/runtime/zero.cpp" "src/runtime/CMakeFiles/so_runtime.dir/zero.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/zero.cpp.o.d"
  "/root/repo/src/runtime/zero_infinity.cpp" "src/runtime/CMakeFiles/so_runtime.dir/zero_infinity.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/zero_infinity.cpp.o.d"
  "/root/repo/src/runtime/zero_offload.cpp" "src/runtime/CMakeFiles/so_runtime.dir/zero_offload.cpp.o" "gcc" "src/runtime/CMakeFiles/so_runtime.dir/zero_offload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/so_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/so_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/so_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
