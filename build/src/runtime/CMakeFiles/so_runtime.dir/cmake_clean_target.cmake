file(REMOVE_RECURSE
  "libso_runtime.a"
)
