file(REMOVE_RECURSE
  "CMakeFiles/so_runtime.dir/builder.cpp.o"
  "CMakeFiles/so_runtime.dir/builder.cpp.o.d"
  "CMakeFiles/so_runtime.dir/ddp.cpp.o"
  "CMakeFiles/so_runtime.dir/ddp.cpp.o.d"
  "CMakeFiles/so_runtime.dir/deep_opt_states.cpp.o"
  "CMakeFiles/so_runtime.dir/deep_opt_states.cpp.o.d"
  "CMakeFiles/so_runtime.dir/fsdp_offload.cpp.o"
  "CMakeFiles/so_runtime.dir/fsdp_offload.cpp.o.d"
  "CMakeFiles/so_runtime.dir/megatron.cpp.o"
  "CMakeFiles/so_runtime.dir/megatron.cpp.o.d"
  "CMakeFiles/so_runtime.dir/pipeline.cpp.o"
  "CMakeFiles/so_runtime.dir/pipeline.cpp.o.d"
  "CMakeFiles/so_runtime.dir/registry.cpp.o"
  "CMakeFiles/so_runtime.dir/registry.cpp.o.d"
  "CMakeFiles/so_runtime.dir/scale.cpp.o"
  "CMakeFiles/so_runtime.dir/scale.cpp.o.d"
  "CMakeFiles/so_runtime.dir/system.cpp.o"
  "CMakeFiles/so_runtime.dir/system.cpp.o.d"
  "CMakeFiles/so_runtime.dir/ulysses.cpp.o"
  "CMakeFiles/so_runtime.dir/ulysses.cpp.o.d"
  "CMakeFiles/so_runtime.dir/zero.cpp.o"
  "CMakeFiles/so_runtime.dir/zero.cpp.o.d"
  "CMakeFiles/so_runtime.dir/zero_infinity.cpp.o"
  "CMakeFiles/so_runtime.dir/zero_infinity.cpp.o.d"
  "CMakeFiles/so_runtime.dir/zero_offload.cpp.o"
  "CMakeFiles/so_runtime.dir/zero_offload.cpp.o.d"
  "libso_runtime.a"
  "libso_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
