# Empty dependencies file for so_runtime.
# This may be replaced when dependencies are built.
