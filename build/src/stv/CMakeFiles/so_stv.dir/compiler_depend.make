# Empty compiler generated dependencies file for so_stv.
# This may be replaced when dependencies are built.
