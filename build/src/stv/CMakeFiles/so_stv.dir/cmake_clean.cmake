file(REMOVE_RECURSE
  "CMakeFiles/so_stv.dir/checkpoint.cpp.o"
  "CMakeFiles/so_stv.dir/checkpoint.cpp.o.d"
  "CMakeFiles/so_stv.dir/data_parallel_trainer.cpp.o"
  "CMakeFiles/so_stv.dir/data_parallel_trainer.cpp.o.d"
  "CMakeFiles/so_stv.dir/offload_trainer.cpp.o"
  "CMakeFiles/so_stv.dir/offload_trainer.cpp.o.d"
  "CMakeFiles/so_stv.dir/pipelined_trainer.cpp.o"
  "CMakeFiles/so_stv.dir/pipelined_trainer.cpp.o.d"
  "CMakeFiles/so_stv.dir/trainer.cpp.o"
  "CMakeFiles/so_stv.dir/trainer.cpp.o.d"
  "libso_stv.a"
  "libso_stv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_stv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
