file(REMOVE_RECURSE
  "libso_stv.a"
)
