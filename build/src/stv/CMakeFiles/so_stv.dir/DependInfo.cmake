
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stv/checkpoint.cpp" "src/stv/CMakeFiles/so_stv.dir/checkpoint.cpp.o" "gcc" "src/stv/CMakeFiles/so_stv.dir/checkpoint.cpp.o.d"
  "/root/repo/src/stv/data_parallel_trainer.cpp" "src/stv/CMakeFiles/so_stv.dir/data_parallel_trainer.cpp.o" "gcc" "src/stv/CMakeFiles/so_stv.dir/data_parallel_trainer.cpp.o.d"
  "/root/repo/src/stv/offload_trainer.cpp" "src/stv/CMakeFiles/so_stv.dir/offload_trainer.cpp.o" "gcc" "src/stv/CMakeFiles/so_stv.dir/offload_trainer.cpp.o.d"
  "/root/repo/src/stv/pipelined_trainer.cpp" "src/stv/CMakeFiles/so_stv.dir/pipelined_trainer.cpp.o" "gcc" "src/stv/CMakeFiles/so_stv.dir/pipelined_trainer.cpp.o.d"
  "/root/repo/src/stv/trainer.cpp" "src/stv/CMakeFiles/so_stv.dir/trainer.cpp.o" "gcc" "src/stv/CMakeFiles/so_stv.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/so_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/so_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/so_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
