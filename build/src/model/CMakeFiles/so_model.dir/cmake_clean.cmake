file(REMOVE_RECURSE
  "CMakeFiles/so_model.dir/config.cpp.o"
  "CMakeFiles/so_model.dir/config.cpp.o.d"
  "CMakeFiles/so_model.dir/flops.cpp.o"
  "CMakeFiles/so_model.dir/flops.cpp.o.d"
  "CMakeFiles/so_model.dir/memory.cpp.o"
  "CMakeFiles/so_model.dir/memory.cpp.o.d"
  "libso_model.a"
  "libso_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
