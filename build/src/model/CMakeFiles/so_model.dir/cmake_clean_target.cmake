file(REMOVE_RECURSE
  "libso_model.a"
)
