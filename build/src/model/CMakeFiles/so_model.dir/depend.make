# Empty dependencies file for so_model.
# This may be replaced when dependencies are built.
