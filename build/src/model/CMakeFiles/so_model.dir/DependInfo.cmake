
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/config.cpp" "src/model/CMakeFiles/so_model.dir/config.cpp.o" "gcc" "src/model/CMakeFiles/so_model.dir/config.cpp.o.d"
  "/root/repo/src/model/flops.cpp" "src/model/CMakeFiles/so_model.dir/flops.cpp.o" "gcc" "src/model/CMakeFiles/so_model.dir/flops.cpp.o.d"
  "/root/repo/src/model/memory.cpp" "src/model/CMakeFiles/so_model.dir/memory.cpp.o" "gcc" "src/model/CMakeFiles/so_model.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/so_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
