# Empty dependencies file for so_core.
# This may be replaced when dependencies are built.
