
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bucketization.cpp" "src/core/CMakeFiles/so_core.dir/bucketization.cpp.o" "gcc" "src/core/CMakeFiles/so_core.dir/bucketization.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/so_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/so_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/so_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/so_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/core/CMakeFiles/so_core.dir/report_json.cpp.o" "gcc" "src/core/CMakeFiles/so_core.dir/report_json.cpp.o.d"
  "/root/repo/src/core/sac.cpp" "src/core/CMakeFiles/so_core.dir/sac.cpp.o" "gcc" "src/core/CMakeFiles/so_core.dir/sac.cpp.o.d"
  "/root/repo/src/core/superoffload.cpp" "src/core/CMakeFiles/so_core.dir/superoffload.cpp.o" "gcc" "src/core/CMakeFiles/so_core.dir/superoffload.cpp.o.d"
  "/root/repo/src/core/superoffload_ulysses.cpp" "src/core/CMakeFiles/so_core.dir/superoffload_ulysses.cpp.o" "gcc" "src/core/CMakeFiles/so_core.dir/superoffload_ulysses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/so_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/so_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/so_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/so_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/so_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
