file(REMOVE_RECURSE
  "libso_core.a"
)
