file(REMOVE_RECURSE
  "CMakeFiles/so_core.dir/bucketization.cpp.o"
  "CMakeFiles/so_core.dir/bucketization.cpp.o.d"
  "CMakeFiles/so_core.dir/engine.cpp.o"
  "CMakeFiles/so_core.dir/engine.cpp.o.d"
  "CMakeFiles/so_core.dir/policy.cpp.o"
  "CMakeFiles/so_core.dir/policy.cpp.o.d"
  "CMakeFiles/so_core.dir/report_json.cpp.o"
  "CMakeFiles/so_core.dir/report_json.cpp.o.d"
  "CMakeFiles/so_core.dir/sac.cpp.o"
  "CMakeFiles/so_core.dir/sac.cpp.o.d"
  "CMakeFiles/so_core.dir/superoffload.cpp.o"
  "CMakeFiles/so_core.dir/superoffload.cpp.o.d"
  "CMakeFiles/so_core.dir/superoffload_ulysses.cpp.o"
  "CMakeFiles/so_core.dir/superoffload_ulysses.cpp.o.d"
  "libso_core.a"
  "libso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
