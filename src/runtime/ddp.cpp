#include "runtime/ddp.h"

#include <vector>

#include "runtime/builder.h"

namespace so::runtime {

double
DdpSystem::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const double params = setup.model.params();
    const auto states = model::StateSizes::forParams(params);
    model::ActivationOptions act_opts;
    act_opts.checkpointing = checkpointing;
    const double act = model::activationBytes(setup.model, micro_batch,
                                              setup.seq, act_opts);
    return model::gpuResidentBytes(states.totalBytes() + act);
}

double
DdpSystem::cpuBytes(const TrainSetup &, const SearchCandidate &) const
{
    return 0.0;
}

IterationResult
DdpSystem::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double layers = cfg.layers;
    const double params = cfg.params();

    // Per-micro-step FLOPs (one micro-batch through the model).
    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);

    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) /
        layers;
    // Backward includes the recompute when checkpointing.
    const double bwd_layer =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) /
        layers;

    // accum_steps passes of fwd+bwd per layer, the bucketed all-reduces
    // on the last pass, and the optimizer step; roughly one dep edge per
    // task plus the optimizer's fan-in.
    const auto layer_count = static_cast<std::size_t>(cfg.layers);
    const std::size_t sync_count =
        builder.coll().ranks > 1 ? layer_count : 0;
    builder.reserve(accum_steps * 2 * layer_count + sync_count + 1,
                    accum_steps * 2 * layer_count + 2 * sync_count + 1);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> final_syncs;
    final_syncs.reserve(sync_count);
    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        // Forward.
        for (std::uint32_t l = 0; l < cfg.layers; ++l) {
            std::vector<sim::TaskId> deps;
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 std::move(deps));
        }
        // Backward, reverse layer order; on the last accumulation step
        // each layer's gradient bucket is all-reduced as it appears
        // (DDP's bucketed overlap).
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t l = cfg.layers; l-- > 0;) {
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 {prev});
            if (last && builder.coll().ranks > 1) {
                const double grad_bytes = 2.0 * params / layers;
                final_syncs.push_back(builder.onNic(
                    "allreduce L" + std::to_string(l),
                    builder.coll().allReduce(grad_bytes), {prev}));
            }
        }
    }

    // GPU optimizer step after all gradients are synchronized.
    std::vector<sim::TaskId> step_deps = final_syncs;
    step_deps.push_back(prev);
    builder.onGpu("adam (gpu)", builder.gpuAdamTime(params),
                  std::move(step_deps));

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    return builder.finish(total);
}

} // namespace so::runtime
