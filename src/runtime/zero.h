/**
 * @file
 * ZeRO-2 and ZeRO-3 baselines (Appendix B): data parallelism with model
 * states sharded across ranks. ZeRO-2 shards gradients + optimizer
 * states; ZeRO-3 additionally shards the fp16 parameters, all-gathering
 * them layer by layer around the compute.
 */
#ifndef SO_RUNTIME_ZERO_H
#define SO_RUNTIME_ZERO_H

#include "runtime/system.h"

namespace so::runtime {

/** ZeRO stage 2: sharded gradients and optimizer states. */
class Zero2System : public TrainingSystem
{
  public:
    std::string name() const override { return "ZeRO-2"; }

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
};

/** ZeRO stage 3: fully sharded model states. */
class Zero3System : public TrainingSystem
{
  public:
    std::string name() const override { return "ZeRO-3"; }

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
};

} // namespace so::runtime

#endif // SO_RUNTIME_ZERO_H
