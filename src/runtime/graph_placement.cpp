#include "runtime/graph_placement.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

namespace {

/** GPU working set beyond activations: live layers + staging pools. */
constexpr double kStagingBytes = 4.0e9;

/** DDR share of an NVMe-spilled layer: the fp32 gradient buffer. */
constexpr double kSpillDdrBytesPerParam = hw::kFp32BytesPerParam;

/** NVMe share of a spilled layer: optimizer states + fp16 shard. */
constexpr double kSpillNvmeBytesPerParam =
    hw::kOptimStateBytesPerParam + hw::kFp16BytesPerParam;

/** Full per-param state share of a DDR-resident layer. */
constexpr double kFullBytesPerParam =
    hw::kModelStateBytesPerParam + hw::kFp16BytesPerParam;

} // namespace

double
GraphPlacementSystem::layerShare(const TrainSetup &setup) const
{
    return setup.model.paramsPerLayer() /
           setup.cluster.totalSuperchips();
}

GraphPlacementSystem::Placement
GraphPlacementSystem::placement(const TrainSetup &setup,
                                const SearchCandidate &cand) const
{
    Placement place;
    const auto layers = static_cast<std::uint32_t>(setup.model.layers);
    const double share = layerShare(setup);

    // NVMe spill: walk the optimizer-access order (last layers have the
    // longest grads-ready -> state-needed lead time) and move whole
    // layers until the DDR demand fits. Without an NVMe tier nothing
    // spills and the DDR overflow surfaces in the fit check.
    if (setup.cluster.node.superchip.nvme_bytes > 0.0) {
        const double cap = cpuCapacity(setup);
        const double demand =
            kFullBytesPerParam * share * static_cast<double>(layers);
        if (demand > cap) {
            const double per_layer_relief =
                (kFullBytesPerParam - kSpillDdrBytesPerParam) * share;
            place.nvme_layers = static_cast<std::uint32_t>(std::min<double>(
                std::ceil((demand - cap) / per_layer_relief), layers));
        }
    }

    // HBM residency: whatever device slack the candidate's activations
    // leave pins a prefix of fp16 layer weights (the layers reused
    // soonest when the next forward starts), skipping their fetch.
    const double slack = gpuCapacity(setup) - gpuBytes(setup, cand);
    const double resident_cost =
        hw::kFp16BytesPerParam * setup.model.paramsPerLayer();
    if (slack > 0.0 && resident_cost > 0.0) {
        // A spilled layer streams from NVMe by construction; the
        // resident prefix stops where the spilled suffix begins.
        place.hbm_layers = static_cast<std::uint32_t>(std::min<double>(
            std::floor(slack / resident_cost),
            layers - place.nvme_layers));
    }
    return place;
}

double
GraphPlacementSystem::gpuBytes(const TrainSetup &setup,
                               const SearchCandidate &cand) const
{
    // Base working set only: HBM-resident layers consume the *slack*
    // above this (same retained-capacity pattern as SuperOffload's
    // retained buckets), so the fit check stays placement-independent.
    const double working = 3.0 * 2.0 * setup.model.paramsPerLayer();
    model::ActivationOptions act_opts;
    act_opts.checkpointing = cand.checkpointing;
    const double act = model::activationBytes(
        setup.model, cand.micro_batch, setup.seq, act_opts);
    return model::gpuResidentBytes(working + kStagingBytes + act);
}

double
GraphPlacementSystem::cpuBytes(const TrainSetup &setup,
                               const SearchCandidate &cand) const
{
    const auto layers = static_cast<std::uint32_t>(setup.model.layers);
    const std::uint32_t spilled =
        std::min(placement(setup, cand).nvme_layers, layers);
    const double share = layerShare(setup);
    return kFullBytesPerParam * share *
               static_cast<double>(layers - spilled) +
           kSpillDdrBytesPerParam * share * static_cast<double>(spilled);
}

double
GraphPlacementSystem::nvmeBytes(const TrainSetup &setup,
                                const SearchCandidate &cand) const
{
    return kSpillNvmeBytesPerParam * layerShare(setup) *
           static_cast<double>(placement(setup, cand).nvme_layers);
}

IterationResult
GraphPlacementSystem::simulate(const TrainSetup &setup,
                               const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double layers = cfg.layers;
    const auto layer_count = static_cast<std::uint32_t>(cfg.layers);
    const double n = setup.cluster.totalSuperchips();
    const bool multi = n > 1;
    const double layer_params = cfg.paramsPerLayer();
    const double share = layer_params / n;

    const Placement place = placement(setup, cand);
    const std::uint32_t first_nvme = layer_count - place.nvme_layers;

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / layers;
    const double bwd_layer =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / layers;

    const double weight_bytes = hw::kFp16BytesPerParam * share;
    const double fetch_time = builder.h2dTime(weight_bytes);
    const double gather_time =
        multi ? builder.coll().allGather(hw::kFp16BytesPerParam *
                                         layer_params)
              : 0.0;

    {
        const auto b = static_cast<std::size_t>(layer_count);
        const std::size_t per_pass = multi ? 4 : 3;
        builder.reserve(
            static_cast<std::size_t>(accum_steps) * 2 * per_pass * b +
                12 * b + 2,
            static_cast<std::size_t>(accum_steps) * 8 * b + 24 * b + 2);
    }

    // Streamed layers fetch per pass; spilled layers fetch through the
    // chained NVMe -> DDR -> HBM route (the drive leg prefetches, so it
    // hides behind compute unless the drive is the bottleneck).
    const auto fetchLayer = [&](std::uint32_t l,
                                const char *tag) -> sim::TaskId {
        if (l < place.hbm_layers)
            return sim::kInvalidTask; // device-resident, nothing to move
        sim::TaskId ready = sim::kInvalidTask;
        if (l >= first_nvme) {
            const sim::TaskId staged = builder.onTransfer(
                hw::kTierNvme, hw::kTierDdr,
                std::string("nvme-r w") + tag + std::to_string(l),
                builder.nvmeTime(weight_bytes), weight_bytes, {});
            ready = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm,
                std::string("h2d w") + tag + std::to_string(l),
                fetch_time, weight_bytes, {staged});
        } else {
            ready = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm,
                std::string("h2d w") + tag + std::to_string(l),
                fetch_time, weight_bytes, {});
        }
        if (multi)
            ready = builder.onNic("ag", gather_time, {ready});
        return ready;
    };

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> cast_done(layer_count, sim::kInvalidTask);
    std::vector<sim::TaskId> casts;
    casts.reserve(layer_count);

    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t l = 0; l < layer_count; ++l) {
            const sim::TaskId ready = fetchLayer(l, "");
            std::vector<sim::TaskId> deps;
            if (ready != sim::kInvalidTask)
                deps.push_back(ready);
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 std::move(deps));
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t li = 0; li < layer_count; ++li) {
            // Backward materializes gradients last-to-first.
            const std::uint32_t l = layer_count - 1 - li;
            const sim::TaskId ready = fetchLayer(l, "'");
            std::vector<sim::TaskId> deps;
            if (ready != sim::kInvalidTask)
                deps.push_back(ready);
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 std::move(deps));
            if (!last)
                continue;

            sim::TaskId grads = prev;
            if (multi) {
                grads = builder.onNic(
                    "rs g" + std::to_string(l),
                    builder.coll().reduceScatter(hw::kFp16BytesPerParam *
                                                 layer_params),
                    {grads});
            }
            const double grad_bytes = hw::kFp16BytesPerParam * share;
            const sim::TaskId moved = builder.onTransfer(
                hw::kTierHbm, hw::kTierDdr, "d2h g" + std::to_string(l),
                builder.d2hTime(grad_bytes), grad_bytes, {grads});
            cast_done[l] = builder.onCpu("cast g" + std::to_string(l),
                                         builder.cpuCastTime(share),
                                         {moved});
            casts.push_back(cast_done[l]);
        }
    }

    const sim::TaskId norm = builder.onCpu(
        "grad-norm+check",
        setup.cluster.node.superchip.cpu.memTime(hw::kFp32BytesPerParam *
                                                 cfg.params() / n),
        casts);

    const double opt_bytes = hw::kOptimStateBytesPerParam * share;
    for (std::uint32_t l = 0; l < layer_count; ++l) {
        std::vector<sim::TaskId> deps{norm, cast_done[l]};
        if (l >= first_nvme) {
            // Spilled layer: stage its optimizer states in first. The
            // read depends on nothing, so it prefetches during backward.
            deps.push_back(builder.onTransfer(
                hw::kTierNvme, hw::kTierDdr,
                "nvme-r s" + std::to_string(l),
                builder.nvmeTime(opt_bytes), opt_bytes, {}));
        }
        const sim::TaskId opt = builder.onCpu(
            "adam L" + std::to_string(l),
            builder.cpuAdamTime(share, hw::AdamImpl::GraceAdam),
            std::move(deps));
        const sim::TaskId cast = builder.onCpu(
            "cast p" + std::to_string(l), builder.cpuCastTime(share),
            {opt});
        builder.onTransfer(hw::kTierDdr, hw::kTierHbm,
                           "h2d p" + std::to_string(l),
                           builder.h2dTime(weight_bytes), weight_bytes,
                           {cast});
        if (l >= first_nvme) {
            const double back = opt_bytes + weight_bytes;
            builder.onTransfer(hw::kTierDdr, hw::kTierNvme,
                               "nvme-w s" + std::to_string(l),
                               builder.nvmeTime(back), back, {cast});
        }
    }

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    IterationResult res = builder.finish(total);
    res.notes = "hbm_layers=" + std::to_string(place.hbm_layers) +
                ", nvme_layers=" + std::to_string(place.nvme_layers);
    res.setExtra("hbm_layers", place.hbm_layers);
    res.setExtra("nvme_layers", place.nvme_layers);
    res.setExtra("ddr_layers",
                 static_cast<double>(layer_count - place.hbm_layers -
                                     place.nvme_layers));
    return res;
}

} // namespace so::runtime
