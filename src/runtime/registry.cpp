#include "runtime/registry.h"

#include "common/logging.h"
#include "runtime/ddp.h"
#include "runtime/deep_opt_states.h"
#include "runtime/fsdp_offload.h"
#include "runtime/graph_placement.h"
#include "runtime/megatron.h"
#include "runtime/multipath_offload.h"
#include "runtime/pipeline.h"
#include "runtime/ulysses.h"
#include "runtime/zero.h"
#include "runtime/zero_infinity.h"
#include "runtime/zero_offload.h"

namespace so::runtime {

SystemPtr
makeBaseline(const std::string &name)
{
    if (name == "ddp")
        return std::make_unique<DdpSystem>();
    if (name == "megatron")
        return std::make_unique<MegatronSystem>();
    if (name == "zero2")
        return std::make_unique<Zero2System>();
    if (name == "zero3")
        return std::make_unique<Zero3System>();
    if (name == "zero-offload")
        return std::make_unique<ZeroOffloadSystem>();
    if (name == "zero-infinity")
        return std::make_unique<ZeroInfinitySystem>();
    if (name == "fsdp-offload")
        return std::make_unique<FsdpOffloadSystem>();
    if (name == "ulysses")
        return std::make_unique<UlyssesSystem>();
    if (name == "ulysses-zero3")
        return std::make_unique<UlyssesSystem>(3);
    if (name == "zero-infinity-nvme")
        return std::make_unique<ZeroInfinitySystem>(/*use_nvme=*/true);
    if (name == "pipeline")
        return std::make_unique<PipelineSystem>();
    if (name == "deep-opt-states")
        return std::make_unique<DeepOptStatesSystem>();
    if (name == "superoffload-multipath")
        return std::make_unique<MultiPathOffloadSystem>();
    if (name == "hyperoffload")
        return std::make_unique<GraphPlacementSystem>();
    SO_FATAL("unknown baseline '", name, "'");
}

std::vector<std::string>
baselineNames()
{
    return {"ddp",
            "megatron",
            "zero2",
            "zero3",
            "zero-offload",
            "zero-infinity",
            "fsdp-offload",
            "ulysses",
            "ulysses-zero3",
            "zero-infinity-nvme",
            "pipeline",
            "deep-opt-states",
            "superoffload-multipath",
            "hyperoffload"};
}

} // namespace so::runtime
