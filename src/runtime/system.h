/**
 * @file
 * Training-system abstraction shared by every baseline and by
 * SuperOffload itself.
 *
 * A TrainingSystem answers, for one training setup (cluster, model,
 * batch, sequence length): does it fit, and what does one iteration's
 * schedule look like? Micro-batch selection follows the paper's §5.2
 * protocol: when the requested batch does not fit, try (1) smaller
 * micro-batches with gradient accumulation and (2) activation
 * checkpointing with the largest feasible micro-batch, and report
 * whichever yields higher throughput. Recompute FLOPs are excluded from
 * effective-TFLOPS numbers, also per §5.2.
 */
#ifndef SO_RUNTIME_SYSTEM_H
#define SO_RUNTIME_SYSTEM_H

#include <memory>
#include <string>

#include "hw/collective.h"
#include "hw/presets.h"
#include "hw/topology.h"
#include "model/config.h"
#include "model/flops.h"
#include "model/memory.h"

namespace so::runtime {

/** One training configuration to evaluate. */
struct TrainSetup
{
    hw::ClusterSpec cluster;
    model::ModelConfig model;
    /** Sequences per iteration across the whole cluster. */
    std::uint32_t global_batch = 8;
    /** Tokens per sequence. */
    std::uint32_t seq = 1024;
    /** Launcher NUMA binding quality (§4.7). */
    hw::NumaBinding binding = hw::NumaBinding::Colocated;

    /**
     * Attach a chrome://tracing JSON of the simulated schedule to the
     * result (IterationResult::trace_json). Off by default: the trace
     * is large and most sweeps run thousands of simulations.
     */
    bool capture_trace = false;

    /** Sequences per GPU per iteration (>= 1). */
    std::uint32_t perGpuBatch() const;
};

/** Memory demand vs capacity for one rank. */
struct MemoryReport
{
    double gpu_bytes = 0.0;
    double gpu_capacity = 0.0;
    double cpu_bytes = 0.0;
    double cpu_capacity = 0.0;
    /** NVMe tier (ZeRO-Infinity's third tier); both 0 when unused. */
    double nvme_bytes = 0.0;
    double nvme_capacity = 0.0;

    bool fitsGpu() const { return gpu_bytes <= gpu_capacity; }
    bool fitsCpu() const { return cpu_bytes <= cpu_capacity; }
    bool fitsNvme() const { return nvme_bytes <= nvme_capacity || nvme_bytes == 0.0; }
    bool fits() const { return fitsGpu() && fitsCpu() && fitsNvme(); }
};

/** Outcome of evaluating one setup under one system. */
struct IterationResult
{
    bool feasible = false;
    std::string infeasible_reason;

    /** Wall-clock of one full iteration (all accumulation steps). */
    double iter_time = 0.0;
    std::uint32_t micro_batch = 0;
    std::uint32_t accum_steps = 1;
    bool activation_checkpointing = false;

    /** Busy fractions over the iteration, from the simulated timelines. */
    double gpu_utilization = 0.0;
    double cpu_utilization = 0.0;
    double link_utilization = 0.0;

    MemoryReport memory;

    /** Per-rank FLOP breakdown of the whole iteration. */
    model::IterationFlops flops;

    /** ASCII Gantt chart of the simulated schedule (diagnostics). */
    std::string gantt;

    /** System-specific annotations (e.g. chosen policy parameters). */
    std::string notes;

    /**
     * chrome://tracing JSON of the schedule; filled only when the
     * setup's capture_trace flag was set.
     */
    std::string trace_json;

    /** Effective TFLOPS per GPU: model flops (no recompute) / time. */
    double tflopsPerGpu() const;

    /** MFU against @p peak_flops (theoretical per-GPU peak). */
    double mfuAgainst(double peak_flops) const;
};

/** Common interface of all nine training systems evaluated in §5. */
class TrainingSystem
{
  public:
    virtual ~TrainingSystem() = default;

    /** Display name, e.g. "ZeRO-Offload". */
    virtual std::string name() const = 0;

    /**
     * Evaluate @p setup: performs the micro-batch / checkpointing
     * search and returns the best feasible schedule (or an infeasible
     * result naming the limiting resource). Virtual so systems with an
     * extra search dimension (Megatron's MP degree, SuperOffload's
     * adaptive policy) can wrap it.
     */
    virtual IterationResult run(const TrainSetup &setup) const;

  protected:
    /**
     * Per-GPU resident bytes (model states + activations + overheads)
     * for the given micro-batch and checkpointing choice.
     */
    virtual double gpuBytes(const TrainSetup &setup,
                            std::uint32_t micro_batch,
                            bool checkpointing) const = 0;

    /** Per-rank host-DRAM bytes the system keeps on the CPU. */
    virtual double cpuBytes(const TrainSetup &setup) const = 0;

    /** Per-rank NVMe bytes (0 unless the system uses the third tier). */
    virtual double nvmeBytes(const TrainSetup &) const { return 0.0; }

    /**
     * Whether the §5.2 search may fall back to activation
     * checkpointing. Vanilla DDP returns false: checkpointing requires
     * wrapping the model code, which the "standard PyTorch Transformer
     * implementation" baseline does not do.
     */
    virtual bool allowCheckpointing() const { return true; }

    /**
     * Build and simulate one iteration's task graph for the given
     * micro-batch / checkpointing / accumulation choice. The returned
     * result must fill iter_time, utilizations, flops, and gantt; the
     * base class fills the rest.
     */
    virtual IterationResult simulate(const TrainSetup &setup,
                                     std::uint32_t micro_batch,
                                     bool checkpointing,
                                     std::uint32_t accum_steps) const = 0;

    /**
     * The §5.2 micro-batch / checkpointing search over a per-rank batch
     * of @p per_rank_batch sequences. The default run() uses
     * setup.perGpuBatch(); sequence-parallel systems pass the global
     * batch instead (every rank works on every sequence).
     */
    IterationResult searchBest(const TrainSetup &setup,
                               std::uint32_t per_rank_batch) const;

    /** CPU capacity available to the system (usable fraction applied). */
    static double cpuCapacity(const TrainSetup &setup);

    /** GPU HBM capacity per rank. */
    static double gpuCapacity(const TrainSetup &setup);
};

/** Shared pointer alias used by the registry. */
using SystemPtr = std::unique_ptr<TrainingSystem>;

} // namespace so::runtime

#endif // SO_RUNTIME_SYSTEM_H
