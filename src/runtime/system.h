/**
 * @file
 * Training-system abstraction shared by every baseline and by
 * SuperOffload itself.
 *
 * A TrainingSystem answers, for one training setup (cluster, model,
 * batch, sequence length): does it fit, and what does one iteration's
 * schedule look like? Micro-batch selection follows the paper's §5.2
 * protocol: when the requested batch does not fit, try (1) smaller
 * micro-batches with gradient accumulation and (2) activation
 * checkpointing with the largest feasible micro-batch, and report
 * whichever yields higher throughput. Recompute FLOPs are excluded from
 * effective-TFLOPS numbers, also per §5.2.
 *
 * The search is factored into three pure stages so the SweepEngine can
 * fan the simulations out across threads:
 *
 *   enumerateCandidates()  -> the full candidate list (memory screen)
 *   evaluateCandidate()    -> one simulation, thread-safe, any order
 *   selectBest()           -> deterministic argmax in enumeration order
 *
 * run() composes the three serially and is the single-threaded
 * convenience entry point.
 */
#ifndef SO_RUNTIME_SYSTEM_H
#define SO_RUNTIME_SYSTEM_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hw/collective.h"
#include "hw/memory.h"
#include "hw/power.h"
#include "hw/presets.h"
#include "hw/topology.h"
#include "model/config.h"
#include "model/flops.h"
#include "model/memory.h"
#include "sim/profiler.h"

namespace so::runtime {

/** One training configuration to evaluate. */
struct TrainSetup
{
    hw::ClusterSpec cluster;
    model::ModelConfig model;
    /** Sequences per iteration across the whole cluster. */
    std::uint32_t global_batch = 8;
    /** Tokens per sequence. */
    std::uint32_t seq = 1024;
    /** Launcher NUMA binding quality (§4.7). */
    hw::NumaBinding binding = hw::NumaBinding::Colocated;

    /**
     * Attach a chrome://tracing JSON of the simulated schedule to the
     * result (IterationResult::trace_json). Off by default: the trace
     * is large and most sweeps run thousands of simulations.
     */
    bool capture_trace = false;

    /**
     * Attach a schedule profile (critical path, per-task slack,
     * idle-cause attribution) to the result: the compact summary in
     * IterationResult::profile plus the full document in
     * IterationResult::profile_json. When combined with capture_trace,
     * the trace additionally carries critical-path flow arrows and
     * per-resource occupancy counter tracks. Off by default for the
     * same reason as capture_trace.
     */
    bool capture_profile = false;

    /**
     * Level-of-detail for the captured profile (docs/OBSERVABILITY.md):
     * Full keeps the O(V) per-task arrays and produces the inline
     * bundle document; Summary (or Auto past the threshold) keeps only
     * bounded histograms / top-K lists and skips the bundle so a
     * multi-million-task window stays profileable. Part of the sweep
     * fingerprint — changing it invalidates cached cells.
     */
    sim::ProfileOptions profile_options;

    /**
     * Per-job overrides of the derived electrical model (hw/power.h,
     * docs/ENERGY.md). Energy metering itself is always on — it is a
     * cheap post-pass over the finished schedule and never changes it.
     */
    hw::PowerOverrides power;

    /** Sequences per GPU per iteration (>= 1). */
    std::uint32_t perGpuBatch() const;
};

/**
 * One point of a system's search space, fully determined by data: the
 * §5.2 micro-batch / checkpointing choice plus a system-specific
 * variant index (Megatron's MP degree, Pipeline's stage count,
 * SuperOffload's weight placement; 0 for systems with no extra
 * dimension). Candidates are plain values so independent simulations
 * can run on any thread in any order.
 */
struct SearchCandidate
{
    std::uint32_t micro_batch = 1;
    std::uint32_t accum_steps = 1;
    bool checkpointing = false;
    /** System-specific search dimension (MP degree, stages, placement). */
    std::uint32_t variant = 0;
};

/** Demand vs capacity of one memory tier for one rank. */
struct TierUsage
{
    /** Tier lookup key ("HBM", "DDR", "NVMe"). */
    std::string tier;
    /** Diagnostic label ("GPU memory", "host DRAM", "NVMe"). */
    std::string description;
    hw::TierKind kind = hw::TierKind::Host;
    double bytes = 0.0;
    double capacity = 0.0;

    bool fits() const { return bytes <= capacity || bytes == 0.0; }
};

/** Memory demand vs capacity for one rank. */
struct MemoryReport
{
    double gpu_bytes = 0.0;
    double gpu_capacity = 0.0;
    double cpu_bytes = 0.0;
    double cpu_capacity = 0.0;
    /** NVMe tier (ZeRO-Infinity's third tier); both 0 when unused. */
    double nvme_bytes = 0.0;
    double nvme_capacity = 0.0;

    /**
     * Per-tier breakdown in hierarchy order (hot -> cold). The legacy
     * scalars above mirror the HBM/DDR/NVMe entries for existing
     * consumers; the vector is the generic N-tier view.
     */
    std::vector<TierUsage> tiers;

    bool fitsGpu() const { return gpu_bytes <= gpu_capacity; }
    bool fitsCpu() const { return cpu_bytes <= cpu_capacity; }
    bool fitsNvme() const { return nvme_bytes <= nvme_capacity || nvme_bytes == 0.0; }
    bool fits() const { return fitsGpu() && fitsCpu() && fitsNvme(); }
};

/**
 * Compact schedule-profile summary (see sim/profiler.h for the full
 * analysis). Filled only when TrainSetup::capture_profile is set.
 */
struct ProfileSummary
{
    /** Per-resource busy/idle-cause seconds over the schedule. */
    struct ResourceIdle
    {
        std::string resource;
        double busy = 0.0;
        /** Idle waiting on an upstream dependency still executing. */
        double dependency = 0.0;
        /** Idle waiting on a dependency queued behind other work. */
        double contention = 0.0;
        /** Idle with no further work this iteration. */
        double tail = 0.0;
    };

    bool valid = false;

    /** Simulated makespan of the profiled schedule. */
    double makespan = 0.0;

    /** Critical-path length (== the simulated makespan). */
    double critical_length = 0.0;

    /** Critical-path seconds per label phase, largest share first. */
    std::vector<std::pair<std::string, double>> critical_phases;

    /** Labels of the longest zero-slack tasks, longest first. */
    std::vector<std::string> hot_tasks;

    /** One entry per simulated resource, in resource order. */
    std::vector<ResourceIdle> idle;
};

/**
 * Joule accounting of one simulated iteration (docs/ENERGY.md). Always
 * filled for feasible results: the totals come from a cheap pass over
 * the timelines; the per-phase and idle-cause splits additionally
 * require TrainSetup::capture_profile (they ride the schedule
 * profiler's attribution).
 */
struct EnergySummary
{
    /** Per-resource joule split over the schedule. */
    struct ResourceEnergy
    {
        std::string resource;
        /** The watts the resource was metered at (hw/power.h). */
        double busy_w = 0.0;
        double idle_w = 0.0;
        /** busy_w × busy time. */
        double busy_j = 0.0;
        /** Per-byte switching energy of the bytes the resource moved. */
        double transfer_j = 0.0;
        /** idle_w × idle time. */
        double idle_j = 0.0;
        /** Idle-cause split of idle_j; zero without capture_profile. */
        double idle_dependency_j = 0.0;
        double idle_contention_j = 0.0;
        double idle_tail_j = 0.0;
    };

    bool valid = false;

    /** Busy joules + per-byte transfer tolls across all resources. */
    double active_j = 0.0;
    /** Idle-floor joules across all resources. */
    double idle_j = 0.0;
    /** Static draws (DRAM refresh) over the schedule. */
    double background_j = 0.0;
    /** active_j + idle_j + background_j, per schedule window. */
    double total_j = 0.0;
    /** Average electrical draw over the schedule, in watts. */
    double avg_w = 0.0;
    /** Energy-to-solution of one full iteration (all accum steps). */
    double iter_j = 0.0;
    /** Cluster joules per trained token (iter_j × chips / tokens). */
    double token_j = 0.0;

    /** One entry per simulated resource, in resource order. */
    std::vector<ResourceEnergy> resources;

    /** Task joules per label phase; filled with capture_profile. */
    std::vector<std::pair<std::string, double>> phases;

    /** Static draws as (name, joules) over the schedule. */
    std::vector<std::pair<std::string, double>> background;
};

/** Outcome of evaluating one setup under one system. */
struct IterationResult
{
    bool feasible = false;
    std::string infeasible_reason;

    /** Wall-clock of one full iteration (all accumulation steps). */
    double iter_time = 0.0;
    std::uint32_t micro_batch = 0;
    std::uint32_t accum_steps = 1;
    bool activation_checkpointing = false;

    /** Busy fractions over the iteration, from the simulated timelines. */
    double gpu_utilization = 0.0;
    double cpu_utilization = 0.0;
    double link_utilization = 0.0;

    MemoryReport memory;

    /** Bytes moved over one hierarchy path during the iteration. */
    struct TierTraffic
    {
        /** Source / destination tier names ("DDR" -> "HBM"). */
        std::string from;
        std::string to;
        /** DES channel that carried the traffic ("H2D", "GDS", ...). */
        std::string channel;
        double bytes = 0.0;
    };

    /**
     * Per-path transfer traffic of the simulated schedule, in hierarchy
     * path order. Filled by IterBuilder for schedules built through the
     * tier-pair transfer primitives; paths that moved no bytes are
     * included with bytes == 0 so consumers see the full topology.
     */
    std::vector<TierTraffic> tier_traffic;

    /** Per-rank FLOP breakdown of the whole iteration. */
    model::IterationFlops flops;

    /** ASCII Gantt chart of the simulated schedule (diagnostics). */
    std::string gantt;

    /** System-specific annotations (e.g. chosen policy parameters). */
    std::string notes;

    /**
     * Machine-readable system-specific outputs (e.g. "mp", "stages",
     * "placement", "retained_buckets"), in insertion order so JSON
     * emission is deterministic.
     */
    std::vector<std::pair<std::string, double>> extras;

    /**
     * chrome://tracing JSON of the schedule; filled only when the
     * setup's capture_trace flag was set.
     */
    std::string trace_json;

    /**
     * Compact profile summary; profile.valid (and profile_json below)
     * only when the setup's capture_profile flag was set.
     */
    ProfileSummary profile;

    /**
     * Joule accounting of the simulated schedule; always valid for
     * feasible results (phase/idle-cause splits need capture_profile).
     */
    EnergySummary energy;

    /** Full schedule-profile JSON document (sim::profileToJson). */
    std::string profile_json;

    /**
     * Inspection-bundle JSON (sim::bundleToJson): per-task spans plus
     * the dependency edge list, the input of the HTML Schedule
     * Explorer (report/html.h). Filled alongside profile_json when the
     * setup's capture_profile flag was set.
     */
    std::string bundle_json;

    /** Set (or overwrite) one named extra. */
    void setExtra(const std::string &key, double value);

    /** Look up a named extra; @p fallback when absent. */
    double extra(const std::string &key, double fallback = 0.0) const;

    /** Effective TFLOPS per GPU: model flops (no recompute) / time. */
    double tflopsPerGpu() const;

    /** MFU against @p peak_flops (theoretical per-GPU peak). */
    double mfuAgainst(double peak_flops) const;
};

/** Common interface of all nine training systems evaluated in §5. */
class TrainingSystem
{
  public:
    virtual ~TrainingSystem() = default;

    /** Display name, e.g. "ZeRO-Offload". */
    virtual std::string name() const = 0;

    /**
     * Evaluate @p setup: enumerate candidates, simulate each, and
     * return the best feasible schedule (or an infeasible result
     * naming the limiting resource). Equivalent to enumerateCandidates
     * + evaluateCandidate + selectBest run serially.
     */
    IterationResult run(const TrainSetup &setup) const;

    /**
     * The full candidate list for @p setup after the memory screen:
     * for each search variant, the largest plain micro-batch that fits
     * plus the largest checkpointed micro-batch when it unlocks a
     * strictly larger one (§5.2). Empty when no candidate fits (the
     * fallback variant is also screened first, so e.g. Pipeline's
     * layer-bounded stage count still shows up).
     */
    std::vector<SearchCandidate>
    enumerateCandidates(const TrainSetup &setup) const;

    /**
     * Simulate one candidate. Pure with respect to the system object:
     * safe to call concurrently from many threads for the same or
     * different candidates. Fills feasibility, memory report, and the
     * simulated schedule.
     */
    IterationResult evaluateCandidate(const TrainSetup &setup,
                                      const SearchCandidate &cand) const;

    /**
     * Deterministic reduction: first-wins strict-throughput argmax over
     * @p results in enumeration order (so earlier candidates win ties,
     * matching the serial search). @p results must be positionally
     * parallel to @p cands. When @p cands is empty, reconstructs the
     * infeasible diagnosis at the fallback variant.
     */
    IterationResult selectBest(const TrainSetup &setup,
                               const std::vector<SearchCandidate> &cands,
                               std::vector<IterationResult> results) const;

  protected:
    /**
     * Per-GPU resident bytes (model states + activations + overheads)
     * for the candidate's micro-batch / checkpointing / variant.
     */
    virtual double gpuBytes(const TrainSetup &setup,
                            const SearchCandidate &cand) const = 0;

    /** Per-rank host-DRAM bytes the system keeps on the CPU. */
    virtual double cpuBytes(const TrainSetup &setup,
                            const SearchCandidate &cand) const = 0;

    /** Per-rank NVMe bytes (0 unless the system uses the third tier). */
    virtual double nvmeBytes(const TrainSetup &,
                             const SearchCandidate &) const
    {
        return 0.0;
    }

    /**
     * Whether the §5.2 search may fall back to activation
     * checkpointing. Vanilla DDP returns false: checkpointing requires
     * wrapping the model code, which the "standard PyTorch Transformer
     * implementation" baseline does not do.
     */
    virtual bool allowCheckpointing() const { return true; }

    /**
     * Build and simulate one iteration's task graph for the candidate.
     * Must fill iter_time, utilizations, flops, gantt, and any
     * system-specific notes/extras; evaluateCandidate fills the rest.
     * Must be thread-safe: no mutation of system state.
     */
    virtual IterationResult simulate(const TrainSetup &setup,
                                     const SearchCandidate &cand) const = 0;

    /**
     * The system-specific search dimension, in evaluation order
     * (earlier variants win throughput ties). Default: the single
     * variant 0.
     */
    virtual std::vector<std::uint32_t>
    searchVariants(const TrainSetup &setup) const;

    /**
     * Variant used to diagnose (and possibly rescue) an all-infeasible
     * search: Megatron reports at its largest MP degree, Pipeline
     * retries at a layer-bounded stage count. Default: the first search
     * variant.
     */
    virtual std::uint32_t fallbackVariant(const TrainSetup &setup) const;

    /**
     * Sequences each rank processes per iteration. The default is
     * setup.perGpuBatch(); sequence-parallel systems return the global
     * batch (every rank works on every sequence).
     */
    virtual std::uint32_t perRankBatch(const TrainSetup &setup) const;

    /** CPU capacity available to the system (usable fraction applied). */
    static double cpuCapacity(const TrainSetup &setup);

    /** GPU HBM capacity per rank. */
    static double gpuCapacity(const TrainSetup &setup);

    /**
     * Hierarchy construction options for this system. The default is
     * the canonical staged hierarchy; multi-path systems enable the
     * extra routes here so fit checks, the builder, and the fingerprint
     * all see the same topology.
     */
    virtual hw::HierarchyOptions hierarchyOptions() const { return {}; }

    /** The memory hierarchy of @p setup's Superchip for this system. */
    hw::MemoryHierarchy hierarchy(const TrainSetup &setup) const;

    /**
     * Per-rank bytes this system keeps in @p tier. The default
     * dispatches on the tier kind to the gpuBytes / cpuBytes /
     * nvmeBytes virtuals; systems with bespoke placement override this
     * directly.
     */
    virtual double tierBytes(const TrainSetup &setup,
                             const SearchCandidate &cand,
                             const hw::MemoryTier &tier) const;

    /**
     * Demand vs capacity of every tier for @p cand, in hierarchy order.
     * When the system demands NVMe bytes on a chip with no NVMe tier, a
     * synthetic zero-capacity "NVMe" entry is appended so the overflow
     * is still diagnosable.
     */
    std::vector<TierUsage> tierDemands(const TrainSetup &setup,
                                       const SearchCandidate &cand) const;

  private:
    /**
     * §5.2 memory screen for one variant: appends the plain candidate
     * and, when strictly larger, the checkpointed candidate to @p out.
     * Returns true when at least one candidate was appended.
     */
    bool screenVariant(const TrainSetup &setup, std::uint32_t variant,
                       std::vector<SearchCandidate> &out) const;

    /**
     * Reconstruct the infeasible diagnosis (NVMe, then host DRAM, then
     * GPU memory at micro-batch 1) for @p variant.
     */
    IterationResult infeasibleResult(const TrainSetup &setup,
                                     std::uint32_t variant) const;

    /** Fill the memory demand/capacity report for @p cand. */
    void fillMemory(IterationResult &res, const TrainSetup &setup,
                    const SearchCandidate &cand) const;
};

/** Shared pointer alias used by the registry. */
using SystemPtr = std::unique_ptr<TrainingSystem>;

} // namespace so::runtime

#endif // SO_RUNTIME_SYSTEM_H
