#include "runtime/megatron.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/builder.h"

namespace so::runtime {

double
MegatronSystem::activationShare(std::uint32_t mp)
{
    // Attention/MLP interiors are sharded 1/mp; layer inputs, residual
    // stream, and layer norms remain replicated.
    return 0.3 + 0.7 / static_cast<double>(mp);
}

std::vector<std::uint32_t>
MegatronSystem::searchVariants(const TrainSetup &setup) const
{
    if (mp_ != 0)
        return {mp_};

    // Auto mode: §5.2 "we use a MP degree that gives the best
    // performance". Megatron-LM caps the tensor-parallel degree at 8
    // (attention-head divisibility and the NVLink domain); cross-node
    // TP up to that cap is allowed — it is how Megatron reaches its
    // largest models in Fig. 13 — but is rarely the fastest choice,
    // which the search discovers on its own.
    const std::uint32_t gpus = setup.cluster.totalSuperchips();
    const std::uint32_t max_mp = std::min<std::uint32_t>(gpus, 8);
    std::vector<std::uint32_t> degrees;
    for (std::uint32_t mp = 1; mp <= max_mp; mp *= 2)
        degrees.push_back(mp);
    return degrees;
}

std::uint32_t
MegatronSystem::fallbackVariant(const TrainSetup &setup) const
{
    return searchVariants(setup).back();
}

double
MegatronSystem::gpuBytes(const TrainSetup &setup,
                         const SearchCandidate &cand) const
{
    const std::uint32_t mp_deg = degreeOf(cand);
    const double mp = mp_deg;
    const auto states = model::StateSizes::forParams(setup.model.params());
    model::ActivationOptions act_opts;
    act_opts.checkpointing = cand.checkpointing;
    const double act = model::activationBytes(setup.model, cand.micro_batch,
                                              setup.seq, act_opts) *
                       activationShare(mp_deg);
    return model::gpuResidentBytes(states.totalBytes() / mp + act);
}

double
MegatronSystem::cpuBytes(const TrainSetup &, const SearchCandidate &) const
{
    return 0.0;
}

IterationResult
MegatronSystem::simulate(const TrainSetup &setup,
                         const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    const std::uint32_t mp_deg = degreeOf(cand);

    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double mp = mp_deg;
    const double layers = cfg.layers;
    const std::uint32_t gpus = setup.cluster.totalSuperchips();
    const std::uint32_t dp = std::max<std::uint32_t>(1, gpus / mp_deg);

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);

    // Per-layer compute, divided across the MP group. Tensor slicing
    // narrows every GEMM to 1/mp of its width, which costs sustained
    // efficiency (tile quantization, more kernel launches per FLOP).
    const double tp_penalty =
        1.0 + (mp_deg > 1 ? 0.15 * std::log2(static_cast<double>(mp))
                          : 0.0);
    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm / mp, tokens) * tp_penalty +
         builder.attnTime(micro_flops.fwd_attn / mp)) /
        layers;
    const double bwd_layer =
        (builder.gemmTime((micro_flops.bwd_gemm +
                           micro_flops.recompute_gemm) / mp, tokens) *
             tp_penalty +
         builder.attnTime((micro_flops.bwd_attn +
                           micro_flops.recompute_attn) / mp)) /
        layers;

    // TP all-reduces run over NVLink while the group fits in a node,
    // otherwise over the inter-node fabric.
    hw::CollectiveCost tp_coll;
    tp_coll.ranks = mp_deg;
    if (mp_deg <= setup.cluster.node.superchips_per_node) {
        tp_coll.bw_per_gpu = setup.cluster.node.intra_node.curve().peak();
        tp_coll.latency = setup.cluster.node.intra_node.latency();
    } else {
        tp_coll.bw_per_gpu = std::min(
            setup.cluster.node.intra_node.curve().peak(),
            setup.cluster.node.inter_node.curve().peak());
        tp_coll.latency = setup.cluster.node.inter_node.latency();
    }
    // Two all-reduces of the activation tensor per layer per pass.
    const double act_bytes =
        2.0 * tokens * static_cast<double>(cfg.hidden);
    const double tp_sync = 2.0 * tp_coll.allReduce(act_bytes);

    // DP gradient all-reduce (cross-node when multi-node).
    hw::CollectiveCost dp_coll = builder.coll();
    dp_coll.ranks = dp;

    // Per layer and pass: compute plus optional TP sync; last pass adds
    // the DP all-reduces; then the optimizer.
    const auto layer_count = static_cast<std::size_t>(cfg.layers);
    const std::size_t per_layer = mp_deg > 1 ? 2 : 1;
    const std::size_t sync_count = dp > 1 ? layer_count : 0;
    builder.reserve(accum_steps * 2 * per_layer * layer_count +
                        sync_count + 1,
                    accum_steps * 2 * per_layer * layer_count +
                        2 * sync_count + 1);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> final_syncs;
    final_syncs.reserve(sync_count);
    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t l = 0; l < cfg.layers; ++l) {
            std::vector<sim::TaskId> deps;
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 std::move(deps));
            if (mp_deg > 1) {
                // TP sync is on the critical path of the layer.
                prev = builder.onNic("tp-ar", tp_sync, {prev});
            }
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t l = cfg.layers; l-- > 0;) {
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 {prev});
            if (mp_deg > 1)
                prev = builder.onNic("tp-ar", tp_sync, {prev});
            if (last && dp > 1) {
                const double grad_bytes = 2.0 * cfg.params() / mp / layers;
                final_syncs.push_back(builder.onNic(
                    "dp-allreduce", dp_coll.allReduce(grad_bytes), {prev}));
            }
        }
    }

    std::vector<sim::TaskId> step_deps = final_syncs;
    step_deps.push_back(prev);
    builder.onGpu("adam (gpu)", builder.gpuAdamTime(cfg.params() / mp),
                  std::move(step_deps));

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    // Per-GPU share of the work under MP.
    total.fwd_gemm /= mp;
    total.fwd_attn /= mp;
    total.bwd_gemm /= mp;
    total.bwd_attn /= mp;
    total.recompute_gemm /= mp;
    total.recompute_attn /= mp;
    IterationResult res = builder.finish(total);
    res.setExtra("mp", mp);
    return res;
}

} // namespace so::runtime
