#include "runtime/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace so::runtime {

std::uint32_t
TrainSetup::perGpuBatch() const
{
    const std::uint32_t gpus = cluster.totalSuperchips();
    SO_ASSERT(gpus >= 1, "cluster has no superchips");
    return std::max<std::uint32_t>(1, global_batch / gpus);
}

double
IterationResult::tflopsPerGpu() const
{
    if (!feasible || iter_time <= 0.0)
        return 0.0;
    return flops.modelFlops() / iter_time / kTFLOPS;
}

double
IterationResult::mfuAgainst(double peak_flops) const
{
    if (!feasible || iter_time <= 0.0)
        return 0.0;
    SO_ASSERT(peak_flops > 0.0, "peak flops must be positive");
    return flops.modelFlops() / (iter_time * peak_flops);
}

double
TrainingSystem::cpuCapacity(const TrainSetup &setup)
{
    return setup.cluster.node.superchip.cpu.mem_bytes *
           model::kCpuUsableFraction;
}

double
TrainingSystem::gpuCapacity(const TrainSetup &setup)
{
    return setup.cluster.node.superchip.gpu.mem_bytes;
}

IterationResult
TrainingSystem::run(const TrainSetup &setup) const
{
    return searchBest(setup, setup.perGpuBatch());
}

IterationResult
TrainingSystem::searchBest(const TrainSetup &setup,
                           std::uint32_t per_gpu) const
{
    const double gpu_cap = gpuCapacity(setup);
    const double cpu_cap = cpuCapacity(setup);
    const double cpu_need = cpuBytes(setup);
    const double nvme_cap = setup.cluster.node.superchip.nvme_bytes;
    const double nvme_need = nvmeBytes(setup);

    auto fill_memory = [&](IterationResult &res, std::uint32_t micro,
                           bool ckpt) {
        res.memory.gpu_bytes = gpuBytes(setup, micro, ckpt);
        res.memory.gpu_capacity = gpu_cap;
        res.memory.cpu_bytes = cpu_need;
        res.memory.cpu_capacity = cpu_cap;
        res.memory.nvme_bytes = nvme_need;
        res.memory.nvme_capacity = nvme_cap;
    };

    if (nvme_need > nvme_cap) {
        IterationResult res;
        fill_memory(res, 1, true);
        res.infeasible_reason =
            "NVMe: needs " + formatBytes(nvme_need) + ", capacity " +
            formatBytes(nvme_cap);
        return res;
    }

    if (cpu_need > cpu_cap) {
        IterationResult res;
        fill_memory(res, 1, true);
        res.infeasible_reason =
            "host DRAM: needs " + formatBytes(cpu_need) + ", capacity " +
            formatBytes(cpu_cap);
        return res;
    }

    // Largest micro-batch that fits for a given checkpointing choice;
    // 0 when even micro-batch 1 does not fit.
    auto largest_micro = [&](bool ckpt) -> std::uint32_t {
        for (std::uint32_t micro = per_gpu; micro >= 1; --micro) {
            if (per_gpu % micro != 0)
                continue; // Accumulation steps must be integral.
            if (gpuBytes(setup, micro, ckpt) <= gpu_cap)
                return micro;
        }
        return 0;
    };

    const std::uint32_t micro_plain = largest_micro(false);
    const std::uint32_t micro_ckpt =
        allowCheckpointing() ? largest_micro(true) : 0;

    if (micro_plain == 0 && micro_ckpt == 0) {
        IterationResult res;
        fill_memory(res, 1, allowCheckpointing());
        res.infeasible_reason =
            "GPU memory: needs " + formatBytes(res.memory.gpu_bytes) +
            " at micro-batch 1" +
            (allowCheckpointing() ? " with checkpointing" : "") +
            ", capacity " + formatBytes(gpu_cap);
        return res;
    }

    // Evaluate the two §5.2 fallback strategies and keep the faster.
    IterationResult best;
    auto consider = [&](std::uint32_t micro, bool ckpt) {
        if (micro == 0)
            return;
        IterationResult res =
            simulate(setup, micro, ckpt, per_gpu / micro);
        res.feasible = true;
        res.micro_batch = micro;
        res.accum_steps = per_gpu / micro;
        res.activation_checkpointing = ckpt;
        fill_memory(res, micro, ckpt);
        if (!best.feasible || res.tflopsPerGpu() > best.tflopsPerGpu())
            best = std::move(res);
    };
    consider(micro_plain, false);
    // Checkpointing is only interesting when it unlocks a larger
    // micro-batch than plain execution allows.
    if (micro_ckpt > micro_plain)
        consider(micro_ckpt, true);

    return best;
}

} // namespace so::runtime
