#include "runtime/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace so::runtime {

std::uint32_t
TrainSetup::perGpuBatch() const
{
    const std::uint32_t gpus = cluster.totalSuperchips();
    SO_ASSERT(gpus >= 1, "cluster has no superchips");
    return std::max<std::uint32_t>(1, global_batch / gpus);
}

void
IterationResult::setExtra(const std::string &key, double value)
{
    for (auto &kv : extras) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    extras.emplace_back(key, value);
}

double
IterationResult::extra(const std::string &key, double fallback) const
{
    for (const auto &kv : extras)
        if (kv.first == key)
            return kv.second;
    return fallback;
}

double
IterationResult::tflopsPerGpu() const
{
    if (!feasible || iter_time <= 0.0)
        return 0.0;
    return flops.modelFlops() / iter_time / kTFLOPS;
}

double
IterationResult::mfuAgainst(double peak_flops) const
{
    if (!feasible || iter_time <= 0.0)
        return 0.0;
    SO_ASSERT(peak_flops > 0.0, "peak flops must be positive");
    return flops.modelFlops() / (iter_time * peak_flops);
}

double
TrainingSystem::cpuCapacity(const TrainSetup &setup)
{
    return setup.cluster.node.superchip.cpu.mem_bytes *
           model::kCpuUsableFraction;
}

double
TrainingSystem::gpuCapacity(const TrainSetup &setup)
{
    return setup.cluster.node.superchip.gpu.mem_bytes;
}

std::vector<std::uint32_t>
TrainingSystem::searchVariants(const TrainSetup &) const
{
    return {0};
}

std::uint32_t
TrainingSystem::fallbackVariant(const TrainSetup &setup) const
{
    return searchVariants(setup).front();
}

std::uint32_t
TrainingSystem::perRankBatch(const TrainSetup &setup) const
{
    return setup.perGpuBatch();
}

hw::MemoryHierarchy
TrainingSystem::hierarchy(const TrainSetup &setup) const
{
    return hw::memoryHierarchy(setup.cluster.node, setup.binding,
                               hierarchyOptions());
}

double
TrainingSystem::tierBytes(const TrainSetup &setup,
                          const SearchCandidate &cand,
                          const hw::MemoryTier &tier) const
{
    switch (tier.kind) {
      case hw::TierKind::Device: return gpuBytes(setup, cand);
      case hw::TierKind::Host:   return cpuBytes(setup, cand);
      case hw::TierKind::Cold:   return nvmeBytes(setup, cand);
    }
    SO_PANIC("unknown tier kind");
}

std::vector<TierUsage>
TrainingSystem::tierDemands(const TrainSetup &setup,
                            const SearchCandidate &cand) const
{
    std::vector<TierUsage> out;
    const hw::MemoryHierarchy hier = hierarchy(setup);
    bool has_cold = false;
    for (const hw::MemoryTier &tier : hier.tiers()) {
        TierUsage usage;
        usage.tier = tier.name;
        usage.description = tier.description;
        usage.kind = tier.kind;
        usage.bytes = tierBytes(setup, cand, tier);
        usage.capacity = tier.usableBytes();
        has_cold = has_cold || tier.kind == hw::TierKind::Cold;
        out.push_back(std::move(usage));
    }
    if (!has_cold) {
        // A system demanding NVMe bytes on a chip without the tier must
        // still be diagnosable: report the demand against zero capacity.
        const double need = nvmeBytes(setup, cand);
        if (need > 0.0) {
            TierUsage usage;
            usage.tier = std::string(hw::kTierNvme);
            usage.description = "NVMe";
            usage.kind = hw::TierKind::Cold;
            usage.bytes = need;
            usage.capacity = 0.0;
            out.push_back(std::move(usage));
        }
    }
    return out;
}

void
TrainingSystem::fillMemory(IterationResult &res, const TrainSetup &setup,
                           const SearchCandidate &cand) const
{
    res.memory.tiers = tierDemands(setup, cand);
    // Mirror the canonical tiers into the legacy scalar fields.
    for (const TierUsage &usage : res.memory.tiers) {
        if (usage.tier == hw::kTierHbm) {
            res.memory.gpu_bytes = usage.bytes;
            res.memory.gpu_capacity = usage.capacity;
        } else if (usage.tier == hw::kTierDdr) {
            res.memory.cpu_bytes = usage.bytes;
            res.memory.cpu_capacity = usage.capacity;
        } else if (usage.tier == hw::kTierNvme) {
            res.memory.nvme_bytes = usage.bytes;
            res.memory.nvme_capacity = usage.capacity;
        }
    }
}

bool
TrainingSystem::screenVariant(const TrainSetup &setup,
                              std::uint32_t variant,
                              std::vector<SearchCandidate> &out) const
{
    SearchCandidate probe;
    probe.variant = variant;

    // Non-device tiers do not depend on the micro-batch: screen them
    // once, coldest first so the binding constraint is reported first.
    const std::vector<TierUsage> demands = tierDemands(setup, probe);
    for (auto it = demands.rbegin(); it != demands.rend(); ++it)
        if (it->kind != hw::TierKind::Device && !it->fits())
            return false;

    const double gpu_cap = gpuCapacity(setup);
    const std::uint32_t per_rank = perRankBatch(setup);

    // Largest micro-batch that fits for a given checkpointing choice;
    // 0 when even micro-batch 1 does not fit.
    auto largest_micro = [&](bool ckpt) -> std::uint32_t {
        SearchCandidate c = probe;
        c.checkpointing = ckpt;
        for (std::uint32_t micro = per_rank; micro >= 1; --micro) {
            if (per_rank % micro != 0)
                continue; // Accumulation steps must be integral.
            c.micro_batch = micro;
            if (gpuBytes(setup, c) <= gpu_cap)
                return micro;
        }
        return 0;
    };

    const std::uint32_t micro_plain = largest_micro(false);
    const std::uint32_t micro_ckpt =
        allowCheckpointing() ? largest_micro(true) : 0;
    if (micro_plain == 0 && micro_ckpt == 0)
        return false;

    auto push = [&](std::uint32_t micro, bool ckpt) {
        SearchCandidate c;
        c.micro_batch = micro;
        c.accum_steps = per_rank / micro;
        c.checkpointing = ckpt;
        c.variant = variant;
        out.push_back(c);
    };
    if (micro_plain != 0)
        push(micro_plain, false);
    // Checkpointing is only interesting when it unlocks a larger
    // micro-batch than plain execution allows.
    if (micro_ckpt > micro_plain)
        push(micro_ckpt, true);
    return true;
}

std::vector<SearchCandidate>
TrainingSystem::enumerateCandidates(const TrainSetup &setup) const
{
    std::vector<SearchCandidate> cands;
    for (std::uint32_t variant : searchVariants(setup))
        screenVariant(setup, variant, cands);
    if (cands.empty()) {
        // Give the fallback variant (Pipeline's layer-bounded stage
        // count, for example) a chance to rescue the search; when it
        // was already screened above this finds nothing new.
        screenVariant(setup, fallbackVariant(setup), cands);
    }
    return cands;
}

IterationResult
TrainingSystem::infeasibleResult(const TrainSetup &setup,
                                 std::uint32_t variant) const
{
    SearchCandidate probe;
    probe.variant = variant;
    probe.checkpointing = true;

    IterationResult res;

    // Non-device tiers, coldest first: the binding constraint names the
    // overflowing tier uniformly as "<tier>: needs X, capacity Y".
    const std::vector<TierUsage> demands = tierDemands(setup, probe);
    for (auto it = demands.rbegin(); it != demands.rend(); ++it) {
        if (it->kind == hw::TierKind::Device || it->fits())
            continue;
        fillMemory(res, setup, probe);
        res.infeasible_reason = it->description + ": needs " +
                                formatBytes(it->bytes) + ", capacity " +
                                formatBytes(it->capacity);
        return res;
    }

    // Otherwise the device tier is the binding constraint even at
    // micro-batch 1 (with checkpointing when the system supports it).
    probe.checkpointing = allowCheckpointing();
    fillMemory(res, setup, probe);
    std::string device_desc = "GPU memory";
    double device_cap = gpuCapacity(setup);
    for (const TierUsage &usage : res.memory.tiers) {
        if (usage.kind == hw::TierKind::Device) {
            device_desc = usage.description;
            device_cap = usage.capacity;
            break;
        }
    }
    res.infeasible_reason =
        device_desc + ": needs " + formatBytes(res.memory.gpu_bytes) +
        " at micro-batch 1" +
        (allowCheckpointing() ? " with checkpointing" : "") +
        ", capacity " + formatBytes(device_cap);
    return res;
}

IterationResult
TrainingSystem::evaluateCandidate(const TrainSetup &setup,
                                  const SearchCandidate &cand) const
{
    IterationResult res = simulate(setup, cand);
    res.feasible = true;
    res.micro_batch = cand.micro_batch;
    res.accum_steps = cand.accum_steps;
    res.activation_checkpointing = cand.checkpointing;
    fillMemory(res, setup, cand);
    return res;
}

IterationResult
TrainingSystem::selectBest(const TrainSetup &setup,
                           const std::vector<SearchCandidate> &cands,
                           std::vector<IterationResult> results) const
{
    SO_ASSERT(cands.size() == results.size(),
              "selectBest: ", cands.size(), " candidates but ",
              results.size(), " results");
    if (cands.empty())
        return infeasibleResult(setup, fallbackVariant(setup));

    std::size_t best = 0;
    for (std::size_t i = 1; i < results.size(); ++i)
        if (results[i].tflopsPerGpu() > results[best].tflopsPerGpu())
            best = i;
    return std::move(results[best]);
}

IterationResult
TrainingSystem::run(const TrainSetup &setup) const
{
    const std::vector<SearchCandidate> cands = enumerateCandidates(setup);
    std::vector<IterationResult> results;
    results.reserve(cands.size());
    for (const SearchCandidate &cand : cands)
        results.push_back(evaluateCandidate(setup, cand));
    return selectBest(setup, cands, std::move(results));
}

} // namespace so::runtime
