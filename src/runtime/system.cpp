#include "runtime/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace so::runtime {

std::uint32_t
TrainSetup::perGpuBatch() const
{
    const std::uint32_t gpus = cluster.totalSuperchips();
    SO_ASSERT(gpus >= 1, "cluster has no superchips");
    return std::max<std::uint32_t>(1, global_batch / gpus);
}

void
IterationResult::setExtra(const std::string &key, double value)
{
    for (auto &kv : extras) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    extras.emplace_back(key, value);
}

double
IterationResult::extra(const std::string &key, double fallback) const
{
    for (const auto &kv : extras)
        if (kv.first == key)
            return kv.second;
    return fallback;
}

double
IterationResult::tflopsPerGpu() const
{
    if (!feasible || iter_time <= 0.0)
        return 0.0;
    return flops.modelFlops() / iter_time / kTFLOPS;
}

double
IterationResult::mfuAgainst(double peak_flops) const
{
    if (!feasible || iter_time <= 0.0)
        return 0.0;
    SO_ASSERT(peak_flops > 0.0, "peak flops must be positive");
    return flops.modelFlops() / (iter_time * peak_flops);
}

double
TrainingSystem::cpuCapacity(const TrainSetup &setup)
{
    return setup.cluster.node.superchip.cpu.mem_bytes *
           model::kCpuUsableFraction;
}

double
TrainingSystem::gpuCapacity(const TrainSetup &setup)
{
    return setup.cluster.node.superchip.gpu.mem_bytes;
}

std::vector<std::uint32_t>
TrainingSystem::searchVariants(const TrainSetup &) const
{
    return {0};
}

std::uint32_t
TrainingSystem::fallbackVariant(const TrainSetup &setup) const
{
    return searchVariants(setup).front();
}

std::uint32_t
TrainingSystem::perRankBatch(const TrainSetup &setup) const
{
    return setup.perGpuBatch();
}

void
TrainingSystem::fillMemory(IterationResult &res, const TrainSetup &setup,
                           const SearchCandidate &cand) const
{
    res.memory.gpu_bytes = gpuBytes(setup, cand);
    res.memory.gpu_capacity = gpuCapacity(setup);
    res.memory.cpu_bytes = cpuBytes(setup, cand);
    res.memory.cpu_capacity = cpuCapacity(setup);
    res.memory.nvme_bytes = nvmeBytes(setup, cand);
    res.memory.nvme_capacity = setup.cluster.node.superchip.nvme_bytes;
}

bool
TrainingSystem::screenVariant(const TrainSetup &setup,
                              std::uint32_t variant,
                              std::vector<SearchCandidate> &out) const
{
    SearchCandidate probe;
    probe.variant = variant;

    if (nvmeBytes(setup, probe) > setup.cluster.node.superchip.nvme_bytes)
        return false;
    if (cpuBytes(setup, probe) > cpuCapacity(setup))
        return false;

    const double gpu_cap = gpuCapacity(setup);
    const std::uint32_t per_rank = perRankBatch(setup);

    // Largest micro-batch that fits for a given checkpointing choice;
    // 0 when even micro-batch 1 does not fit.
    auto largest_micro = [&](bool ckpt) -> std::uint32_t {
        SearchCandidate c = probe;
        c.checkpointing = ckpt;
        for (std::uint32_t micro = per_rank; micro >= 1; --micro) {
            if (per_rank % micro != 0)
                continue; // Accumulation steps must be integral.
            c.micro_batch = micro;
            if (gpuBytes(setup, c) <= gpu_cap)
                return micro;
        }
        return 0;
    };

    const std::uint32_t micro_plain = largest_micro(false);
    const std::uint32_t micro_ckpt =
        allowCheckpointing() ? largest_micro(true) : 0;
    if (micro_plain == 0 && micro_ckpt == 0)
        return false;

    auto push = [&](std::uint32_t micro, bool ckpt) {
        SearchCandidate c;
        c.micro_batch = micro;
        c.accum_steps = per_rank / micro;
        c.checkpointing = ckpt;
        c.variant = variant;
        out.push_back(c);
    };
    if (micro_plain != 0)
        push(micro_plain, false);
    // Checkpointing is only interesting when it unlocks a larger
    // micro-batch than plain execution allows.
    if (micro_ckpt > micro_plain)
        push(micro_ckpt, true);
    return true;
}

std::vector<SearchCandidate>
TrainingSystem::enumerateCandidates(const TrainSetup &setup) const
{
    std::vector<SearchCandidate> cands;
    for (std::uint32_t variant : searchVariants(setup))
        screenVariant(setup, variant, cands);
    if (cands.empty()) {
        // Give the fallback variant (Pipeline's layer-bounded stage
        // count, for example) a chance to rescue the search; when it
        // was already screened above this finds nothing new.
        screenVariant(setup, fallbackVariant(setup), cands);
    }
    return cands;
}

IterationResult
TrainingSystem::infeasibleResult(const TrainSetup &setup,
                                 std::uint32_t variant) const
{
    SearchCandidate probe;
    probe.variant = variant;
    probe.checkpointing = true;

    IterationResult res;
    const double nvme_cap = setup.cluster.node.superchip.nvme_bytes;
    const double nvme_need = nvmeBytes(setup, probe);
    if (nvme_need > nvme_cap) {
        fillMemory(res, setup, probe);
        res.infeasible_reason =
            "NVMe: needs " + formatBytes(nvme_need) + ", capacity " +
            formatBytes(nvme_cap);
        return res;
    }

    const double cpu_need = cpuBytes(setup, probe);
    const double cpu_cap = cpuCapacity(setup);
    if (cpu_need > cpu_cap) {
        fillMemory(res, setup, probe);
        res.infeasible_reason =
            "host DRAM: needs " + formatBytes(cpu_need) + ", capacity " +
            formatBytes(cpu_cap);
        return res;
    }

    probe.checkpointing = allowCheckpointing();
    fillMemory(res, setup, probe);
    res.infeasible_reason =
        "GPU memory: needs " + formatBytes(res.memory.gpu_bytes) +
        " at micro-batch 1" +
        (allowCheckpointing() ? " with checkpointing" : "") +
        ", capacity " + formatBytes(gpuCapacity(setup));
    return res;
}

IterationResult
TrainingSystem::evaluateCandidate(const TrainSetup &setup,
                                  const SearchCandidate &cand) const
{
    IterationResult res = simulate(setup, cand);
    res.feasible = true;
    res.micro_batch = cand.micro_batch;
    res.accum_steps = cand.accum_steps;
    res.activation_checkpointing = cand.checkpointing;
    fillMemory(res, setup, cand);
    return res;
}

IterationResult
TrainingSystem::selectBest(const TrainSetup &setup,
                           const std::vector<SearchCandidate> &cands,
                           std::vector<IterationResult> results) const
{
    SO_ASSERT(cands.size() == results.size(),
              "selectBest: ", cands.size(), " candidates but ",
              results.size(), " results");
    if (cands.empty())
        return infeasibleResult(setup, fallbackVariant(setup));

    std::size_t best = 0;
    for (std::size_t i = 1; i < results.size(); ++i)
        if (results[i].tflopsPerGpu() > results[best].tflopsPerGpu())
            best = i;
    return std::move(results[best]);
}

IterationResult
TrainingSystem::run(const TrainSetup &setup) const
{
    const std::vector<SearchCandidate> cands = enumerateCandidates(setup);
    std::vector<IterationResult> results;
    results.reserve(cands.size());
    for (const SearchCandidate &cand : cands)
        results.push_back(evaluateCandidate(setup, cand));
    return selectBest(setup, cands, std::move(results));
}

} // namespace so::runtime
