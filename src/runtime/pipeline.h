/**
 * @file
 * Pipeline-parallel baseline (§2.2's GPipe/PipeDream family; the paper
 * lists PP among the distributed techniques whose GPU appetite
 * motivates offloading, without evaluating it — included here for
 * completeness of the baseline set).
 *
 * Modelled as synchronous 1F1B: the model is split into P stages, the
 * per-rank batch into M micro-batches, and each stage processes every
 * micro-batch with the classic (P-1)/(M+P-1) bubble. Activations cross
 * stage boundaries over the cluster fabric; gradients all-reduce over
 * the data-parallel replicas of each stage. The stage count is the
 * candidate's variant index; the chosen count is reported as the
 * "stages" extra.
 */
#ifndef SO_RUNTIME_PIPELINE_H
#define SO_RUNTIME_PIPELINE_H

#include <algorithm>

#include "runtime/system.h"

namespace so::runtime {

/** Synchronous pipeline parallelism (+ DP across remaining ranks). */
class PipelineSystem : public TrainingSystem
{
  public:
    /** @param stages fixed stage count, or 0 to auto-search. */
    explicit PipelineSystem(std::uint32_t stages = 0) : stages_(stages) {}

    std::string name() const override { return "Pipeline (1F1B)"; }

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup,
                    const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                             const SearchCandidate &cand) const override;

    /**
     * Candidate stage counts: the fixed one, or powers of two up to
     * the cluster size, capped by the layer count.
     */
    std::vector<std::uint32_t>
    searchVariants(const TrainSetup &setup) const override;

    /**
     * When no power-of-two count fits, retry at the layer-bounded
     * count min(gpus, layers) — it shards states the finest and may
     * still be feasible.
     */
    std::uint32_t fallbackVariant(const TrainSetup &setup) const override;

  private:
    /** The candidate's stage count (variants are always >= 1). */
    static std::uint32_t stagesOf(const SearchCandidate &cand)
    {
        return std::max<std::uint32_t>(1, cand.variant);
    }

    const std::uint32_t stages_;
};

} // namespace so::runtime

#endif // SO_RUNTIME_PIPELINE_H
