/**
 * @file
 * Pipeline-parallel baseline (§2.2's GPipe/PipeDream family; the paper
 * lists PP among the distributed techniques whose GPU appetite
 * motivates offloading, without evaluating it — included here for
 * completeness of the baseline set).
 *
 * Modelled as synchronous 1F1B: the model is split into P stages, the
 * per-rank batch into M micro-batches, and each stage processes every
 * micro-batch with the classic (P-1)/(M+P-1) bubble. Activations cross
 * stage boundaries over the cluster fabric; gradients all-reduce over
 * the data-parallel replicas of each stage.
 */
#ifndef SO_RUNTIME_PIPELINE_H
#define SO_RUNTIME_PIPELINE_H

#include "runtime/system.h"

namespace so::runtime {

/** Synchronous pipeline parallelism (+ DP across remaining ranks). */
class PipelineSystem : public TrainingSystem
{
  public:
    /** @param stages fixed stage count, or 0 to auto-search. */
    explicit PipelineSystem(std::uint32_t stages = 0) : stages_(stages) {}

    std::string name() const override { return "Pipeline (1F1B)"; }

    IterationResult run(const TrainSetup &setup) const override;

    /** Stage count chosen by the last run() (0 = none yet). */
    std::uint32_t stageCount() const { return chosen_stages_; }

  protected:
    double gpuBytes(const TrainSetup &setup, std::uint32_t micro_batch,
                    bool checkpointing) const override;
    double cpuBytes(const TrainSetup &setup) const override;
    IterationResult simulate(const TrainSetup &setup,
                             std::uint32_t micro_batch, bool checkpointing,
                             std::uint32_t accum_steps) const override;

  private:
    std::uint32_t effectiveStages() const
    {
        return chosen_stages_ == 0 ? 1 : chosen_stages_;
    }

    const std::uint32_t stages_;
    mutable std::uint32_t chosen_stages_ = 0;
};

} // namespace so::runtime

#endif // SO_RUNTIME_PIPELINE_H
