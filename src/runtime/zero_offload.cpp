#include "runtime/zero_offload.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

double
ZeroOffloadSystem::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const double n = setup.cluster.totalSuperchips();
    const double params = setup.model.params();
    // Full fp16 parameters + full fp16 gradient buffer (DeepSpeed's
    // contiguous-gradients layout) + this rank's pinned transfer
    // staging (~P/N bytes of bucket buffers).
    const double states = 2.0 * params + 2.0 * params + params / n;
    model::ActivationOptions act_opts;
    act_opts.checkpointing = checkpointing;
    const double act = model::activationBytes(setup.model, micro_batch,
                                              setup.seq, act_opts);
    return model::gpuResidentBytes(states + act);
}

double
ZeroOffloadSystem::cpuBytes(const TrainSetup &setup, const SearchCandidate &) const
{
    const double n = setup.cluster.totalSuperchips();
    const double params = setup.model.params();
    // 12P/N optimizer shard + 4P/N fp32 gradient copy.
    return (hw::kOptimStateBytesPerParam + hw::kFp32BytesPerParam) *
           params / n;
}

IterationResult
ZeroOffloadSystem::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();

    // Partition the gradient stream into transfer buckets.
    const auto buckets = static_cast<std::uint32_t>(std::clamp(
        std::ceil(2.0 * params / kOffloadBucketBytes), 1.0, 200.0));
    const double bucket_params = params / buckets;
    const double shard_params = bucket_params / n; // per-rank per bucket

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_chunk =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / buckets;
    const double bwd_chunk =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / buckets;

    // Per accumulation step: fwd+bwd per bucket; last step adds up to
    // three offload tasks per bucket (rs/d2h/cast); then the norm check,
    // three return-path tasks per bucket, and the optional all-gather.
    builder.reserve(
        static_cast<std::size_t>(accum_steps) * 2 * buckets +
            7 * static_cast<std::size_t>(buckets) + 2,
        static_cast<std::size_t>(accum_steps) * 2 * buckets +
            10 * static_cast<std::size_t>(buckets) + 2);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> casts;
    casts.reserve(buckets);
    std::vector<sim::TaskId> cast_done(buckets, sim::kInvalidTask);

    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t c = 0; c < buckets; ++c) {
            std::vector<sim::TaskId> deps;
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd", fwd_chunk, std::move(deps));
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t c = 0; c < buckets; ++c) {
            prev = builder.onGpu("bwd", bwd_chunk, {prev});
            if (!last)
                continue;
            // Gradient bucket leaves the GPU as soon as it is produced:
            // reduce-scatter (multi-rank), then fp16 swap-out, then a
            // CPU-side fp16 -> fp32 cast (the classic Cast_cpu <->
            // Move_fp16 design, §4.5).
            sim::TaskId ready = prev;
            if (n > 1) {
                ready = builder.onNic(
                    "rs g" + std::to_string(c),
                    builder.coll().reduceScatter(2.0 * bucket_params),
                    {ready});
            }
            // fp16 swap-out lands in unpinned staging (§4.5's
            // transfer-then-cast pattern), then a CPU-side cast plus
            // the framework's per-bucket bookkeeping.
            const double grad_bytes =
                hw::kFp16BytesPerParam * shard_params;
            const sim::TaskId moved = builder.onTransfer(
                hw::kTierHbm, hw::kTierDdr, "d2h g" + std::to_string(c),
                builder.d2hTime(grad_bytes, /*pinned=*/false), grad_bytes,
                {ready});
            cast_done[c] = builder.onCpu(
                "cast g" + std::to_string(c),
                builder.cpuCastTime(shard_params) +
                    kBucketFrameworkOverhead,
                {moved});
            casts.push_back(cast_done[c]);
        }
    }

    // STE synchronization point: global gradient norm + NaN/Inf check
    // over the full fp32 gradient shard, after *all* buckets arrived.
    const double norm_bytes = 4.0 * params / n;
    const sim::TaskId norm = builder.onCpu(
        "grad-norm+check",
        setup.cluster.node.superchip.cpu.memTime(norm_bytes), casts);

    // Optimizer steps per bucket (CPU-Adam), then fp32 -> fp16 cast and
    // swap-in of the updated parameters; the H2D transfers overlap with
    // later buckets' optimizer work.
    std::vector<sim::TaskId> returns;
    returns.reserve(buckets);
    for (std::uint32_t c = 0; c < buckets; ++c) {
        const sim::TaskId opt = builder.onCpu(
            "adam b" + std::to_string(c),
            builder.cpuAdamTime(shard_params, hw::AdamImpl::CpuAdam) +
                kBucketFrameworkOverhead,
            {norm, cast_done[c]});
        const sim::TaskId cast_back = builder.onCpu(
            "cast p" + std::to_string(c),
            builder.cpuCastTime(shard_params), {opt});
        const double param_bytes = hw::kFp16BytesPerParam * shard_params;
        returns.push_back(builder.onTransfer(
            hw::kTierDdr, hw::kTierHbm, "h2d p" + std::to_string(c),
            builder.h2dTime(param_bytes, /*pinned=*/false), param_bytes,
            {cast_back}));
    }

    // Multi-rank: all-gather the updated fp16 parameters; the next
    // forward pass cannot start before this completes (STE constraint
    // 2 in §3).
    if (n > 1) {
        builder.onNic("allgather params",
                      builder.coll().allGather(2.0 * params), returns);
    }

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    return builder.finish(total);
}

} // namespace so::runtime
