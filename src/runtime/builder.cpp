#include "runtime/builder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/inspect.h"
#include "sim/profiler.h"
#include "sim/trace.h"

namespace so::runtime {

IterBuilder::IterBuilder(const TrainSetup &setup, hw::HierarchyOptions opts)
    : setup_(setup),
      chip_(setup.cluster.node.superchip),
      host_link_(hw::effectiveHostLink(setup.cluster.node, setup.binding)),
      coll_(hw::CollectiveCost::fromCluster(setup.cluster)),
      hier_(hw::memoryHierarchy(chip_, host_link_, opts)),
      power_(hw::powerModel(chip_, hier_, setup.power))
{
    // The standard seven resources, in an order pinned by tests (and by
    // stored schedules): the hierarchy's canonical channels map onto
    // them by name, so the default hierarchy adds no resources.
    gpu_ = graph_.addResource("GPU", 1);
    cpu_ = graph_.addResource("CPU", 1);
    cpu_bg_ = graph_.addResource("CPU-bg", 1);
    h2d_ = graph_.addResource("H2D", 1);
    d2h_ = graph_.addResource("D2H", 1);
    nic_ = graph_.addResource("NIC", 1);
    nvme_ = graph_.addResource("NVMe", 1);

    channels_.emplace_back(std::string(hw::kChannelH2d), h2d_);
    channels_.emplace_back(std::string(hw::kChannelD2h), d2h_);
    channels_.emplace_back(std::string(hw::kChannelNvme), nvme_);
    for (const hw::MemoryPath &path : hier_.paths()) {
        bool known = false;
        for (const auto &chan : channels_)
            known = known || chan.first == path.channel;
        if (!known)
            channels_.emplace_back(path.channel,
                                   graph_.addResource(path.channel, 1));
    }
    path_bytes_.assign(hier_.paths().size(), 0.0);
}

sim::ResourceId
IterBuilder::channelResource(std::string_view channel) const
{
    for (const auto &chan : channels_)
        if (chan.first == channel)
            return chan.second;
    SO_PANIC("unknown hierarchy channel '", std::string(channel), "'");
}

double
IterBuilder::gemmTime(double flops, double micro_tokens) const
{
    SO_ASSERT(micro_tokens > 0.0, "micro_tokens must be positive");
    const double eff = micro_tokens / (micro_tokens + kGemmEffTokens);
    return chip_.gpu.computeTime(flops) / eff;
}

double
IterBuilder::attnTime(double flops) const
{
    return chip_.gpu.attnComputeTime(flops);
}

double
IterBuilder::h2dTime(double bytes, bool pinned) const
{
    return transferTime(hw::kTierDdr, hw::kTierHbm, bytes, pinned);
}

double
IterBuilder::d2hTime(double bytes, bool pinned) const
{
    // The host link is symmetric per direction in all our presets.
    return transferTime(hw::kTierHbm, hw::kTierDdr, bytes, pinned);
}

double
IterBuilder::transferTime(std::string_view from, std::string_view to,
                          double bytes, bool pinned) const
{
    return pathTime(hier_.primaryPath(from, to), bytes, pinned);
}

double
IterBuilder::pathTime(const hw::MemoryPath &path, double bytes,
                      bool pinned) const
{
    return path.transferTime(bytes, pinned);
}

double
IterBuilder::chunkedTransferTime(double bytes, double granule,
                                 bool pinned,
                                 double per_chunk_overhead) const
{
    return chunkedTransferTime(hw::kTierDdr, hw::kTierHbm, bytes, granule,
                               pinned, per_chunk_overhead);
}

double
IterBuilder::chunkedTransferTime(std::string_view from,
                                 std::string_view to, double bytes,
                                 double granule, bool pinned,
                                 double per_chunk_overhead) const
{
    SO_ASSERT(granule > 0.0, "granule must be positive");
    if (bytes <= 0.0)
        return 0.0;
    const hw::MemoryPath &path = hier_.primaryPath(from, to);
    const double full_chunks = std::floor(bytes / granule);
    const double rest = bytes - full_chunks * granule;
    double time = full_chunks *
                  (pathTime(path, granule, pinned) + per_chunk_overhead);
    if (rest > 0.0)
        time += pathTime(path, rest, pinned) + per_chunk_overhead;
    return time;
}

double
IterBuilder::cpuAdamTime(double params, hw::AdamImpl impl) const
{
    return chip_.cpu.adamStepTime(params, impl);
}

double
IterBuilder::gpuAdamTime(double params) const
{
    return chip_.gpuAdamStepTime(params);
}

double
IterBuilder::nvmeTime(double bytes) const
{
    SO_ASSERT(chip_.nvme_bytes > 0.0,
              "this Superchip preset has no NVMe tier");
    return transferTime(hw::kTierDdr, hw::kTierNvme, bytes);
}

double
IterBuilder::cpuCastTime(double elements) const
{
    // Read fp16 (2 B) + write fp32 (4 B) per element, DDR-bound.
    return chip_.cpu.memTime(elements * 6.0);
}

double
IterBuilder::gpuCastTime(double elements) const
{
    // Same traffic but HBM-bound; the cast kernel streams at ~80%.
    return elements * 6.0 / (chip_.gpu.mem_bw * 0.8);
}

double
IterBuilder::microTokens(std::uint32_t micro) const
{
    return static_cast<double>(micro) * setup_.seq;
}

sim::TaskId
IterBuilder::onGpu(std::string_view label, double seconds,
                   sim::DepView deps, std::int32_t priority)
{
    return graph_.addTask(gpu_, seconds, label, deps, priority);
}

sim::TaskId
IterBuilder::onCpu(std::string_view label, double seconds,
                   sim::DepView deps, std::int32_t priority)
{
    return graph_.addTask(cpu_, seconds, label, deps, priority);
}

sim::TaskId
IterBuilder::onCpuBg(std::string_view label, double seconds,
                     sim::DepView deps, std::int32_t priority)
{
    return graph_.addTask(cpu_bg_, seconds, label, deps, priority);
}

sim::TaskId
IterBuilder::onH2d(std::string_view label, double seconds,
                   sim::DepView deps, std::int32_t priority)
{
    return graph_.addTask(h2d_, seconds, label, deps, priority);
}

sim::TaskId
IterBuilder::onD2h(std::string_view label, double seconds,
                   sim::DepView deps, std::int32_t priority)
{
    return graph_.addTask(d2h_, seconds, label, deps, priority);
}

sim::TaskId
IterBuilder::onNic(std::string_view label, double seconds,
                   sim::DepView deps, std::int32_t priority)
{
    return graph_.addTask(nic_, seconds, label, deps, priority);
}

sim::TaskId
IterBuilder::onNvme(std::string_view label, double seconds,
                    sim::DepView deps, std::int32_t priority)
{
    return graph_.addTask(nvme_, seconds, label, deps, priority);
}

sim::TaskId
IterBuilder::onTransfer(std::string_view from, std::string_view to,
                        std::string_view label, double seconds,
                        double bytes, sim::DepView deps,
                        std::int32_t priority)
{
    return onPath(hier_.primaryPath(from, to), label, seconds, bytes,
                  deps, priority);
}

sim::TaskId
IterBuilder::onPath(const hw::MemoryPath &path, std::string_view label,
                    double seconds, double bytes, sim::DepView deps,
                    std::int32_t priority)
{
    const std::size_t index =
        static_cast<std::size_t>(&path - hier_.paths().data());
    SO_ASSERT(index < hier_.paths().size(),
              "onPath: path does not belong to this hierarchy");
    SO_ASSERT(bytes >= 0.0, "negative transfer bytes");
    path_bytes_[index] += bytes;
    const sim::TaskId id = graph_.addTask(channelResource(path.channel),
                                          seconds, label, deps, priority);
    if (bytes > 0.0)
        task_bytes_.emplace_back(id, bytes);
    return id;
}

double
IterBuilder::pathBytes(std::size_t path_index) const
{
    SO_ASSERT(path_index < path_bytes_.size(), "path index out of range");
    return path_bytes_[path_index];
}

void
IterBuilder::reserve(std::size_t tasks, std::size_t edges)
{
    // Also pre-sizes the graph's dependents-CSR arrays (same counts:
    // one offset per task, one slot per edge), so the first schedule()
    // builds the reverse index without reallocating.
    graph_.reserveTasks(tasks);
    graph_.reserveEdges(edges);
}

sim::Schedule
IterBuilder::schedule() const
{
    // Reuse this worker thread's scratch arena: sweeps simulate
    // thousands of graphs per thread, and the workspace makes that O(1)
    // scheduler allocations per thread instead of O(graphs). The
    // dependents CSR is cached on the graph itself, so systems that
    // schedule the same builder more than once (probe + final windows)
    // pay its O(V + E) build a single time.
    return sim::Scheduler().run(graph_, sim::Scheduler::threadWorkspace());
}

IterationResult
IterBuilder::finish(const model::IterationFlops &flops) const
{
    const sim::Schedule sched = schedule();
    return finishWindow(flops, 0.0, sched.makespan, sched);
}

sim::EnergyProfile
IterBuilder::fillEnergy(IterationResult &res, const sim::Schedule &schedule,
                        const sim::ScheduleProfile *profile) const
{
    // Re-key the name-keyed electrical model by sim ResourceId.
    sim::EnergyInputs inputs;
    inputs.resources.resize(graph_.resourceCount());
    for (sim::ResourceId r = 0; r < graph_.resourceCount(); ++r) {
        if (const hw::PowerProfile *p =
                power_.find(graph_.resource(r).name)) {
            inputs.resources[r] = {p->busy_w, p->idle_w,
                                   p->joules_per_byte};
        }
    }
    inputs.task_bytes.assign(graph_.taskCount(), 0.0);
    for (const auto &[task, bytes] : task_bytes_)
        inputs.task_bytes[task] += bytes;
    inputs.background.reserve(power_.background().size());
    for (const hw::BackgroundPower &bg : power_.background())
        inputs.background.emplace_back(bg.name, bg.watts);

    EnergySummary &e = res.energy;
    e.valid = true;
    const double makespan = schedule.makespan;
    sim::EnergyProfile ep;
    if (profile != nullptr) {
        // Ride the profiler's attribution: same busy/idle partition,
        // same phaseKey grouping, idle joules split by cause.
        ep = sim::attributeEnergy(graph_, schedule, *profile, inputs,
                                  setup_.profile_options);
        e.active_j = ep.active_j;
        e.idle_j = ep.idle_j;
        e.background_j = ep.background_j;
        e.total_j = ep.total_j;
        e.phases = ep.phases;
        e.background = ep.background;
        e.resources.reserve(graph_.resourceCount());
        for (sim::ResourceId r = 0; r < graph_.resourceCount(); ++r) {
            const sim::ResourceEnergy &re = ep.resources[r];
            EnergySummary::ResourceEnergy out;
            out.resource = graph_.resource(r).name;
            out.busy_w = re.busy_w;
            out.idle_w = re.idle_w;
            out.busy_j = re.busy_j;
            out.transfer_j = re.transfer_j;
            out.idle_j = re.idle_j;
            out.idle_dependency_j = re.idle_dependency_j;
            out.idle_contention_j = re.idle_contention_j;
            out.idle_tail_j = re.idle_tail_j;
            e.resources.push_back(std::move(out));
        }
    } else {
        // Cheap pass: union busy time straight off the timelines, no
        // cause split, no per-phase roll-up. Totals match the profiled
        // attribution (same busy/idle partition of the makespan).
        std::vector<double> res_bytes(graph_.resourceCount(), 0.0);
        for (const auto &[task, bytes] : task_bytes_)
            res_bytes[graph_.taskResource(task)] += bytes;
        for (sim::ResourceId r = 0; r < graph_.resourceCount(); ++r) {
            const sim::ResourcePower &rp = inputs.resources[r];
            const double busy =
                schedule.timelines[r].busyTime(0.0, makespan);
            EnergySummary::ResourceEnergy out;
            out.resource = graph_.resource(r).name;
            out.busy_w = rp.busy_w;
            out.idle_w = rp.idle_w;
            out.busy_j = rp.busy_w * busy;
            out.transfer_j = rp.joules_per_byte * res_bytes[r];
            out.idle_j = rp.idle_w * (makespan - busy);
            e.active_j += out.busy_j + out.transfer_j;
            e.idle_j += out.idle_j;
            e.resources.push_back(std::move(out));
        }
        for (const auto &[name, watts] : inputs.background) {
            const double joules = watts * makespan;
            e.background.emplace_back(name, joules);
            e.background_j += joules;
        }
        e.total_j = e.active_j + e.idle_j + e.background_j;
    }
    e.avg_w = makespan > 0.0 ? e.total_j / makespan : 0.0;
    // Energy-to-solution: the measurement window's share of the
    // schedule at the schedule's average draw (steady-state systems
    // measure one iteration out of a longer simulated schedule).
    e.iter_j = e.avg_w * res.iter_time;
    const double tokens = static_cast<double>(setup_.global_batch) *
                          static_cast<double>(setup_.seq);
    e.token_j = tokens > 0.0
                    ? e.iter_j * setup_.cluster.totalSuperchips() / tokens
                    : 0.0;
    return ep;
}

IterationResult
IterBuilder::finishWindow(const model::IterationFlops &flops,
                          double win_begin, double win_end,
                          const sim::Schedule &schedule) const
{
    SO_ASSERT(win_end > win_begin, "empty measurement window");
    IterationResult res;
    res.iter_time = win_end - win_begin;
    res.flops = flops;
    res.gpu_utilization =
        schedule.timelines[gpu_].utilization(win_begin, win_end);
    res.cpu_utilization =
        schedule.timelines[cpu_].utilization(win_begin, win_end);
    const double link_busy =
        schedule.timelines[h2d_].busyTime(win_begin, win_end) +
        schedule.timelines[d2h_].busyTime(win_begin, win_end);
    res.link_utilization = link_busy / (2.0 * (win_end - win_begin));
    res.tier_traffic.reserve(hier_.paths().size());
    for (std::size_t i = 0; i < hier_.paths().size(); ++i) {
        const hw::MemoryPath &path = hier_.paths()[i];
        IterationResult::TierTraffic traffic;
        traffic.from = hier_.tiers()[path.src].name;
        traffic.to = hier_.tiers()[path.dst].name;
        traffic.channel = path.channel;
        traffic.bytes = path_bytes_[i];
        res.tier_traffic.push_back(std::move(traffic));
    }
    res.gantt = sim::toAsciiGantt(graph_, schedule);
    if (setup_.capture_profile) {
        // The profile covers the whole simulated schedule, not just the
        // [win_begin, win_end) measurement window: idle attribution is
        // only meaningful against the full iteration.
        const sim::ScheduleProfile prof =
            sim::profileSchedule(graph_, schedule,
                                 setup_.profile_options);
        res.profile.valid = true;
        res.profile.makespan = prof.makespan;
        res.profile.critical_length = prof.critical_length;
        res.profile.critical_phases = prof.critical_phases;
        for (sim::TaskId id : sim::topZeroSlackTasks(prof, graph_))
            res.profile.hot_tasks.emplace_back(graph_.label(id));
        for (sim::ResourceId r = 0; r < graph_.resourceCount(); ++r) {
            ProfileSummary::ResourceIdle idle;
            idle.resource = graph_.resource(r).name;
            idle.busy = prof.resources[r].busy;
            idle.dependency = prof.resources[r].idle_dependency;
            idle.contention = prof.resources[r].idle_contention;
            idle.tail = prof.resources[r].idle_tail;
            res.profile.idle.push_back(std::move(idle));
        }
        const sim::EnergyProfile energy =
            fillEnergy(res, schedule, &prof);
        res.profile_json =
            sim::profileToJson(prof, graph_, schedule, 8, &energy);
        // A Summary profile has no per-task arrays, so the O(V) inline
        // bundle document is skipped — the bounded profile document
        // (binned histograms, top-K lists) is the at-scale artifact;
        // per-task data streams out as shards via writeBundleShards
        // when a caller asks for files (docs/OBSERVABILITY.md).
        if (!prof.summarized)
            res.bundle_json = sim::bundleToJson(
                sim::makeInspectionBundle(graph_, schedule, prof, "",
                                          &energy));
        if (setup_.capture_trace)
            res.trace_json = sim::toChromeTrace(graph_, schedule, prof);
    } else {
        fillEnergy(res, schedule, nullptr);
        if (setup_.capture_trace)
            res.trace_json = sim::toChromeTrace(graph_, schedule);
    }
    return res;
}

} // namespace so::runtime
