/**
 * @file
 * JSON serialization of IterationResult.
 *
 * Lives in the runtime layer (rather than core/report_json) so the
 * SweepEngine and the bench harness can emit machine-readable records
 * without depending on the SuperOffload planner; core/report_json
 * delegates here for the shared iteration section.
 */
#ifndef SO_RUNTIME_RESULT_JSON_H
#define SO_RUNTIME_RESULT_JSON_H

#include <string>

#include "runtime/system.h"

namespace so {
class JsonWriter;
} // namespace so

namespace so::runtime {

/**
 * Emit @p result as one JSON object (feasibility, timing, memory,
 * utilizations, extras) into an in-progress document.
 */
void writeIterationJson(JsonWriter &json, const IterationResult &result);

/** Serialize one iteration evaluation as a standalone document. */
std::string toJson(const IterationResult &result);

} // namespace so::runtime

#endif // SO_RUNTIME_RESULT_JSON_H
