#include "runtime/zero_infinity.h"

#include <string>
#include <vector>

#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

double
ZeroInfinitySystem::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    // Weight-flow: only a ~2-layer working set of fp16 params plus the
    // live gradient layer and fixed staging buffers reside on the GPU.
    const double working = 3.0 * 2.0 * setup.model.paramsPerLayer();
    const double staging = 4.0e9;
    model::ActivationOptions act_opts;
    act_opts.checkpointing = checkpointing;
    const double act = model::activationBytes(setup.model, micro_batch,
                                              setup.seq, act_opts);
    return model::gpuResidentBytes(working + staging + act);
}

double
ZeroInfinitySystem::cpuBytes(const TrainSetup &setup, const SearchCandidate &) const
{
    const double n = setup.cluster.totalSuperchips();
    if (use_nvme_) {
        // Optimizer states live on NVMe; DRAM holds the fp16 copy,
        // the fp32 gradient buffer, and a streaming window byte/param.
        return (hw::kFp16BytesPerParam + hw::kFp32BytesPerParam + 1.0) *
               setup.model.params() / n;
    }
    // Full model states (16P) plus the fp16 parameter copy (2P) the
    // swap machinery maintains, partitioned across ranks.
    return (hw::kModelStateBytesPerParam + hw::kFp16BytesPerParam) *
           setup.model.params() / n;
}

double
ZeroInfinitySystem::nvmeBytes(const TrainSetup &setup, const SearchCandidate &) const
{
    if (!use_nvme_)
        return 0.0;
    // fp32 master params + momentum + variance.
    return hw::kOptimStateBytesPerParam * setup.model.params() /
           setup.cluster.totalSuperchips();
}

IterationResult
ZeroInfinitySystem::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double layers = cfg.layers;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();
    const double layer_params = params / layers;

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / layers;
    const double bwd_layer =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / layers;

    // Each rank fetches its 1/N shard and all-gathers across ranks;
    // the host transfer goes through the small staging granule, which
    // is the bandwidth-killing behaviour §5.2 calls out.
    const double shard_bytes = hw::kFp16BytesPerParam * layer_params / n;
    const double fetch_time = builder.chunkedTransferTime(
        shard_bytes, kStagingGranule, /*pinned=*/true, kPerChunkOverhead);
    const double gather_time =
        n > 1 ? builder.coll().allGather(hw::kFp16BytesPerParam *
                                         layer_params)
              : 0.0;

    // Per layer and pass: fetch (+ all-gather) + compute; the last pass
    // adds up to three offload tasks per layer; the epilogue adds the
    // norm plus up to four tasks per layer (NVMe r/w, adam, cast).
    const auto layer_count = static_cast<std::size_t>(cfg.layers);
    const std::size_t per_layer = n > 1 ? 3 : 2;
    builder.reserve(accum_steps * 2 * per_layer * layer_count +
                        (3 + 4) * layer_count + 1,
                    accum_steps * 6 * layer_count + 9 * layer_count + 1);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> grad_casts;
    grad_casts.reserve(layer_count);
    std::vector<sim::TaskId> per_layer_cast(cfg.layers, sim::kInvalidTask);

    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t l = 0; l < cfg.layers; ++l) {
            // Fetch this layer's params from host (prefetch: depends
            // only on link availability), then all-gather, then compute.
            const sim::TaskId fetch = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm, "h2d L" + std::to_string(l),
                fetch_time, shard_bytes, {});
            sim::TaskId ready = fetch;
            if (n > 1)
                ready = builder.onNic("ag", gather_time, {fetch});
            std::vector<sim::TaskId> deps{ready};
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 std::move(deps));
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t l = cfg.layers; l-- > 0;) {
            const sim::TaskId fetch = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm, "h2d' L" + std::to_string(l),
                fetch_time, shard_bytes, {});
            sim::TaskId ready = fetch;
            if (n > 1)
                ready = builder.onNic("ag'", gather_time, {fetch});
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 {prev, ready});
            if (!last)
                continue;
            sim::TaskId grads = prev;
            if (n > 1) {
                grads = builder.onNic(
                    "rs", builder.coll().reduceScatter(
                              hw::kFp16BytesPerParam * layer_params),
                    {grads});
            }
            const sim::TaskId out = builder.onTransfer(
                hw::kTierHbm, hw::kTierDdr,
                "d2h g L" + std::to_string(l),
                builder.chunkedTransferTime(shard_bytes, kStagingGranule,
                                            /*pinned=*/true,
                                            kPerChunkOverhead),
                shard_bytes, {grads});
            per_layer_cast[l] = builder.onCpu(
                "cast g", builder.cpuCastTime(layer_params / n), {out});
            grad_casts.push_back(per_layer_cast[l]);
        }
    }

    // STE synchronization: global norm over the fp32 shard, then the
    // CPU optimizer per layer. Updated params stay in host DRAM (the
    // next iteration's fetches pick them up), but the fp16 shadow copy
    // must be refreshed (a CPU cast per layer).
    const sim::TaskId norm = builder.onCpu(
        "grad-norm+check",
        setup.cluster.node.superchip.cpu.memTime(4.0 * params / n),
        grad_casts);
    sim::TaskId last_opt = norm;
    for (std::uint32_t l = 0; l < cfg.layers; ++l) {
        std::vector<sim::TaskId> opt_deps{norm, per_layer_cast[l]};
        const double opt_bytes =
            hw::kOptimStateBytesPerParam * layer_params / n;
        if (use_nvme_) {
            // Stream this layer's optimizer states in from NVMe
            // (prefetchable) and write them back after the update.
            opt_deps.push_back(builder.onTransfer(
                hw::kTierNvme, hw::kTierDdr,
                "nvme-r L" + std::to_string(l),
                builder.nvmeTime(opt_bytes), opt_bytes, {}));
        }
        const sim::TaskId opt = builder.onCpu(
            "adam L" + std::to_string(l),
            builder.cpuAdamTime(layer_params / n, hw::AdamImpl::CpuAdam),
            std::move(opt_deps));
        if (use_nvme_) {
            builder.onTransfer(hw::kTierDdr, hw::kTierNvme,
                               "nvme-w L" + std::to_string(l),
                               builder.nvmeTime(opt_bytes), opt_bytes,
                               {opt});
        }
        last_opt = builder.onCpu(
            "cast p", builder.cpuCastTime(layer_params / n), {opt});
    }
    (void)last_opt;

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    return builder.finish(total);
}

} // namespace so::runtime
