/**
 * @file
 * Model-scale search (paper Fig. 13): the largest model a system can
 * train on a given cluster.
 */
#ifndef SO_RUNTIME_SCALE_H
#define SO_RUNTIME_SCALE_H

#include "runtime/sweep.h"
#include "runtime/system.h"

namespace so::runtime {

/** Result of a largest-model search. */
struct ScaleResult
{
    /** Largest trainable parameter count (0 if nothing fits). */
    double max_params = 0.0;
    /** The configuration achieving it. */
    model::ModelConfig config;
    bool any_feasible = false;
};

/**
 * Find the largest trainable model for @p system on @p setup_template
 * (its model field is ignored). Searches the Appendix-A hidden sizes,
 * binary-searching the layer count for each, and keeps the largest
 * feasible parameter count — mirroring how the paper's Fig. 13 varies
 * depth/width to find the capacity limit.
 * @param max_layers upper bound of the per-hidden-size layer search.
 */
ScaleResult largestTrainableModel(const TrainingSystem &system,
                                  const TrainSetup &setup_template,
                                  std::uint32_t max_layers = 256);

/**
 * Engine-backed variant: probes go through @p engine, so repeated
 * probes hit its memoization cache and each probe's candidates are
 * simulated in parallel when the engine has jobs > 1. The search
 * itself stays sequential (each probe depends on the previous answer),
 * and results are identical to the serial overload.
 */
ScaleResult largestTrainableModel(SweepEngine &engine,
                                  const TrainingSystem &system,
                                  const TrainSetup &setup_template,
                                  std::uint32_t max_layers = 256);

/**
 * Largest feasible sequence length for @p system on @p setup_template
 * (its seq field is ignored), searched in multiples of @p granularity
 * tokens by exponential probing plus bisection — the quantity on the
 * x-axis of the paper's Fig. 12. Returns 0 when even @p granularity
 * does not fit.
 * @param max_seq upper bound of the search (default 4M tokens).
 */
std::uint32_t maxSequenceLength(const TrainingSystem &system,
                                const TrainSetup &setup_template,
                                std::uint32_t granularity = 32 * 1024,
                                std::uint32_t max_seq = 4u << 20);

/** Engine-backed variant; see largestTrainableModel(SweepEngine&). */
std::uint32_t maxSequenceLength(SweepEngine &engine,
                                const TrainingSystem &system,
                                const TrainSetup &setup_template,
                                std::uint32_t granularity = 32 * 1024,
                                std::uint32_t max_seq = 4u << 20);

} // namespace so::runtime

#endif // SO_RUNTIME_SCALE_H
