#include "runtime/ulysses.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

UlyssesSystem::UlyssesSystem(std::uint32_t zero_stage)
    : zero_stage_(zero_stage)
{
    SO_ASSERT(zero_stage == 2 || zero_stage == 3,
              "Ulysses supports ZeRO stage 2 or 3, got ", zero_stage);
}

double
UlyssesSystem::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const double n = setup.cluster.totalSuperchips();
    const double params = setup.model.params();
    // Stage 2: fp16 params + grads replicated, optimizer sharded.
    // Stage 3: everything sharded, plus a 2-layer gathered working set
    // and communication buffers.
    const double states =
        zero_stage_ == 3
            ? (hw::kModelStateBytesPerParam + hw::kFp16BytesPerParam) *
                      params / n +
                  2.0 * 2.0 * setup.model.paramsPerLayer()
            : 2.0 * hw::kFp16BytesPerParam * params +
                  hw::kOptimStateBytesPerParam * params / n;
    model::ActivationOptions act_opts;
    act_opts.checkpointing = checkpointing;
    act_opts.sequence_parallel = setup.cluster.totalSuperchips();
    const double act = model::activationBytes(setup.model, micro_batch,
                                              setup.seq, act_opts);
    return model::gpuResidentBytes(states + act);
}

double
UlyssesSystem::cpuBytes(const TrainSetup &, const SearchCandidate &) const
{
    return 0.0;
}

IterationResult
UlyssesSystem::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double layers = cfg.layers;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();

    // Per-rank FLOPs: the model processes micro_batch full sequences,
    // each rank handling 1/N of the work.
    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    // Effective tokens per GEMM call on one rank: s/N of each sequence.
    const double tokens = builder.microTokens(micro_batch) / n;
    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm / n, tokens) +
         builder.attnTime(micro_flops.fwd_attn / n)) / layers;
    const double bwd_layer =
        (builder.gemmTime(
             (micro_flops.bwd_gemm + micro_flops.recompute_gemm) / n,
             tokens) +
         builder.attnTime(
             (micro_flops.bwd_attn + micro_flops.recompute_attn) / n)) /
        layers;

    // All-to-all around attention: each rank exchanges its activation
    // shard (fp16), twice forward and twice backward per layer.
    const double a2a_bytes = 2.0 * static_cast<double>(micro_batch) *
                             setup.seq * cfg.hidden / n;
    const double a2a = n > 1 ? builder.coll().allToAll(a2a_bytes) : 0.0;

    // Stage-3 per-layer parameter all-gathers (prefetchable).
    const double gather_time =
        zero_stage_ == 3 && n > 1
            ? builder.coll().allGather(2.0 * params / layers)
            : 0.0;

    // Per layer and pass: compute, optional stage-3 gather, optional
    // all-to-all; last pass adds reduce-scatters; then optimizer and
    // the stage-2 refresh.
    const auto layer_count = static_cast<std::size_t>(cfg.layers);
    std::size_t per_layer = 1;
    if (gather_time > 0.0)
        ++per_layer;
    if (n > 1)
        ++per_layer;
    const std::size_t sync_count = n > 1 ? layer_count : 0;
    builder.reserve(accum_steps * 2 * per_layer * layer_count +
                        sync_count + 2,
                    accum_steps * 2 * (per_layer + 1) * layer_count +
                        2 * sync_count + 3);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> final_syncs;
    final_syncs.reserve(sync_count);
    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t l = 0; l < cfg.layers; ++l) {
            std::vector<sim::TaskId> deps;
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            if (gather_time > 0.0)
                deps.push_back(builder.onNic("ag", gather_time, {}));
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 std::move(deps));
            if (n > 1)
                prev = builder.onNic("a2a", 2.0 * a2a, {prev});
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t l = cfg.layers; l-- > 0;) {
            std::vector<sim::TaskId> deps{prev};
            if (gather_time > 0.0)
                deps.push_back(builder.onNic("ag'", gather_time, {}));
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 std::move(deps));
            if (n > 1)
                prev = builder.onNic("a2a'", 2.0 * a2a, {prev});
            if (last && n > 1) {
                // Gradients are identical-shape replicas under SP and
                // reduce across ranks like DP.
                const double grad_bytes = 2.0 * params / layers;
                final_syncs.push_back(builder.onNic(
                    "rs g", builder.coll().reduceScatter(grad_bytes),
                    {prev}));
            }
        }
    }

    std::vector<sim::TaskId> step_deps = final_syncs;
    step_deps.push_back(prev);
    const sim::TaskId opt = builder.onGpu(
        "adam (gpu, 1/N)", builder.gpuAdamTime(params / n),
        std::move(step_deps));
    if (n > 1 && zero_stage_ == 2) {
        // Stage 3 gathers lazily per layer; stage 2 must refresh the
        // full fp16 replica before the next forward.
        builder.onNic("allgather params",
                      builder.coll().allGather(2.0 * params), {opt});
    }

    // Report the per-rank share so TFLOPS/MFU are per GPU.
    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    total.fwd_gemm /= n;
    total.fwd_attn /= n;
    total.bwd_gemm /= n;
    total.bwd_attn /= n;
    total.recompute_gemm /= n;
    total.recompute_attn /= n;
    return builder.finish(total);
}

} // namespace so::runtime
