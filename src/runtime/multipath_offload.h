/**
 * @file
 * Multi-path SuperOffload variant (MLP-Offload-style).
 *
 * MLP-Offload's observation is that a third memory tier is only slow
 * when all its traffic funnels through one route: a superchip has
 * several concurrent paths out of NVMe — the classic staged route
 * through host DRAM, and a direct GDS-style DMA queue into HBM — and
 * striping the optimizer-state stream across both (while the C2C link
 * carries the gradient/parameter flow) hides most of the drive time.
 *
 * This system splits the optimizer states between DDR and NVMe by a
 * searched fraction. The NVMe-resident share is striped over the two
 * drive routes: one stripe stages through DRAM and is updated by the
 * CPU optimizer, the other DMAs straight to HBM (its own sim channel,
 * so it genuinely overlaps in the DES) and is updated by the GPU. On
 * chips without NVMe the search collapses to the DDR-only fraction and
 * the system degrades to a plain bucketed offload design.
 */
#ifndef SO_RUNTIME_MULTIPATH_OFFLOAD_H
#define SO_RUNTIME_MULTIPATH_OFFLOAD_H

#include "runtime/system.h"

namespace so::runtime {

/** Bucketed CPU offload with multi-path NVMe optimizer streaming. */
class MultiPathOffloadSystem : public TrainingSystem
{
  public:
    /**
     * @param enable_gds add the direct NVMe<->HBM path; disabling it
     * forces all NVMe traffic through the staged route (the single-path
     * baseline the bench compares against).
     * @param forced_fraction pin the NVMe fraction instead of searching
     * the grid (negative = search). Used by benches for a like-for-like
     * single-path vs multi-path comparison.
     */
    explicit MultiPathOffloadSystem(bool enable_gds = true,
                                    double forced_fraction = -1.0)
        : enable_gds_(enable_gds), forced_fraction_(forced_fraction)
    {
    }

    std::string
    name() const override
    {
        return enable_gds_ ? "SuperOffload-MultiPath"
                           : "SuperOffload-MultiPath(staged)";
    }

    /** Searched shares of optimizer states resident on NVMe. */
    static constexpr double kNvmeFractions[] = {0.0, 0.25, 0.5, 0.75,
                                                1.0};

    /** Share of optimizer states placed on NVMe for @p cand. */
    double nvmeFraction(const SearchCandidate &cand) const;

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double nvmeBytes(const TrainSetup &setup,
                     const SearchCandidate &cand) const override;
    IterationResult simulate(const TrainSetup &setup,
                             const SearchCandidate &cand) const override;
    std::vector<std::uint32_t>
    searchVariants(const TrainSetup &setup) const override;
    hw::HierarchyOptions hierarchyOptions() const override;

  private:
    const bool enable_gds_;
    const double forced_fraction_;
};

} // namespace so::runtime

#endif // SO_RUNTIME_MULTIPATH_OFFLOAD_H
