/**
 * @file
 * ZeRO-Offload baseline (Appendix B): ZeRO-2 plus CPU offloading of
 * gradients and optimizer states, scheduled with the classic
 * synchronize-then-execute (STE) pattern of the paper's Fig. 3 — the
 * CPU optimizer waits for the global gradient norm, and the next
 * forward waits for all updated fp16 parameters to return. This is the
 * system whose 40-50% GPU idle time motivates SuperOffload (Fig. 4).
 */
#ifndef SO_RUNTIME_ZERO_OFFLOAD_H
#define SO_RUNTIME_ZERO_OFFLOAD_H

#include "runtime/system.h"

namespace so::runtime {

/** ZeRO-Offload with the STE schedule. */
class ZeroOffloadSystem : public TrainingSystem
{
  public:
    std::string name() const override { return "ZeRO-Offload"; }

    /** Gradient/parameter transfer bucket size (DeepSpeed default-ish). */
    static constexpr double kOffloadBucketBytes = 256.0 * 1024.0 * 1024.0;

    /**
     * Host-side framework cost per bucket (Python-driven swap
     * bookkeeping, stream synchronization). Calibrated so the
     * ZeRO-Offload iteration reproduces the paper's Table-2 baseline
     * (~116 TFLOPS on the 5B model) and Fig. 4's 40-50% GPU idle time.
     */
    static constexpr double kBucketFrameworkOverhead = 10.0e-3;

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
};

} // namespace so::runtime

#endif // SO_RUNTIME_ZERO_OFFLOAD_H
