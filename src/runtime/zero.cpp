#include "runtime/zero.h"

#include <string>
#include <vector>

#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

namespace {

double
activations(const TrainSetup &setup, std::uint32_t micro_batch,
            bool checkpointing)
{
    model::ActivationOptions act_opts;
    act_opts.checkpointing = checkpointing;
    return model::activationBytes(setup.model, micro_batch, setup.seq,
                                  act_opts);
}

} // namespace

// ---------------------------------------------------------------- ZeRO-2

double
Zero2System::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const double n = setup.cluster.totalSuperchips();
    const double params = setup.model.params();
    // Full fp16 params + full fp16 grad buffer (reduced in place), plus
    // this rank's 12P/N optimizer shard.
    const double states = 2.0 * hw::kFp16BytesPerParam * params +
                          hw::kOptimStateBytesPerParam * params / n;
    return model::gpuResidentBytes(
        states + activations(setup, micro_batch, checkpointing));
}

double
Zero2System::cpuBytes(const TrainSetup &, const SearchCandidate &) const
{
    return 0.0;
}

IterationResult
Zero2System::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double layers = cfg.layers;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / layers;
    const double bwd_layer =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / layers;

    // accum_steps fwd+bwd passes per layer, last-pass reduce-scatters,
    // optimizer, optional all-gather.
    const auto layer_count = static_cast<std::size_t>(cfg.layers);
    const std::size_t sync_count = n > 1 ? layer_count : 0;
    builder.reserve(accum_steps * 2 * layer_count + sync_count + 2,
                    accum_steps * 2 * layer_count + 2 * sync_count + 3);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> final_syncs;
    final_syncs.reserve(sync_count);
    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t l = 0; l < cfg.layers; ++l) {
            std::vector<sim::TaskId> deps;
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 std::move(deps));
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t l = cfg.layers; l-- > 0;) {
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 {prev});
            if (last && n > 1) {
                // Bucketed reduce-scatter overlapped with backward.
                const double grad_bytes = 2.0 * params / layers;
                final_syncs.push_back(builder.onNic(
                    "reduce-scatter",
                    builder.coll().reduceScatter(grad_bytes), {prev}));
            }
        }
    }

    // Optimizer step on this rank's P/N shard, then all-gather the
    // updated fp16 parameters (exposed: the next forward needs them).
    std::vector<sim::TaskId> step_deps = final_syncs;
    step_deps.push_back(prev);
    const sim::TaskId opt = builder.onGpu(
        "adam (gpu, 1/N)", builder.gpuAdamTime(params / n),
        std::move(step_deps));
    if (n > 1) {
        builder.onNic("allgather params",
                      builder.coll().allGather(2.0 * params), {opt});
    }

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    return builder.finish(total);
}

// ---------------------------------------------------------------- ZeRO-3

double
Zero3System::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const double n = setup.cluster.totalSuperchips();
    const double params = setup.model.params();
    // Fully sharded 16P/N, plus all-gather/reduce-scatter communication
    // buffers (~2P/N), plus the gathered working set of ~2 layers of
    // fp16 parameters kept live by prefetching.
    const double working =
        2.0 * 2.0 * setup.model.paramsPerLayer();
    return model::gpuResidentBytes(
        (hw::kModelStateBytesPerParam + hw::kFp16BytesPerParam) * params /
            n +
        working + activations(setup, micro_batch, checkpointing));
}

double
Zero3System::cpuBytes(const TrainSetup &, const SearchCandidate &) const
{
    return 0.0;
}

IterationResult
Zero3System::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double layers = cfg.layers;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / layers;
    const double bwd_layer =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / layers;

    const double layer_param_bytes = 2.0 * params / layers;
    const double gather_time =
        n > 1 ? builder.coll().allGather(layer_param_bytes) : 0.0;

    // Per layer and pass: an optional all-gather plus the compute task,
    // last-pass reduce-scatters, and the optimizer; fwd tasks carry up
    // to two deps each.
    const auto layer_count = static_cast<std::size_t>(cfg.layers);
    const std::size_t per_pass = n > 1 ? 2 * layer_count : layer_count;
    const std::size_t sync_count = n > 1 ? layer_count : 0;
    builder.reserve(accum_steps * 2 * per_pass + sync_count + 1,
                    accum_steps * 4 * layer_count + 2 * sync_count + 1);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> final_syncs;
    final_syncs.reserve(sync_count);
    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t l = 0; l < cfg.layers; ++l) {
            // Parameter all-gather can prefetch ahead of compute (it
            // depends only on earlier NIC traffic, not on this layer's
            // compute), so it overlaps when the NIC keeps up.
            sim::TaskId gathered = sim::kInvalidTask;
            if (n > 1) {
                gathered = builder.onNic("ag L" + std::to_string(l),
                                         gather_time, {});
            }
            std::vector<sim::TaskId> deps;
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            if (gathered != sim::kInvalidTask)
                deps.push_back(gathered);
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 std::move(deps));
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t l = cfg.layers; l-- > 0;) {
            sim::TaskId gathered = sim::kInvalidTask;
            if (n > 1) {
                gathered = builder.onNic("ag' L" + std::to_string(l),
                                         gather_time, {});
            }
            std::vector<sim::TaskId> deps{prev};
            if (gathered != sim::kInvalidTask)
                deps.push_back(gathered);
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 std::move(deps));
            if (last && n > 1) {
                const double grad_bytes = 2.0 * params / layers;
                final_syncs.push_back(builder.onNic(
                    "reduce-scatter",
                    builder.coll().reduceScatter(grad_bytes), {prev}));
            }
        }
    }

    // Optimizer on the local shard; no parameter all-gather afterwards
    // (ZeRO-3 gathers lazily at next use, which the next iteration's
    // per-layer gathers already model).
    std::vector<sim::TaskId> step_deps = final_syncs;
    step_deps.push_back(prev);
    builder.onGpu("adam (gpu, 1/N)", builder.gpuAdamTime(params / n),
                  std::move(step_deps));

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    return builder.finish(total);
}

} // namespace so::runtime
