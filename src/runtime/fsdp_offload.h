/**
 * @file
 * FSDP-CPU-Offload baseline (Appendix B): PyTorch FSDP with model
 * states offloaded to CPU. The schedule is largely synchronous —
 * parameters are copied in before each layer without prefetch and
 * gradients copied out after — and the optimizer is PyTorch's native
 * (unfused, multi-pass) CPU Adam, which §5.2 identifies as the
 * bottleneck capping FSDP-Offload below 15 TFLOPS.
 */
#ifndef SO_RUNTIME_FSDP_OFFLOAD_H
#define SO_RUNTIME_FSDP_OFFLOAD_H

#include "runtime/system.h"

namespace so::runtime {

/** PyTorch FSDP with CPU offloading. */
class FsdpOffloadSystem : public TrainingSystem
{
  public:
    std::string name() const override { return "FSDP-Offload"; }

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
};

} // namespace so::runtime

#endif // SO_RUNTIME_FSDP_OFFLOAD_H
