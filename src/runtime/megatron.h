/**
 * @file
 * Megatron-LM baseline (Appendix B): tensor (model) parallelism, with
 * data parallelism layered on the remaining ranks. Per §5.2, the MP
 * degree is chosen by searching the candidates for the best feasible
 * throughput.
 */
#ifndef SO_RUNTIME_MEGATRON_H
#define SO_RUNTIME_MEGATRON_H

#include "runtime/system.h"

namespace so::runtime {

/** Megatron tensor parallelism (+ DP across remaining ranks). */
class MegatronSystem : public TrainingSystem
{
  public:
    /** @param mp fixed model-parallel degree, or 0 to auto-search. */
    explicit MegatronSystem(std::uint32_t mp = 0) : mp_(mp) {}

    std::string name() const override { return "Megatron"; }

    IterationResult run(const TrainSetup &setup) const override;

    /** MP degree chosen by the last run() (0 = none yet). */
    std::uint32_t modelParallelDegree() const { return chosen_mp_; }

  protected:
    double gpuBytes(const TrainSetup &setup, std::uint32_t micro_batch,
                    bool checkpointing) const override;
    double cpuBytes(const TrainSetup &setup) const override;
    IterationResult simulate(const TrainSetup &setup,
                             std::uint32_t micro_batch, bool checkpointing,
                             std::uint32_t accum_steps) const override;

  private:
    /** Fraction of activations that stay replicated under MP. */
    static double activationShare(std::uint32_t mp);

    /** Effective degree used by the protected hooks (never 0). */
    std::uint32_t effectiveMp() const
    {
        return chosen_mp_ == 0 ? 1 : chosen_mp_;
    }

    const std::uint32_t mp_;
    /** Degree the protected hooks evaluate; set by run(). */
    mutable std::uint32_t chosen_mp_ = 0;
};

} // namespace so::runtime

#endif // SO_RUNTIME_MEGATRON_H
