/**
 * @file
 * Megatron-LM baseline (Appendix B): tensor (model) parallelism, with
 * data parallelism layered on the remaining ranks. Per §5.2, the MP
 * degree is chosen by searching the candidates for the best feasible
 * throughput; the degree is the candidate's variant index, so every
 * (degree, micro-batch) simulation is an independent, thread-safe
 * evaluation. The chosen degree is reported as the "mp" extra.
 */
#ifndef SO_RUNTIME_MEGATRON_H
#define SO_RUNTIME_MEGATRON_H

#include <algorithm>

#include "runtime/system.h"

namespace so::runtime {

/** Megatron tensor parallelism (+ DP across remaining ranks). */
class MegatronSystem : public TrainingSystem
{
  public:
    /** @param mp fixed model-parallel degree, or 0 to auto-search. */
    explicit MegatronSystem(std::uint32_t mp = 0) : mp_(mp) {}

    std::string name() const override { return "Megatron"; }

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup,
                    const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                             const SearchCandidate &cand) const override;

    /** Candidate MP degrees: the fixed one, or powers of two up to 8. */
    std::vector<std::uint32_t>
    searchVariants(const TrainSetup &setup) const override;

    /**
     * Report an all-infeasible search at the largest degree (the most
     * memory-friendly one).
     */
    std::uint32_t fallbackVariant(const TrainSetup &setup) const override;

  private:
    /** Fraction of activations that stay replicated under MP. */
    static double activationShare(std::uint32_t mp);

    /** The candidate's MP degree (variants are always >= 1). */
    static std::uint32_t degreeOf(const SearchCandidate &cand)
    {
        return std::max<std::uint32_t>(1, cand.variant);
    }

    const std::uint32_t mp_;
};

} // namespace so::runtime

#endif // SO_RUNTIME_MEGATRON_H
