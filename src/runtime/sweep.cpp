#include "runtime/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/json.h"
#include "common/schema.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "hw/memory.h"
#include "runtime/result_json.h"

namespace so::runtime {

namespace {

// Fingerprint building blocks. Doubles are serialized as hexfloats so
// the key captures the exact bit pattern (two setups differing in the
// last ulp are different cells).

void
appendNum(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a;", v);
    out += buf;
}

void
appendNum(std::string &out, std::uint32_t v)
{
    out += std::to_string(v);
    out += ';';
}

void
appendStr(std::string &out, const std::string &s)
{
    out += s;
    out += ';';
}

void
appendLink(std::string &out, const hw::Link &link)
{
    appendStr(out, link.name());
    for (const auto &point : link.curve().points()) {
        appendNum(out, point.bytes);
        appendNum(out, point.bw);
    }
    out += '|';
    appendNum(out, link.latency());
}

void
appendHierarchy(std::string &out, const hw::NodeSpec &node)
{
    // The derived memory hierarchy is part of the cell identity: a
    // change to the tier/path model (new tiers, different channels,
    // usable fractions) must invalidate stored sweep results even when
    // the raw chip fields happen to agree.
    const hw::MemoryHierarchy hier =
        hw::memoryHierarchy(node, hw::NumaBinding::Colocated);
    for (const hw::MemoryTier &tier : hier.tiers()) {
        appendStr(out, tier.name);
        appendNum(out, static_cast<std::uint32_t>(tier.kind));
        appendNum(out, tier.capacity_bytes);
        appendNum(out, tier.bandwidth);
        appendNum(out, tier.latency);
        appendNum(out, tier.usable_fraction);
    }
    for (const hw::MemoryPath &path : hier.paths()) {
        appendStr(out, path.name);
        appendStr(out, path.channel);
        appendLink(out, path.link);
    }
}

void
appendCluster(std::string &out, const hw::ClusterSpec &cluster)
{
    const hw::NodeSpec &node = cluster.node;
    const hw::SuperchipSpec &chip = node.superchip;
    appendStr(out, chip.name);
    appendStr(out, chip.gpu.name);
    appendNum(out, chip.gpu.peak_flops);
    appendNum(out, chip.gpu.achievable_frac);
    appendNum(out, chip.gpu.attn_achievable_frac);
    appendNum(out, chip.gpu.mem_bytes);
    appendNum(out, chip.gpu.mem_bw);
    appendStr(out, chip.cpu.name);
    appendNum(out, chip.cpu.cores);
    appendNum(out, chip.cpu.peak_flops);
    appendNum(out, chip.cpu.mem_bytes);
    appendNum(out, chip.cpu.mem_bw);
    appendLink(out, chip.c2c);
    appendNum(out, chip.nvme_bytes);
    appendLink(out, chip.nvme);
    appendStr(out, node.name);
    appendNum(out, node.superchips_per_node);
    appendLink(out, node.intra_node);
    appendLink(out, node.inter_node);
    appendNum(out, cluster.node_count);
    appendHierarchy(out, node);
}

void
appendModel(std::string &out, const model::ModelConfig &model)
{
    appendStr(out, model.name);
    appendNum(out, model.layers);
    appendNum(out, model.hidden);
    appendNum(out, model.heads);
    appendNum(out, model.vocab);
}

} // namespace

SweepEngine::SweepEngine(SweepOptions options)
    : options_(std::move(options))
{
    jobs_ = options_.jobs != 0
                ? options_.jobs
                : std::max<std::size_t>(
                      1, std::thread::hardware_concurrency());
}

SweepEngine::~SweepEngine() = default;

ThreadPool &
SweepEngine::pool()
{
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobs_);
    return *pool_;
}

std::string
SweepEngine::fingerprint(const TrainingSystem &system,
                         const TrainSetup &setup)
{
    std::string key;
    key.reserve(512);
    // System identity: the engine requires systems to outlive it, so
    // name + object address distinguishes differently configured
    // instances of the same class (e.g. Megatron at fixed MP degrees).
    appendStr(key, system.name());
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%p;",
                  static_cast<const void *>(&system));
    key += buf;
    appendCluster(key, setup.cluster);
    appendModel(key, setup.model);
    appendNum(key, setup.global_batch);
    appendNum(key, setup.seq);
    appendNum(key, static_cast<std::uint32_t>(setup.binding));
    appendNum(key, static_cast<std::uint32_t>(setup.capture_trace));
    appendNum(key, static_cast<std::uint32_t>(setup.capture_profile));
    // Level-of-detail shapes the captured artifacts (which arrays a
    // cached profile retains), so it is part of the cell's identity.
    appendNum(key,
              static_cast<std::uint32_t>(setup.profile_options.detail));
    appendNum(key, static_cast<std::uint32_t>(
                       setup.profile_options.bins));
    appendNum(key, static_cast<std::uint32_t>(
                       setup.profile_options.top_k));
    // Power overrides change the energy numbers cached inside the
    // result, so they are part of the cell's identity (a presence bit
    // per field keeps an explicit override distinct from the preset
    // value it happens to equal).
    const hw::PowerOverrides &pw = setup.power;
    const std::optional<double> *fields[] = {
        &pw.gpu_busy_w,  &pw.gpu_idle_w,      &pw.cpu_busy_w,
        &pw.cpu_idle_w,  &pw.link_busy_w,     &pw.link_idle_w,
        &pw.nic_busy_w,  &pw.nic_idle_w,      &pw.nvme_busy_w,
        &pw.nvme_idle_w, &pw.c2c_pj_per_byte, &pw.nvme_pj_per_byte,
        &pw.ddr_w_per_gib};
    for (const std::optional<double> *field : fields) {
        appendNum(key, static_cast<std::uint32_t>(field->has_value()));
        if (field->has_value())
            appendNum(key, field->value());
    }
    return key;
}

std::size_t
SweepEngine::add(const TrainingSystem &system, TrainSetup setup,
                 std::string tag)
{
    SweepCell cell;
    cell.system = &system;
    cell.setup = std::move(setup);
    cell.tag = std::move(tag);
    cells_.push_back(std::move(cell));
    return cells_.size() - 1;
}

void
SweepEngine::run()
{
    if (next_unrun_ == cells_.size())
        return;
    const auto wall_start = std::chrono::steady_clock::now();
    const std::size_t batch_hits_before = hits_;
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.add("sweep.cells",
                static_cast<std::int64_t>(cells_.size() - next_unrun_));

    // One pending evaluation shared by every batch cell with the same
    // fingerprint. first_cell supplies the (system, setup) to evaluate.
    struct Pending
    {
        std::size_t first_cell = 0;
        std::string key;
        std::vector<SearchCandidate> cands;
        std::vector<IterationResult> results;
        IterationResult best;
    };

    std::vector<Pending> pending;
    std::unordered_map<std::string, std::size_t> batch_index;
    // For each batch cell, the pending entry it maps to (or npos when
    // served from the cache).
    constexpr std::size_t kCached = static_cast<std::size_t>(-1);
    std::vector<std::size_t> cell_pending(cells_.size() - next_unrun_,
                                          kCached);

    for (std::size_t i = next_unrun_; i < cells_.size(); ++i) {
        SweepCell &cell = cells_[i];
        if (cell.evaluated)
            continue; // Cache hit from an earlier, aborted run().
        std::string key;
        {
            trace::Span span(trace::Category::Sweep, "fingerprint");
            key = fingerprint(*cell.system, cell.setup);
        }
        if (options_.cache) {
            trace::Span probe(trace::Category::Sweep, "cache-probe");
            const auto hit = cache_.find(key);
            probe.arg("hit", hit != cache_.end() ? 1.0 : 0.0);
            if (hit != cache_.end()) {
                cell.result = hit->second;
                cell.evaluated = true;
                cell.from_cache = true;
                ++hits_;
                metrics.add("sweep.cache_hits");
                continue;
            }
        }
        const auto [it, fresh] =
            batch_index.try_emplace(std::move(key), pending.size());
        if (fresh) {
            Pending p;
            p.first_cell = i;
            p.key = it->first;
            pending.push_back(std::move(p));
        } else if (options_.cache) {
            ++hits_; // Duplicate within this batch: evaluated once.
            metrics.add("sweep.cache_hits");
        }
        cell_pending[i - next_unrun_] = it->second;
    }

    // Enumerate serially: the screen is cheap, and enumeration order is
    // what makes the parallel reduction bit-identical to a serial run.
    struct Unit
    {
        std::size_t pending;
        std::size_t cand;
    };
    std::vector<Unit> units;
    {
        trace::Span span(trace::Category::Sweep, "enumerate");
        for (std::size_t p = 0; p < pending.size(); ++p) {
            const SweepCell &cell = cells_[pending[p].first_cell];
            pending[p].cands =
                cell.system->enumerateCandidates(cell.setup);
            pending[p].results.resize(pending[p].cands.size());
            for (std::size_t c = 0; c < pending[p].cands.size(); ++c)
                units.push_back(Unit{p, c});
        }
        span.arg("units", static_cast<double>(units.size()));
    }
    metrics.add("sweep.candidates",
                static_cast<std::int64_t>(units.size()));

    if (options_.progress) {
        inform("sweep", options_.name.empty() ? "" : " ",
               options_.name, ": ", cells_.size() - next_unrun_,
               " cell(s) -> ", pending.size(), " to evaluate (",
               units.size(), " simulation(s)), jobs=", jobs_);
    }

    // Simulate. Every unit writes its own preallocated slot, so the
    // stored results are independent of thread scheduling.
    trace::progressBegin(units.size(), hits_ - batch_hits_before);
    // Progress lines are throttled through one atomic deadline; any
    // worker past it prints (output order is cosmetic, results are not).
    std::atomic<std::int64_t> next_progress_ms{2000};
    auto simulate_unit = [&](const Unit &unit) {
        ScopedTimer timer(MetricsRegistry::global(), "sweep.sim_s");
        trace::Span span(trace::Category::Sweep, "evaluate");
        Pending &p = pending[unit.pending];
        const SweepCell &cell = cells_[p.first_cell];
        p.results[unit.cand] =
            cell.system->evaluateCandidate(cell.setup,
                                           p.cands[unit.cand]);
        span.end();
        trace::progressTick();
        if (!options_.progress)
            return;
        const trace::ProgressSnapshot prog = trace::progressSnapshot();
        const auto elapsed_ms =
            static_cast<std::int64_t>(prog.elapsed_s * 1e3);
        std::int64_t deadline =
            next_progress_ms.load(std::memory_order_relaxed);
        if (elapsed_ms < deadline ||
            prog.done_units >= prog.total_units ||
            !next_progress_ms.compare_exchange_strong(
                deadline, elapsed_ms + 2000, std::memory_order_relaxed))
            return;
        // ETA from the completed-unit rate; omitted until estimable
        // (too few completions extrapolate garbage).
        char eta[48];
        if (prog.eta_s >= 0.0)
            std::snprintf(eta, sizeof(eta), ", eta %.1f s", prog.eta_s);
        else
            eta[0] = '\0';
        inform("sweep", options_.name.empty() ? "" : " ",
               options_.name, ": ", prog.done_units, "/",
               prog.total_units, " simulation(s) (",
               prog.cached_cells, " cached)", eta);
    };
    if (jobs_ <= 1 || units.size() <= 1) {
        for (const Unit &unit : units)
            simulate_unit(unit);
    } else {
        ThreadPool &workers = pool();
        for (const Unit &unit : units)
            workers.submit([&simulate_unit, unit] {
                simulate_unit(unit);
            });
        workers.wait(); // Rethrows the first worker exception.
    }
    trace::progressEnd();

    // Reduce per cell in enumeration order (deterministic argmax).
    {
        trace::Span span(trace::Category::Sweep, "select");
        for (Pending &p : pending) {
            const SweepCell &cell = cells_[p.first_cell];
            p.best = cell.system->selectBest(cell.setup, p.cands,
                                             std::move(p.results));
            if (options_.cache)
                cache_.emplace(p.key, p.best);
            ++misses_;
            metrics.add("sweep.cache_misses");
        }
    }

    for (std::size_t i = next_unrun_; i < cells_.size(); ++i) {
        SweepCell &cell = cells_[i];
        if (cell.evaluated)
            continue;
        cell.result = pending[cell_pending[i - next_unrun_]].best;
        cell.evaluated = true;
    }
    next_unrun_ = cells_.size();

    // Energy gauges (docs/ENERGY.md): engine-lifetime aggregates over
    // every evaluated feasible cell, recomputed serially in cell order
    // so the snapshot is independent of worker scheduling.
    double sweep_iter_j = 0.0;
    double watt_sum = 0.0;
    std::int64_t metered = 0;
    for (const SweepCell &cell : cells_) {
        if (!cell.evaluated || !cell.result.feasible ||
            !cell.result.energy.valid)
            continue;
        sweep_iter_j += cell.result.energy.iter_j;
        watt_sum += cell.result.energy.avg_w;
        ++metered;
    }
    if (metered > 0) {
        metrics.set("sweep.energy_iter_j", sweep_iter_j);
        metrics.set("sweep.energy_avg_w",
                    watt_sum / static_cast<double>(metered));
    }

    if (options_.progress) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - wall_start);
        // Lifetime hit-rate and mean simulation time come from the
        // metrics registry so the line reflects every engine in the
        // process, not just this batch.
        const MetricsSnapshot snap = metrics.snapshot();
        const std::int64_t reg_hits = snap.counter("sweep.cache_hits");
        const std::int64_t reg_misses =
            snap.counter("sweep.cache_misses");
        const std::int64_t lookups = reg_hits + reg_misses;
        const HistogramValue *sim = snap.histogram("sweep.sim_s");
        char stats[96];
        std::snprintf(stats, sizeof(stats),
                      "hit-rate %.1f%%, mean sim %.3f ms",
                      lookups > 0 ? 100.0 * static_cast<double>(reg_hits) /
                                        static_cast<double>(lookups)
                                  : 0.0,
                      sim ? sim->mean() * 1e3 : 0.0);
        inform("sweep", options_.name.empty() ? "" : " ",
               options_.name, ": done in ", elapsed.count(), " ms (",
               hits_ - batch_hits_before, " cached; ", stats, ")");
    }
}

IterationResult
SweepEngine::evaluateCell(const TrainingSystem &system,
                          const TrainSetup &setup)
{
    const std::vector<SearchCandidate> cands =
        system.enumerateCandidates(setup);
    std::vector<IterationResult> results(cands.size());
    auto simulate_one = [&system, &setup, &cands, &results](std::size_t c) {
        ScopedTimer timer(MetricsRegistry::global(), "sweep.sim_s");
        results[c] = system.evaluateCandidate(setup, cands[c]);
    };
    if (jobs_ <= 1 || cands.size() <= 1) {
        for (std::size_t c = 0; c < cands.size(); ++c)
            simulate_one(c);
    } else {
        ThreadPool &workers = pool();
        for (std::size_t c = 0; c < cands.size(); ++c)
            workers.submit([&simulate_one, c] { simulate_one(c); });
        workers.wait();
    }
    return system.selectBest(setup, cands, std::move(results));
}

IterationResult
SweepEngine::evaluate(const TrainingSystem &system,
                      const TrainSetup &setup)
{
    if (!options_.cache) {
        ++misses_;
        MetricsRegistry::global().add("sweep.cache_misses");
        return evaluateCell(system, setup);
    }
    std::string key = fingerprint(system, setup);
    const auto hit = cache_.find(key);
    if (hit != cache_.end()) {
        ++hits_;
        MetricsRegistry::global().add("sweep.cache_hits");
        return hit->second;
    }
    IterationResult res = evaluateCell(system, setup);
    ++misses_;
    MetricsRegistry::global().add("sweep.cache_misses");
    cache_.emplace(std::move(key), res);
    return res;
}

const IterationResult &
SweepEngine::result(std::size_t index) const
{
    SO_ASSERT(index < cells_.size(), "sweep cell ", index,
              " out of range");
    SO_ASSERT(cells_[index].evaluated, "sweep cell ", index,
              " has not been run yet");
    return cells_[index].result;
}

void
SweepEngine::writeCells(JsonWriter &json) const
{
    json.beginArray();
    for (const SweepCell &cell : cells_) {
        json.beginObject();
        if (!cell.tag.empty())
            json.field("tag", cell.tag);
        json.field("system", cell.system->name());
        json.key("setup").beginObject();
        json.field("model", cell.setup.model.name);
        json.field("layers", cell.setup.model.layers);
        json.field("hidden", cell.setup.model.hidden);
        json.field("params", cell.setup.model.params());
        json.field("superchips", cell.setup.cluster.totalSuperchips());
        json.field("global_batch", cell.setup.global_batch);
        json.field("seq", cell.setup.seq);
        json.field("binding",
                   cell.setup.binding == hw::NumaBinding::Colocated
                       ? "colocated"
                       : "remote");
        json.endObject();
        if (cell.evaluated) {
            json.field("from_cache", cell.from_cache);
            json.key("result");
            writeIterationJson(json, cell.result);
        }
        json.endObject();
    }
    json.endArray();
}

std::string
SweepEngine::json() const
{
    trace::Span span(trace::Category::Serialize, "sweep-json");
    JsonWriter json;
    json.beginObject();
    json.field("schema_version", kSchemaVersion);
    json.field("sweep", options_.name);
    json.field("jobs", static_cast<std::uint64_t>(jobs_));
    json.field("cache_hits", static_cast<std::uint64_t>(hits_));
    json.field("cache_misses", static_cast<std::uint64_t>(misses_));
    json.key("cells");
    writeCells(json);
    json.endObject();
    return json.str();
}

void
SweepEngine::writeJson(const std::string &path) const
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        SO_FATAL("cannot open ", path, " for writing");
    const std::string doc = json();
    std::fwrite(doc.data(), 1, doc.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
}

} // namespace so::runtime
