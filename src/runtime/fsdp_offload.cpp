#include "runtime/fsdp_offload.h"

#include <string>
#include <vector>

#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

double
FsdpOffloadSystem::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    // Working set of the currently-gathered layer (plus one in flight).
    const double working = 2.0 * 2.0 * setup.model.paramsPerLayer();
    model::ActivationOptions act_opts;
    act_opts.checkpointing = checkpointing;
    const double act = model::activationBytes(setup.model, micro_batch,
                                              setup.seq, act_opts);
    return model::gpuResidentBytes(working + act);
}

double
FsdpOffloadSystem::cpuBytes(const TrainSetup &setup, const SearchCandidate &) const
{
    const double n = setup.cluster.totalSuperchips();
    // fp32 params + optimizer + fp32 grads, sharded.
    return hw::kModelStateBytesPerParam * setup.model.params() / n;
}

IterationResult
FsdpOffloadSystem::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double layers = cfg.layers;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();
    const double layer_params = params / layers;

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_layer =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / layers;
    const double bwd_layer =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / layers;

    // FSDP CPU offload copies each shard in synchronously before the
    // layer runs: the H2D depends on the *previous GPU task*, so it
    // never overlaps compute (no prefetch), and the copies go through
    // pageable host memory (no pinned staging pool).
    const double shard_bytes = hw::kFp16BytesPerParam * layer_params / n;
    const double fetch_time =
        builder.h2dTime(shard_bytes, /*pinned=*/false);
    const double gather_time =
        n > 1 ? builder.coll().allGather(2.0 * layer_params) : 0.0;

    // Per layer and pass: fetch (+ gather) + compute; last pass adds up
    // to two offload tasks per layer; epilogue adds norm + optimizer.
    const auto layer_count = static_cast<std::size_t>(cfg.layers);
    const std::size_t per_layer = n > 1 ? 3 : 2;
    builder.reserve(accum_steps * 2 * per_layer * layer_count +
                        2 * layer_count + 2,
                    accum_steps * 2 * per_layer * layer_count +
                        3 * layer_count + 2);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> grad_arrivals(cfg.layers, sim::kInvalidTask);

    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t l = 0; l < cfg.layers; ++l) {
            std::vector<sim::TaskId> fetch_deps;
            if (prev != sim::kInvalidTask)
                fetch_deps.push_back(prev);
            sim::TaskId ready = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm, "h2d L" + std::to_string(l),
                fetch_time, shard_bytes, std::move(fetch_deps));
            if (n > 1)
                ready = builder.onNic("ag", gather_time, {ready});
            prev = builder.onGpu("fwd L" + std::to_string(l), fwd_layer,
                                 {ready});
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t l = cfg.layers; l-- > 0;) {
            sim::TaskId ready = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm, "h2d' L" + std::to_string(l),
                fetch_time, shard_bytes, {prev});
            if (n > 1)
                ready = builder.onNic("ag'", gather_time, {ready});
            prev = builder.onGpu("bwd L" + std::to_string(l), bwd_layer,
                                 {ready});
            if (!last)
                continue;
            sim::TaskId grads = prev;
            if (n > 1) {
                grads = builder.onNic(
                    "rs", builder.coll().reduceScatter(2.0 * layer_params),
                    {grads});
            }
            grad_arrivals[l] = builder.onTransfer(
                hw::kTierHbm, hw::kTierDdr, "d2h g L" + std::to_string(l),
                builder.d2hTime(shard_bytes, /*pinned=*/false),
                shard_bytes, {grads});
        }
    }

    // Global norm, then PyTorch's unfused CPU Adam over the shard —
    // serialized, exposed, and slow (AdamImpl::Naive).
    std::vector<sim::TaskId> all_grads;
    all_grads.reserve(grad_arrivals.size());
    for (sim::TaskId id : grad_arrivals)
        all_grads.push_back(id);
    const sim::TaskId norm = builder.onCpu(
        "grad-norm+check",
        setup.cluster.node.superchip.cpu.memTime(4.0 * params / n),
        all_grads);
    builder.onCpu(
        "adam (torch.optim, per-tensor loop)",
        builder.cpuAdamTime(params / n, hw::AdamImpl::PyTorchLoop),
        {norm});

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    return builder.finish(total);
}

} // namespace so::runtime
