/**
 * @file
 * Parallel, cached sweep evaluation over (system, setup) grids.
 *
 * Every figure and table in the paper's §5 is a grid: a set of training
 * systems crossed with a set of setups (model sizes, sequence lengths,
 * Superchip counts). The SweepEngine evaluates such a grid once,
 * fanning the independent candidate simulations out over a thread pool
 * while keeping the output bit-for-bit identical to a serial run:
 *
 *   - candidate enumeration is serial (it is a cheap memory screen and
 *     its order defines the reduction order),
 *   - each (cell, candidate) simulation writes one preallocated slot,
 *     so thread scheduling cannot reorder anything observable,
 *   - the per-cell reduction is TrainingSystem::selectBest, a
 *     first-wins argmax in enumeration order.
 *
 * Repeated cells — benches often evaluate the same baseline at the same
 * point for several figures, and scale searches probe the same setups
 * while bisecting — are memoized by a value fingerprint of the setup,
 * so each distinct simulation runs once per engine.
 */
#ifndef SO_RUNTIME_SWEEP_H
#define SO_RUNTIME_SWEEP_H

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/system.h"

namespace so {
class JsonWriter;
class ThreadPool;
} // namespace so

namespace so::runtime {

/** Configuration of one SweepEngine. */
struct SweepOptions
{
    /** Worker threads for simulations; 0 = hardware concurrency. */
    std::size_t jobs = 1;
    /** Memoize evaluated cells by setup fingerprint. */
    bool cache = true;
    /** Log one line per run() batch (cells, simulations, timing). */
    bool progress = false;
    /** Sweep name used in progress lines and the JSON document. */
    std::string name;
};

/** One grid point: a system evaluated on a setup. */
struct SweepCell
{
    const TrainingSystem *system = nullptr;
    TrainSetup setup;
    /** Caller-chosen label carried into the JSON record. */
    std::string tag;
    /** Filled by run(). */
    IterationResult result;
    bool evaluated = false;
    /** True when the result came from the memoization cache. */
    bool from_cache = false;
};

/**
 * Declares a grid of cells, evaluates them (in parallel when jobs > 1),
 * and exports the records as JSON.
 *
 * Systems are referenced, not copied: every system passed to add() or
 * evaluate() must outlive the engine (the cache keys include the system
 * object's identity). Determinism guarantee: for a fixed sequence of
 * add()/run()/evaluate() calls, every result is bit-identical
 * regardless of the jobs count.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});
    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /** Declare one cell; returns its index. Evaluation is deferred. */
    std::size_t add(const TrainingSystem &system, TrainSetup setup,
                    std::string tag = "");

    /** Evaluate all cells added since the last run(). */
    void run();

    /** All declared cells, in add() order. */
    const std::vector<SweepCell> &cells() const { return cells_; }

    /** Result of cell @p index; the cell must have been run. */
    const IterationResult &result(std::size_t index) const;

    /**
     * Evaluate one setup immediately (memoized, and parallel across the
     * setup's candidates when jobs > 1). This is the entry point for
     * sequential searches — scale bisection probes — that need each
     * answer before choosing the next setup.
     */
    IterationResult evaluate(const TrainingSystem &system,
                             const TrainSetup &setup);

    /** Resolved worker count (options.jobs, or hardware concurrency). */
    std::size_t jobs() const { return jobs_; }

    std::size_t cacheHits() const { return hits_; }
    std::size_t cacheMisses() const { return misses_; }
    const SweepOptions &options() const { return options_; }

    /**
     * The sweep as one JSON document:
     * {sweep, jobs, cache_hits, cache_misses, cells:[{tag, system,
     * setup, result}]}.
     */
    std::string json() const;

    /** Write json() to @p path. @fatal when the file cannot be opened. */
    void writeJson(const std::string &path) const;

    /**
     * Emit the cells as one JSON array value into an in-progress
     * document (for harnesses embedding the sweep in a larger doc).
     */
    void writeCells(JsonWriter &json) const;

  private:
    /** Enumerate/simulate/select one cell, using the pool when enabled. */
    IterationResult evaluateCell(const TrainingSystem &system,
                                 const TrainSetup &setup);

    /** Value fingerprint of (system identity, every setup field). */
    static std::string fingerprint(const TrainingSystem &system,
                                   const TrainSetup &setup);

    ThreadPool &pool();

    SweepOptions options_;
    std::size_t jobs_ = 1;
    std::vector<SweepCell> cells_;
    /** First cell index not yet evaluated by run(). */
    std::size_t next_unrun_ = 0;
    std::unordered_map<std::string, IterationResult> cache_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace so::runtime

#endif // SO_RUNTIME_SWEEP_H
