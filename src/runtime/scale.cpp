#include "runtime/scale.h"

#include <array>

#include "common/logging.h"

namespace so::runtime {

ScaleResult
largestTrainableModel(SweepEngine &engine, const TrainingSystem &system,
                      const TrainSetup &setup_template,
                      std::uint32_t max_layers)
{
    // Hidden sizes used across the paper's Appendix-A configurations.
    constexpr std::array<std::uint32_t, 6> kHiddens = {
        2048, 2304, 3072, 4096, 8192, 16384};

    ScaleResult best;
    for (std::uint32_t hidden : kHiddens) {
        auto feasible_at = [&](std::uint32_t layers) {
            TrainSetup setup = setup_template;
            setup.model = model::makeConfig(
                std::to_string(hidden) + "h" + std::to_string(layers) +
                    "L",
                layers, hidden);
            return engine.evaluate(system, setup).feasible;
        };
        if (!feasible_at(1))
            continue;
        // Binary search the largest feasible layer count. Feasibility
        // is monotone in depth for every system (more layers only adds
        // memory), so the bisection is valid.
        std::uint32_t lo = 1, hi = max_layers;
        if (feasible_at(max_layers)) {
            lo = max_layers;
        } else {
            while (hi - lo > 1) {
                const std::uint32_t mid = lo + (hi - lo) / 2;
                if (feasible_at(mid))
                    lo = mid;
                else
                    hi = mid;
            }
        }
        const model::ModelConfig cfg = model::makeConfig(
            std::to_string(hidden) + "h" + std::to_string(lo) + "L", lo,
            hidden);
        if (!best.any_feasible || cfg.params() > best.max_params) {
            best.any_feasible = true;
            best.max_params = cfg.params();
            best.config = cfg;
        }
    }
    return best;
}

ScaleResult
largestTrainableModel(const TrainingSystem &system,
                      const TrainSetup &setup_template,
                      std::uint32_t max_layers)
{
    SweepEngine engine;
    return largestTrainableModel(engine, system, setup_template,
                                 max_layers);
}

std::uint32_t
maxSequenceLength(SweepEngine &engine, const TrainingSystem &system,
                  const TrainSetup &setup_template,
                  std::uint32_t granularity, std::uint32_t max_seq)
{
    SO_ASSERT(granularity >= 1, "granularity must be positive");
    SO_ASSERT(max_seq >= granularity, "max_seq below granularity");
    auto feasible_at = [&](std::uint32_t seq) {
        TrainSetup setup = setup_template;
        setup.seq = seq;
        return engine.evaluate(system, setup).feasible;
    };
    if (!feasible_at(granularity))
        return 0;

    // Exponential probe to bracket the OOM cliff... (feasibility is
    // monotone in sequence length: longer sequences only add memory).
    std::uint32_t lo = granularity;
    std::uint32_t hi = lo;
    while (hi < max_seq) {
        hi = std::min(max_seq, hi * 2);
        if (!feasible_at(hi))
            break;
        lo = hi;
    }
    if (lo == hi)
        return lo; // Feasible all the way to max_seq.

    // ...then bisect to the granularity.
    while (hi - lo > granularity) {
        const std::uint32_t mid =
            lo + (hi - lo) / 2 / granularity * granularity;
        if (mid == lo)
            break;
        if (feasible_at(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::uint32_t
maxSequenceLength(const TrainingSystem &system,
                  const TrainSetup &setup_template,
                  std::uint32_t granularity, std::uint32_t max_seq)
{
    SweepEngine engine;
    return maxSequenceLength(engine, system, setup_template,
                             granularity, max_seq);
}

} // namespace so::runtime
