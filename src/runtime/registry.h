/**
 * @file
 * Factory for the baseline training systems compared in §5.
 */
#ifndef SO_RUNTIME_REGISTRY_H
#define SO_RUNTIME_REGISTRY_H

#include <string>
#include <vector>

#include "runtime/system.h"

namespace so::runtime {

/**
 * Create a baseline by name: "ddp", "megatron", "zero2", "zero3",
 * "zero-offload", "zero-infinity", "fsdp-offload", "ulysses".
 * @fatal on unknown names. (SuperOffload variants live in so::core.)
 */
SystemPtr makeBaseline(const std::string &name);

/** Names of all registered baselines. */
std::vector<std::string> baselineNames();

} // namespace so::runtime

#endif // SO_RUNTIME_REGISTRY_H
