/**
 * @file
 * PyTorch-DDP baseline (Appendix B): plain data parallelism. Every rank
 * holds the full 16P bytes of mixed-precision model states on the GPU;
 * gradients are all-reduced in buckets overlapped with the backward
 * pass; the optimizer step runs on the GPU.
 */
#ifndef SO_RUNTIME_DDP_H
#define SO_RUNTIME_DDP_H

#include "runtime/system.h"

namespace so::runtime {

/** PyTorch DistributedDataParallel. */
class DdpSystem : public TrainingSystem
{
  public:
    std::string name() const override { return "PyTorch DDP"; }

  protected:
    bool allowCheckpointing() const override { return false; }

    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
};

} // namespace so::runtime

#endif // SO_RUNTIME_DDP_H
