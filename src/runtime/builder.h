/**
 * @file
 * Helper for constructing per-iteration task graphs.
 *
 * IterBuilder standardizes the resources every training system schedules
 * onto — the Hopper GPU stream, the Grace CPU (plus a background slot
 * for STV validation), the two C2C directions, and the collective
 * fabric — and converts work descriptions (FLOPs, bytes, parameter
 * counts) into task durations using the hardware model. Strategies then
 * express only their schedule structure.
 */
#ifndef SO_RUNTIME_BUILDER_H
#define SO_RUNTIME_BUILDER_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hw/collective.h"
#include "hw/memory.h"
#include "hw/power.h"
#include "runtime/system.h"
#include "sim/graph.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"

namespace so::runtime {

/** Standard resources + duration models for one simulated rank. */
class IterBuilder
{
  public:
    /**
     * @param opts hierarchy construction options; the default is the
     * canonical staged hierarchy whose channels map exactly onto the
     * seed resource set. Extra paths (e.g. GDS) allocate their own sim
     * resources after the standard seven.
     */
    explicit IterBuilder(const TrainSetup &setup,
                         hw::HierarchyOptions opts = {});

    /// @name Resources
    /// @{
    sim::ResourceId gpu() const { return gpu_; }
    sim::ResourceId cpu() const { return cpu_; }
    /** Background CPU slot (validation process, §4.4). */
    sim::ResourceId cpuBg() const { return cpu_bg_; }
    sim::ResourceId h2d() const { return h2d_; }
    sim::ResourceId d2h() const { return d2h_; }
    /** Cross-GPU collective fabric (NVLink / Slingshot). */
    sim::ResourceId nic() const { return nic_; }
    /** Node-local NVMe channel (ZeRO-Infinity's third tier). */
    sim::ResourceId nvme() const { return nvme_; }

    /** The memory hierarchy this rank schedules transfers over. */
    const hw::MemoryHierarchy &hierarchy() const { return hier_; }

    /** The electrical model metering this rank (hw/power.h). */
    const hw::PowerModel &powerModel() const { return power_; }

    /** Sim resource carrying hierarchy channel @p channel. */
    sim::ResourceId channelResource(std::string_view channel) const;
    /// @}

    /// @name Duration models
    /// @{
    /**
     * GEMM time for @p flops at a micro-batch of @p micro_tokens
     * tokens. Small per-kernel token counts reduce sustained GEMM
     * efficiency (tile quantization / launch overheads), which is why
     * small micro-batches hurt throughput even before accumulation
     * overhead.
     */
    double gemmTime(double flops, double micro_tokens) const;

    /** Fused-attention time for @p flops. */
    double attnTime(double flops) const;

    /** One host->device message of @p bytes over the effective link. */
    double h2dTime(double bytes, bool pinned = true) const;

    /** One device->host message of @p bytes. */
    double d2hTime(double bytes, bool pinned = true) const;

    /**
     * One message of @p bytes over the primary @p from -> @p to
     * hierarchy path. transferTime("DDR", "HBM", b) == h2dTime(b): the
     * legacy helpers are aliases of the canonical tier pairs.
     */
    double transferTime(std::string_view from, std::string_view to,
                        double bytes, bool pinned = true) const;

    /** One message of @p bytes over a specific hierarchy path. */
    double pathTime(const hw::MemoryPath &path, double bytes,
                    bool pinned = true) const;

    /**
     * Time to move @p bytes in granule-sized messages (each paying the
     * granule's achievable bandwidth + latency). Models systems that
     * transfer through small staging buffers (ZeRO-Infinity, §5.2).
     * @param per_chunk_overhead host-side cost per granule (buffer
     * management, CUDA event synchronization) added on top of the link
     * time.
     */
    double chunkedTransferTime(double bytes, double granule,
                               bool pinned = true,
                               double per_chunk_overhead = 0.0) const;

    /** Chunked transfer over the primary @p from -> @p to path. */
    double chunkedTransferTime(std::string_view from, std::string_view to,
                               double bytes, double granule,
                               bool pinned = true,
                               double per_chunk_overhead = 0.0) const;

    /** CPU optimizer step time for @p params with @p impl (§4.6). */
    double cpuAdamTime(double params, hw::AdamImpl impl) const;

    /** GPU (HBM-bound) optimizer step time for @p params. */
    double gpuAdamTime(double params) const;

    /** One NVMe transfer of @p bytes (requires an NVMe-equipped chip). */
    double nvmeTime(double bytes) const;

    /** CPU-side fp16<->fp32 cast of @p elements (DDR-bound, §4.5). */
    double cpuCastTime(double elements) const;

    /** GPU-side fp16<->fp32 cast of @p elements (HBM-bound, §4.5). */
    double gpuCastTime(double elements) const;

    /** Collective cost model for this cluster. */
    const hw::CollectiveCost &coll() const { return coll_; }

    /** Tokens per micro-batch for @p micro sequences. */
    double microTokens(std::uint32_t micro) const;
    /// @}

    /// @name Task helpers (thin wrappers over TaskGraph::addTask)
    ///
    /// Labels and dependency lists are borrowed views: literals and
    /// `{a, b}` brace lists cost no heap allocation per task (the graph
    /// interns/pools them internally).
    /// @{
    sim::TaskId onGpu(std::string_view label, double seconds,
                      sim::DepView deps = {}, std::int32_t priority = 0);
    sim::TaskId onCpu(std::string_view label, double seconds,
                      sim::DepView deps = {}, std::int32_t priority = 0);
    sim::TaskId onCpuBg(std::string_view label, double seconds,
                        sim::DepView deps = {},
                        std::int32_t priority = 0);
    sim::TaskId onH2d(std::string_view label, double seconds,
                      sim::DepView deps = {}, std::int32_t priority = 0);
    sim::TaskId onD2h(std::string_view label, double seconds,
                      sim::DepView deps = {}, std::int32_t priority = 0);
    sim::TaskId onNic(std::string_view label, double seconds,
                      sim::DepView deps = {}, std::int32_t priority = 0);
    sim::TaskId onNvme(std::string_view label, double seconds,
                       sim::DepView deps = {}, std::int32_t priority = 0);

    /**
     * Schedule a transfer of @p bytes (taking @p seconds, typically
     * from transferTime or chunkedTransferTime) on the primary
     * @p from -> @p to path's channel, and account the bytes to that
     * path for the per-tier traffic report. This is the canonical way
     * to emit inter-tier moves; onH2d/onD2h/onNvme are raw channel
     * access without traffic accounting.
     */
    sim::TaskId onTransfer(std::string_view from, std::string_view to,
                           std::string_view label, double seconds,
                           double bytes, sim::DepView deps = {},
                           std::int32_t priority = 0);

    /**
     * Like onTransfer but over a specific path (for multi-path systems
     * striping one logical move across concurrent routes). @p path must
     * belong to hierarchy().paths().
     */
    sim::TaskId onPath(const hw::MemoryPath &path, std::string_view label,
                       double seconds, double bytes,
                       sim::DepView deps = {}, std::int32_t priority = 0);

    /** Bytes accounted so far to hierarchy path @p path_index. */
    double pathBytes(std::size_t path_index) const;
    /// @}

    /**
     * Pre-size the graph for the schedule shape the caller is about to
     * build: @p tasks expected addTask calls, @p edges expected total
     * dependency-list entries. Every runtime system calls this with the
     * counts its loop structure implies (see docs/SWEEP.md).
     */
    void reserve(std::size_t tasks, std::size_t edges);

    sim::TaskGraph &graph() { return graph_; }

    /**
     * Run the scheduler and package the result: iteration time =
     * makespan, utilizations measured over [0, makespan), ASCII Gantt
     * attached for diagnostics. @p flops fills the FLOP accounting.
     */
    IterationResult finish(const model::IterationFlops &flops) const;

    /**
     * Like finish() but measures the steady-state window [@p win_begin,
     * @p win_end) instead of the whole makespan — used by systems that
     * overlap consecutive iterations (STV, §4.4).
     */
    IterationResult finishWindow(const model::IterationFlops &flops,
                                 double win_begin, double win_end,
                                 const sim::Schedule &schedule) const;

    /** Schedule the current graph (for systems needing raw access). */
    sim::Schedule schedule() const;

  private:
    const TrainSetup &setup_;
    const hw::SuperchipSpec &chip_;
    const hw::Link &host_link_;
    hw::CollectiveCost coll_;
    hw::MemoryHierarchy hier_;
    hw::PowerModel power_;
    sim::TaskGraph graph_;
    sim::ResourceId gpu_;
    sim::ResourceId cpu_;
    sim::ResourceId cpu_bg_;
    sim::ResourceId h2d_;
    sim::ResourceId d2h_;
    sim::ResourceId nic_;
    sim::ResourceId nvme_;
    /** Channel name -> sim resource, one entry per distinct channel. */
    std::vector<std::pair<std::string, sim::ResourceId>> channels_;
    /** Bytes scheduled per hierarchy path (tier-traffic accounting). */
    std::vector<double> path_bytes_;
    /** (task, bytes) pairs from onPath, for per-task transfer energy. */
    std::vector<std::pair<sim::TaskId, double>> task_bytes_;

    /**
     * Fill @p res.energy from the finished @p schedule: full
     * phase/idle-cause attribution when @p profile is given (the
     * returned EnergyProfile is then valid, for the profile/bundle JSON
     * documents), a cheap timeline-only pass otherwise.
     */
    sim::EnergyProfile fillEnergy(IterationResult &res,
                                  const sim::Schedule &schedule,
                                  const sim::ScheduleProfile *profile) const;
};

/**
 * Token count below which GEMM efficiency degrades appreciably;
 * efficiency scale = tokens / (tokens + kGemmEffTokens).
 */
inline constexpr double kGemmEffTokens = 1024.0;

/** Transfer bucket size chosen by SuperOffload (§4.3): 64 MB. */
inline constexpr double kBucketBytes = 64.0 * 1024.0 * 1024.0;

} // namespace so::runtime

#endif // SO_RUNTIME_BUILDER_H
