/**
 * @file
 * Deep-Optimizer-States baseline (§2.2 [32]): extends ZeRO-Offload by
 * streaming optimizer-state buckets from CPU DRAM to the GPU and
 * running the (HBM-fast) Adam update there, interleaving state
 * traffic with the backward pass — the opposite trade from
 * SuperOffload's CPU-side GraceAdam. It trades 24 bytes/param of C2C
 * traffic per iteration for a ~30x faster update kernel, which is a
 * good deal precisely when the interconnect is fast, making it the
 * most interesting contrast point for the Superchip regime.
 */
#ifndef SO_RUNTIME_DEEP_OPT_STATES_H
#define SO_RUNTIME_DEEP_OPT_STATES_H

#include "runtime/system.h"

namespace so::runtime {

/** Deep-Optimizer-States: optimizer states on CPU, updates on GPU. */
class DeepOptStatesSystem : public TrainingSystem
{
  public:
    std::string name() const override { return "Deep-Optimizer-States"; }

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
};

} // namespace so::runtime

#endif // SO_RUNTIME_DEEP_OPT_STATES_H
