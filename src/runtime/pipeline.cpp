#include "runtime/pipeline.h"

#include <algorithm>
#include <string>
#include <vector>

#include "runtime/builder.h"

namespace so::runtime {

std::vector<std::uint32_t>
PipelineSystem::searchVariants(const TrainSetup &setup) const
{
    if (stages_ != 0)
        return {stages_};
    const std::uint32_t gpus = setup.cluster.totalSuperchips();
    std::vector<std::uint32_t> counts;
    for (std::uint32_t p = 1; p <= gpus; p *= 2) {
        if (p > setup.model.layers)
            break;
        counts.push_back(p);
    }
    if (counts.empty())
        counts.push_back(1);
    return counts;
}

std::uint32_t
PipelineSystem::fallbackVariant(const TrainSetup &setup) const
{
    if (stages_ != 0)
        return stages_;
    return std::min(setup.cluster.totalSuperchips(),
                    std::max<std::uint32_t>(1, setup.model.layers));
}

double
PipelineSystem::gpuBytes(const TrainSetup &setup,
                         const SearchCandidate &cand) const
{
    const double p = stagesOf(cand);
    const auto states = model::StateSizes::forParams(setup.model.params());
    model::ActivationOptions act_opts;
    act_opts.checkpointing = cand.checkpointing;
    // 1F1B keeps up to P micro-batches of this stage's activations in
    // flight: P x (act of 1/P of the layers) ~= one micro-batch of the
    // whole model's activations.
    const double act = model::activationBytes(setup.model, cand.micro_batch,
                                              setup.seq, act_opts);
    return model::gpuResidentBytes(states.totalBytes() / p + act);
}

double
PipelineSystem::cpuBytes(const TrainSetup &, const SearchCandidate &) const
{
    return 0.0;
}

IterationResult
PipelineSystem::simulate(const TrainSetup &setup,
                         const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;

    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const std::uint32_t p = stagesOf(cand);
    const std::uint32_t gpus = setup.cluster.totalSuperchips();
    const std::uint32_t dp = std::max<std::uint32_t>(1, gpus / p);
    // Micro-batches per iteration (1F1B's M): the accumulation steps.
    const std::uint32_t m = accum_steps;

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);

    // Per-stage, per-micro-batch compute.
    const double fwd_stage =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / p;
    const double bwd_stage =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / p;

    // Inter-stage activation transfer per micro-batch boundary (fp16
    // hidden states, forward + gradient on the way back).
    const double boundary_bytes =
        2.0 * tokens * static_cast<double>(cfg.hidden);
    const double p2p =
        p > 1 ? boundary_bytes / setup.cluster.collectiveBandwidthPerGpu() +
                    setup.cluster.collectiveLatency()
              : 0.0;

    // Simulate the critical path through the *last* stage: it starts
    // after the fill (p-1 forward slots) and finishes after its own
    // m forwards + m backwards; the drain adds (p-1) backward slots on
    // the first stage, which the optimizer then follows.
    // Fill + m fwd/bwd pairs + drain + optional all-reduce + optimizer.
    builder.reserve(2 * static_cast<std::size_t>(m) + 4,
                    2 * static_cast<std::size_t>(m) + 6);

    sim::TaskId prev = sim::kInvalidTask;
    const double fill = (p - 1) * (fwd_stage + p2p);
    if (fill > 0.0)
        prev = builder.onGpu("pipeline-fill", fill, {});
    for (std::uint32_t i = 0; i < m; ++i) {
        std::vector<sim::TaskId> deps;
        if (prev != sim::kInvalidTask)
            deps.push_back(prev);
        prev = builder.onGpu("fwd u" + std::to_string(i), fwd_stage,
                             std::move(deps));
        prev = builder.onGpu("bwd u" + std::to_string(i), bwd_stage,
                             {prev});
    }
    const double drain = (p - 1) * (bwd_stage + p2p);
    if (drain > 0.0)
        prev = builder.onGpu("pipeline-drain", drain, {prev});

    // DP gradient all-reduce of this stage's shard, then GPU Adam.
    std::vector<sim::TaskId> step_deps{prev};
    if (dp > 1) {
        hw::CollectiveCost dp_coll = builder.coll();
        dp_coll.ranks = dp;
        step_deps.push_back(builder.onNic(
            "dp-allreduce",
            dp_coll.allReduce(2.0 * cfg.params() / p), {prev}));
    }
    builder.onGpu("adam (gpu, 1/P)", builder.gpuAdamTime(cfg.params() / p),
                  std::move(step_deps));

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    // Per-GPU share of the compute under PP.
    total.fwd_gemm /= p;
    total.fwd_attn /= p;
    total.bwd_gemm /= p;
    total.bwd_attn /= p;
    total.recompute_gemm /= p;
    total.recompute_attn /= p;
    IterationResult res = builder.finish(total);
    res.setExtra("stages", static_cast<double>(p));
    return res;
}

} // namespace so::runtime
