/**
 * @file
 * Graph-driven tier placement (HyperOffload-style).
 *
 * HyperOffload's idea is to stop treating offload targets as a binary
 * (everything on the host, or everything on the drive) and instead walk
 * the training dataflow graph, placing each object in the hottest tier
 * with room, coldest-reuse objects first. This system applies that at
 * layer granularity over the hw::MemoryHierarchy:
 *
 *  - Forward/backward touch layers in order, so the *first* layers are
 *    the ones reused soonest after the optimizer (the next forward
 *    starts at layer 0): any HBM slack left after activations pins a
 *    prefix of layers' fp16 weights device-resident, skipping their
 *    per-pass fetch entirely.
 *  - Gradients materialize last-to-first during backward, so the *last*
 *    layers have the longest lead time between "grads ready" and "state
 *    needed": when host DRAM cannot hold all optimizer states, a suffix
 *    of layers spills to NVMe, where the staging latency hides behind
 *    the remaining backward.
 *
 * The placement is deterministic from the setup (no search dimension):
 * tierBytes and simulate derive it from the same arithmetic, so the fit
 * checks, diagnostics, and the schedule always agree.
 */
#ifndef SO_RUNTIME_GRAPH_PLACEMENT_H
#define SO_RUNTIME_GRAPH_PLACEMENT_H

#include <cstdint>

#include "runtime/system.h"

namespace so::runtime {

/** Layer-granular, hierarchy-aware offload placement. */
class GraphPlacementSystem : public TrainingSystem
{
  public:
    std::string
    name() const override
    {
        return "HyperOffload";
    }

    /** Deterministic placement derived from setup + hierarchy. */
    struct Placement
    {
        /** Layers whose fp16 weights stay resident in HBM (prefix). */
        std::uint32_t hbm_layers = 0;
        /** Layers whose optimizer states spill to NVMe (suffix). */
        std::uint32_t nvme_layers = 0;
    };

    /**
     * Compute the placement for @p cand: NVMe spill from the DDR
     * overflow, HBM residency from the device slack left by @p cand's
     * activations.
     */
    Placement placement(const TrainSetup &setup,
                        const SearchCandidate &cand) const;

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double nvmeBytes(const TrainSetup &setup,
                     const SearchCandidate &cand) const override;
    IterationResult simulate(const TrainSetup &setup,
                             const SearchCandidate &cand) const override;

  private:
    /** Per-rank bytes of one layer's full model-state share. */
    double layerShare(const TrainSetup &setup) const;
};

} // namespace so::runtime

#endif // SO_RUNTIME_GRAPH_PLACEMENT_H
