/**
 * @file
 * ZeRO-Infinity baseline (Appendix B), CPU-offload configuration only
 * (§5.1 disables its NVMe tier for fairness): ZeRO-3 partitioning with
 * parameters and optimizer states resident in host DRAM, streamed layer
 * by layer through small pinned staging buffers. §5.2 attributes its
 * <50 TFLOPS ceiling to exactly that staging granularity: the transfer
 * tile is far below the C2C saturation size, so the link runs at the
 * small-tensor end of the Fig. 7 curve.
 */
#ifndef SO_RUNTIME_ZERO_INFINITY_H
#define SO_RUNTIME_ZERO_INFINITY_H

#include "runtime/system.h"

namespace so::runtime {

/** ZeRO-Infinity with CPU offload (and optionally the NVMe tier). */
class ZeroInfinitySystem : public TrainingSystem
{
  public:
    /**
     * @param use_nvme enable the third tier: optimizer states live on
     * node-local NVMe and stream through DRAM each step. §5.1 disables
     * this for the paper's comparisons ("we only enable its CPU
     * offloading for fair comparison"); it is implemented here because
     * it is the system's signature capability — training models far
     * beyond DRAM at correspondingly low throughput.
     */
    explicit ZeroInfinitySystem(bool use_nvme = false)
        : use_nvme_(use_nvme)
    {
    }

    std::string
    name() const override
    {
        return use_nvme_ ? "ZeRO-Infinity(NVMe)" : "ZeRO-Infinity";
    }

    /** Staging-buffer granule for host<->device copies. */
    static constexpr double kStagingGranule = 1.0 * 1024.0 * 1024.0;

    /**
     * Host cost per staging granule: buffer-pool management plus a
     * CUDA-event synchronization to recycle the pinned slot. Together
     * with the small-tensor bandwidth penalty this reproduces the
     * paper's observation that ZeRO-Infinity stays below 50 TFLOPS on
     * GH200 (§5.2).
     */
    static constexpr double kPerChunkOverhead = 250.0e-6;

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    double nvmeBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;

  private:
    const bool use_nvme_;
};

} // namespace so::runtime

#endif // SO_RUNTIME_ZERO_INFINITY_H
