#include "runtime/deep_opt_states.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

double
DeepOptStatesSystem::gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const double n = setup.cluster.totalSuperchips();
    const double params = setup.model.params();
    // fp16 params + fp16 grads resident (ZeRO-2 style) plus streaming
    // buffers for a few optimizer-state buckets in flight.
    const double states = 4.0 * params + params / n + 2.0e9;
    model::ActivationOptions act_opts;
    act_opts.checkpointing = checkpointing;
    const double act = model::activationBytes(setup.model, micro_batch,
                                              setup.seq, act_opts);
    return model::gpuResidentBytes(states + act);
}

double
DeepOptStatesSystem::cpuBytes(const TrainSetup &setup, const SearchCandidate &) const
{
    // Optimizer states only (12 bytes/param), sharded across ranks.
    return hw::kOptimStateBytesPerParam * setup.model.params() /
           setup.cluster.totalSuperchips();
}

IterationResult
DeepOptStatesSystem::simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup);
    const model::ModelConfig &cfg = setup.model;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();

    const auto buckets = static_cast<std::uint32_t>(std::clamp(
        std::ceil(2.0 * params / kBucketBytes), 1.0, 128.0));
    const double bucket_params = params / buckets;
    const double shard = bucket_params / n;

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_chunk =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / buckets;
    const double bwd_chunk =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / buckets;

    // Optimizer-state stream: fetch (12 B/param) before the update,
    // write back (12 B/param) after it; the fetches prefetch against
    // the backward pass.
    const double opt_bytes = hw::kOptimStateBytesPerParam * shard;
    const double fetch_time = builder.h2dTime(opt_bytes);
    const double writeback_time = builder.d2hTime(opt_bytes);

    // accum_steps fwd+bwd passes per bucket; the last pass adds up to
    // four tasks per bucket (rs, h2d, adam, d2h) plus the optional
    // final all-gather with its bucket-wide fan-in.
    builder.reserve(
        static_cast<std::size_t>(accum_steps) * 2 * buckets +
            4 * static_cast<std::size_t>(buckets) + 1,
        static_cast<std::size_t>(accum_steps) * 2 * buckets +
            7 * static_cast<std::size_t>(buckets) + 1);

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> updates;
    updates.reserve(buckets);
    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t c = 0; c < buckets; ++c) {
            std::vector<sim::TaskId> deps;
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd", fwd_chunk, std::move(deps));
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t c = 0; c < buckets; ++c) {
            prev = builder.onGpu("bwd", bwd_chunk, {prev});
            if (!last)
                continue;
            sim::TaskId grads = prev;
            if (n > 1) {
                grads = builder.onNic(
                    "rs g" + std::to_string(c),
                    builder.coll().reduceScatter(2.0 * bucket_params),
                    {grads});
            }
            // States arrive via prefetch; the GPU applies Adam to this
            // bucket as soon as its gradients are reduced (priority 1:
            // remaining backward chunks run first).
            const sim::TaskId fetched = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm,
                "h2d opt" + std::to_string(c), fetch_time, opt_bytes, {});
            const sim::TaskId opt = builder.onGpu(
                "adam(gpu) b" + std::to_string(c),
                builder.gpuAdamTime(shard), {grads, fetched}, 1);
            updates.push_back(builder.onTransfer(
                hw::kTierHbm, hw::kTierDdr,
                "d2h opt" + std::to_string(c), writeback_time, opt_bytes,
                {opt}));
        }
    }
    if (n > 1) {
        std::vector<sim::TaskId> deps = updates;
        deps.push_back(prev);
        builder.onNic("allgather params",
                      builder.coll().allGather(2.0 * params),
                      std::move(deps));
    }

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    return builder.finish(total);
}

} // namespace so::runtime
