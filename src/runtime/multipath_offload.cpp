#include "runtime/multipath_offload.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "hw/constants.h"
#include "runtime/builder.h"

namespace so::runtime {

namespace {

/** Bucket working buffers resident on the GPU (in + out in flight). */
constexpr double kStagingBuckets = 4.0;

/** Cap on the number of transfer buckets (schedule size bound). */
constexpr double kMaxBuckets = 128.0;

} // namespace

double
MultiPathOffloadSystem::nvmeFraction(const SearchCandidate &cand) const
{
    if (forced_fraction_ >= 0.0)
        return forced_fraction_;
    SO_ASSERT(cand.variant < std::size(kNvmeFractions),
              "variant out of fraction grid");
    return kNvmeFractions[cand.variant];
}

std::vector<std::uint32_t>
MultiPathOffloadSystem::searchVariants(const TrainSetup &setup) const
{
    if (forced_fraction_ >= 0.0)
        return {0};
    if (setup.cluster.node.superchip.nvme_bytes <= 0.0)
        return {0}; // No NVMe tier: DDR-only placement.
    std::vector<std::uint32_t> variants;
    for (std::uint32_t v = 0; v < std::size(kNvmeFractions); ++v)
        variants.push_back(v);
    return variants;
}

hw::HierarchyOptions
MultiPathOffloadSystem::hierarchyOptions() const
{
    hw::HierarchyOptions opts;
    opts.gds_paths = enable_gds_;
    return opts;
}

double
MultiPathOffloadSystem::gpuBytes(const TrainSetup &setup,
                                 const SearchCandidate &cand) const
{
    // Weight-flow: only streamed bucket buffers live on the GPU.
    const double staging =
        kStagingBuckets * 2.0 * kBucketBytes;
    model::ActivationOptions act_opts;
    act_opts.checkpointing = cand.checkpointing;
    const double act = model::activationBytes(
        setup.model, cand.micro_batch, setup.seq, act_opts);
    return model::gpuResidentBytes(staging + act);
}

double
MultiPathOffloadSystem::cpuBytes(const TrainSetup &setup,
                                 const SearchCandidate &cand) const
{
    const double shard =
        setup.model.params() / setup.cluster.totalSuperchips();
    // Streamed fp16 copy + fp32 gradient shard stay in DRAM; optimizer
    // states only for the DDR-resident share.
    return (hw::kFp16BytesPerParam + hw::kFp32BytesPerParam +
            (1.0 - nvmeFraction(cand)) * hw::kOptimStateBytesPerParam) *
           shard;
}

double
MultiPathOffloadSystem::nvmeBytes(const TrainSetup &setup,
                                  const SearchCandidate &cand) const
{
    const double shard =
        setup.model.params() / setup.cluster.totalSuperchips();
    return nvmeFraction(cand) * hw::kOptimStateBytesPerParam * shard;
}

IterationResult
MultiPathOffloadSystem::simulate(const TrainSetup &setup,
                                 const SearchCandidate &cand) const
{
    const std::uint32_t micro_batch = cand.micro_batch;
    const bool checkpointing = cand.checkpointing;
    const std::uint32_t accum_steps = cand.accum_steps;
    IterBuilder builder(setup, hierarchyOptions());
    const model::ModelConfig &cfg = setup.model;
    const double params = cfg.params();
    const double n = setup.cluster.totalSuperchips();
    const bool multi = n > 1;
    const double frac = nvmeFraction(cand);

    const auto buckets = static_cast<std::uint32_t>(std::clamp(
        std::ceil(hw::kFp16BytesPerParam * params / kBucketBytes), 1.0,
        kMaxBuckets));
    const double bucket_params = params / buckets;
    const double shard = bucket_params / n; // per-rank params per bucket

    // NVMe routes: the staged path always exists alongside the tier;
    // the GDS path only when enabled. Stripe the NVMe-resident share
    // across the routes proportionally to their peak bandwidths.
    const hw::MemoryHierarchy &hier = builder.hierarchy();
    const bool has_nvme = hier.hasTier(hw::kTierNvme);
    SO_ASSERT(frac == 0.0 || has_nvme,
              "NVMe placement requested on a chip without NVMe");
    const hw::MemoryPath *gds_read = nullptr;
    const hw::MemoryPath *gds_write = nullptr;
    if (has_nvme && enable_gds_) {
        for (const hw::MemoryPath *p :
             hier.pathsBetween(hw::kTierNvme, hw::kTierHbm))
            if (p->channel == hw::kChannelGds)
                gds_read = p;
        for (const hw::MemoryPath *p :
             hier.pathsBetween(hw::kTierHbm, hw::kTierNvme))
            if (p->channel == hw::kChannelGds)
                gds_write = p;
    }
    double staged_share = 1.0;
    if (gds_read != nullptr) {
        const double bw_staged =
            hier.primaryPath(hw::kTierNvme, hw::kTierDdr)
                .link.curve()
                .peak();
        const double bw_gds = gds_read->link.curve().peak();
        staged_share = bw_staged / (bw_staged + bw_gds);
    }

    // Per-bucket per-rank parameter shares by placement/route.
    const double ddr_params = (1.0 - frac) * shard;
    const double staged_params = frac * shard * staged_share;
    const double gds_params = frac * shard * (1.0 - staged_share);
    const double opt_staged_bytes =
        hw::kOptimStateBytesPerParam * staged_params;
    const double opt_gds_bytes = hw::kOptimStateBytesPerParam * gds_params;

    const model::IterationFlops micro_flops = model::iterationFlops(
        cfg, micro_batch, setup.seq, checkpointing);
    const double tokens = builder.microTokens(micro_batch);
    const double fwd_chunk =
        (builder.gemmTime(micro_flops.fwd_gemm, tokens) +
         builder.attnTime(micro_flops.fwd_attn)) / buckets;
    const double bwd_chunk =
        (builder.gemmTime(micro_flops.bwd_gemm + micro_flops.recompute_gemm,
                          tokens) +
         builder.attnTime(micro_flops.bwd_attn +
                          micro_flops.recompute_attn)) / buckets;

    const double weight_bytes = hw::kFp16BytesPerParam * shard;
    const double fetch_time = builder.h2dTime(weight_bytes);
    const double gather_time =
        multi ? builder.coll().allGather(hw::kFp16BytesPerParam *
                                         bucket_params)
              : 0.0;

    {
        const auto b = static_cast<std::size_t>(buckets);
        const std::size_t per_pass = multi ? 3 : 2;
        builder.reserve(
            static_cast<std::size_t>(accum_steps) * 2 * per_pass * b +
                12 * b + 2,
            static_cast<std::size_t>(accum_steps) * 6 * b + 24 * b + 2);
    }

    sim::TaskId prev = sim::kInvalidTask;
    std::vector<sim::TaskId> cast_done(buckets, sim::kInvalidTask);
    std::vector<sim::TaskId> staged_in(buckets, sim::kInvalidTask);
    std::vector<sim::TaskId> gpu_grads(buckets, sim::kInvalidTask);
    std::vector<sim::TaskId> casts;
    casts.reserve(buckets);

    for (std::uint32_t step = 0; step < accum_steps; ++step) {
        for (std::uint32_t c = 0; c < buckets; ++c) {
            // Weight-flow: stream this bucket's fp16 params from DRAM
            // (prefetchable), all-gather when partitioned.
            sim::TaskId ready = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm, "h2d w" + std::to_string(c),
                fetch_time, weight_bytes, {});
            if (multi)
                ready = builder.onNic("ag", gather_time, {ready});
            std::vector<sim::TaskId> deps{ready};
            if (prev != sim::kInvalidTask)
                deps.push_back(prev);
            prev = builder.onGpu("fwd", fwd_chunk, std::move(deps));
        }
        const bool last = step + 1 == accum_steps;
        for (std::uint32_t c = 0; c < buckets; ++c) {
            sim::TaskId ready = builder.onTransfer(
                hw::kTierDdr, hw::kTierHbm, "h2d w'" + std::to_string(c),
                fetch_time, weight_bytes, {});
            if (multi)
                ready = builder.onNic("ag'", gather_time, {ready});
            prev = builder.onGpu("bwd", bwd_chunk, {prev, ready});
            if (!last)
                continue;

            sim::TaskId grads = prev;
            if (multi) {
                grads = builder.onNic(
                    "rs g" + std::to_string(c),
                    builder.coll().reduceScatter(hw::kFp16BytesPerParam *
                                                 bucket_params),
                    {grads});
            }
            gpu_grads[c] = grads;

            // Gradients leave for the host through the pinned pool.
            const double grad_bytes = hw::kFp16BytesPerParam * shard;
            const sim::TaskId moved = builder.onTransfer(
                hw::kTierHbm, hw::kTierDdr, "d2h g" + std::to_string(c),
                builder.d2hTime(grad_bytes), grad_bytes, {grads});
            cast_done[c] = builder.onCpu(
                "cast g" + std::to_string(c),
                builder.cpuCastTime(shard), {moved});
            casts.push_back(cast_done[c]);

            // Staged NVMe stripe prefetches its optimizer states into
            // DRAM over the drive channel while backward continues.
            if (staged_params > 0.0) {
                staged_in[c] = builder.onTransfer(
                    hw::kTierNvme, hw::kTierDdr,
                    "nvme-r b" + std::to_string(c),
                    builder.nvmeTime(opt_staged_bytes), opt_staged_bytes,
                    {});
            }
        }
    }

    // STE synchronization: global norm over the fp32 gradient shard.
    const sim::TaskId norm = builder.onCpu(
        "grad-norm+check",
        setup.cluster.node.superchip.cpu.memTime(hw::kFp32BytesPerParam *
                                                 params / n),
        casts);

    const hw::AdamImpl impl = hw::AdamImpl::GraceAdam;
    for (std::uint32_t c = 0; c < buckets; ++c) {
        // CPU route: DDR-resident states plus the staged NVMe stripe.
        const double cpu_params = ddr_params + staged_params;
        if (cpu_params > 0.0) {
            std::vector<sim::TaskId> deps{norm, cast_done[c]};
            if (staged_in[c] != sim::kInvalidTask)
                deps.push_back(staged_in[c]);
            const sim::TaskId opt = builder.onCpu(
                "adam b" + std::to_string(c),
                builder.cpuAdamTime(cpu_params, impl), std::move(deps));
            if (staged_params > 0.0) {
                builder.onTransfer(hw::kTierDdr, hw::kTierNvme,
                                   "nvme-w b" + std::to_string(c),
                                   builder.nvmeTime(opt_staged_bytes),
                                   opt_staged_bytes, {opt});
            }
            const sim::TaskId cast = builder.onCpu(
                "cast p" + std::to_string(c),
                builder.cpuCastTime(cpu_params), {opt});
            const double back_bytes = hw::kFp16BytesPerParam * cpu_params;
            builder.onTransfer(hw::kTierDdr, hw::kTierHbm,
                               "h2d p" + std::to_string(c),
                               builder.h2dTime(back_bytes), back_bytes,
                               {cast});
        }

        // GDS route: states DMA straight into HBM on their own channel
        // (overlapping the staged stripe and the C2C traffic) and the
        // GPU applies Adam to them beside its gradients.
        if (gds_params > 0.0) {
            const sim::TaskId in = builder.onPath(
                *gds_read, "gds-r b" + std::to_string(c),
                builder.pathTime(*gds_read, opt_gds_bytes), opt_gds_bytes,
                {});
            const sim::TaskId opt = builder.onGpu(
                "adam(gpu) b" + std::to_string(c),
                builder.gpuAdamTime(gds_params), {in, gpu_grads[c]}, 1);
            builder.onPath(*gds_write, "gds-w b" + std::to_string(c),
                           builder.pathTime(*gds_write, opt_gds_bytes),
                           opt_gds_bytes, {opt});
        }
    }

    model::IterationFlops total = model::iterationFlops(
        cfg, static_cast<double>(micro_batch) * accum_steps, setup.seq,
        checkpointing);
    IterationResult res = builder.finish(total);
    res.notes = "nvme_frac=" + std::to_string(frac) +
                (gds_read != nullptr ? ", gds=on" : ", gds=off");
    res.setExtra("nvme_fraction", frac);
    res.setExtra("staged_share", has_nvme ? staged_share : 0.0);
    res.setExtra("gds_bytes",
                 2.0 * opt_gds_bytes * static_cast<double>(buckets));
    res.setExtra("staged_bytes",
                 2.0 * opt_staged_bytes * static_cast<double>(buckets));
    return res;
}

} // namespace so::runtime
