/**
 * @file
 * DeepSpeed-Ulysses baseline (§4.7, §5.3): sequence parallelism over N
 * ranks with all-to-all collectives around attention, combined (as in
 * the DeepSpeed-Ulysses system) with ZeRO-1/2-style optimizer sharding.
 * Model states are otherwise replicated on every GPU — the "fixed GPU
 * memory consumption of model states" that limits how far the baseline
 * scales in sequence length (Fig. 12).
 */
#ifndef SO_RUNTIME_ULYSSES_H
#define SO_RUNTIME_ULYSSES_H

#include "runtime/system.h"

namespace so::runtime {

/** Ulysses sequence parallelism (+ ZeRO-2 or ZeRO-3 sharding). */
class UlyssesSystem : public TrainingSystem
{
  public:
    /**
     * @param zero_stage model-state sharding underneath SP: 2 (the
     * DeepSpeed-Ulysses default — fp16 params and grads replicated,
     * optimizer sharded) or 3 (fully sharded parameters with per-layer
     * all-gathers).
     */
    explicit UlyssesSystem(std::uint32_t zero_stage = 2);

    std::string
    name() const override
    {
        return zero_stage_ == 3 ? "Ulysses+ZeRO-3" : "Ulysses";
    }

  protected:
    double gpuBytes(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;
    double cpuBytes(const TrainSetup &setup, const SearchCandidate &) const override;
    IterationResult simulate(const TrainSetup &setup,
                    const SearchCandidate &cand) const override;

    /**
     * Under SP every rank works on every sequence, so the per-rank
     * batch equals the global batch and activations are divided by the
     * SP degree.
     */
    std::uint32_t
    perRankBatch(const TrainSetup &setup) const override
    {
        return setup.global_batch;
    }

  private:
    const std::uint32_t zero_stage_;
};

} // namespace so::runtime

#endif // SO_RUNTIME_ULYSSES_H
