#include "runtime/result_json.h"

#include "common/json.h"

namespace so::runtime {

void
writeIterationJson(JsonWriter &json, const IterationResult &result)
{
    json.beginObject();
    json.field("feasible", result.feasible);
    if (!result.feasible) {
        json.field("infeasible_reason", result.infeasible_reason);
        json.endObject();
        return;
    }
    json.field("iter_time_s", result.iter_time);
    json.field("tflops_per_gpu", result.tflopsPerGpu());
    json.field("micro_batch", result.micro_batch);
    json.field("accum_steps", result.accum_steps);
    json.field("activation_checkpointing",
               result.activation_checkpointing);
    json.field("gpu_utilization", result.gpu_utilization);
    json.field("cpu_utilization", result.cpu_utilization);
    json.field("link_utilization", result.link_utilization);
    json.key("memory").beginObject();
    json.field("gpu_bytes", result.memory.gpu_bytes);
    json.field("gpu_capacity", result.memory.gpu_capacity);
    json.field("cpu_bytes", result.memory.cpu_bytes);
    json.field("cpu_capacity", result.memory.cpu_capacity);
    if (result.memory.nvme_bytes > 0.0) {
        json.field("nvme_bytes", result.memory.nvme_bytes);
        json.field("nvme_capacity", result.memory.nvme_capacity);
    }
    json.endObject();
    json.field("model_flops", result.flops.modelFlops());
    json.field("executed_flops", result.flops.executedFlops());
    if (!result.extras.empty()) {
        json.key("extras").beginObject();
        for (const auto &[key, value] : result.extras)
            json.field(key, value);
        json.endObject();
    }
    if (!result.notes.empty())
        json.field("notes", result.notes);
    json.endObject();
}

std::string
toJson(const IterationResult &result)
{
    JsonWriter json;
    writeIterationJson(json, result);
    return json.str();
}

} // namespace so::runtime
