#include "runtime/result_json.h"

#include "common/json.h"
#include "common/schema.h"
#include "common/trace.h"

namespace so::runtime {

void
writeIterationJson(JsonWriter &json, const IterationResult &result)
{
    trace::Span span(trace::Category::Serialize, "iteration-json");
    json.beginObject();
    json.field("schema_version", kSchemaVersion);
    json.field("feasible", result.feasible);
    if (!result.feasible) {
        json.field("infeasible_reason", result.infeasible_reason);
        json.endObject();
        return;
    }
    json.field("iter_time_s", result.iter_time);
    json.field("tflops_per_gpu", result.tflopsPerGpu());
    json.field("micro_batch", result.micro_batch);
    json.field("accum_steps", result.accum_steps);
    json.field("activation_checkpointing",
               result.activation_checkpointing);
    json.field("gpu_utilization", result.gpu_utilization);
    json.field("cpu_utilization", result.cpu_utilization);
    json.field("link_utilization", result.link_utilization);
    json.key("memory").beginObject();
    json.field("gpu_bytes", result.memory.gpu_bytes);
    json.field("gpu_capacity", result.memory.gpu_capacity);
    json.field("cpu_bytes", result.memory.cpu_bytes);
    json.field("cpu_capacity", result.memory.cpu_capacity);
    if (result.memory.nvme_bytes > 0.0) {
        json.field("nvme_bytes", result.memory.nvme_bytes);
        json.field("nvme_capacity", result.memory.nvme_capacity);
    }
    if (!result.memory.tiers.empty()) {
        json.key("tiers").beginArray();
        for (const TierUsage &tier : result.memory.tiers) {
            json.beginObject();
            json.field("tier", tier.tier);
            json.field("description", tier.description);
            json.field("bytes", tier.bytes);
            json.field("capacity", tier.capacity);
            json.endObject();
        }
        json.endArray();
    }
    json.endObject();
    if (!result.tier_traffic.empty()) {
        json.key("tier_traffic").beginArray();
        for (const IterationResult::TierTraffic &traffic :
             result.tier_traffic) {
            json.beginObject();
            json.field("from", traffic.from);
            json.field("to", traffic.to);
            json.field("channel", traffic.channel);
            json.field("bytes", traffic.bytes);
            json.endObject();
        }
        json.endArray();
    }
    json.field("model_flops", result.flops.modelFlops());
    json.field("executed_flops", result.flops.executedFlops());
    if (result.profile.valid) {
        json.key("profile").beginObject();
        json.field("makespan_s", result.profile.makespan);
        json.field("critical_length_s", result.profile.critical_length);
        json.key("critical_phases").beginArray();
        for (const auto &[phase, seconds] : result.profile.critical_phases) {
            json.beginObject();
            json.field("phase", phase);
            json.field("seconds", seconds);
            json.field("share",
                       result.profile.critical_length > 0.0
                           ? seconds / result.profile.critical_length
                           : 0.0);
            json.endObject();
        }
        json.endArray();
        json.key("hot_tasks").beginArray();
        for (const std::string &label : result.profile.hot_tasks)
            json.value(label);
        json.endArray();
        json.key("idle").beginArray();
        for (const auto &idle : result.profile.idle) {
            json.beginObject();
            json.field("resource", idle.resource);
            json.field("busy_s", idle.busy);
            json.field("dependency_s", idle.dependency);
            json.field("contention_s", idle.contention);
            json.field("tail_s", idle.tail);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    if (result.energy.valid) {
        // Joule accounting (docs/ENERGY.md). Key suffixes matter to the
        // bench guard: *_j gates lower-is-better, *_w stays exempt.
        const EnergySummary &e = result.energy;
        json.key("energy").beginObject();
        json.field("total_j", e.total_j);
        json.field("active_j", e.active_j);
        json.field("idle_j", e.idle_j);
        json.field("background_j", e.background_j);
        json.field("avg_w", e.avg_w);
        json.field("iter_j", e.iter_j);
        json.field("token_j", e.token_j);
        if (!e.phases.empty()) {
            json.key("phases").beginArray();
            for (const auto &[phase, joules] : e.phases) {
                json.beginObject();
                json.field("phase", phase);
                json.field("joules", joules);
                json.field("share",
                           e.active_j > 0.0 ? joules / e.active_j : 0.0);
                json.endObject();
            }
            json.endArray();
        }
        json.key("resources").beginArray();
        for (const EnergySummary::ResourceEnergy &re : e.resources) {
            json.beginObject();
            json.field("resource", re.resource);
            json.field("busy_w", re.busy_w);
            json.field("idle_w", re.idle_w);
            json.field("busy_j", re.busy_j);
            json.field("transfer_j", re.transfer_j);
            json.field("idle_j", re.idle_j);
            json.field("idle_dependency_j", re.idle_dependency_j);
            json.field("idle_contention_j", re.idle_contention_j);
            json.field("idle_tail_j", re.idle_tail_j);
            json.endObject();
        }
        json.endArray();
        if (!e.background.empty()) {
            json.key("background").beginArray();
            for (const auto &[name, joules] : e.background) {
                json.beginObject();
                json.field("name", name);
                json.field("joules", joules);
                json.endObject();
            }
            json.endArray();
        }
        json.endObject();
    }
    if (!result.extras.empty()) {
        json.key("extras").beginObject();
        for (const auto &[key, value] : result.extras)
            json.field(key, value);
        json.endObject();
    }
    if (!result.notes.empty())
        json.field("notes", result.notes);
    json.endObject();
}

std::string
toJson(const IterationResult &result)
{
    JsonWriter json;
    writeIterationJson(json, result);
    return json.str();
}

} // namespace so::runtime
