/**
 * @file
 * Small statistics helpers used by benchmarks and reports.
 */
#ifndef SO_COMMON_STATS_H
#define SO_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace so {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm),
 * numerically stable for long runs.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void push(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Percentile of a sample set with linear interpolation between closest
 * ranks. @param q in [0, 100]. The input is copied and sorted.
 */
double percentile(std::vector<double> samples, double q);

/** Geometric mean; all samples must be positive. */
double geomean(const std::vector<double> &samples);

} // namespace so

#endif // SO_COMMON_STATS_H
