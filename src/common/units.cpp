#include "common/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace so {

namespace {

std::string
scaled(double value, double unit, const char *suffix)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", value / unit, suffix);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    const double mag = std::fabs(bytes);
    if (mag >= kTiB) return scaled(bytes, kTiB, "TiB");
    if (mag >= kGiB) return scaled(bytes, kGiB, "GiB");
    if (mag >= kMiB) return scaled(bytes, kMiB, "MiB");
    if (mag >= kKiB) return scaled(bytes, kKiB, "KiB");
    return scaled(bytes, 1.0, "B");
}

std::string
formatBandwidth(double bytes_per_sec)
{
    const double mag = std::fabs(bytes_per_sec);
    if (mag >= kTB) return scaled(bytes_per_sec, kTB, "TB/s");
    if (mag >= kGB) return scaled(bytes_per_sec, kGB, "GB/s");
    if (mag >= kMB) return scaled(bytes_per_sec, kMB, "MB/s");
    return scaled(bytes_per_sec, kKB, "KB/s");
}

std::string
formatTime(double seconds)
{
    const double mag = std::fabs(seconds);
    if (mag >= 1.0) return scaled(seconds, 1.0, "s");
    if (mag >= kMs) return scaled(seconds, kMs, "ms");
    if (mag >= kUs) return scaled(seconds, kUs, "us");
    return scaled(seconds, 1e-9, "ns");
}

std::string
formatFlops(double flops_per_sec)
{
    const double mag = std::fabs(flops_per_sec);
    if (mag >= kPFLOPS) return scaled(flops_per_sec, kPFLOPS, "PFLOPS");
    if (mag >= kTFLOPS) return scaled(flops_per_sec, kTFLOPS, "TFLOPS");
    return scaled(flops_per_sec, kGFLOPS, "GFLOPS");
}

std::string
formatParams(double params)
{
    char buf[64];
    if (std::fabs(params) >= kBillion) {
        std::snprintf(buf, sizeof(buf), "%.1fB", params / kBillion);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0fM", params / kMillion);
    }
    return buf;
}

} // namespace so
