/**
 * @file
 * Version tag shared by every JSON document this library emits.
 *
 * Profile documents, result/sweep/bench records, inspection bundles,
 * and check verdicts all carry a top-level (or `meta`-nested)
 * `schema_version` so consumers — `so-report`, the HTML explorer, CI
 * scripts — can tell what they are reading. Readers treat a *newer*
 * version as a warning, never an error: documents only gain fields, so
 * an old reader still understands the subset it knows about.
 */
#ifndef SO_COMMON_SCHEMA_H
#define SO_COMMON_SCHEMA_H

#include <cstdint>

namespace so {

/**
 * Current version of the JSON export schema. Bump when an emitted
 * document changes shape in a way readers must know about (a renamed
 * or re-typed field); adding fields does not require a bump.
 *
 * Version history:
 *  1  initial tagged schema (PR 5)
 *  2  energy subtrees in profile/result/bundle documents; bundles
 *     carry per-resource watts and per-span draw (docs/ENERGY.md)
 */
inline constexpr std::int64_t kSchemaVersion = 2;

} // namespace so

#endif // SO_COMMON_SCHEMA_H
