#include "common/argparse.h"

#include <cstdlib>

namespace so {

ArgParser::ArgParser(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            options_[name.substr(0, eq)] = name.substr(eq + 1);
            continue;
        }
        // `--key value` when the next token is not itself an option;
        // otherwise a bare flag.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_[name] = argv[++i];
        } else {
            options_[name] = "";
        }
    }
}

bool
ArgParser::has(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::string
ArgParser::get(const std::string &name, const std::string &fallback) const
{
    const auto it = options_.find(name);
    return it == options_.end() ? fallback : it->second;
}

long long
ArgParser::getInt(const std::string &name, long long fallback) const
{
    const auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    return (end && *end == '\0') ? value : fallback;
}

double
ArgParser::getDouble(const std::string &name, double fallback) const
{
    const auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0') ? value : fallback;
}

std::vector<std::string>
ArgParser::keys() const
{
    std::vector<std::string> out;
    out.reserve(options_.size());
    for (const auto &[key, value] : options_) {
        (void)value;
        out.push_back(key);
    }
    return out;
}

} // namespace so
