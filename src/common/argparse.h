/**
 * @file
 * Minimal command-line argument parsing for the tools and benches.
 *
 * Supports `--flag`, `--key value`, and `--key=value` forms with typed
 * accessors and defaults. Unknown arguments are collected so callers
 * can reject or forward them.
 */
#ifndef SO_COMMON_ARGPARSE_H
#define SO_COMMON_ARGPARSE_H

#include <map>
#include <string>
#include <vector>

namespace so {

/** Parsed command line with typed lookups. */
class ArgParser
{
  public:
    /** Parse argv[1..argc); never throws, malformed input is ignored. */
    ArgParser(int argc, const char *const *argv);

    /** True when --name appeared (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of --name, or @p fallback when absent/invalid. */
    long long getInt(const std::string &name, long long fallback) const;

    /** Double value of --name, or @p fallback when absent/invalid. */
    double getDouble(const std::string &name, double fallback) const;

    /** Positional (non --key) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** All --key names seen, for unknown-option validation. */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace so

#endif // SO_COMMON_ARGPARSE_H
