#include "common/config_file.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace so {

namespace {

std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

std::string
lower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

} // namespace

ConfigFile
ConfigFile::parse(const std::string &text)
{
    ConfigFile cfg;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        // Strip comments.
        const auto hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        const auto eq = trimmed.find('=');
        if (eq == std::string::npos) {
            cfg.malformed_.push_back(trimmed);
            continue;
        }
        const std::string key = trim(trimmed.substr(0, eq));
        const std::string value = trim(trimmed.substr(eq + 1));
        if (key.empty()) {
            cfg.malformed_.push_back(trimmed);
            continue;
        }
        cfg.values_[key] = value;
    }
    return cfg;
}

ConfigFile
ConfigFile::load(const std::string &path, bool &ok)
{
    std::ifstream in(path);
    if (!in) {
        ok = false;
        return ConfigFile{};
    }
    std::stringstream buf;
    buf << in.rdbuf();
    ok = true;
    return parse(buf.str());
}

bool
ConfigFile::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
ConfigFile::get(const std::string &key, const std::string &fallback) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

long long
ConfigFile::getInt(const std::string &key, long long fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    return (end && *end == '\0') ? value : fallback;
}

double
ConfigFile::getDouble(const std::string &key, double fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0') ? value : fallback;
}

bool
ConfigFile::getBool(const std::string &key, bool fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string v = lower(it->second);
    if (v == "true" || v == "yes" || v == "on" || v == "1")
        return true;
    if (v == "false" || v == "no" || v == "off" || v == "0")
        return false;
    return fallback;
}

} // namespace so
