#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/logging.h"

namespace so {

void
JsonWriter::raw(char c)
{
    if (sink_)
        sink_->put(c);
    else
        out_ += c;
}

void
JsonWriter::raw(std::string_view text)
{
    if (sink_)
        sink_->write(text.data(),
                     static_cast<std::streamsize>(text.size()));
    else
        out_ += text;
}

void
JsonWriter::comma()
{
    if (pending_key_) {
        pending_key_ = false;
        return; // The key already placed the separator.
    }
    if (!has_elem_.empty()) {
        if (has_elem_.back())
            raw(',');
        has_elem_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    raw('{');
    stack_.push_back(true);
    has_elem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SO_ASSERT(!stack_.empty() && stack_.back(), "endObject mismatch");
    SO_ASSERT(!pending_key_, "dangling key before endObject");
    raw('}');
    stack_.pop_back();
    has_elem_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    raw('[');
    stack_.push_back(false);
    has_elem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SO_ASSERT(!stack_.empty() && !stack_.back(), "endArray mismatch");
    raw(']');
    stack_.pop_back();
    has_elem_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    SO_ASSERT(!stack_.empty() && stack_.back(),
              "key() outside an object");
    SO_ASSERT(!pending_key_, "two keys in a row");
    if (has_elem_.back())
        raw(',');
    has_elem_.back() = true;
    raw('"');
    raw(escape(name));
    raw("\":");
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    comma();
    raw('"');
    raw(escape(text));
    raw('"');
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    comma();
    if (!std::isfinite(number)) {
        raw("null");
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    raw(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    comma();
    raw(std::to_string(number));
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    comma();
    raw(std::to_string(number));
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint32_t number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    comma();
    raw(flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    comma();
    raw("null");
    return *this;
}

std::string
JsonWriter::str() const
{
    SO_ASSERT(stack_.empty(), "unterminated JSON structure");
    SO_ASSERT(!sink_, "str() on a streaming JsonWriter");
    return out_;
}

bool
JsonValue::boolean() const
{
    SO_ASSERT(isBool(), "JsonValue is not a boolean");
    return bool_;
}

double
JsonValue::number() const
{
    SO_ASSERT(isNumber(), "JsonValue is not a number");
    return number_;
}

const std::string &
JsonValue::text() const
{
    SO_ASSERT(isString(), "JsonValue is not a string");
    return text_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    SO_ASSERT(isArray(), "JsonValue is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    SO_ASSERT(isObject(), "JsonValue is not an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    SO_ASSERT(isObject(), "JsonValue is not an object");
    for (const auto &[name, value] : members_)
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    SO_ASSERT(value, "JSON object has no member \"", key, "\"");
    return *value;
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWhitespace();
        if (!parseValue(out, 0))
            return false;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    /** Deepest nesting accepted before the parser gives up. */
    static constexpr std::size_t kMaxDepth = 256;

    bool
    fail(const std::string &reason)
    {
        if (error_ && error_->empty())
            *error_ = "offset " + std::to_string(pos_) + ": " + reason;
        return false;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char expected)
    {
        if (pos_ >= text_.size() || text_[pos_] != expected)
            return fail(std::string("expected '") + expected + "'");
        ++pos_;
        return true;
    }

    bool
    parseLiteral(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("invalid literal, expected ") + word);
        pos_ += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the code point (surrogate pairs are
                // passed through individually; the writer never emits
                // them, it only \u-escapes control characters).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a number");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number \"" + token + "\"");
        // strtod happily overflows "1e999" to +/-Inf; JSON has no
        // non-finite numbers (the writer emits null for them), so
        // reject instead of smuggling an Inf into callers.
        if (!std::isfinite(value))
            return fail("number \"" + token +
                        "\" overflows a finite double");
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = value;
        return true;
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        switch (text_[pos_]) {
          case '{': {
            ++pos_;
            out.kind_ = JsonValue::Kind::Object;
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWhitespace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWhitespace();
                if (!consume(':'))
                    return false;
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.members_.emplace_back(std::move(key),
                                          std::move(value));
                skipWhitespace();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return consume('}');
            }
          }
          case '[': {
            ++pos_;
            out.kind_ = JsonValue::Kind::Array;
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.items_.push_back(std::move(value));
                skipWhitespace();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return consume(']');
            }
          }
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.text_);
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return parseLiteral("true", 4);
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return parseLiteral("false", 5);
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return parseLiteral("null", 4);
          default:
            return parseNumber(out);
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string *error)
{
    if (error)
        error->clear();
    out = JsonValue();
    JsonParser parser(text, error);
    return parser.parseDocument(out);
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace so
