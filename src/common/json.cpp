#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace so {

void
JsonWriter::comma()
{
    if (pending_key_) {
        pending_key_ = false;
        return; // The key already placed the separator.
    }
    if (!has_elem_.empty()) {
        if (has_elem_.back())
            out_ += ',';
        has_elem_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    stack_.push_back(true);
    has_elem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SO_ASSERT(!stack_.empty() && stack_.back(), "endObject mismatch");
    SO_ASSERT(!pending_key_, "dangling key before endObject");
    out_ += '}';
    stack_.pop_back();
    has_elem_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    stack_.push_back(false);
    has_elem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SO_ASSERT(!stack_.empty() && !stack_.back(), "endArray mismatch");
    out_ += ']';
    stack_.pop_back();
    has_elem_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    SO_ASSERT(!stack_.empty() && stack_.back(),
              "key() outside an object");
    SO_ASSERT(!pending_key_, "two keys in a row");
    if (has_elem_.back())
        out_ += ',';
    has_elem_.back() = true;
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    comma();
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    comma();
    if (!std::isfinite(number)) {
        out_ += "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    comma();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    comma();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint32_t number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    comma();
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    comma();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    SO_ASSERT(stack_.empty(), "unterminated JSON structure");
    return out_;
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace so
