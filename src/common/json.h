/**
 * @file
 * Minimal streaming JSON writer and recursive-descent parser.
 *
 * Enough JSON for this library's needs — result/report export, the
 * chrome-trace format, and round-trip validation of both in tests —
 * without an external dependency: objects, arrays, strings (escaped),
 * numbers (finite doubles; non-finite values are emitted as null per
 * RFC 8259), booleans.
 */
#ifndef SO_COMMON_JSON_H
#define SO_COMMON_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace so {

/**
 * Builds one JSON document via push/pop calls.
 *
 * Two sinks: the default constructor buffers the document in memory
 * (retrieve it with str()), while the std::ostream constructor streams
 * every byte straight to the stream — peak memory stays O(nesting
 * depth) no matter how large the document grows, which is what the
 * at-scale trace/profile exporters rely on (docs/OBSERVABILITY.md).
 */
class JsonWriter
{
  public:
    /** Buffering writer: the document accumulates for str(). */
    JsonWriter() = default;

    /**
     * Streaming writer: bytes go to @p sink as they are produced and
     * str() must not be called. @p sink must outlive the writer.
     */
    explicit JsonWriter(std::ostream &sink) : sink_(&sink) {}

    /// @name Structure
    /// @{
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** Key for the next value inside an object. */
    JsonWriter &key(const std::string &name);
    /// @}

    /// @name Values
    /// @{
    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::uint32_t number);
    JsonWriter &value(bool flag);
    JsonWriter &null();
    /// @}

    /** Convenience: key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /**
     * The finished document. @panics if structures remain open or the
     * writer streams to an ostream (the document already left).
     */
    std::string str() const;

    /** Escape @p text for embedding in a JSON string literal. */
    static std::string escape(std::string_view text);

  private:
    void comma();
    /** Append raw bytes to the active sink (buffer or stream). */
    void raw(char c);
    void raw(std::string_view text);

    std::ostream *sink_ = nullptr; // Null: buffer into out_.
    std::string out_;
    /** Stack: true = in object (expects keys), false = in array. */
    std::vector<bool> stack_;
    /** Whether the current container already has an element. */
    std::vector<bool> has_elem_;
    bool pending_key_ = false;
};

/**
 * One parsed JSON value. A plain tagged struct rather than a variant:
 * the inactive members are empty/zero, and accessors assert the kind so
 * misuse fails loudly in tests.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** The boolean payload. @panics unless isBool(). */
    bool boolean() const;

    /** The numeric payload. @panics unless isNumber(). */
    double number() const;

    /** The string payload (unescaped). @panics unless isString(). */
    const std::string &text() const;

    /** Array elements in order. @panics unless isArray(). */
    const std::vector<JsonValue> &items() const;

    /** Object members in document order. @panics unless isObject(). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** First member named @p key, or nullptr. @panics unless isObject(). */
    const JsonValue *find(const std::string &key) const;

    /** Like find() but @panics when the key is absent. */
    const JsonValue &at(const std::string &key) const;

    /**
     * Parse @p text as one JSON document (trailing whitespace allowed,
     * trailing garbage rejected). Returns false and fills *@p error
     * (when non-null) with "offset N: reason" on malformed input.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string *error = nullptr);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string text_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace so

#endif // SO_COMMON_JSON_H
