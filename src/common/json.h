/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Enough JSON for this library's needs — result/report export and the
 * chrome-trace format — without an external dependency: objects,
 * arrays, strings (escaped), numbers (finite doubles; non-finite
 * values are emitted as null per RFC 8259), booleans.
 */
#ifndef SO_COMMON_JSON_H
#define SO_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace so {

/** Builds one JSON document via push/pop calls; returns it as text. */
class JsonWriter
{
  public:
    /// @name Structure
    /// @{
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** Key for the next value inside an object. */
    JsonWriter &key(const std::string &name);
    /// @}

    /// @name Values
    /// @{
    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::uint32_t number);
    JsonWriter &value(bool flag);
    JsonWriter &null();
    /// @}

    /** Convenience: key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** The finished document. @panics if structures remain open. */
    std::string str() const;

    /** Escape @p text for embedding in a JSON string literal. */
    static std::string escape(const std::string &text);

  private:
    void comma();

    std::string out_;
    /** Stack: true = in object (expects keys), false = in array. */
    std::vector<bool> stack_;
    /** Whether the current container already has an element. */
    std::vector<bool> has_elem_;
    bool pending_key_ = false;
};

} // namespace so

#endif // SO_COMMON_JSON_H
