/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: `panic` is for internal invariant
 * violations (bugs in this library), `fatal` is for user errors that make
 * continuing impossible, `warn`/`inform` are non-fatal status channels.
 */
#ifndef SO_COMMON_LOGGING_H
#define SO_COMMON_LOGGING_H

#include <cstdint>
#include <sstream>
#include <string>

namespace so {

/** Severity of a log message. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Shape of an emitted log line. Human is the default `[level] message`
 * form; Json emits one structured JSON object per line (level,
 * component, message, monotonic timestamp) for machine consumers —
 * CI collectors, `jq` over captured stderr. The SO_LOG_JSON
 * environment variable ("1"/"true"/"yes"/"on", case-insensitive)
 * selects Json on first use; an explicit setLogFormat() call wins.
 */
enum class LogFormat { Human, Json };

namespace log_detail {

/** Emit one formatted line to the log sink. */
void emit(LogLevel level, const std::string &msg);

/** Abort the process after reporting an internal bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit the process after reporting an unrecoverable user error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Re-read SO_LOG_LEVEL and SO_LOG_JSON and apply them (normally done
 * automatically on first logging use). Exposed so tests can exercise
 * the environment hooks after setenv().
 */
void reapplyEnvLogLevel();

/** Stringify a pack of arguments with operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace log_detail

/**
 * Minimum level that reaches the sink; defaults to Info. The
 * SO_LOG_LEVEL environment variable ("debug", "info", "warn"/"warning",
 * "error"; case-insensitive) overrides the default on first use, so
 * bench/CI runs can silence info-level chatter without recompiling; an
 * explicit setLogLevel() call wins over the environment.
 */
void setLogLevel(LogLevel level);

/** Current minimum level. */
LogLevel logLevel();

/**
 * Parse a level name as accepted by SO_LOG_LEVEL. Sets *@p ok (when
 * non-null) to whether @p text was recognized; unrecognized input
 * returns @p fallback.
 */
LogLevel parseLogLevel(const std::string &text,
                       LogLevel fallback = LogLevel::Info,
                       bool *ok = nullptr);

/**
 * Shape of lines reaching the sink; defaults to Human, overridden by
 * SO_LOG_JSON on first use. An explicit call wins over the
 * environment.
 */
void setLogFormat(LogFormat format);

/** Current sink format. */
LogFormat logFormat();

/**
 * Format one log line (without trailing newline) exactly as the sink
 * would emit it: `[level t<tid>] message` for Human,
 * `{"ts_s":…,"level":"…","tid":…,"component":"…","message":"…"}` for
 * Json (message JSON-escaped, @p ts_s the monotonic seconds since
 * logging started). @p tid is the emitting thread's stable small id —
 * the same numbering so::trace uses in the host Chrome trace and the
 * heartbeat, so log lines correlate with spans. Pure — exposed so
 * tests pin both formats without capturing stderr.
 */
std::string formatLogLine(LogLevel level, const std::string &component,
                          const std::string &message, double ts_s,
                          std::uint32_t tid, LogFormat format);

/** Informative message a user should see but not worry about. */
template <typename... Args>
void
inform(Args &&...args)
{
    log_detail::emit(LogLevel::Info,
                     log_detail::concat(std::forward<Args>(args)...));
}

/** Something may be modelled imperfectly; output may still be usable. */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::emit(LogLevel::Warn,
                     log_detail::concat(std::forward<Args>(args)...));
}

/** Verbose diagnostics, off by default. */
template <typename... Args>
void
debug(Args &&...args)
{
    log_detail::emit(LogLevel::Debug,
                     log_detail::concat(std::forward<Args>(args)...));
}

} // namespace so

/** Internal invariant violated: report and abort (library bug). */
#define SO_PANIC(...)                                                        \
    ::so::log_detail::panicImpl(__FILE__, __LINE__,                          \
                                ::so::log_detail::concat(__VA_ARGS__))

/** Unrecoverable user/configuration error: report and exit(1). */
#define SO_FATAL(...)                                                        \
    ::so::log_detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::so::log_detail::concat(__VA_ARGS__))

/** Cheap always-on assertion that panics with context on failure. */
#define SO_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SO_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);         \
        }                                                                    \
    } while (0)

#endif // SO_COMMON_LOGGING_H
