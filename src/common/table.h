/**
 * @file
 * Console table rendering for benchmark harnesses.
 *
 * Every table/figure reproduction binary prints its rows through this
 * class so output is uniform and machine-parseable (CSV mode).
 */
#ifndef SO_COMMON_TABLE_H
#define SO_COMMON_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace so {

class JsonWriter;

/** A simple aligned text table with an optional title and CSV export. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; shorter rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string num(double value, int digits = 2);

    /** Format helper: integer. */
    static std::string num(long long value);

    /** Render as an aligned table. */
    std::string str() const;

    /** Render as CSV (header + rows). */
    std::string csv() const;

    /**
     * Emit {title, header, rows} as one JSON object into an in-progress
     * document. Cells stay strings: the table stores formatted text.
     */
    void writeJson(JsonWriter &json) const;

    const std::string &title() const { return title_; }

    /** Print the aligned table to @p out (defaults to stdout). */
    void print(std::FILE *out = stdout) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace so

#endif // SO_COMMON_TABLE_H
