/**
 * @file
 * Minimal fixed-size thread pool with a parallel-for helper.
 *
 * GraceAdam (§4.6 of the paper) pairs instruction-level parallelism with
 * OpenMP-style multithreading across Grace's 72 cores; this pool is the
 * portable stand-in for that outer level of parallelism.
 */
#ifndef SO_COMMON_THREAD_POOL_H
#define SO_COMMON_THREAD_POOL_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace so {

/**
 * Fixed-size worker pool; tasks are std::function<void()>.
 *
 * Every pool publishes into MetricsRegistry::global():
 *   - pool.tasks_submitted (counter, Execution scope): submit() calls;
 *   - pool.parallel_for_items (counter, Stable): elements covered by
 *     parallelFor(), independent of how they were chunked;
 *   - pool.queue_wait_s (histogram): submit-to-dequeue latency;
 *   - pool.task_run_s (histogram): task execution time.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardware_concurrency(). */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have finished. If any task threw,
     * rethrows the first captured exception (later ones are dropped);
     * the pool stays usable afterwards.
     */
    void wait();

    /**
     * Run fn(begin, end) over [0, n) split into contiguous chunks, one
     * per worker, and block until done. Chunks are balanced to within one
     * element. Runs inline when the pool has a single worker or n is
     * small.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)> &fn);

  private:
    /** A submitted task plus its enqueue time (queue-wait metric). */
    struct Job
    {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<Job> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_done_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
    /** First exception thrown by a task since the last wait(). */
    std::exception_ptr first_error_;
};

} // namespace so

#endif // SO_COMMON_THREAD_POOL_H
