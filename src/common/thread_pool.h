/**
 * @file
 * Minimal fixed-size thread pool with a parallel-for helper.
 *
 * GraceAdam (§4.6 of the paper) pairs instruction-level parallelism with
 * OpenMP-style multithreading across Grace's 72 cores; this pool is the
 * portable stand-in for that outer level of parallelism.
 */
#ifndef SO_COMMON_THREAD_POOL_H
#define SO_COMMON_THREAD_POOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace so {

/**
 * Fixed-size worker pool; tasks are std::function<void()>.
 *
 * Every pool publishes into MetricsRegistry::global():
 *   - pool.tasks_submitted (counter, Execution scope): submit() calls;
 *   - pool.parallel_for_items (counter, Stable): elements covered by
 *     parallelFor(), independent of how they were chunked;
 *   - pool.queue_wait_s (histogram): submit-to-dequeue latency;
 *   - pool.task_run_s (histogram): task execution time.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardware_concurrency(). */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have finished. If any task threw,
     * rethrows the first captured exception (later ones are dropped);
     * the pool stays usable afterwards.
     */
    void wait();

    /**
     * Run fn(begin, end) over [0, n) split into contiguous chunks, one
     * per worker, and block until done. Chunks are balanced to within one
     * element. Runs inline when the pool has a single worker or n is
     * small.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)> &fn);

  private:
    /** A submitted task plus its enqueue time (queue-wait metric). */
    struct Job
    {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();
    /** Append to the ring, growing it when full. Caller holds mutex_. */
    void pushLocked(Job job);
    /** Pop the oldest job. Caller holds mutex_; count_ must be > 0. */
    Job popLocked();

    std::vector<std::thread> workers_;
    /**
     * Pre-sized ring buffer of pending jobs: steady-state submit/dequeue
     * reuses slots instead of allocating a queue node per job. Capacity
     * only grows (doubling), never shrinks.
     */
    std::vector<Job> ring_;
    std::size_t head_ = 0;  ///< Index of the oldest queued job.
    std::size_t count_ = 0; ///< Queued jobs (guarded by mutex_).
    /**
     * Mirror of count_ readable without the lock: workers use it for a
     * double-checked empty test, so a busy worker finishing a job pays
     * no condition-variable round trip when more work is visible (and a
     * spuriously woken one re-checks cheaply).
     */
    std::atomic<std::size_t> queued_{0};
    /** Submitted-but-unfinished jobs; wait() blocks on this. */
    std::atomic<std::size_t> in_flight_{0};
    /** Workers inside cv_task_.wait(); guarded by mutex_. submit()
     *  elides its notify when this is zero (busy workers re-check
     *  queued_ before sleeping, so the job cannot be missed). */
    std::size_t idle_workers_ = 0;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_done_;
    bool stop_ = false;
    /** First exception thrown by a task since the last wait(). */
    std::exception_ptr first_error_;
};

} // namespace so

#endif // SO_COMMON_THREAD_POOL_H
