/**
 * @file
 * Tiny INI-style configuration file reader.
 *
 * Format: one `key = value` per line, `#` or `;` comments, blank lines
 * ignored, later keys override earlier ones. Used by the planner CLI
 * so training jobs can be described declaratively.
 */
#ifndef SO_COMMON_CONFIG_FILE_H
#define SO_COMMON_CONFIG_FILE_H

#include <map>
#include <string>
#include <vector>

namespace so {

/** Parsed key/value configuration with typed lookups. */
class ConfigFile
{
  public:
    /** Parse from text; malformed lines are collected, not fatal. */
    static ConfigFile parse(const std::string &text);

    /** Load from a file. @param ok set false when the file is
     * unreadable (the returned config is then empty). */
    static ConfigFile load(const std::string &path, bool &ok);

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;
    long long getInt(const std::string &key, long long fallback) const;
    double getDouble(const std::string &key, double fallback) const;

    /** "true/yes/on/1" => true; "false/no/off/0" => false. */
    bool getBool(const std::string &key, bool fallback) const;

    /** Lines that failed to parse (for diagnostics). */
    const std::vector<std::string> &malformedLines() const
    {
        return malformed_;
    }

    std::size_t size() const { return values_.size(); }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> malformed_;
};

} // namespace so

#endif // SO_COMMON_CONFIG_FILE_H
