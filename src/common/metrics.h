/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and value
 * histograms with a scoped-timer helper and deterministic JSON export.
 *
 * The registry is the measurement substrate behind the paper's
 * observability claims (Figs. 4 and 15 are idle-time and utilization
 * breakdowns): the thread pool, the sweep engine, and the STV trainers
 * all publish into it, and benches/CI read one snapshot at the end of a
 * run instead of each subsystem growing ad-hoc counters.
 *
 * Determinism contract: metrics recorded with MetricScope::Stable count
 * *logical* work (cells evaluated, cache hits, training steps) and must
 * be identical for a given workload regardless of thread count or
 * scheduling. MetricScope::Execution covers quantities that legitimately
 * depend on how the work was executed (thread-pool task counts, chunk
 * splits). Histograms record wall-clock observations (with a reservoir
 * sample backing p50/p95/p99 summaries) and are exempt from any
 * determinism claim. MetricsSnapshot::stableJson() exports only the
 * Stable counters/gauges — never histograms — so two runs of the same
 * workload under different --jobs settings can be diffed byte for byte.
 */
#ifndef SO_COMMON_METRICS_H
#define SO_COMMON_METRICS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace so {

class JsonWriter;

/** Determinism class of a counter or gauge (see file comment). */
enum class MetricScope
{
    /** Counts logical work: identical across thread counts. */
    Stable,
    /** Depends on execution shape (thread count, chunking). */
    Execution,
};

/** Point-in-time copy of one counter. */
struct CounterValue
{
    std::string name;
    std::int64_t value = 0;
    MetricScope scope = MetricScope::Stable;
};

/** Point-in-time copy of one gauge. */
struct GaugeValue
{
    std::string name;
    double value = 0.0;
    MetricScope scope = MetricScope::Stable;
};

/**
 * Point-in-time copy of one histogram (count/sum/min/max/mean plus a
 * quantile summary). Quantiles come from a fixed-size reservoir sample
 * (Algorithm R, 512 slots) kept per histogram: exact until the 513th
 * observation, an unbiased uniform sample afterwards.
 */
struct HistogramValue
{
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Reservoir sample of the observations, sorted ascending. */
    std::vector<double> sample;

    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }

    /**
     * Quantile @p q in [0, 1] of the reservoir sample, linearly
     * interpolated between order statistics; 0 when no observations.
     */
    double quantile(double q) const;
};

/** Consistent copy of a registry, sorted by metric name. */
struct MetricsSnapshot
{
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /** Counter value by name; @p fallback when absent. */
    std::int64_t counter(const std::string &name,
                         std::int64_t fallback = 0) const;

    /** Gauge value by name; @p fallback when absent. */
    double gauge(const std::string &name, double fallback = 0.0) const;

    /** Histogram by name; nullptr when absent. */
    const HistogramValue *histogram(const std::string &name) const;

    /**
     * The whole snapshot as one JSON document:
     * {counters:{..}, gauges:{..}, histograms:{name:{count,sum,...}}}.
     * Key order is name order, so equal snapshots render equal text.
     */
    std::string json() const;

    /**
     * Only the Stable counters and gauges, as {counters:{..},
     * gauges:{..}} — the byte-comparable projection of the registry.
     */
    std::string stableJson() const;

    /** Emit json()'s object into an in-progress document. */
    void write(JsonWriter &json) const;
};

/**
 * Thread-safe named-metric store. All operations auto-register the
 * metric on first use; a metric's kind (counter/gauge/histogram) and
 * scope are fixed by that first use (@panics on a kind mismatch).
 *
 * Construction is cheap; subsystems either share the process-wide
 * global() instance (the default wiring) or own a private registry
 * (tests needing isolation).
 */
class MetricsRegistry
{
  public:
    /** Add @p delta to counter @p name (registering it on first use). */
    void add(const std::string &name, std::int64_t delta = 1,
             MetricScope scope = MetricScope::Stable);

    /** Set gauge @p name to @p value. */
    void set(const std::string &name, double value,
             MetricScope scope = MetricScope::Stable);

    /** Fold @p value into histogram @p name. */
    void observe(const std::string &name, double value);

    /** Consistent copy of every metric, sorted by name. */
    MetricsSnapshot snapshot() const;

    /** Drop every metric (tests / bench isolation). */
    void reset();

    /** The process-wide registry all built-in wiring publishes to. */
    static MetricsRegistry &global();

  private:
    struct Counter
    {
        std::int64_t value = 0;
        MetricScope scope = MetricScope::Stable;
    };
    struct Gauge
    {
        double value = 0.0;
        MetricScope scope = MetricScope::Stable;
    };
    struct Histogram
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        /** Reservoir sample (Algorithm R) backing the quantiles. */
        std::vector<double> sample;
        /** Per-histogram LCG state for the reservoir replacements. */
        std::uint64_t rng = 0x853c49e68282b3fbULL;
    };

    mutable std::mutex mutex_;
    // std::map: snapshot order (and therefore JSON key order) is name
    // order, independent of registration order.
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * RAII timer: records the elapsed seconds between construction and
 * destruction into a histogram. Move-only; a moved-from timer records
 * nothing.
 *
 *     { ScopedTimer t(MetricsRegistry::global(), "sweep.cell_s"); ... }
 */
class ScopedTimer
{
  public:
    ScopedTimer(MetricsRegistry &registry, std::string name);
    ~ScopedTimer();

    ScopedTimer(ScopedTimer &&other) noexcept;
    ScopedTimer &operator=(ScopedTimer &&) = delete;
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Record now instead of at destruction (idempotent). */
    void stop();

  private:
    MetricsRegistry *registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace so

#endif // SO_COMMON_METRICS_H
