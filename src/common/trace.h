/**
 * @file
 * Host-side self-tracing: see the engine, not just the schedules.
 *
 * Everything else in this library observes *simulated* time — traces,
 * profiles, and energy numbers of the modeled workload. so::trace
 * observes the engine itself: where SweepEngine wall-clock actually
 * goes (fingerprinting vs cache probes vs simulation vs profiling vs
 * JSON serialization), how evenly ThreadPool workers are loaded, and
 * what a long-running process is doing right now.
 *
 * Design (docs/SELFTRACE.md):
 *  - Always compiled, near-zero cost when disabled: recording sites
 *    construct a Span, whose constructor is one relaxed atomic load
 *    and a branch when tracing is off. No clocks, no locks, no
 *    allocation on the disabled path.
 *  - Per-thread bounded ring buffers: each thread records into its own
 *    fixed-capacity ring (newest spans overwrite the oldest), so
 *    recording never contends across threads and memory is strictly
 *    bounded. Overwritten spans are counted in an explicit per-thread
 *    drop counter — never silently lost. Exact per-category totals and
 *    per-worker busy accumulators are updated on every record, so the
 *    self-profile summary stays exact even after the ring wraps.
 *  - Stable thread ids: currentTid() hands out small sequential ids in
 *    first-use order (the main thread is 0 when it touches the tracer
 *    first). The same numbering appears in log lines (`tid` field),
 *    the host Chrome trace, and the heartbeat, so all three correlate.
 *  - Two export paths: toChromeTrace() renders the collected spans as
 *    a chrome://tracing document under a host pid distinct from the
 *    simulated-schedule pids (so both open merged in one viewer), and
 *    selfProfileJson() summarizes wall time by category, per-worker
 *    busy fractions, queue-wait percentiles, and the cache hit/miss
 *    latency split (schema-stamped like every other JSON artifact).
 *  - Live heartbeat: SO_HEARTBEAT=<path>[:interval_ms] spawns a
 *    sampler thread that atomically (write-temp-then-rename) rewrites
 *    a small status JSON — metrics snapshot, in-flight spans, sweep
 *    progress/ETA, RSS — so an external watcher can monitor a running
 *    sweep without attaching a debugger.
 *
 * Activation: initFromEnv() reads SO_TRACE ("1"/"true"/"yes"/"on"
 * enables; any other non-empty value enables *and* registers an
 * at-exit export of the Chrome trace to that path, with the summary
 * next to it) and SO_HEARTBEAT. Harness --self-trace is the
 * command-line equivalent (bench/bench_util.h).
 */
#ifndef SO_COMMON_TRACE_H
#define SO_COMMON_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace so::trace {

/** Subsystem a span belongs to (the Chrome-trace "cat" field). */
enum class Category : std::uint8_t
{
    Pool,      ///< ThreadPool job execution (queue wait as an arg).
    Sweep,     ///< SweepEngine phases: enumerate/fingerprint/cache/select.
    Sim,       ///< Discrete-event Scheduler::run.
    Profile,   ///< Schedule profiling and energy attribution passes.
    Serialize, ///< JSON rendering: results, traces, bundles, records.
    Render,    ///< Explorer HTML assembly.
    Report,    ///< so-report subcommands.
    Bench,     ///< Bench harness phases.
    Other,
};

/** Number of distinct Category values (accumulator array size). */
inline constexpr std::size_t kCategoryCount = 9;

/** Stable lowercase name of @p cat ("pool", "sweep", ...). */
const char *categoryName(Category cat);

namespace detail {
/** The process-wide enabled flag; read via enabled() only. */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Whether spans are currently being recorded (relaxed load). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Switch recording on or off (spans already recorded are kept). */
void setEnabled(bool on);

/**
 * Per-thread ring capacity (spans) for buffers created *after* this
 * call; existing buffers keep their size. Default 65536. Clamped to
 * at least 16.
 */
void setRingCapacity(std::size_t spans);

/**
 * Small sequential id of the calling thread, assigned on first use
 * (also by log lines and heartbeats, so the numbering is shared).
 */
std::uint32_t currentTid();

/** One completed span. Names are static strings (never freed). */
struct SpanRecord
{
    Category category = Category::Other;
    const char *name = "";
    double t0 = 0.0; ///< Seconds since the process trace epoch.
    double t1 = 0.0;
    std::uint32_t tid = 0;
    /** Up to two numeric args (key is a static string; null = unset). */
    const char *arg_key[2] = {nullptr, nullptr};
    double arg_val[2] = {0.0, 0.0};
};

/**
 * RAII span: records [construction, destruction) into the calling
 * thread's ring when tracing was enabled at construction. When
 * disabled, construction is a relaxed load + branch and nothing else.
 */
class Span
{
  public:
    Span(Category category, const char *name);
    ~Span() { end(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a numeric arg (at most two; extras are dropped). */
    void arg(const char *key, double value);

    /** Record now instead of at destruction (idempotent). */
    void end();

  private:
    SpanRecord rec_;
    bool armed_ = false;
};

/** A span still open at sampling time (heartbeat introspection). */
struct InFlightSpan
{
    Category category = Category::Other;
    const char *name = "";
    double t0 = 0.0;
    std::uint32_t tid = 0;
};

/** Merged snapshot of every thread's recorded spans. */
struct CollectedTrace
{
    /** All retained spans, sorted by (t0, tid) — deterministic. */
    std::vector<SpanRecord> spans;
    /** Spans overwritten by ring wrap, per tid (ascending tid). */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> dropped_by_tid;
    /** Sum over dropped_by_tid. */
    std::uint64_t dropped = 0;
    /**
     * Exact per-category (count, total seconds), immune to ring wrap:
     * indexed by static_cast<size_t>(Category).
     */
    std::uint64_t category_count[kCategoryCount] = {};
    double category_s[kCategoryCount] = {};

    /** Exact ThreadPool job load of one worker thread. */
    struct WorkerBusy
    {
        std::uint32_t tid = 0;
        std::uint64_t jobs = 0;
        double busy_s = 0.0;
    };
    /** Per-tid job accumulators, ascending tid (workers only). */
    std::vector<WorkerBusy> job_busy_by_tid;
};

/** Snapshot all thread buffers (does not clear them). */
CollectedTrace collect();

/** Spans currently open across all threads (racy but safe). */
std::vector<InFlightSpan> inFlightSpans();

/** Drop every recorded span, drop counter, and accumulator (tests). */
void clearAll();

/**
 * Chrome-trace pid of the host engine process. Simulated-schedule
 * traces use the resource index (0..N) as pid; this constant keeps the
 * host rows distinct so both documents open merged in one viewer.
 */
inline constexpr int kHostTracePid = 9999;

/**
 * Render @p trace as a chrome://tracing JSON document: one complete
 * ("X") event per span under pid kHostTracePid, thread_name metadata
 * per tid, args carried through, and a "dropped_spans" counter per tid
 * that overflowed.
 */
std::string toChromeTrace(const CollectedTrace &trace);

/** toChromeTrace streamed to @p os: events go out as produced, so the
 *  document never materializes in memory. */
void streamChromeTrace(std::ostream &os, const CollectedTrace &trace);

/**
 * Self-profile summary JSON (schema-stamped): wall seconds by
 * category, per-worker busy fraction, queue-wait percentiles (from a
 * MetricsRegistry reservoir over the retained pool spans), and the
 * cache-probe hit/miss latency split. @p wall_s overrides the wall
 * window (<= 0: span extent).
 */
std::string selfProfileJson(const CollectedTrace &trace,
                            double wall_s = 0.0);

// ------------------------------------------------------------------
// Sweep progress (feeds --progress ETA lines and the heartbeat).

/** Point-in-time view of the running sweep batch. */
struct ProgressSnapshot
{
    /** Simulations this batch must run (cache hits excluded). */
    std::uint64_t total_units = 0;
    std::uint64_t done_units = 0;
    /** Cells served from the fingerprint cache this batch. */
    std::uint64_t cached_cells = 0;
    /** Seconds since the batch began (0 when no batch started). */
    double elapsed_s = 0.0;
    /** Completed simulations per second (0 until one completes). */
    double rate_per_s = 0.0;
    /**
     * Estimated seconds to completion, or a negative value when not
     * yet estimable (too few completions / too little elapsed time).
     */
    double eta_s = -1.0;
    bool active = false;
};

/** Begin a sweep batch of @p total_units simulations. */
void progressBegin(std::uint64_t total_units, std::uint64_t cached_cells);

/** Mark one simulation complete (thread-safe). */
void progressTick();

/** End the active batch (progress keeps reporting the final state). */
void progressEnd();

/** Current progress; ETA clamped out until it is meaningful. */
ProgressSnapshot progressSnapshot();

/**
 * ETA in seconds from the completed-unit rate, or a negative value
 * when not yet estimable. Pure — exposed so tests pin the clamping
 * rule: needs done >= 3, elapsed >= 0.5 s, and done <= total.
 */
double etaSeconds(std::uint64_t done, std::uint64_t total,
                  double elapsed_s);

// ------------------------------------------------------------------
// Heartbeat: live status JSON for external watchers.

/**
 * Status document written by the heartbeat (also directly callable —
 * tests pin the schema without spawning the sampler):
 * {schema_version, kind:"heartbeat", pid, uptime_s, rss_bytes,
 *  trace:{enabled, spans, dropped}, progress:{...}, in_flight:[...],
 *  metrics:{...}}.
 */
std::string heartbeatJson();

/**
 * Start the sampler thread: every @p interval_ms it writes
 * heartbeatJson() to @p path via write-temp-then-rename, so readers
 * always see a complete document. Restarting replaces the previous
 * sampler. Stops automatically at process exit (after one final
 * write).
 */
void startHeartbeat(const std::string &path, int interval_ms = 1000);

/** Stop the sampler (writes one final heartbeat first). No-op when
 *  none is running. */
void stopHeartbeat();

/** Resident set size in bytes (/proc/self/statm; 0 if unavailable). */
double rssBytes();

/**
 * Apply SO_TRACE and SO_HEARTBEAT (idempotent; cheap when neither is
 * set). SO_TRACE: truthy ("1"/"true"/"yes"/"on", case-insensitive)
 * enables recording; any other non-empty value enables recording and
 * registers an at-exit Chrome-trace export to that path (summary
 * written next to it as <path minus .json>.selfprofile.json).
 * SO_HEARTBEAT=<path>[:interval_ms] starts the sampler (default
 * 1000 ms, clamped to >= 20).
 */
void initFromEnv();

/**
 * Register an at-exit export of the collected spans: Chrome trace to
 * @p path, self-profile summary next to it. Idempotent per path.
 */
void exportOnExit(const std::string &path);

/** Write Chrome trace + summary for @p path now (the at-exit body). */
void writeExport(const std::string &path);

} // namespace so::trace

#endif // SO_COMMON_TRACE_H
