#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"

namespace so {

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
Table::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
Table::num(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

std::string
Table::str() const
{
    // Compute column widths over header and all rows.
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());
    std::vector<std::size_t> width(cols, 0);
    auto grow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            os << cell << std::string(width[i] - cell.size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            // Quote cells containing separators.
            if (row[i].find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char c : row[i]) {
                    if (c == '"')
                        os << '"';
                    os << c;
                }
                os << '"';
            } else {
                os << row[i];
            }
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.field("title", title_);
    json.key("header").beginArray();
    for (const std::string &cell : header_)
        json.value(cell);
    json.endArray();
    json.key("rows").beginArray();
    for (const auto &row : rows_) {
        json.beginArray();
        for (const std::string &cell : row)
            json.value(cell);
        json.endArray();
    }
    json.endArray();
    json.endObject();
}

void
Table::print(std::FILE *out) const
{
    const std::string text = str();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
}

} // namespace so
