#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "common/json.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/schema.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace so::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using clock_type = std::chrono::steady_clock;

/** Process trace epoch: all span times are seconds since this point. */
clock_type::time_point
epoch()
{
    static const clock_type::time_point start = clock_type::now();
    return start;
}

double
nowSeconds()
{
    return std::chrono::duration<double>(clock_type::now() - epoch())
        .count();
}

std::atomic<std::size_t> g_ring_capacity{65536};

/** Maximum simultaneously open spans tracked per thread. */
constexpr std::size_t kMaxOpen = 16;

/**
 * One thread's recording state. Created on the thread's first span (or
 * currentTid() call) and intentionally never freed: pool workers may be
 * gone by the time the main thread exports, and their spans must
 * survive them.
 */
struct ThreadBuffer
{
    explicit ThreadBuffer(std::uint32_t id, std::size_t capacity)
        : tid(id), ring(capacity)
    {
    }

    const std::uint32_t tid;

    mutable std::mutex mutex;
    std::vector<SpanRecord> ring; ///< Fixed capacity; wraps.
    std::uint64_t total = 0;      ///< Spans ever recorded here.

    /** Exact accumulators (see CollectedTrace): survive ring wrap. */
    std::uint64_t cat_count[kCategoryCount] = {};
    double cat_s[kCategoryCount] = {};
    std::uint64_t jobs = 0;
    double job_busy_s = 0.0;

    /** Currently open spans (LIFO by RAII nesting). */
    InFlightSpan open[kMaxOpen];
    std::size_t depth = 0;

    std::uint64_t dropped() const
    {
        return total > ring.size() ? total - ring.size() : 0;
    }

    void
    record(const SpanRecord &rec)
    {
        std::lock_guard<std::mutex> lock(mutex);
        ring[total % ring.size()] = rec;
        ++total;
        const auto c = static_cast<std::size_t>(rec.category);
        ++cat_count[c];
        cat_s[c] += rec.t1 - rec.t0;
        if (rec.category == Category::Pool &&
            std::strcmp(rec.name, "job") == 0) {
            ++jobs;
            job_busy_s += rec.t1 - rec.t0;
        }
    }
};

/**
 * All thread buffers ever created. Leaked on purpose (never destroyed)
 * so collect()/heartbeat stay safe during late static destruction.
 */
struct Registry
{
    std::mutex mutex;
    std::vector<ThreadBuffer *> buffers;
    std::uint32_t next_tid = 0;
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer *buf = [] {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        auto *b = new ThreadBuffer(
            reg.next_tid++,
            std::max<std::size_t>(
                16, g_ring_capacity.load(std::memory_order_relaxed)));
        reg.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

constexpr const char *kCategoryNames[kCategoryCount] = {
    "pool",      "sweep",  "sim",   "profile", "serialize",
    "render",    "report", "bench", "other"};

int
processId()
{
#if defined(__unix__) || defined(__APPLE__)
    return static_cast<int>(::getpid());
#else
    return 0;
#endif
}

/** Write @p doc to @p path via temp + rename; false on I/O failure. */
bool
writeAtomically(const std::string &path, const std::string &doc)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(processId());
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (!out)
        return false;
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), out) == doc.size() &&
        std::fputc('\n', out) != EOF;
    if (std::fclose(out) != 0 || !ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

// ---------------------------------------------------------- progress

struct ProgressState
{
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> cached{0};
    /** Batch start, nanoseconds since epoch(); <0 = no batch yet. */
    std::atomic<std::int64_t> start_ns{-1};
    std::atomic<bool> active{false};
};

ProgressState g_progress;

// --------------------------------------------------------- heartbeat

struct HeartbeatRunner
{
    std::mutex mutex;
    std::condition_variable cv;
    std::thread worker;
    std::string path;
    int interval_ms = 1000;
    bool stop = false;

    ~HeartbeatRunner() { stopAndJoin(); }

    void
    start(const std::string &p, int ms)
    {
        stopAndJoin();
        {
            std::lock_guard<std::mutex> lock(mutex);
            path = p;
            interval_ms = std::max(20, ms);
            stop = false;
        }
        worker = std::thread([this] { loop(); });
    }

    void
    stopAndJoin()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (!worker.joinable())
                return;
            stop = true;
        }
        cv.notify_all();
        worker.join();
    }

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            const std::string p = path;
            lock.unlock();
            // Sampling outside the lock: heartbeatJson() snapshots the
            // metrics registry and every trace buffer.
            if (!writeAtomically(p, heartbeatJson()))
                warn("heartbeat: cannot write ", p);
            lock.lock();
            if (stop)
                return; // Final write above already reflects the end.
            cv.wait_for(lock,
                        std::chrono::milliseconds(interval_ms),
                        [this] { return stop; });
            if (stop) {
                // One last write so watchers see the final state.
                const std::string fin = path;
                lock.unlock();
                writeAtomically(fin, heartbeatJson());
                lock.lock();
                return;
            }
        }
    }
};

HeartbeatRunner &
heartbeatRunner()
{
    // Touch the metrics registry first: its function-local static must
    // complete construction before the runner's, so static destruction
    // (reverse completion order) tears the runner down while the
    // registry — which the final heartbeat write reads — still lives.
    MetricsRegistry::global();
    static HeartbeatRunner runner;
    return runner;
}

// ------------------------------------------------------------ export

std::mutex g_export_mutex;
std::string g_export_path;

void
exportAtExit()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(g_export_mutex);
        path = g_export_path;
    }
    if (!path.empty())
        writeExport(path);
}

} // namespace

const char *
categoryName(Category cat)
{
    const auto index = static_cast<std::size_t>(cat);
    return index < kCategoryCount ? kCategoryNames[index] : "other";
}

void
setEnabled(bool on)
{
    // Pin the epoch before the first span so times start near zero.
    epoch();
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
setRingCapacity(std::size_t spans)
{
    g_ring_capacity.store(std::max<std::size_t>(16, spans),
                          std::memory_order_relaxed);
}

std::uint32_t
currentTid()
{
    return threadBuffer().tid;
}

Span::Span(Category category, const char *name)
{
    if (!enabled())
        return;
    armed_ = true;
    rec_.category = category;
    rec_.name = name;
    rec_.t0 = nowSeconds();
    ThreadBuffer &buf = threadBuffer();
    rec_.tid = buf.tid;
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.depth < kMaxOpen)
        buf.open[buf.depth] = {category, name, rec_.t0, buf.tid};
    ++buf.depth;
}

void
Span::arg(const char *key, double value)
{
    if (!armed_)
        return;
    for (auto i = 0; i < 2; ++i) {
        if (rec_.arg_key[i] == nullptr) {
            rec_.arg_key[i] = key;
            rec_.arg_val[i] = value;
            return;
        }
    }
}

void
Span::end()
{
    if (!armed_)
        return;
    armed_ = false;
    rec_.t1 = nowSeconds();
    ThreadBuffer &buf = threadBuffer();
    {
        std::lock_guard<std::mutex> lock(buf.mutex);
        if (buf.depth > 0)
            --buf.depth;
    }
    buf.record(rec_);
}

CollectedTrace
collect()
{
    CollectedTrace out;
    std::vector<ThreadBuffer *> buffers;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    // Registered in tid order already, but sort defensively: the
    // export surfaces promise ascending tid.
    std::sort(buffers.begin(), buffers.end(),
              [](const ThreadBuffer *a, const ThreadBuffer *b) {
                  return a->tid < b->tid;
              });
    for (ThreadBuffer *buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        const std::size_t cap = buf->ring.size();
        const std::size_t kept =
            static_cast<std::size_t>(std::min<std::uint64_t>(
                buf->total, static_cast<std::uint64_t>(cap)));
        const std::size_t first =
            buf->total > cap ? buf->total % cap : 0;
        for (std::size_t i = 0; i < kept; ++i)
            out.spans.push_back(buf->ring[(first + i) % cap]);
        if (buf->dropped() > 0)
            out.dropped_by_tid.emplace_back(buf->tid, buf->dropped());
        out.dropped += buf->dropped();
        for (std::size_t c = 0; c < kCategoryCount; ++c) {
            out.category_count[c] += buf->cat_count[c];
            out.category_s[c] += buf->cat_s[c];
        }
        if (buf->jobs > 0)
            out.job_busy_by_tid.push_back(
                {buf->tid, buf->jobs, buf->job_busy_s});
    }
    // Deterministic merge order regardless of which thread ran what
    // when: ascending (t0, tid), name as a final stable tiebreak.
    std::stable_sort(out.spans.begin(), out.spans.end(),
                     [](const SpanRecord &a, const SpanRecord &b) {
                         if (a.t0 != b.t0)
                             return a.t0 < b.t0;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return std::strcmp(a.name, b.name) < 0;
                     });
    return out;
}

std::vector<InFlightSpan>
inFlightSpans()
{
    std::vector<InFlightSpan> out;
    std::vector<ThreadBuffer *> buffers;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    for (ThreadBuffer *buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        const std::size_t depth = std::min(buf->depth, kMaxOpen);
        for (std::size_t i = 0; i < depth; ++i)
            out.push_back(buf->open[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const InFlightSpan &a, const InFlightSpan &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.t0 < b.t0;
              });
    return out;
}

void
clearAll()
{
    std::vector<ThreadBuffer *> buffers;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    for (ThreadBuffer *buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        buf->total = 0;
        buf->jobs = 0;
        buf->job_busy_s = 0.0;
        std::fill(std::begin(buf->cat_count), std::end(buf->cat_count),
                  0);
        std::fill(std::begin(buf->cat_s), std::end(buf->cat_s), 0.0);
    }
}

namespace {

/** Shared body of the buffering and streaming host-trace exports. */
void
writeChromeTraceDoc(JsonWriter &json, const CollectedTrace &trace)
{
    json.beginObject();
    json.key("traceEvents").beginArray();
    // Process metadata: one host pid, distinct from the simulated
    // schedule's resource pids, so the two traces open merged.
    json.beginObject();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", static_cast<std::int64_t>(kHostTracePid));
    json.key("args").beginObject();
    json.field("name", "so engine (host)");
    json.endObject();
    json.endObject();

    std::vector<std::uint32_t> tids;
    for (const SpanRecord &span : trace.spans)
        tids.push_back(span.tid);
    for (const auto &[tid, dropped] : trace.dropped_by_tid) {
        (void)dropped;
        tids.push_back(tid);
    }
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (std::uint32_t tid : tids) {
        json.beginObject();
        json.field("name", "thread_name");
        json.field("ph", "M");
        json.field("pid", static_cast<std::int64_t>(kHostTracePid));
        json.field("tid", tid);
        json.key("args").beginObject();
        std::string tname = "t";
        tname += std::to_string(tid);
        json.field("name", tid == 0 ? std::string("main") : tname);
        json.endObject();
        json.endObject();
    }

    for (const SpanRecord &span : trace.spans) {
        json.beginObject();
        json.field("name", span.name);
        json.field("cat", categoryName(span.category));
        json.field("ph", "X");
        json.field("pid", static_cast<std::int64_t>(kHostTracePid));
        json.field("tid", span.tid);
        json.field("ts", span.t0 * 1e6);
        json.field("dur", (span.t1 - span.t0) * 1e6);
        if (span.arg_key[0] != nullptr) {
            json.key("args").beginObject();
            for (auto i = 0; i < 2; ++i)
                if (span.arg_key[i] != nullptr)
                    json.field(span.arg_key[i], span.arg_val[i]);
            json.endObject();
        }
        json.endObject();
    }

    // Ring overflow is visible in the viewer, not just the summary.
    for (const auto &[tid, dropped] : trace.dropped_by_tid) {
        json.beginObject();
        json.field("name", "dropped_spans");
        json.field("ph", "C");
        json.field("pid", static_cast<std::int64_t>(kHostTracePid));
        json.field("tid", tid);
        json.field("ts", 0.0);
        json.key("args").beginObject();
        json.field("dropped", static_cast<std::uint64_t>(dropped));
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace


std::string
toChromeTrace(const CollectedTrace &trace)
{
    JsonWriter json;
    writeChromeTraceDoc(json, trace);
    return json.str();
}

void
streamChromeTrace(std::ostream &os, const CollectedTrace &trace)
{
    JsonWriter json(os);
    writeChromeTraceDoc(json, trace);
}

std::string
selfProfileJson(const CollectedTrace &trace, double wall_s)
{
    double t_min = 0.0, t_max = 0.0;
    if (!trace.spans.empty()) {
        t_min = trace.spans.front().t0;
        t_max = trace.spans.front().t1;
        for (const SpanRecord &span : trace.spans) {
            t_min = std::min(t_min, span.t0);
            t_max = std::max(t_max, span.t1);
        }
    }
    const double wall =
        wall_s > 0.0 ? wall_s : std::max(0.0, t_max - t_min);

    // Queue-wait and cache-probe splits come off the retained spans;
    // the percentiles reuse the MetricsRegistry reservoir machinery
    // rather than growing a second quantile implementation.
    MetricsRegistry local;
    std::uint64_t hits = 0, misses = 0;
    double hit_s = 0.0, miss_s = 0.0;
    for (const SpanRecord &span : trace.spans) {
        if (span.category == Category::Pool &&
            std::strcmp(span.name, "job") == 0) {
            for (auto i = 0; i < 2; ++i)
                if (span.arg_key[i] != nullptr &&
                    std::strcmp(span.arg_key[i], "queue_wait_s") == 0)
                    local.observe("queue_wait_s", span.arg_val[i]);
        } else if (span.category == Category::Sweep &&
                   std::strcmp(span.name, "cache-probe") == 0) {
            bool hit = false;
            for (auto i = 0; i < 2; ++i)
                if (span.arg_key[i] != nullptr &&
                    std::strcmp(span.arg_key[i], "hit") == 0)
                    hit = span.arg_val[i] != 0.0;
            (hit ? hits : misses) += 1;
            (hit ? hit_s : miss_s) += span.t1 - span.t0;
        }
    }
    const MetricsSnapshot snap = local.snapshot();
    const HistogramValue *wait = snap.histogram("queue_wait_s");

    JsonWriter json;
    json.beginObject();
    json.field("schema_version", kSchemaVersion);
    json.field("kind", "self_profile");
    json.field("pid", static_cast<std::int64_t>(processId()));
    json.field("wall_s", wall);
    json.field("spans",
               static_cast<std::uint64_t>(trace.spans.size()));
    json.field("dropped", trace.dropped);

    json.key("categories").beginObject();
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
        if (trace.category_count[c] == 0)
            continue;
        json.key(kCategoryNames[c]).beginObject();
        json.field("count", trace.category_count[c]);
        json.field("total_s", trace.category_s[c]);
        json.endObject();
    }
    json.endObject();

    json.key("workers").beginArray();
    for (const CollectedTrace::WorkerBusy &w : trace.job_busy_by_tid) {
        json.beginObject();
        json.field("tid", w.tid);
        json.field("jobs", w.jobs);
        json.field("busy_s", w.busy_s);
        json.field("busy_frac", wall > 0.0 ? w.busy_s / wall : 0.0);
        json.endObject();
    }
    json.endArray();

    json.key("queue_wait").beginObject();
    json.field("count",
               static_cast<std::uint64_t>(wait ? wait->count : 0));
    json.field("mean_s", wait ? wait->mean() : 0.0);
    json.field("p50_s", wait ? wait->quantile(0.50) : 0.0);
    json.field("p95_s", wait ? wait->quantile(0.95) : 0.0);
    json.endObject();

    json.key("cache").beginObject();
    json.field("hits", hits);
    json.field("misses", misses);
    json.field("hit_mean_s",
               hits > 0 ? hit_s / static_cast<double>(hits) : 0.0);
    json.field("miss_mean_s",
               misses > 0 ? miss_s / static_cast<double>(misses) : 0.0);
    json.endObject();
    json.endObject();
    return json.str();
}

void
progressBegin(std::uint64_t total_units, std::uint64_t cached_cells)
{
    g_progress.total.store(total_units, std::memory_order_relaxed);
    g_progress.done.store(0, std::memory_order_relaxed);
    g_progress.cached.store(cached_cells, std::memory_order_relaxed);
    g_progress.start_ns.store(
        static_cast<std::int64_t>(nowSeconds() * 1e9),
        std::memory_order_relaxed);
    g_progress.active.store(true, std::memory_order_release);
}

void
progressTick()
{
    g_progress.done.fetch_add(1, std::memory_order_relaxed);
}

void
progressEnd()
{
    g_progress.active.store(false, std::memory_order_release);
}

double
etaSeconds(std::uint64_t done, std::uint64_t total, double elapsed_s)
{
    // Clamp out the noisy start: a rate from one or two completions
    // (or a few milliseconds) extrapolates garbage.
    if (done < 3 || elapsed_s < 0.5 || total < done)
        return -1.0;
    const double rate = static_cast<double>(done) / elapsed_s;
    if (rate <= 0.0)
        return -1.0;
    return static_cast<double>(total - done) / rate;
}

ProgressSnapshot
progressSnapshot()
{
    ProgressSnapshot out;
    out.total_units = g_progress.total.load(std::memory_order_relaxed);
    out.done_units = g_progress.done.load(std::memory_order_relaxed);
    out.cached_cells =
        g_progress.cached.load(std::memory_order_relaxed);
    out.active = g_progress.active.load(std::memory_order_acquire);
    const std::int64_t start_ns =
        g_progress.start_ns.load(std::memory_order_relaxed);
    if (start_ns >= 0) {
        out.elapsed_s =
            std::max(0.0, nowSeconds() - static_cast<double>(start_ns) /
                                             1e9);
        if (out.elapsed_s > 0.0 && out.done_units > 0)
            out.rate_per_s = static_cast<double>(out.done_units) /
                             out.elapsed_s;
        out.eta_s = etaSeconds(out.done_units, out.total_units,
                               out.elapsed_s);
    }
    return out;
}

std::string
heartbeatJson()
{
    const CollectedTrace trace = collect();
    const ProgressSnapshot progress = progressSnapshot();
    JsonWriter json;
    json.beginObject();
    json.field("schema_version", kSchemaVersion);
    json.field("kind", "heartbeat");
    json.field("pid", static_cast<std::int64_t>(processId()));
    json.field("uptime_s", nowSeconds());
    json.field("rss_bytes", rssBytes());

    json.key("trace").beginObject();
    json.field("enabled", enabled());
    json.field("spans",
               static_cast<std::uint64_t>(trace.spans.size()));
    json.field("dropped", trace.dropped);
    json.endObject();

    json.key("progress").beginObject();
    json.field("active", progress.active);
    json.field("total_units", progress.total_units);
    json.field("done_units", progress.done_units);
    json.field("cached_cells", progress.cached_cells);
    json.field("elapsed_s", progress.elapsed_s);
    json.field("rate_per_s", progress.rate_per_s);
    if (progress.eta_s >= 0.0)
        json.field("eta_s", progress.eta_s);
    else
        json.key("eta_s").null();
    json.endObject();

    const double now = nowSeconds();
    json.key("in_flight").beginArray();
    for (const InFlightSpan &span : inFlightSpans()) {
        json.beginObject();
        json.field("tid", span.tid);
        json.field("category", categoryName(span.category));
        json.field("name", span.name);
        json.field("elapsed_s", std::max(0.0, now - span.t0));
        json.endObject();
    }
    json.endArray();

    json.key("metrics");
    MetricsRegistry::global().snapshot().write(json);
    json.endObject();
    return json.str();
}

void
startHeartbeat(const std::string &path, int interval_ms)
{
    heartbeatRunner().start(path, interval_ms);
}

void
stopHeartbeat()
{
    heartbeatRunner().stopAndJoin();
}

double
rssBytes()
{
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0.0;
    long pages_total = 0, pages_resident = 0;
    const int got =
        std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
    std::fclose(f);
    if (got != 2)
        return 0.0;
    return static_cast<double>(pages_resident) *
           static_cast<double>(::sysconf(_SC_PAGESIZE));
#else
    return 0.0;
#endif
}

void
writeExport(const std::string &path)
{
    const CollectedTrace trace = collect();
    if (!writeAtomically(path, toChromeTrace(trace))) {
        warn("self-trace: cannot write ", path);
        return;
    }
    std::string summary_path = path;
    const std::string suffix = ".json";
    if (summary_path.size() >= suffix.size() &&
        summary_path.compare(summary_path.size() - suffix.size(),
                             suffix.size(), suffix) == 0)
        summary_path.resize(summary_path.size() - suffix.size());
    summary_path += ".selfprofile.json";
    if (!writeAtomically(summary_path, selfProfileJson(trace)))
        warn("self-trace: cannot write ", summary_path);
}

void
exportOnExit(const std::string &path)
{
    static std::once_flag once;
    {
        std::lock_guard<std::mutex> lock(g_export_mutex);
        g_export_path = path;
    }
    std::call_once(once, [] { std::atexit(exportAtExit); });
}

void
initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char *text = std::getenv("SO_TRACE");
            text != nullptr && *text != '\0') {
            std::string lowered;
            for (const char *c = text; *c; ++c)
                lowered += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(*c)));
            const bool truthy = lowered == "1" || lowered == "true" ||
                                lowered == "yes" || lowered == "on";
            const bool falsy = lowered == "0" || lowered == "false" ||
                               lowered == "no" || lowered == "off";
            if (!falsy) {
                setEnabled(true);
                // Any other value names an export target.
                if (!truthy)
                    exportOnExit(text);
            }
        }
        if (const char *text = std::getenv("SO_HEARTBEAT");
            text != nullptr && *text != '\0') {
            std::string spec = text;
            int interval_ms = 1000;
            // <path>[:interval_ms] — the suffix is an interval only
            // when everything after the last ':' is digits.
            const std::size_t colon = spec.rfind(':');
            if (colon != std::string::npos &&
                colon + 1 < spec.size()) {
                const std::string tail = spec.substr(colon + 1);
                if (std::all_of(tail.begin(), tail.end(), [](char c) {
                        return std::isdigit(
                            static_cast<unsigned char>(c));
                    })) {
                    interval_ms = std::atoi(tail.c_str());
                    spec.resize(colon);
                }
            }
            if (!spec.empty())
                startHeartbeat(spec, interval_ms);
        }
    });
}

} // namespace so::trace
