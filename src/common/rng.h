/**
 * @file
 * Deterministic random number generation for experiments.
 *
 * All stochastic components of the library draw from this generator so
 * that every experiment is reproducible from a single seed. The core is
 * xoshiro256** seeded through SplitMix64, which is small, fast, and has
 * well-understood statistical quality.
 */
#ifndef SO_COMMON_RNG_H
#define SO_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace so {

/** Deterministic PRNG (xoshiro256**) with convenience distributions. */
class Rng
{
  public:
    /** Seed through SplitMix64 so nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        SO_ASSERT(n > 0, "below() needs a positive bound");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - n) % n;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % n;
        }
    }

    /** Standard normal via Box-Muller. */
    double
    gaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = uniform();
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Normal with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** True with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    bool have_cached_ = false;
    double cached_ = 0.0;
};

/**
 * Zipf-distributed sampler over [0, n). Uses precomputed CDF, so
 * construction is O(n) and sampling is O(log n). Suitable for vocabulary
 * sized n (tens of thousands).
 */
class ZipfSampler
{
  public:
    /** @param n support size; @param exponent Zipf skew (typically ~1). */
    ZipfSampler(std::size_t n, double exponent);

    /** Draw one sample in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of rank i. */
    double pmf(std::size_t i) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

inline
ZipfSampler::ZipfSampler(std::size_t n, double exponent)
{
    SO_ASSERT(n > 0, "ZipfSampler needs non-empty support");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        cdf_[i] = total;
    }
    for (auto &c : cdf_)
        c /= total;
}

inline std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

inline double
ZipfSampler::pmf(std::size_t i) const
{
    SO_ASSERT(i < cdf_.size(), "pmf index out of range");
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

} // namespace so

#endif // SO_COMMON_RNG_H
