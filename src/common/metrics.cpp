#include "common/metrics.h"

#include <algorithm>
#include <utility>

#include "common/json.h"
#include "common/logging.h"

namespace so {

namespace {

/** Reservoir slots per histogram: exact quantiles up to this count. */
constexpr std::size_t kReservoirSize = 512;

} // namespace

void
MetricsRegistry::add(const std::string &name, std::int64_t delta,
                     MetricScope scope)
{
    std::lock_guard<std::mutex> lock(mutex_);
    SO_ASSERT(!gauges_.count(name) && !histograms_.count(name),
              "metric '", name, "' is not a counter");
    const auto [it, fresh] = counters_.try_emplace(name);
    if (fresh)
        it->second.scope = scope;
    it->second.value += delta;
}

void
MetricsRegistry::set(const std::string &name, double value,
                     MetricScope scope)
{
    std::lock_guard<std::mutex> lock(mutex_);
    SO_ASSERT(!counters_.count(name) && !histograms_.count(name),
              "metric '", name, "' is not a gauge");
    const auto [it, fresh] = gauges_.try_emplace(name);
    if (fresh)
        it->second.scope = scope;
    it->second.value = value;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    SO_ASSERT(!counters_.count(name) && !gauges_.count(name),
              "metric '", name, "' is not a histogram");
    Histogram &h = histograms_[name];
    if (h.count == 0) {
        h.min = value;
        h.max = value;
    } else {
        h.min = std::min(h.min, value);
        h.max = std::max(h.max, value);
    }
    ++h.count;
    h.sum += value;
    // Algorithm R: keep the first kReservoirSize observations, then
    // replace a uniformly chosen slot with probability K/count.
    if (h.sample.size() < kReservoirSize) {
        h.sample.push_back(value);
    } else {
        h.rng = h.rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t j = (h.rng >> 32) % h.count;
        if (j < kReservoirSize)
            h.sample[j] = value;
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.push_back(CounterValue{name, c.value, c.scope});
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.push_back(GaugeValue{name, g.value, g.scope});
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        HistogramValue value{name, h.count, h.sum, h.min, h.max,
                             h.sample};
        // Sorted once here so quantile() is a plain lookup.
        std::sort(value.sample.begin(), value.sample.end());
        snap.histograms.push_back(std::move(value));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::int64_t
MetricsSnapshot::counter(const std::string &name,
                         std::int64_t fallback) const
{
    for (const CounterValue &c : counters)
        if (c.name == name)
            return c.value;
    return fallback;
}

double
MetricsSnapshot::gauge(const std::string &name, double fallback) const
{
    for (const GaugeValue &g : gauges)
        if (g.name == name)
            return g.value;
    return fallback;
}

double
HistogramValue::quantile(double q) const
{
    if (sample.empty())
        return 0.0;
    const double clamped = std::min(1.0, std::max(0.0, q));
    const double pos =
        clamped * static_cast<double>(sample.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= sample.size())
        return sample.back();
    const double frac = pos - static_cast<double>(lo);
    return sample[lo] + frac * (sample[lo + 1] - sample[lo]);
}

const HistogramValue *
MetricsSnapshot::histogram(const std::string &name) const
{
    for (const HistogramValue &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

void
MetricsSnapshot::write(JsonWriter &json) const
{
    json.beginObject();
    json.key("counters").beginObject();
    for (const CounterValue &c : counters)
        json.field(c.name, c.value);
    json.endObject();
    json.key("gauges").beginObject();
    for (const GaugeValue &g : gauges)
        json.field(g.name, g.value);
    json.endObject();
    json.key("histograms").beginObject();
    for (const HistogramValue &h : histograms) {
        json.key(h.name).beginObject();
        json.field("count", static_cast<std::uint64_t>(h.count));
        json.field("sum", h.sum);
        json.field("min", h.min);
        json.field("max", h.max);
        json.field("mean", h.mean());
        json.field("p50", h.quantile(0.50));
        json.field("p95", h.quantile(0.95));
        json.field("p99", h.quantile(0.99));
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

std::string
MetricsSnapshot::json() const
{
    JsonWriter json;
    write(json);
    return json.str();
}

std::string
MetricsSnapshot::stableJson() const
{
    JsonWriter json;
    json.beginObject();
    json.key("counters").beginObject();
    for (const CounterValue &c : counters)
        if (c.scope == MetricScope::Stable)
            json.field(c.name, c.value);
    json.endObject();
    json.key("gauges").beginObject();
    for (const GaugeValue &g : gauges)
        if (g.scope == MetricScope::Stable)
            json.field(g.name, g.value);
    json.endObject();
    json.endObject();
    return json.str();
}

ScopedTimer::ScopedTimer(MetricsRegistry &registry, std::string name)
    : registry_(&registry), name_(std::move(name)),
      start_(std::chrono::steady_clock::now())
{
}

ScopedTimer::ScopedTimer(ScopedTimer &&other) noexcept
    : registry_(std::exchange(other.registry_, nullptr)),
      name_(std::move(other.name_)), start_(other.start_)
{
}

void
ScopedTimer::stop()
{
    if (!registry_)
        return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    registry_->observe(name_, elapsed.count());
    registry_ = nullptr;
}

ScopedTimer::~ScopedTimer()
{
    stop();
}

} // namespace so
