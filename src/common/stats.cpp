#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace so {

void
RunningStat::push(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    mean_ = (na * mean_ + nb * other.mean_) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
percentile(std::vector<double> samples, double q)
{
    SO_ASSERT(!samples.empty(), "percentile of empty sample set");
    SO_ASSERT(q >= 0.0 && q <= 100.0, "percentile q out of range: ", q);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
geomean(const std::vector<double> &samples)
{
    SO_ASSERT(!samples.empty(), "geomean of empty sample set");
    double log_sum = 0.0;
    for (double s : samples) {
        SO_ASSERT(s > 0.0, "geomean needs positive samples, got ", s);
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace so
