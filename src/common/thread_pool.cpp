#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"

namespace so {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    MetricsRegistry::global().add("pool.tasks_submitted", 1,
                                  MetricScope::Execution);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(Job{std::move(task), std::chrono::steady_clock::now()});
        ++in_flight_;
    }
    cv_task_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::parallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (n == 0)
        return;
    // Counts elements, not chunks: the value is identical no matter how
    // the range ends up split across workers (or run inline).
    MetricsRegistry::global().add("pool.parallel_for_items",
                                  static_cast<std::int64_t>(n));
    const std::size_t workers = threadCount();
    // Below this size, dispatch overhead dominates: run inline.
    constexpr std::size_t kInlineThreshold = 4096;
    if (workers <= 1 || n <= kInlineThreshold) {
        fn(0, n);
        return;
    }
    const std::size_t chunks = std::min(workers, n);
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t len = base + (c < extra ? 1 : 0);
        const std::size_t end = begin + len;
        submit([=] { fn(begin, end); });
        begin = end;
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                // stop_ must be set: drain finished.
                return;
            }
            job = std::move(tasks_.front());
            tasks_.pop();
        }
        MetricsRegistry &metrics = MetricsRegistry::global();
        const auto dequeued = std::chrono::steady_clock::now();
        metrics.observe(
            "pool.queue_wait_s",
            std::chrono::duration<double>(dequeued - job.enqueued).count());
        std::exception_ptr err;
        try {
            ScopedTimer run_timer(metrics, "pool.task_run_s");
            job.fn();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (err && !first_error_)
                first_error_ = err;
            --in_flight_;
            if (in_flight_ == 0)
                cv_done_.notify_all();
        }
    }
}

} // namespace so
