#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace so {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    // Pre-size the ring so bursts of a few jobs per worker never touch
    // the allocator on the submit/dequeue path.
    ring_.resize(std::max<std::size_t>(64, 4 * threads));
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::pushLocked(Job job)
{
    if (count_ == ring_.size()) {
        const std::size_t old_cap = ring_.size();
        std::vector<Job> bigger(std::max<std::size_t>(64, 2 * old_cap));
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = std::move(ring_[(head_ + i) % old_cap]);
        ring_ = std::move(bigger);
        head_ = 0;
    }
    ring_[(head_ + count_) % ring_.size()] = std::move(job);
    ++count_;
    queued_.store(count_, std::memory_order_release);
}

ThreadPool::Job
ThreadPool::popLocked()
{
    Job job = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    queued_.store(count_, std::memory_order_release);
    return job;
}

void
ThreadPool::submit(std::function<void()> task)
{
    MetricsRegistry::global().add("pool.tasks_submitted", 1,
                                  MetricScope::Execution);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    bool need_notify;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pushLocked(Job{std::move(task), std::chrono::steady_clock::now()});
        // idle_workers_ only changes under the lock: when it reads zero
        // every worker is busy and will re-check queued_ before going
        // to sleep, so the notify (and its wakeup of an already-racing
        // worker) can be skipped.
        need_notify = idle_workers_ > 0;
    }
    if (need_notify)
        cv_task_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] {
        return in_flight_.load(std::memory_order_acquire) == 0;
    });
    if (first_error_) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::parallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (n == 0)
        return;
    // Counts elements, not chunks: the value is identical no matter how
    // the range ends up split across workers (or run inline).
    MetricsRegistry::global().add("pool.parallel_for_items",
                                  static_cast<std::int64_t>(n));
    const std::size_t workers = threadCount();
    // Below this size, dispatch overhead dominates: run inline.
    constexpr std::size_t kInlineThreshold = 4096;
    if (workers <= 1 || n <= kInlineThreshold) {
        fn(0, n);
        return;
    }
    const std::size_t chunks = std::min(workers, n);
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t len = base + (c < extra ? 1 : 0);
        const std::size_t end = begin + len;
        submit([=] { fn(begin, end); });
        begin = end;
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job job;
        // Double-checked dequeue: when work is observably queued, take
        // the lock only to pop; the condition-variable wait (and the
        // extra wake/lock cycle it costs on an empty wakeup) is
        // reserved for the genuinely idle case.
        if (queued_.load(std::memory_order_acquire) == 0) {
            std::unique_lock<std::mutex> lock(mutex_);
            ++idle_workers_;
            cv_task_.wait(lock,
                          [this] { return stop_ || count_ != 0; });
            --idle_workers_;
            if (count_ == 0)
                return; // stop_ set and the queue fully drained.
            job = popLocked();
        } else {
            std::lock_guard<std::mutex> lock(mutex_);
            if (count_ == 0)
                continue; // A sibling won the race; re-evaluate.
            job = popLocked();
        }
        MetricsRegistry &metrics = MetricsRegistry::global();
        const auto dequeued = std::chrono::steady_clock::now();
        const double queue_wait =
            std::chrono::duration<double>(dequeued - job.enqueued).count();
        metrics.observe("pool.queue_wait_s", queue_wait);
        std::exception_ptr err;
        try {
            ScopedTimer run_timer(metrics, "pool.task_run_s");
            trace::Span span(trace::Category::Pool, "job");
            span.arg("queue_wait_s", queue_wait);
            job.fn();
        } catch (...) {
            err = std::current_exception();
        }
        if (err) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_)
                first_error_ = err;
        }
        if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // The empty critical section orders this decrement against
            // a waiter that checked the predicate just before blocking.
            { std::lock_guard<std::mutex> lock(mutex_); }
            cv_done_.notify_all();
        }
    }
}

} // namespace so
