#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace so {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace log_detail {

void
emit(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[%s] %s\n", prefix(level), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, msg.c_str());
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::fprintf(stderr, "[fatal] %s:%d: %s\n", file, line, msg.c_str());
    }
    std::exit(1);
}

} // namespace log_detail

} // namespace so
