#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "common/json.h"
#include "common/trace.h"

namespace so {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::atomic<LogFormat> g_format{LogFormat::Human};
std::mutex g_mutex;
std::once_flag g_env_once;

/** Apply SO_LOG_LEVEL (if set and well-formed) to g_level. */
void
applyEnvLevel()
{
    const char *text = std::getenv("SO_LOG_LEVEL");
    if (!text)
        return;
    bool ok = false;
    const LogLevel level = parseLogLevel(text, LogLevel::Info, &ok);
    if (ok) {
        g_level.store(level, std::memory_order_relaxed);
    } else {
        // Direct fprintf: warn() would re-enter the once-flag via
        // logLevel() and deadlock.
        std::fprintf(stderr,
                     "[warn] SO_LOG_LEVEL=\"%s\" not recognized "
                     "(expected debug|info|warn|error); keeping %s\n",
                     text, "info");
    }
}

/** Apply SO_LOG_JSON (truthy selects the JSONL sink) to g_format. */
void
applyEnvFormat()
{
    const char *text = std::getenv("SO_LOG_JSON");
    if (!text)
        return;
    std::string lowered;
    for (const char *c = text; *c; ++c)
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*c)));
    const bool truthy = lowered == "1" || lowered == "true" ||
                        lowered == "yes" || lowered == "on";
    g_format.store(truthy ? LogFormat::Json : LogFormat::Human,
                   std::memory_order_relaxed);
}

/** One-time lazy application of the environment overrides. */
void
ensureEnvApplied()
{
    std::call_once(g_env_once, [] {
        applyEnvLevel();
        applyEnvFormat();
    });
}

/**
 * Monotonic seconds since logging first ran in this process. The
 * anchor is process-relative on purpose: collectors correlate lines
 * within one run, not across runs.
 */
double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration<double>(clock::now() - start).count();
}

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    // Resolve the environment first so an explicit call always wins
    // regardless of whether any logging happened yet.
    ensureEnvApplied();
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    ensureEnvApplied();
    return g_level.load(std::memory_order_relaxed);
}

void
setLogFormat(LogFormat format)
{
    ensureEnvApplied(); // Explicit call wins over the environment.
    g_format.store(format, std::memory_order_relaxed);
}

LogFormat
logFormat()
{
    ensureEnvApplied();
    return g_format.load(std::memory_order_relaxed);
}

std::string
formatLogLine(LogLevel level, const std::string &component,
              const std::string &message, double ts_s,
              std::uint32_t tid, LogFormat format)
{
    if (format == LogFormat::Human) {
        std::string out;
        out.reserve(message.size() + 20);
        out += '[';
        out += prefix(level);
        out += " t";
        out += std::to_string(tid);
        out += "] ";
        out += message;
        return out;
    }
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.6f", ts_s);
    std::string out;
    out.reserve(message.size() + component.size() + 72);
    out += "{\"ts_s\":";
    out += ts;
    out += ",\"level\":\"";
    out += prefix(level);
    out += "\",\"tid\":";
    out += std::to_string(tid);
    out += ",\"component\":\"";
    out += JsonWriter::escape(component);
    out += "\",\"message\":\"";
    out += JsonWriter::escape(message);
    out += "\"}";
    return out;
}

LogLevel
parseLogLevel(const std::string &text, LogLevel fallback, bool *ok)
{
    std::string lowered;
    lowered.reserve(text.size());
    for (char c : text)
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (ok)
        *ok = true;
    if (lowered == "debug")
        return LogLevel::Debug;
    if (lowered == "info")
        return LogLevel::Info;
    if (lowered == "warn" || lowered == "warning")
        return LogLevel::Warn;
    if (lowered == "error")
        return LogLevel::Error;
    if (ok)
        *ok = false;
    return fallback;
}

namespace log_detail {

void
reapplyEnvLogLevel()
{
    ensureEnvApplied(); // Keep the once-flag settled either way.
    applyEnvLevel();
    applyEnvFormat();
}

void
emit(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    const std::string line =
        formatLogLine(level, "so", msg, monotonicSeconds(),
                      trace::currentTid(), logFormat());
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Always the human form: a crash report is for eyes, and the
    // formatter must not be trusted mid-invariant-violation.
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, msg.c_str());
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::fprintf(stderr, "[fatal] %s:%d: %s\n", file, line, msg.c_str());
    }
    std::exit(1);
}

} // namespace log_detail

} // namespace so
