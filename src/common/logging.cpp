#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace so {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;
std::once_flag g_env_once;

/** Apply SO_LOG_LEVEL (if set and well-formed) to g_level. */
void
applyEnvLevel()
{
    const char *text = std::getenv("SO_LOG_LEVEL");
    if (!text)
        return;
    bool ok = false;
    const LogLevel level = parseLogLevel(text, LogLevel::Info, &ok);
    if (ok) {
        g_level.store(level, std::memory_order_relaxed);
    } else {
        // Direct fprintf: warn() would re-enter the once-flag via
        // logLevel() and deadlock.
        std::fprintf(stderr,
                     "[warn] SO_LOG_LEVEL=\"%s\" not recognized "
                     "(expected debug|info|warn|error); keeping %s\n",
                     text, "info");
    }
}

/** One-time lazy application of the environment override. */
void
ensureEnvApplied()
{
    std::call_once(g_env_once, applyEnvLevel);
}

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    // Resolve the environment first so an explicit call always wins
    // regardless of whether any logging happened yet.
    ensureEnvApplied();
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    ensureEnvApplied();
    return g_level.load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &text, LogLevel fallback, bool *ok)
{
    std::string lowered;
    lowered.reserve(text.size());
    for (char c : text)
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (ok)
        *ok = true;
    if (lowered == "debug")
        return LogLevel::Debug;
    if (lowered == "info")
        return LogLevel::Info;
    if (lowered == "warn" || lowered == "warning")
        return LogLevel::Warn;
    if (lowered == "error")
        return LogLevel::Error;
    if (ok)
        *ok = false;
    return fallback;
}

namespace log_detail {

void
reapplyEnvLogLevel()
{
    ensureEnvApplied(); // Keep the once-flag settled either way.
    applyEnvLevel();
}

void
emit(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[%s] %s\n", prefix(level), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, msg.c_str());
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        std::fprintf(stderr, "[fatal] %s:%d: %s\n", file, line, msg.c_str());
    }
    std::exit(1);
}

} // namespace log_detail

} // namespace so
