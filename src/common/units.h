/**
 * @file
 * Byte / FLOP / time / bandwidth unit constants and human formatting.
 *
 * Conventions used throughout the library:
 *  - sizes are in bytes (double where fractional results can appear,
 *    std::uint64_t where exact counts matter);
 *  - time is in seconds (double);
 *  - compute rates are in FLOP/s, bandwidths in bytes/s.
 *
 * Hardware-marketing quantities (e.g. "900 GB/s") use decimal units
 * (1 GB = 1e9 bytes), matching the paper's figures; buffer sizes use
 * binary units (1 MiB = 2^20 bytes).
 */
#ifndef SO_COMMON_UNITS_H
#define SO_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace so {

// Decimal (rate-style) units.
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

// Binary (capacity/buffer-style) units.
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double kTiB = 1024.0 * kGiB;

// Compute units.
inline constexpr double kGFLOPS = 1e9;
inline constexpr double kTFLOPS = 1e12;
inline constexpr double kPFLOPS = 1e15;

// Time units.
inline constexpr double kUs = 1e-6;
inline constexpr double kMs = 1e-3;

// Parameter-count units.
inline constexpr double kBillion = 1e9;
inline constexpr double kMillion = 1e6;

/** Render a byte count as e.g. "64.0 MiB" / "1.5 GiB". */
std::string formatBytes(double bytes);

/** Render a rate as e.g. "450.0 GB/s". */
std::string formatBandwidth(double bytes_per_sec);

/** Render seconds as e.g. "12.3 ms" / "1.84 s". */
std::string formatTime(double seconds);

/** Render a FLOP/s rate as e.g. "238.9 TFLOPS". */
std::string formatFlops(double flops_per_sec);

/** Render a parameter count as e.g. "13.0B" / "350M". */
std::string formatParams(double params);

} // namespace so

#endif // SO_COMMON_UNITS_H
