#include "model/config.h"

#include <utility>

#include "common/logging.h"
#include "common/units.h"

namespace so::model {

double
ModelConfig::matmulParams() const
{
    // Per layer: QKV (3h^2) + attention output (h^2) + MLP up/down
    // (4h^2 + 4h^2) = 12 h^2.
    return 12.0 * layers * static_cast<double>(hidden) * hidden;
}

double
ModelConfig::embeddingParams() const
{
    return static_cast<double>(vocab) * hidden;
}

double
ModelConfig::params() const
{
    return matmulParams() + embeddingParams();
}

double
ModelConfig::paramsPerLayer() const
{
    return 12.0 * static_cast<double>(hidden) * hidden;
}

std::string
ModelConfig::summary() const
{
    return name + " (" + std::to_string(layers) + "L x " +
           std::to_string(hidden) + "h, " + formatParams(params()) + ")";
}

ModelConfig
makeConfig(std::string name, std::uint32_t layers, std::uint32_t hidden)
{
    SO_ASSERT(layers > 0 && hidden > 0, "invalid model dimensions");
    SO_ASSERT(hidden % 128 == 0, "hidden must be a multiple of 128");
    ModelConfig cfg;
    cfg.name = std::move(name);
    cfg.layers = layers;
    cfg.hidden = hidden;
    cfg.heads = hidden / 128;
    return cfg;
}

namespace {

/** Appendix A, Table 4 (+ 30B for Fig. 12 and 175B for Fig. 14). */
const std::pair<const char *, std::pair<std::uint32_t, std::uint32_t>>
    kPresets[] = {
        {"1B", {20, 2048}},   {"2B", {40, 2048}},   {"3B", {60, 2048}},
        {"4B", {64, 2304}},   {"5B", {44, 3072}},   {"6B", {53, 3072}},
        {"8B", {72, 3072}},   {"10B", {50, 4096}},  {"11B", {55, 4096}},
        {"12B", {60, 4096}},  {"13B", {65, 4096}},  {"15B", {78, 4096}},
        {"20B", {25, 8192}},  {"25B", {30, 8192}},  {"30B", {37, 8192}},
        {"50B", {60, 8192}},  {"60B", {75, 8192}},  {"70B", {87, 8192}},
        {"80B", {100, 8192}}, {"150B", {45, 16384}},
        {"175B", {54, 16384}}, {"200B", {60, 16384}},
};

} // namespace

ModelConfig
modelPreset(const std::string &name)
{
    for (const auto &[preset_name, dims] : kPresets) {
        if (name == preset_name)
            return makeConfig(preset_name, dims.first, dims.second);
    }
    SO_FATAL("unknown model preset '", name, "'");
}

std::vector<ModelConfig>
modelPresets()
{
    std::vector<ModelConfig> all;
    for (const auto &[preset_name, dims] : kPresets)
        all.push_back(makeConfig(preset_name, dims.first, dims.second));
    return all;
}

bool
hasModelPreset(const std::string &name)
{
    for (const auto &[preset_name, dims] : kPresets) {
        (void)dims;
        if (name == preset_name)
            return true;
    }
    return false;
}

} // namespace so::model
