#include "model/memory.h"

#include <algorithm>

#include "common/logging.h"

namespace so::model {

double
StateSizes::optimizerBytes() const
{
    return fp32_params + fp32_momentum + fp32_variance;
}

double
StateSizes::totalBytes() const
{
    return fp16_params + fp16_grads + optimizerBytes();
}

StateSizes
StateSizes::forParams(double params)
{
    SO_ASSERT(params >= 0.0, "negative parameter count");
    StateSizes sizes;
    sizes.fp16_params = hw::kFp16BytesPerParam * params;
    sizes.fp16_grads = hw::kFp16BytesPerParam * params;
    sizes.fp32_params = hw::kFp32BytesPerParam * params;
    sizes.fp32_momentum = hw::kFp32BytesPerParam * params;
    sizes.fp32_variance = hw::kFp32BytesPerParam * params;
    return sizes;
}

double
activationBytes(const ModelConfig &cfg, double micro_batch, double seq,
                const ActivationOptions &opts)
{
    SO_ASSERT(micro_batch > 0.0 && seq > 0.0,
              "batch and seq must be positive");
    SO_ASSERT(opts.sequence_parallel >= 1, "invalid SP degree");
    const double sp = static_cast<double>(opts.sequence_parallel);
    const double token_channels =
        micro_batch * seq * static_cast<double>(cfg.hidden) / sp;

    double bytes;
    if (opts.checkpointing) {
        // Boundary activations for every layer plus one live layer being
        // recomputed.
        bytes = kCkptBytesPerTokenChannel * token_channels * cfg.layers +
                kCkptLiveLayerBytes * token_channels;
    } else {
        bytes = kActBytesPerTokenChannel * token_channels * cfg.layers;
    }

    // Input embeddings + final layer norm output.
    bytes += 4.0 * token_channels;

    // Chunked LM-head loss: logits are computed for at most a fixed
    // token tile at a time, so their contribution is bounded.
    const double logit_tokens = std::min(micro_batch * seq / sp, 4096.0);
    bytes += logit_tokens * static_cast<double>(cfg.vocab) * 6.0;

    return bytes;
}

double
gpuResidentBytes(double raw_bytes)
{
    SO_ASSERT(raw_bytes >= 0.0, "negative resident bytes");
    return raw_bytes * kFragmentationFactor + kGpuFixedOverhead;
}

} // namespace so::model
