/**
 * @file
 * GPT/LLaMA-style transformer model configurations.
 *
 * §5.1 of the paper varies hidden dimension and transformer block count
 * to obtain models of different sizes; Appendix A (Table 4) lists the
 * exact configurations, which are reproduced as presets here.
 */
#ifndef SO_MODEL_CONFIG_H
#define SO_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace so::model {

/** A decoder-only transformer configuration. */
struct ModelConfig
{
    std::string name;
    std::uint32_t layers = 0;
    std::uint32_t hidden = 0;
    std::uint32_t heads = 0;
    std::uint32_t vocab = 51200;

    /** Parameters inside matmuls: 12 * layers * hidden^2. */
    double matmulParams() const;

    /** Embedding (+ tied LM head) parameters: vocab * hidden. */
    double embeddingParams() const;

    /** Total parameter count. */
    double params() const;

    /** Parameters per transformer layer (12 * hidden^2). */
    double paramsPerLayer() const;

    /** Human-readable summary like "5B (44L x 3072h)". */
    std::string summary() const;
};

/** Build a config with heads = hidden / 128 and the default vocab. */
ModelConfig makeConfig(std::string name, std::uint32_t layers,
                       std::uint32_t hidden);

/**
 * Look up a preset from the paper's Appendix A by name ("1B" ... "200B";
 * "30B" and "175B" are used by Figs. 12 and 14 and included too).
 * @fatal if the name is unknown.
 */
ModelConfig modelPreset(const std::string &name);

/** All Appendix-A presets in ascending size order. */
std::vector<ModelConfig> modelPresets();

/** True when a preset with that name exists. */
bool hasModelPreset(const std::string &name);

} // namespace so::model

#endif // SO_MODEL_CONFIG_H
