/**
 * @file
 * Memory accounting for mixed-precision training.
 *
 * §2.2 of the paper: a model with P parameters consumes 16P bytes of
 * model states under mixed-precision Adam (2P fp16 params, 2P fp16
 * grads, 4P fp32 master params, 4P momentum, 4P variance). Activation
 * memory grows with batch and sequence length and is the quantity that
 * flips the adaptive policy of §4.2 from weight-stationary to
 * weight-flow.
 */
#ifndef SO_MODEL_MEMORY_H
#define SO_MODEL_MEMORY_H

#include "hw/constants.h"
#include "model/config.h"

namespace so::model {

/** Byte sizes of the mixed-precision model states for P parameters. */
struct StateSizes
{
    double fp16_params = 0.0;
    double fp16_grads = 0.0;
    double fp32_params = 0.0;
    double fp32_momentum = 0.0;
    double fp32_variance = 0.0;

    /** Optimizer states only (fp32 master + m + v) = 12P. */
    double optimizerBytes() const;

    /** Everything = 16P. */
    double totalBytes() const;

    /** Build the standard 2/2/4/4/4 bytes-per-param split. */
    static StateSizes forParams(double params);
};

/**
 * Activation memory options. `checkpointing` stores only layer-boundary
 * activations and recomputes the rest; `sequence_parallel` divides
 * per-GPU activations by the SP degree (Ulysses, §4.7).
 */
struct ActivationOptions
{
    bool checkpointing = false;
    std::uint32_t sequence_parallel = 1;
};

/**
 * Per-GPU activation bytes for one micro-batch.
 *
 * Without checkpointing each layer keeps ~28 bytes per token-channel of
 * fp16 working state (flash-attention era: the quadratic softmax map is
 * not materialized, but QKV/MLP intermediates are). With checkpointing
 * only 2 bytes/token-channel of boundary activations per layer survive,
 * plus one live layer.
 */
double activationBytes(const ModelConfig &cfg, double micro_batch,
                       double seq, const ActivationOptions &opts);

/** Bytes/token-channel retained per layer without checkpointing. */
inline constexpr double kActBytesPerTokenChannel = 28.0;

/** Bytes/token-channel of boundary activations with checkpointing. */
inline constexpr double kCkptBytesPerTokenChannel = 2.0;

/**
 * Bytes/token-channel of the one live layer being recomputed under
 * checkpointing (smaller than the retained-activation footprint: the
 * recompute processes the layer streaming, freeing intermediates).
 */
inline constexpr double kCkptLiveLayerBytes = 16.0;

/**
 * Fixed GPU-side overhead: CUDA context, cuBLAS/cuDNN workspaces,
 * communication buffers (bytes).
 */
inline constexpr double kGpuFixedOverhead = 1.5e9;

/** Fractional allocator fragmentation overhead on resident bytes. */
inline constexpr double kFragmentationFactor = 1.05;

/**
 * Usable fraction of advertised CPU DRAM (OS, page tables, runtime
 * buffers consume the rest). Alias of the DDR tier's usable fraction
 * in hw::MemoryHierarchy so accounting and fit checks agree.
 */
inline constexpr double kCpuUsableFraction = hw::kDdrUsableFraction;

/** Apply fragmentation + fixed overhead to raw resident GPU bytes. */
double gpuResidentBytes(double raw_bytes);

} // namespace so::model

#endif // SO_MODEL_MEMORY_H
