#include "model/flops.h"

#include "common/logging.h"

namespace so::model {

double
IterationFlops::modelFlops() const
{
    return fwd_gemm + fwd_attn + bwd_gemm + bwd_attn;
}

double
IterationFlops::executedFlops() const
{
    return modelFlops() + recompute_gemm + recompute_attn;
}

double
IterationFlops::totalGemm() const
{
    return fwd_gemm + bwd_gemm + recompute_gemm;
}

double
IterationFlops::totalAttn() const
{
    return fwd_attn + bwd_attn + recompute_attn;
}

double
fwdGemmFlops(const ModelConfig &cfg, double batch, double seq)
{
    SO_ASSERT(batch > 0.0 && seq > 0.0, "batch and seq must be positive");
    const double tokens = batch * seq;
    // 2 flops per parameter per token for the linear layers, plus the
    // LM-head projection onto the vocabulary.
    return 2.0 * tokens * cfg.matmulParams() +
           2.0 * tokens * static_cast<double>(cfg.hidden) * cfg.vocab;
}

double
fwdAttnFlops(const ModelConfig &cfg, double batch, double seq)
{
    SO_ASSERT(batch > 0.0 && seq > 0.0, "batch and seq must be positive");
    // Per layer: QK^T is 2*b*s^2*h flops, AV another 2*b*s^2*h.
    return 4.0 * batch * seq * seq * static_cast<double>(cfg.hidden) *
           cfg.layers;
}

IterationFlops
iterationFlops(const ModelConfig &cfg, double batch, double seq,
               bool activation_checkpointing)
{
    IterationFlops flops;
    flops.fwd_gemm = fwdGemmFlops(cfg, batch, seq);
    flops.fwd_attn = fwdAttnFlops(cfg, batch, seq);
    // Backward re-traverses each matmul twice (grad wrt input and wrt
    // weights): 2x the forward cost.
    flops.bwd_gemm = 2.0 * flops.fwd_gemm;
    flops.bwd_attn = 2.0 * flops.fwd_attn;
    if (activation_checkpointing) {
        flops.recompute_gemm = flops.fwd_gemm;
        flops.recompute_attn = flops.fwd_attn;
    }
    return flops;
}

double
mfu(const IterationFlops &flops, double elapsed_seconds, double gpus,
    double peak_flops_per_gpu)
{
    SO_ASSERT(elapsed_seconds > 0.0, "elapsed time must be positive");
    SO_ASSERT(gpus > 0.0 && peak_flops_per_gpu > 0.0,
              "invalid hardware parameters");
    return flops.modelFlops() /
           (elapsed_seconds * gpus * peak_flops_per_gpu);
}

} // namespace so::model
