/**
 * @file
 * FLOP accounting for transformer training iterations.
 *
 * §4.2 of the paper approximates the forward pass as
 * 2 * bsz * seq * params; we additionally track the attention term
 * (quadratic in sequence length), which dominates in the long-sequence
 * regime of Fig. 12, and the recompute term added by activation
 * checkpointing (excluded from effective-TFLOPS reporting, per §5.2).
 */
#ifndef SO_MODEL_FLOPS_H
#define SO_MODEL_FLOPS_H

#include "model/config.h"

namespace so::model {

/** FLOP breakdown of one training iteration for one data shard. */
struct IterationFlops
{
    /** Forward GEMM flops (linear layers + LM head). */
    double fwd_gemm = 0.0;
    /** Forward attention flops (QK^T and AV, quadratic in seq). */
    double fwd_attn = 0.0;
    /** Backward GEMM flops (2x forward). */
    double bwd_gemm = 0.0;
    /** Backward attention flops. */
    double bwd_attn = 0.0;
    /** Extra forward flops re-executed by activation checkpointing. */
    double recompute_gemm = 0.0;
    double recompute_attn = 0.0;

    /** Model flops (fwd + bwd), the numerator of effective TFLOPS. */
    double modelFlops() const;

    /** All executed flops including recompute. */
    double executedFlops() const;

    double totalGemm() const;
    double totalAttn() const;
};

/**
 * FLOPs of one iteration over @p batch sequences of @p seq tokens.
 * @param activation_checkpointing adds one forward recompute.
 */
IterationFlops iterationFlops(const ModelConfig &cfg, double batch,
                              double seq, bool activation_checkpointing);

/** Forward GEMM flops only (2 * tokens * matmul params + LM head). */
double fwdGemmFlops(const ModelConfig &cfg, double batch, double seq);

/** Forward attention flops only (4 * batch * seq^2 * hidden per layer). */
double fwdAttnFlops(const ModelConfig &cfg, double batch, double seq);

/**
 * Model FLOPS utilization: modelFlops / elapsed / (gpus * peak).
 * Recompute is excluded from the numerator, matching the paper.
 */
double mfu(const IterationFlops &flops, double elapsed_seconds,
           double gpus, double peak_flops_per_gpu);

} // namespace so::model

#endif // SO_MODEL_FLOPS_H
