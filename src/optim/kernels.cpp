#include "optim/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace so::optim {

double
l2NormSquared(const float *data, std::size_t n)
{
    // Four independent accumulators so the loop pipelines; the final
    // reduction order is fixed, keeping results deterministic.
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 += static_cast<double>(data[i]) * data[i];
        acc1 += static_cast<double>(data[i + 1]) * data[i + 1];
        acc2 += static_cast<double>(data[i + 2]) * data[i + 2];
        acc3 += static_cast<double>(data[i + 3]) * data[i + 3];
    }
    for (; i < n; ++i)
        acc0 += static_cast<double>(data[i]) * data[i];
    return ((acc0 + acc1) + (acc2 + acc3));
}

bool
hasNanOrInf(const float *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(data[i]))
            return true;
    }
    return false;
}

bool
hasUnsafeValues(const float *data, std::size_t n, float limit)
{
    SO_ASSERT(limit > 0.0f, "limit must be positive");
    for (std::size_t i = 0; i < n; ++i) {
        // !(|x| <= limit) is true for NaN as well.
        if (!(std::fabs(data[i]) <= limit))
            return true;
    }
    return false;
}

void
scaleInPlace(float *data, std::size_t n, float scale)
{
    for (std::size_t i = 0; i < n; ++i)
        data[i] *= scale;
}

void
axpy(float *dst, const float *src, std::size_t n, float alpha)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += alpha * src[i];
}

double
clipScale(double global_norm, double max_norm)
{
    SO_ASSERT(max_norm > 0.0, "max_norm must be positive");
    if (global_norm <= max_norm)
        return 1.0;
    return max_norm / (global_norm + 1e-6);
}

} // namespace so::optim
