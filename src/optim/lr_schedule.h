/**
 * @file
 * Learning-rate schedules for the numeric training loops.
 *
 * LLM training (the paper's §5.7 run included) pairs Adam with linear
 * warm-up and a decaying tail; warm-up is also when the gradient
 * variance is highest — precisely the phase where STV's rollbacks
 * concentrate (Fig. 14), so the schedule matters to the experiments.
 */
#ifndef SO_OPTIM_LR_SCHEDULE_H
#define SO_OPTIM_LR_SCHEDULE_H

#include <cstdint>

namespace so::optim {

/** Shape of the decay after warm-up. */
enum class LrDecay
{
    /** No decay: constant at base_lr after warm-up. */
    Constant,
    /** Cosine from base_lr to min_lr over the remaining steps. */
    Cosine,
    /** Linear from base_lr to min_lr over the remaining steps. */
    Linear,
};

/** Linear warm-up followed by a configurable decay. */
class LrSchedule
{
  public:
    /** Constant learning rate (no warm-up, no decay). */
    static LrSchedule constant(float lr);

    /**
     * @param base_lr      peak learning rate after warm-up.
     * @param warmup_steps linear ramp 0 -> base_lr over these steps.
     * @param total_steps  horizon for the decay (>= warmup_steps).
     * @param decay        tail shape.
     * @param min_lr       floor the decay approaches.
     */
    LrSchedule(float base_lr, std::int64_t warmup_steps,
               std::int64_t total_steps, LrDecay decay = LrDecay::Cosine,
               float min_lr = 0.0f);

    /** Learning rate at 1-based optimizer step @p step. */
    float at(std::int64_t step) const;

    float baseLr() const { return base_lr_; }
    std::int64_t warmupSteps() const { return warmup_steps_; }

  private:
    float base_lr_;
    float min_lr_;
    std::int64_t warmup_steps_;
    std::int64_t total_steps_;
    LrDecay decay_;
};

} // namespace so::optim

#endif // SO_OPTIM_LR_SCHEDULE_H
