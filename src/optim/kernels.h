/**
 * @file
 * Bandwidth-bound vector kernels shared by the optimizers and the STV
 * validation path: L2 norms (for global gradient clipping, §4.4),
 * NaN/Inf scans (mixed-precision robustness checks), and scaling.
 */
#ifndef SO_OPTIM_KERNELS_H
#define SO_OPTIM_KERNELS_H

#include <cstddef>

namespace so::optim {

/** Sum of squares of data[0..n), accumulated in double. */
double l2NormSquared(const float *data, std::size_t n);

/** True if any element of data[0..n) is NaN or +/-Inf. */
bool hasNanOrInf(const float *data, std::size_t n);

/**
 * True if any element is NaN, +/-Inf, or exceeds @p limit in magnitude.
 * Used as the *local* speculation guard of the STV optimizer (§4.4):
 * a bucket whose gradients could overflow the Adam arithmetic (g^2
 * above float range) must not be stepped speculatively, because the
 * in-place algebraic rollback cannot invert a non-finite update. The
 * check is bucket-local, so it introduces no global synchronization.
 */
bool hasUnsafeValues(const float *data, std::size_t n, float limit);

/** data[i] *= scale for i in [0, n). */
void scaleInPlace(float *data, std::size_t n, float scale);

/** dst[i] += alpha * src[i] for i in [0, n). */
void axpy(float *dst, const float *src, std::size_t n, float alpha);

/**
 * Gradient clipping scale for a global norm: returns
 * min(1, max_norm / (norm + eps)); a result < 1 means clipping fires.
 */
double clipScale(double global_norm, double max_norm);

} // namespace so::optim

#endif // SO_OPTIM_KERNELS_H
