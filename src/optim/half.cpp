#include "optim/half.h"

#include <bit>
#include <cstring>

namespace so::optim {

namespace {

constexpr std::uint16_t kExpMask = 0x7c00;
constexpr std::uint16_t kFracMask = 0x03ff;

} // namespace

Half
floatToHalf(float value)
{
    const auto bits = std::bit_cast<std::uint32_t>(value);
    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::uint32_t exp = (bits >> 23) & 0xffu;
    std::uint32_t frac = bits & 0x7fffffu;

    if (exp == 0xffu) {
        // Inf / NaN: preserve NaN-ness by keeping a non-zero fraction.
        const std::uint16_t payload =
            frac ? static_cast<std::uint16_t>((frac >> 13) | 1u) : 0u;
        return Half{static_cast<std::uint16_t>(sign | kExpMask | payload)};
    }

    // Re-bias exponent from 127 to 15.
    const std::int32_t new_exp = static_cast<std::int32_t>(exp) - 127 + 15;

    if (new_exp >= 0x1f) {
        // Overflow to infinity.
        return Half{static_cast<std::uint16_t>(sign | kExpMask)};
    }

    if (new_exp <= 0) {
        // Subnormal half (or zero). Shift in the implicit leading one.
        if (new_exp < -10)
            return Half{static_cast<std::uint16_t>(sign)};
        frac |= 0x800000u;
        const std::uint32_t shift = static_cast<std::uint32_t>(14 - new_exp);
        std::uint32_t half_frac = frac >> shift;
        // Round to nearest even on the bits shifted out.
        const std::uint32_t rem = frac & ((1u << shift) - 1u);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_frac & 1u)))
            ++half_frac;
        return Half{static_cast<std::uint16_t>(sign | half_frac)};
    }

    // Normal case: round the 23-bit fraction to 10 bits, nearest-even.
    std::uint32_t half_frac = frac >> 13;
    const std::uint32_t rem = frac & 0x1fffu;
    std::uint32_t result = sign |
                           (static_cast<std::uint32_t>(new_exp) << 10) |
                           half_frac;
    if (rem > 0x1000u || (rem == 0x1000u && (half_frac & 1u))) {
        // Carry may ripple into the exponent; that is correct behaviour
        // (rounds up to the next binade or to infinity).
        ++result;
    }
    return Half{static_cast<std::uint16_t>(result)};
}

float
halfToFloat(Half value)
{
    const std::uint32_t sign =
        static_cast<std::uint32_t>(value.bits & 0x8000u) << 16;
    const std::uint32_t exp = (value.bits & kExpMask) >> 10;
    const std::uint32_t frac = value.bits & kFracMask;

    std::uint32_t out;
    if (exp == 0) {
        if (frac == 0) {
            out = sign; // +/- zero.
        } else {
            // Subnormal: normalize by shifting the fraction up. After
            // k shifts the value is (f / 2^10) * 2^(-14 - k), so the
            // unbiased exponent is e - 14 with e starting at zero.
            std::uint32_t f = frac;
            std::int32_t e = 0;
            while (!(f & 0x400u)) {
                f <<= 1;
                --e;
            }
            f &= kFracMask;
            out = sign |
                  (static_cast<std::uint32_t>(e + 1 - 15 + 127) << 23) |
                  (f << 13);
        }
    } else if (exp == 0x1f) {
        out = sign | 0x7f800000u | (frac << 13);
    } else {
        out = sign | ((exp - 15 + 127) << 23) | (frac << 13);
    }
    return std::bit_cast<float>(out);
}

bool
isNan(Half value)
{
    return (value.bits & kExpMask) == kExpMask &&
           (value.bits & kFracMask) != 0;
}

bool
isInf(Half value)
{
    return (value.bits & kExpMask) == kExpMask &&
           (value.bits & kFracMask) == 0;
}

Half
halfMax()
{
    return Half{0x7bff};
}

Half
halfMinNormal()
{
    return Half{0x0400};
}

void
castToHalf(const float *src, Half *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = floatToHalf(src[i]);
}

void
castToFloat(const Half *src, float *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = halfToFloat(src[i]);
}

bool
hasNanOrInf(const Half *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if ((data[i].bits & kExpMask) == kExpMask)
            return true;
    }
    return false;
}

} // namespace so::optim
