/**
 * @file
 * Software IEEE 754 binary16 ("half") implementation.
 *
 * Mixed-precision training (§4.5) stores parameters and gradients in
 * FP16 and casts to FP32 for the optimizer. The Superchip-aware casting
 * study (Fig. 9) compares where that cast runs and in which precision
 * the tensor crosses the C2C link, so we need a real, bit-exact binary16
 * with bulk conversion kernels.
 */
#ifndef SO_OPTIM_HALF_H
#define SO_OPTIM_HALF_H

#include <cstddef>
#include <cstdint>

namespace so::optim {

/** Storage type for one binary16 value. */
struct Half
{
    std::uint16_t bits = 0;

    bool operator==(const Half &other) const = default;
};

/** Convert float -> half with round-to-nearest-even (IEEE default). */
Half floatToHalf(float value);

/** Convert half -> float (exact). */
float halfToFloat(Half value);

/** True for both quiet and signalling NaN encodings. */
bool isNan(Half value);

/** True for +/- infinity. */
bool isInf(Half value);

/** Largest finite half (65504). */
Half halfMax();

/** Smallest positive normal half (2^-14). */
Half halfMinNormal();

/** Bulk cast float[0..n) -> half[0..n). */
void castToHalf(const float *src, Half *dst, std::size_t n);

/** Bulk cast half[0..n) -> float[0..n). */
void castToFloat(const Half *src, float *dst, std::size_t n);

/** True if any element of half[0..n) is NaN or Inf. */
bool hasNanOrInf(const Half *data, std::size_t n);

} // namespace so::optim

#endif // SO_OPTIM_HALF_H
