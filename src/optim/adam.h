/**
 * @file
 * Adam/AdamW optimizer kernels at three optimization levels, mirroring
 * the implementations compared in the paper's Table 3:
 *
 *  - adamStepNaive  — "PT-CPU": the unfused multi-pass formulation a
 *    framework executes as a sequence of whole-tensor vector ops, each
 *    re-streaming the arrays through memory;
 *  - adamStepFused  — "CPU-Adam": a single fused pass per element
 *    (DeepSpeed's x86 SIMD design);
 *  - adamStepGrace  — "GraceAdam" (§4.6): the fused kernel plus
 *    cache-sized tiling, explicit prefetch, and multithreading — the
 *    portable analogue of SVE + svprfm + OpenMP on Grace.
 *
 * All three compute the same mathematical update; an exact algebraic
 * inverse (adamStepInverse) supports STV's in-place rollback (§4.4).
 */
#ifndef SO_OPTIM_ADAM_H
#define SO_OPTIM_ADAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "optim/half.h"

namespace so {
class ThreadPool;
}

namespace so::optim {

/** AdamW hyperparameters (decoupled weight decay). */
struct AdamConfig
{
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    /** Decoupled weight decay; 0 disables it. */
    float weight_decay = 0.0f;
};

/**
 * Unfused multi-pass Adam step ("PT-CPU").
 * @param step 1-based step number (for bias correction).
 */
void adamStepNaive(const AdamConfig &cfg, std::int64_t step, float *param,
                   float *m, float *v, const float *grad, std::size_t n);

/** Fused single-pass Adam step ("CPU-Adam"). */
void adamStepFused(const AdamConfig &cfg, std::int64_t step, float *param,
                   float *m, float *v, const float *grad, std::size_t n);

/**
 * Tiled, prefetching, optionally multithreaded Adam step ("GraceAdam").
 * @param pool worker pool for the outer parallel loop; nullptr runs
 * single-threaded.
 */
void adamStepGrace(const AdamConfig &cfg, std::int64_t step, float *param,
                   float *m, float *v, const float *grad, std::size_t n,
                   ThreadPool *pool = nullptr);

/**
 * GraceAdam step fused with the fp16 shadow-copy write: mixed-precision
 * offloading keeps an fp16 parameter replica for the next forward pass,
 * and writing it inside the optimizer loop (as DeepSpeed's CPU-Adam and
 * §4.6's GraceAdam do) saves a whole extra pass over the parameters —
 * it is the "+2 bytes/param" of the 30 B/param traffic model
 * (hw::CpuSpec::kAdamBytesPerParam).
 */
void adamStepGraceFp16(const AdamConfig &cfg, std::int64_t step,
                       float *param, Half *param_fp16, float *m, float *v,
                       const float *grad, std::size_t n,
                       ThreadPool *pool = nullptr);

/**
 * Exactly invert one Adam step: given the post-step (param, m, v) and
 * the gradient that produced it, recover the pre-step state. Inversion
 * runs in double precision; the reconstruction is accurate to float
 * rounding. Used by STV's in-place rollback (§4.4) so a mis-speculated
 * update can be reverted without shadow copies.
 */
void adamStepInverse(const AdamConfig &cfg, std::int64_t step, float *param,
                     float *m, float *v, const float *grad, std::size_t n);

/** Which kernel an Adam instance dispatches to. */
enum class AdamKernel { Naive, Fused, Grace };

/**
 * Stateful AdamW over a set of parameter tensors. Owns the momentum and
 * variance buffers; parameters and gradients stay caller-owned so the
 * trainer controls placement (the offloading engine decides where they
 * live).
 */
class Adam
{
  public:
    explicit Adam(AdamConfig cfg, AdamKernel kernel = AdamKernel::Grace,
                  ThreadPool *pool = nullptr);

    /** Register a tensor of @p n elements; returns its slot id. */
    std::size_t addParameter(std::size_t n);

    /** Number of registered tensors. */
    std::size_t parameterCount() const { return slots_.size(); }

    /** Elements of slot @p slot. */
    std::size_t size(std::size_t slot) const;

    /** Apply one step to slot @p slot; increments its step count. */
    void step(std::size_t slot, float *param, const float *grad);

    /**
     * Apply one step fused with the fp16 shadow-copy write
     * (adamStepGraceFp16); increments the step count. Used by the
     * offloaded mixed-precision trainer.
     */
    void stepWithFp16Shadow(std::size_t slot, float *param,
                            Half *param_fp16, const float *grad);

    /**
     * Invert the most recent step of @p slot (requires the same
     * gradient); decrements its step count.
     */
    void rollback(std::size_t slot, float *param, const float *grad);

    /** Steps applied to @p slot so far. */
    std::int64_t stepCount(std::size_t slot) const;

    const AdamConfig &config() const { return cfg_; }

    /**
     * Update the learning rate for subsequent steps (schedule hook).
     * Rollbacks of steps taken under an earlier rate must re-set it
     * first; the trainers sequence this correctly.
     */
    void setLearningRate(float lr);

    /** Momentum buffer of a slot (test/diagnostic access). */
    const std::vector<float> &momentum(std::size_t slot) const;

    /** Variance buffer of a slot (test/diagnostic access). */
    const std::vector<float> &variance(std::size_t slot) const;

    /** Mutable momentum storage (snapshot-restore rollback). */
    float *momentumData(std::size_t slot);

    /** Mutable variance storage (snapshot-restore rollback). */
    float *varianceData(std::size_t slot);

    /**
     * Decrement the step counter after the caller restored (param, m,
     * v) externally (snapshot rollback). The next step() then reuses
     * the rolled-back step number, exactly like rollback().
     */
    void rewindStep(std::size_t slot);

    /**
     * Overwrite a slot's full optimizer state (checkpoint restore).
     * @p m and @p v must hold size(slot) elements.
     */
    void restoreState(std::size_t slot, const float *m, const float *v,
                      std::int64_t steps);

  private:
    struct Slot
    {
        std::vector<float> m;
        std::vector<float> v;
        std::int64_t steps = 0;
    };

    const Slot &slotRef(std::size_t slot) const;

    AdamConfig cfg_;
    AdamKernel kernel_;
    ThreadPool *pool_;
    std::vector<Slot> slots_;
};

} // namespace so::optim

#endif // SO_OPTIM_ADAM_H
