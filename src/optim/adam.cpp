#include "optim/adam.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace so::optim {

namespace {

/** Per-step scalar factors shared by all kernels. */
struct StepScalars
{
    float decay;      // 1 - lr * weight_decay (decoupled).
    float step_size;  // lr / (1 - beta1^t).
    float inv_bc2;    // 1 / sqrt(1 - beta2^t).
    float one_minus_b1;
    float one_minus_b2;
};

StepScalars
scalars(const AdamConfig &cfg, std::int64_t step)
{
    SO_ASSERT(step >= 1, "Adam step numbers are 1-based, got ", step);
    const double bc1 =
        1.0 - std::pow(static_cast<double>(cfg.beta1), step);
    const double bc2 =
        1.0 - std::pow(static_cast<double>(cfg.beta2), step);
    StepScalars s;
    s.decay = 1.0f - cfg.lr * cfg.weight_decay;
    s.step_size = static_cast<float>(cfg.lr / bc1);
    s.inv_bc2 = static_cast<float>(1.0 / std::sqrt(bc2));
    s.one_minus_b1 = 1.0f - cfg.beta1;
    s.one_minus_b2 = 1.0f - cfg.beta2;
    return s;
}

/** The fused per-element update, shared by Fused and Grace kernels. */
inline void
fusedRange(const AdamConfig &cfg, const StepScalars &s, float *__restrict p,
           float *__restrict m, float *__restrict v,
           const float *__restrict g, std::size_t begin, std::size_t end)
{
    const float b1 = cfg.beta1;
    const float b2 = cfg.beta2;
    const float omb1 = s.one_minus_b1;
    const float omb2 = s.one_minus_b2;
    const float eps = cfg.eps;
    const float step_size = s.step_size;
    const float inv_bc2 = s.inv_bc2;
    const float decay = s.decay;
    for (std::size_t i = begin; i < end; ++i) {
        const float grad = g[i];
        const float mi = b1 * m[i] + omb1 * grad;
        const float vi = b2 * v[i] + omb2 * grad * grad;
        m[i] = mi;
        v[i] = vi;
        const float denom = std::sqrt(vi) * inv_bc2 + eps;
        p[i] = decay * p[i] - step_size * (mi / denom);
    }
}

} // namespace

void
adamStepNaive(const AdamConfig &cfg, std::int64_t step, float *param,
              float *m, float *v, const float *grad, std::size_t n)
{
    const StepScalars s = scalars(cfg, step);
    // The unfused formulation a framework executes as separate vector
    // ops. Each loop is one whole-array pass; the temporaries add two
    // more streams of memory traffic. This is what makes "PT-CPU" ~3x
    // slower than the fused kernels (Table 3) — same math, more DRAM.
    std::vector<float> tmp(n);
    std::vector<float> denom(n);

    for (std::size_t i = 0; i < n; ++i)        // m *= beta1
        m[i] *= cfg.beta1;
    for (std::size_t i = 0; i < n; ++i)        // m += (1-beta1) * g
        m[i] += s.one_minus_b1 * grad[i];
    for (std::size_t i = 0; i < n; ++i)        // tmp = g * g
        tmp[i] = grad[i] * grad[i];
    for (std::size_t i = 0; i < n; ++i)        // v *= beta2
        v[i] *= cfg.beta2;
    for (std::size_t i = 0; i < n; ++i)        // v += (1-beta2) * tmp
        v[i] += s.one_minus_b2 * tmp[i];
    for (std::size_t i = 0; i < n; ++i)        // denom = sqrt(v)
        denom[i] = std::sqrt(v[i]);
    for (std::size_t i = 0; i < n; ++i)        // denom = denom/sqrt(bc2)+eps
        denom[i] = denom[i] * s.inv_bc2 + cfg.eps;
    for (std::size_t i = 0; i < n; ++i)        // tmp = m / denom
        tmp[i] = m[i] / denom[i];
    if (s.decay != 1.0f) {
        for (std::size_t i = 0; i < n; ++i)    // decoupled weight decay
            param[i] *= s.decay;
    }
    for (std::size_t i = 0; i < n; ++i)        // p -= step_size * tmp
        param[i] -= s.step_size * tmp[i];
}

void
adamStepFused(const AdamConfig &cfg, std::int64_t step, float *param,
              float *m, float *v, const float *grad, std::size_t n)
{
    const StepScalars s = scalars(cfg, step);
    fusedRange(cfg, s, param, m, v, grad, 0, n);
}

void
adamStepGrace(const AdamConfig &cfg, std::int64_t step, float *param,
              float *m, float *v, const float *grad, std::size_t n,
              ThreadPool *pool)
{
    const StepScalars s = scalars(cfg, step);
    // Tile size sized to keep all four streams (p, m, v, g) resident in
    // L1/L2 while the prefetcher pulls the next tile — the portable
    // counterpart of §4.6's "tiled processing approach ... cache
    // friendly chunks (TILE size)".
    constexpr std::size_t kTile = 4096;
    constexpr std::size_t kPrefetchAhead = 16;

    auto run_range = [&](std::size_t begin, std::size_t end) {
        for (std::size_t tile = begin; tile < end; tile += kTile) {
            const std::size_t hi = std::min(tile + kTile, end);
            for (std::size_t i = tile; i < hi; i += kPrefetchAhead) {
                __builtin_prefetch(param + i + kPrefetchAhead, 1, 3);
                __builtin_prefetch(m + i + kPrefetchAhead, 1, 3);
                __builtin_prefetch(v + i + kPrefetchAhead, 1, 3);
                __builtin_prefetch(grad + i + kPrefetchAhead, 0, 3);
                fusedRange(cfg, s, param, m, v, grad, i,
                           std::min(i + kPrefetchAhead, hi));
            }
        }
    };

    if (pool && pool->threadCount() > 1 && n >= 4 * kTile) {
        pool->parallelFor(n, run_range);
    } else {
        run_range(0, n);
    }
}

void
adamStepGraceFp16(const AdamConfig &cfg, std::int64_t step, float *param,
                  Half *param_fp16, float *m, float *v, const float *grad,
                  std::size_t n, ThreadPool *pool)
{
    const StepScalars s = scalars(cfg, step);
    constexpr std::size_t kTile = 4096;

    auto run_range = [&](std::size_t begin, std::size_t end) {
        for (std::size_t tile = begin; tile < end; tile += kTile) {
            const std::size_t hi = std::min(tile + kTile, end);
            fusedRange(cfg, s, param, m, v, grad, tile, hi);
            // Shadow-copy write while the tile is still cache-hot.
            for (std::size_t i = tile; i < hi; ++i)
                param_fp16[i] = floatToHalf(param[i]);
        }
    };

    if (pool && pool->threadCount() > 1 && n >= 4 * kTile) {
        pool->parallelFor(n, run_range);
    } else {
        run_range(0, n);
    }
}

void
adamStepInverse(const AdamConfig &cfg, std::int64_t step, float *param,
                float *m, float *v, const float *grad, std::size_t n)
{
    // Use the *same* rounded per-step scalar factors the forward kernel
    // used (promoted to double); mixing in freshly-computed doubles
    // would make the reconstruction disagree with the forward pass by
    // far more than one float ulp.
    const StepScalars s = scalars(cfg, step);
    const double b1 = cfg.beta1;
    const double b2 = cfg.beta2;
    const double omb1 = s.one_minus_b1;
    const double omb2 = s.one_minus_b2;
    const double step_size = s.step_size;
    const double inv_bc2 = s.inv_bc2;
    const double decay = s.decay;
    for (std::size_t i = 0; i < n; ++i) {
        const double g = grad[i];
        // The post-step m and v are exactly what the forward kernel
        // computed, so the parameter reconstruction can reuse them
        // before they are themselves inverted.
        const double mi = m[i];
        const double vi = v[i];
        const double denom =
            std::sqrt(vi) * inv_bc2 + static_cast<double>(cfg.eps);
        const double p_prev =
            (static_cast<double>(param[i]) + step_size * (mi / denom)) /
            decay;
        param[i] = static_cast<float>(p_prev);
        m[i] = static_cast<float>((mi - omb1 * g) / b1);
        // Rounding can drive the reconstructed variance a hair below
        // zero when the true value is ~0; clamp, or the next step's
        // sqrt would poison the parameter with NaN.
        v[i] = static_cast<float>(std::max(0.0, (vi - omb2 * g * g) / b2));
    }
}

Adam::Adam(AdamConfig cfg, AdamKernel kernel, ThreadPool *pool)
    : cfg_(cfg), kernel_(kernel), pool_(pool)
{
}

std::size_t
Adam::addParameter(std::size_t n)
{
    SO_ASSERT(n > 0, "empty parameter tensor");
    Slot slot;
    slot.m.assign(n, 0.0f);
    slot.v.assign(n, 0.0f);
    slots_.push_back(std::move(slot));
    return slots_.size() - 1;
}

std::size_t
Adam::size(std::size_t slot) const
{
    return slotRef(slot).m.size();
}

void
Adam::step(std::size_t slot, float *param, const float *grad)
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    Slot &state = slots_[slot];
    const std::int64_t step_no = state.steps + 1;
    const std::size_t n = state.m.size();
    switch (kernel_) {
      case AdamKernel::Naive:
        adamStepNaive(cfg_, step_no, param, state.m.data(),
                      state.v.data(), grad, n);
        break;
      case AdamKernel::Fused:
        adamStepFused(cfg_, step_no, param, state.m.data(),
                      state.v.data(), grad, n);
        break;
      case AdamKernel::Grace:
        adamStepGrace(cfg_, step_no, param, state.m.data(),
                      state.v.data(), grad, n, pool_);
        break;
    }
    state.steps = step_no;
}

void
Adam::stepWithFp16Shadow(std::size_t slot, float *param, Half *param_fp16,
                         const float *grad)
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    Slot &state = slots_[slot];
    const std::int64_t step_no = state.steps + 1;
    adamStepGraceFp16(cfg_, step_no, param, param_fp16, state.m.data(),
                      state.v.data(), grad, state.m.size(), pool_);
    state.steps = step_no;
}

void
Adam::rollback(std::size_t slot, float *param, const float *grad)
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    Slot &state = slots_[slot];
    SO_ASSERT(state.steps >= 1, "rollback without a prior step");
    adamStepInverse(cfg_, state.steps, param, state.m.data(),
                    state.v.data(), grad, state.m.size());
    --state.steps;
}

void
Adam::restoreState(std::size_t slot, const float *m, const float *v,
                   std::int64_t steps)
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    SO_ASSERT(steps >= 0, "negative step count");
    Slot &state = slots_[slot];
    std::copy(m, m + state.m.size(), state.m.begin());
    std::copy(v, v + state.v.size(), state.v.begin());
    state.steps = steps;
}

void
Adam::setLearningRate(float lr)
{
    SO_ASSERT(lr > 0.0f, "learning rate must be positive");
    cfg_.lr = lr;
}

std::int64_t
Adam::stepCount(std::size_t slot) const
{
    return slotRef(slot).steps;
}

const std::vector<float> &
Adam::momentum(std::size_t slot) const
{
    return slotRef(slot).m;
}

const std::vector<float> &
Adam::variance(std::size_t slot) const
{
    return slotRef(slot).v;
}

float *
Adam::momentumData(std::size_t slot)
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    return slots_[slot].m.data();
}

float *
Adam::varianceData(std::size_t slot)
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    return slots_[slot].v.data();
}

void
Adam::rewindStep(std::size_t slot)
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    SO_ASSERT(slots_[slot].steps >= 1, "rewind without a prior step");
    --slots_[slot].steps;
}

const Adam::Slot &
Adam::slotRef(std::size_t slot) const
{
    SO_ASSERT(slot < slots_.size(), "unknown Adam slot ", slot);
    return slots_[slot];
}

} // namespace so::optim
