#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace so::optim {

LrSchedule
LrSchedule::constant(float lr)
{
    return LrSchedule(lr, 0, 1, LrDecay::Constant, lr);
}

LrSchedule::LrSchedule(float base_lr, std::int64_t warmup_steps,
                       std::int64_t total_steps, LrDecay decay,
                       float min_lr)
    : base_lr_(base_lr), min_lr_(min_lr), warmup_steps_(warmup_steps),
      total_steps_(total_steps), decay_(decay)
{
    SO_ASSERT(base_lr > 0.0f, "base learning rate must be positive");
    SO_ASSERT(warmup_steps >= 0, "negative warm-up");
    SO_ASSERT(total_steps >= std::max<std::int64_t>(warmup_steps, 1),
              "total_steps must cover the warm-up");
    SO_ASSERT(min_lr >= 0.0f && min_lr <= base_lr,
              "min_lr must be in [0, base_lr]");
}

float
LrSchedule::at(std::int64_t step) const
{
    SO_ASSERT(step >= 1, "steps are 1-based, got ", step);
    if (step <= warmup_steps_) {
        return base_lr_ * static_cast<float>(step) /
               static_cast<float>(warmup_steps_);
    }
    if (decay_ == LrDecay::Constant || total_steps_ <= warmup_steps_)
        return base_lr_;
    const double progress = std::min(
        1.0, static_cast<double>(step - warmup_steps_) /
                 static_cast<double>(total_steps_ - warmup_steps_));
    switch (decay_) {
      case LrDecay::Cosine:
        return static_cast<float>(
            min_lr_ + 0.5 * (base_lr_ - min_lr_) *
                          (1.0 + std::cos(M_PI * progress)));
      case LrDecay::Linear:
        return static_cast<float>(base_lr_ -
                                  (base_lr_ - min_lr_) * progress);
      case LrDecay::Constant:
        break;
    }
    return base_lr_;
}

} // namespace so::optim
