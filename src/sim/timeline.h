/**
 * @file
 * Busy-interval timelines for simulated resources.
 *
 * The paper's Figs. 4 and 15 are idle/busy breakdowns of the Hopper GPU
 * and Grace CPU over a training iteration; Timeline provides the busy
 * time, idle time, and utilization queries those figures need.
 */
#ifndef SO_SIM_TIMELINE_H
#define SO_SIM_TIMELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/graph.h"

namespace so::sim {

/** One busy interval on a resource slot. */
struct Interval
{
    double start = 0.0;
    double end = 0.0;
    TaskId task = kInvalidTask;
    std::uint32_t slot = 0;
};

/** Ordered record of the busy intervals of one resource. */
class Timeline
{
  public:
    /** Record a busy interval; intervals may overlap across slots. */
    void add(double start, double end, TaskId task, std::uint32_t slot = 0);

    /** Drop all intervals but keep the capacity (recycling support). */
    void clear() { intervals_.clear(); }

    const std::vector<Interval> &intervals() const { return intervals_; }

    /**
     * Time inside [begin, end) during which at least one slot is busy
     * (union of intervals, clamped to the window).
     */
    double busyTime(double begin, double end) const;

    /** Window length minus busyTime. */
    double idleTime(double begin, double end) const;

    /** busyTime / window length; 0 for an empty window. */
    double utilization(double begin, double end) const;

    /** Sum of slot-seconds (no union), for work accounting. */
    double totalSlotSeconds() const;

    /** Earliest interval start; 0 if empty. */
    double firstStart() const;

    /** Latest interval end; 0 if empty. */
    double lastEnd() const;

    bool empty() const { return intervals_.empty(); }

  private:
    std::vector<Interval> intervals_;
};

} // namespace so::sim

#endif // SO_SIM_TIMELINE_H
