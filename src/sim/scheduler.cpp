#include "sim/scheduler.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/logging.h"

namespace so::sim {

double
Schedule::idleFraction(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].idleTime(0.0, makespan) / makespan;
}

double
Schedule::utilization(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].utilization(0.0, makespan);
}

namespace {

/** A task waiting to run on a resource; ordered by (priority, id). */
struct ReadyTask
{
    std::int32_t priority;
    TaskId id;

    bool
    operator<(const ReadyTask &other) const
    {
        if (priority != other.priority)
            return priority < other.priority;
        return id < other.id;
    }
};

/** Completion event in the global event queue. */
struct Completion
{
    double time;
    TaskId id;

    // std::priority_queue is a max-heap: invert so the earliest time
    // (then the lowest id, for determinism) pops first.
    bool
    operator<(const Completion &other) const
    {
        if (time != other.time)
            return time > other.time;
        return id > other.id;
    }
};

/** Per-resource scheduling state. */
struct ResourceState
{
    // Min-heap of slot free times.
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>> slot_free;
    // Ready tasks not yet started, ordered by (priority, id).
    std::set<ReadyTask> ready;
    std::uint32_t next_slot = 0;
};

} // namespace

Schedule
Scheduler::run(const TaskGraph &graph) const
{
    const auto &tasks = graph.tasks();
    const std::size_t n = tasks.size();

    Schedule schedule;
    schedule.start.assign(n, 0.0);
    schedule.finish.assign(n, 0.0);
    schedule.timelines.resize(graph.resourceCount());

    // Dependency bookkeeping.
    std::vector<std::uint32_t> pending_deps(n, 0);
    std::vector<std::vector<TaskId>> dependents(n);
    for (TaskId id = 0; id < n; ++id) {
        pending_deps[id] = static_cast<std::uint32_t>(tasks[id].deps.size());
        for (TaskId dep : tasks[id].deps)
            dependents[dep].push_back(id);
    }

    std::vector<ResourceState> rstate(graph.resourceCount());
    for (ResourceId r = 0; r < graph.resourceCount(); ++r) {
        for (std::uint32_t s = 0; s < graph.resource(r).slots; ++s)
            rstate[r].slot_free.push(0.0);
    }

    std::priority_queue<Completion> events;
    std::size_t completed = 0;
    double now = 0.0;

    // Track which slot each running task holds so timelines carry slot
    // indices (used by the chrome-trace exporter).
    std::vector<std::uint32_t> task_slot(n, 0);

    auto start_ready = [&](ResourceId r) {
        ResourceState &state = rstate[r];
        while (!state.ready.empty() && !state.slot_free.empty() &&
               state.slot_free.top() <= now) {
            state.slot_free.pop();
            const ReadyTask ready_task = *state.ready.begin();
            state.ready.erase(state.ready.begin());
            const TaskId id = ready_task.id;
            const double begin = now;
            const double end = begin + tasks[id].duration;
            schedule.start[id] = begin;
            schedule.finish[id] = end;
            const std::uint32_t slot =
                state.next_slot++ % graph.resource(r).slots;
            task_slot[id] = slot;
            schedule.timelines[r].add(begin, end, id, slot);
            events.push(Completion{end, id});
        }
    };

    auto mark_ready = [&](TaskId id) {
        const ResourceId r = tasks[id].resource;
        rstate[r].ready.insert(ReadyTask{tasks[id].priority, id});
    };

    // Seed with tasks that have no dependencies.
    for (TaskId id = 0; id < n; ++id) {
        if (pending_deps[id] == 0)
            mark_ready(id);
    }
    for (ResourceId r = 0; r < graph.resourceCount(); ++r)
        start_ready(r);

    while (!events.empty()) {
        now = events.top().time;
        // Process every completion at this timestamp before starting new
        // work, so freed slots and satisfied deps are all visible.
        std::vector<TaskId> finished;
        while (!events.empty() && events.top().time == now) {
            finished.push_back(events.top().id);
            events.pop();
        }
        std::set<ResourceId> touched;
        for (TaskId id : finished) {
            ++completed;
            const ResourceId r = tasks[id].resource;
            rstate[r].slot_free.push(now);
            touched.insert(r);
            for (TaskId next : dependents[id]) {
                SO_ASSERT(pending_deps[next] > 0, "dependency underflow");
                if (--pending_deps[next] == 0) {
                    mark_ready(next);
                    touched.insert(tasks[next].resource);
                }
            }
        }
        for (ResourceId r : touched)
            start_ready(r);
        schedule.makespan = std::max(schedule.makespan, now);
    }

    SO_ASSERT(completed == n,
              "scheduler finished with ", n - completed,
              " unreachable tasks; the graph has a cycle");
    return schedule;
}

} // namespace so::sim
