#include "sim/scheduler.h"

#include <algorithm>
#include <bit>
#include <string>

#include "common/logging.h"
#include "common/trace.h"

namespace so::sim {

double
Schedule::idleFraction(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].idleTime(0.0, makespan) / makespan;
}

double
Schedule::utilization(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].utilization(0.0, makespan);
}

namespace {

using Slot = Scheduler::Workspace::Slot;

/**
 * Min-heap comparator over (free time, slot index): the slot that freed
 * earliest pops first, ties broken toward the lowest slot index so slot
 * assignment is deterministic and chrome-trace lanes never overlap.
 */
struct SlotAfter
{
    bool
    operator()(const Slot &a, const Slot &b) const
    {
        if (a.free_time != b.free_time)
            return a.free_time > b.free_time;
        return a.slot > b.slot;
    }
};

/** How many unreachable-task labels a cycle diagnosis lists. */
constexpr std::size_t kMaxCycleLabels = 8;

/**
 * Priority spans up to this wide index ready buckets directly by
 * (priority - min); wider (degenerate) spans are first compressed to
 * dense ranks through a sorted-unique table. Builders use a handful of
 * adjacent priorities, so the dense path is the one that matters.
 */
constexpr std::int64_t kDensePrioritySpan = 4096;

} // namespace

void
Scheduler::Workspace::ReadySet::reset(std::size_t ranks)
{
    if (buckets.size() < ranks)
        buckets.resize(ranks);
    for (Bucket &bucket : buckets) {
        bucket.ids.clear();
        bucket.cursor = 0;
    }
    live.assign((ranks + 63) / 64, 0);
    count = 0;
}

void
Scheduler::Workspace::ReadySet::push(std::size_t rank, TaskId id)
{
    Bucket &bucket = buckets[rank];
    if (bucket.cursor != 0 && bucket.cursor == bucket.ids.size()) {
        bucket.ids.clear();
        bucket.cursor = 0;
    }
    if (bucket.cursor == bucket.ids.size())
        live[rank >> 6] |= std::uint64_t(1) << (rank & 63);
    if (bucket.ids.empty() || id > bucket.ids.back())
        bucket.ids.push_back(id);
    else
        bucket.ids.insert(
            std::lower_bound(bucket.ids.begin() +
                                 static_cast<std::ptrdiff_t>(bucket.cursor),
                             bucket.ids.end(), id),
            id);
    ++count;
}

TaskId
Scheduler::Workspace::ReadySet::popMin()
{
    SO_ASSERT(count > 0, "popMin on an empty ready set");
    std::size_t word = 0;
    while (live[word] == 0)
        ++word;
    const std::size_t rank =
        (word << 6) + static_cast<std::size_t>(std::countr_zero(live[word]));
    Bucket &bucket = buckets[rank];
    const TaskId id = bucket.ids[bucket.cursor++];
    if (bucket.cursor == bucket.ids.size()) {
        bucket.ids.clear();
        bucket.cursor = 0;
        live[word] &= ~(std::uint64_t(1) << (rank & 63));
    }
    --count;
    return id;
}

Schedule
Scheduler::run(const TaskGraph &graph) const
{
    Workspace local;
    return run(graph, local);
}

Scheduler::Workspace &
Scheduler::threadWorkspace()
{
    static thread_local Workspace ws;
    return ws;
}

Schedule
Scheduler::run(const TaskGraph &graph, Workspace &ws) const
{
    Schedule schedule;
    run(graph, ws, schedule);
    return schedule;
}

void
Scheduler::run(const TaskGraph &graph, Workspace &ws,
               Schedule &out) const
{
    const std::size_t n = graph.taskCount();
    const std::size_t nres = graph.resourceCount();
    trace::Span span(trace::Category::Sim, "schedule");
    span.arg("tasks", static_cast<double>(n));

    Schedule &schedule = out;
    // Sizing only, no value-init: every task's start/finish is stored
    // exactly once below (a graph whose tasks can't all run is fatal),
    // and recycled capacity must not be re-touched twice per run.
    schedule.start.resize(n);
    schedule.finish.resize(n);
    schedule.timelines.resize(nres);
    for (Timeline &timeline : schedule.timelines)
        timeline.clear();
    schedule.makespan = 0.0;

    // Reverse edges come from the graph's cached CSR — built once per
    // graph (usually already during graph construction by the first
    // consumer) and shared by every run over it.
    graph.finalizeDependents();

    ws.pending_deps.resize(n);
    for (TaskId id = 0; id < n; ++id)
        ws.pending_deps[id] =
            static_cast<std::uint32_t>(graph.depCount(id));

    // Priority ranks for the bucketed ready sets: a direct offset when
    // the graph's priority range is dense (every builder), a
    // sorted-unique compression for degenerate ranges. Rank order ==
    // priority order either way, so tie-breaks are unchanged.
    const std::int64_t min_priority = graph.minPriority();
    const std::int64_t priority_span =
        static_cast<std::int64_t>(graph.maxPriority()) - min_priority + 1;
    const bool dense = priority_span <= kDensePrioritySpan;
    std::size_t ranks;
    if (dense) {
        ranks = static_cast<std::size_t>(priority_span);
    } else {
        const std::span<const std::int32_t> priorities =
            graph.priorities();
        ws.rank_values.assign(priorities.begin(), priorities.end());
        std::sort(ws.rank_values.begin(), ws.rank_values.end());
        ws.rank_values.erase(std::unique(ws.rank_values.begin(),
                                         ws.rank_values.end()),
                             ws.rank_values.end());
        ranks = ws.rank_values.size();
    }
    const auto rank_of = [&](TaskId id) {
        const std::int32_t priority = graph.priority(id);
        if (dense)
            return static_cast<std::size_t>(priority - min_priority);
        return static_cast<std::size_t>(
            std::lower_bound(ws.rank_values.begin(), ws.rank_values.end(),
                             priority) -
            ws.rank_values.begin());
    };

    if (ws.ready.size() < nres)
        ws.ready.resize(nres);
    if (ws.slot_free.size() < nres)
        ws.slot_free.resize(nres);
    for (ResourceId r = 0; r < nres; ++r) {
        ws.ready[r].reset(ranks);
        ws.slot_free[r].clear();
        // All slots free at t=0, in ascending index order — already a
        // valid (free_time, slot) min-heap.
        for (std::uint32_t s = 0; s < graph.resource(r).slots; ++s)
            ws.slot_free[r].push_back(Slot{0.0, s});
    }

    ws.events.clear();
    std::size_t completed = 0;
    double now = 0.0;

    // Track which slot each running task holds so freed slots return to
    // the heap under their own index (timelines then carry overlap-free
    // slot lanes), and which tasks ever completed (cycle diagnosis).
    ws.task_slot.assign(n, 0);
    ws.done.assign(n, 0);

    auto start_ready = [&](ResourceId r) {
        Workspace::ReadySet &ready = ws.ready[r];
        std::vector<Slot> &slots = ws.slot_free[r];
        while (!ready.empty() && !slots.empty() &&
               slots.front().free_time <= now) {
            std::pop_heap(slots.begin(), slots.end(), SlotAfter{});
            const std::uint32_t slot = slots.back().slot;
            slots.pop_back();
            const TaskId id = ready.popMin();
            const double begin = now;
            const double end = begin + graph.duration(id);
            schedule.start[id] = begin;
            schedule.finish[id] = end;
            ws.task_slot[id] = slot;
            schedule.timelines[r].add(begin, end, id, slot);
            ws.events.push(end, id);
        }
    };

    auto mark_ready = [&](TaskId id) {
        ws.ready[graph.taskResource(id)].push(rank_of(id), id);
    };

    // Seed with tasks that have no dependencies.
    for (TaskId id = 0; id < n; ++id) {
        if (ws.pending_deps[id] == 0)
            mark_ready(id);
    }
    for (ResourceId r = 0; r < nres; ++r)
        start_ready(r);

    // Per-timestamp scratch, hoisted out of the event loop. `touched` is
    // a flag per resource (resource counts are tiny) so freed resources
    // restart work in ascending-id order, deterministically.
    ws.finished.clear();
    if (ws.touched.size() < nres)
        ws.touched.resize(nres, 0);

    while (!ws.events.empty()) {
        now = ws.events.peek().time;
        // Process every completion at this timestamp before starting new
        // work, so freed slots and satisfied deps are all visible.
        ws.finished.clear();
        while (!ws.events.empty() && ws.events.peek().time == now)
            ws.finished.push_back(ws.events.pop().id);
        std::fill(ws.touched.begin(), ws.touched.begin() +
                                          static_cast<std::ptrdiff_t>(nres),
                  0);
        for (TaskId id : ws.finished) {
            ++completed;
            ws.done[id] = 1;
            const ResourceId r = graph.taskResource(id);
            std::vector<Slot> &slots = ws.slot_free[r];
            slots.push_back(Slot{now, ws.task_slot[id]});
            std::push_heap(slots.begin(), slots.end(), SlotAfter{});
            ws.touched[r] = 1;
            for (TaskId next : graph.dependents(id)) {
                SO_ASSERT(ws.pending_deps[next] > 0,
                          "dependency underflow");
                if (--ws.pending_deps[next] == 0) {
                    mark_ready(next);
                    ws.touched[graph.taskResource(next)] = 1;
                }
            }
        }
        for (ResourceId r = 0; r < nres; ++r)
            if (ws.touched[r])
                start_ready(r);
    }
    // Events drain in ascending time, so the last batch's timestamp is
    // the completion time of the whole graph — one store instead of a
    // max-fold every event-loop iteration.
    schedule.makespan = now;

    if (completed != n) {
        // Unreachable tasks: the graph has a dependency cycle. Name the
        // stuck tasks so a bad system schedule is debuggable.
        std::string labels;
        std::size_t listed = 0;
        for (TaskId id = 0; id < n && listed < kMaxCycleLabels; ++id) {
            if (ws.done[id])
                continue;
            if (listed++)
                labels += ", ";
            labels += '"';
            labels += graph.label(id);
            labels += '"';
        }
        const std::size_t stuck = n - completed;
        if (stuck > kMaxCycleLabels)
            labels += ", ... (" +
                      std::to_string(stuck - kMaxCycleLabels) + " more)";
        SO_FATAL("scheduler: ", stuck,
                 " task(s) unreachable — the graph has a dependency "
                 "cycle involving: ",
                 labels);
    }
}

} // namespace so::sim
