#include "sim/scheduler.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace so::sim {

double
Schedule::idleFraction(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].idleTime(0.0, makespan) / makespan;
}

double
Schedule::utilization(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].utilization(0.0, makespan);
}

namespace {

using Ready = Scheduler::Workspace::Ready;
using Slot = Scheduler::Workspace::Slot;
using Event = Scheduler::Workspace::Event;

/** Min-heap comparator: the lowest (priority, id) pops first. */
struct ReadyAfter
{
    bool
    operator()(const Ready &a, const Ready &b) const
    {
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.id > b.id;
    }
};

/**
 * Min-heap comparator over (free time, slot index): the slot that freed
 * earliest pops first, ties broken toward the lowest slot index so slot
 * assignment is deterministic and chrome-trace lanes never overlap.
 */
struct SlotAfter
{
    bool
    operator()(const Slot &a, const Slot &b) const
    {
        if (a.free_time != b.free_time)
            return a.free_time > b.free_time;
        return a.slot > b.slot;
    }
};

/** How many unreachable-task labels a cycle diagnosis lists. */
constexpr std::size_t kMaxCycleLabels = 8;

} // namespace

Schedule
Scheduler::run(const TaskGraph &graph) const
{
    Workspace local;
    return run(graph, local);
}

Scheduler::Workspace &
Scheduler::threadWorkspace()
{
    static thread_local Workspace ws;
    return ws;
}

Schedule
Scheduler::run(const TaskGraph &graph, Workspace &ws) const
{
    const std::size_t n = graph.taskCount();
    const std::size_t nres = graph.resourceCount();

    Schedule schedule;
    schedule.start.assign(n, 0.0);
    schedule.finish.assign(n, 0.0);
    schedule.timelines.resize(nres);

    // Dependency bookkeeping. The reverse edges (task -> dependents) are
    // flattened CSR-style into one offsets array plus one edge array;
    // all scratch lives in the workspace, so repeated runs on the same
    // thread reuse the previous run's capacity.
    ws.pending_deps.assign(n, 0);
    ws.dependent_offsets.assign(n + 1, 0);
    std::size_t edge_count = 0;
    for (TaskId id = 0; id < n; ++id) {
        const std::size_t count = graph.depCount(id);
        ws.pending_deps[id] = static_cast<std::uint32_t>(count);
        edge_count += count;
        for (TaskId dep : graph.deps(id))
            ++ws.dependent_offsets[dep + 1];
    }
    for (std::size_t i = 1; i <= n; ++i)
        ws.dependent_offsets[i] += ws.dependent_offsets[i - 1];
    ws.dependents.resize(edge_count);
    ws.dependent_cursor.assign(ws.dependent_offsets.begin(),
                               ws.dependent_offsets.begin() +
                                   static_cast<std::ptrdiff_t>(n));
    for (TaskId id = 0; id < n; ++id)
        for (TaskId dep : graph.deps(id))
            ws.dependents[ws.dependent_cursor[dep]++] = id;

    if (ws.ready.size() < nres)
        ws.ready.resize(nres);
    if (ws.slot_free.size() < nres)
        ws.slot_free.resize(nres);
    for (ResourceId r = 0; r < nres; ++r) {
        ws.ready[r].clear();
        ws.slot_free[r].clear();
        // All slots free at t=0, in ascending index order — already a
        // valid (free_time, slot) min-heap.
        for (std::uint32_t s = 0; s < graph.resource(r).slots; ++s)
            ws.slot_free[r].push_back(Slot{0.0, s});
    }

    ws.events.clear();
    std::size_t completed = 0;
    double now = 0.0;

    // Track which slot each running task holds so freed slots return to
    // the heap under their own index (timelines then carry overlap-free
    // slot lanes), and which tasks ever completed (cycle diagnosis).
    ws.task_slot.assign(n, 0);
    ws.done.assign(n, 0);

    auto start_ready = [&](ResourceId r) {
        std::vector<Ready> &ready = ws.ready[r];
        std::vector<Slot> &slots = ws.slot_free[r];
        while (!ready.empty() && !slots.empty() &&
               slots.front().free_time <= now) {
            std::pop_heap(slots.begin(), slots.end(), SlotAfter{});
            const std::uint32_t slot = slots.back().slot;
            slots.pop_back();
            std::pop_heap(ready.begin(), ready.end(), ReadyAfter{});
            const TaskId id = ready.back().id;
            ready.pop_back();
            const double begin = now;
            const double end = begin + graph.duration(id);
            schedule.start[id] = begin;
            schedule.finish[id] = end;
            ws.task_slot[id] = slot;
            schedule.timelines[r].add(begin, end, id, slot);
            ws.events.push_back(Event{end, id});
            std::push_heap(ws.events.begin(), ws.events.end());
        }
    };

    auto mark_ready = [&](TaskId id) {
        std::vector<Ready> &ready = ws.ready[graph.taskResource(id)];
        ready.push_back(Ready{graph.priority(id), id});
        std::push_heap(ready.begin(), ready.end(), ReadyAfter{});
    };

    // Seed with tasks that have no dependencies.
    for (TaskId id = 0; id < n; ++id) {
        if (ws.pending_deps[id] == 0)
            mark_ready(id);
    }
    for (ResourceId r = 0; r < nres; ++r)
        start_ready(r);

    // Per-timestamp scratch, hoisted out of the event loop. `touched` is
    // a flag per resource (resource counts are tiny) so freed resources
    // restart work in ascending-id order, deterministically.
    ws.finished.clear();
    if (ws.touched.size() < nres)
        ws.touched.resize(nres, 0);

    while (!ws.events.empty()) {
        now = ws.events.front().time;
        // Process every completion at this timestamp before starting new
        // work, so freed slots and satisfied deps are all visible.
        ws.finished.clear();
        while (!ws.events.empty() && ws.events.front().time == now) {
            ws.finished.push_back(ws.events.front().id);
            std::pop_heap(ws.events.begin(), ws.events.end());
            ws.events.pop_back();
        }
        std::fill(ws.touched.begin(), ws.touched.begin() +
                                          static_cast<std::ptrdiff_t>(nres),
                  0);
        for (TaskId id : ws.finished) {
            ++completed;
            ws.done[id] = 1;
            const ResourceId r = graph.taskResource(id);
            std::vector<Slot> &slots = ws.slot_free[r];
            slots.push_back(Slot{now, ws.task_slot[id]});
            std::push_heap(slots.begin(), slots.end(), SlotAfter{});
            ws.touched[r] = 1;
            const std::uint32_t dep_begin = ws.dependent_offsets[id];
            const std::uint32_t dep_end = ws.dependent_offsets[id + 1];
            for (std::uint32_t e = dep_begin; e < dep_end; ++e) {
                const TaskId next = ws.dependents[e];
                SO_ASSERT(ws.pending_deps[next] > 0,
                          "dependency underflow");
                if (--ws.pending_deps[next] == 0) {
                    mark_ready(next);
                    ws.touched[graph.taskResource(next)] = 1;
                }
            }
        }
        for (ResourceId r = 0; r < nres; ++r)
            if (ws.touched[r])
                start_ready(r);
        schedule.makespan = std::max(schedule.makespan, now);
    }

    if (completed != n) {
        // Unreachable tasks: the graph has a dependency cycle. Name the
        // stuck tasks so a bad system schedule is debuggable.
        std::string labels;
        std::size_t listed = 0;
        for (TaskId id = 0; id < n && listed < kMaxCycleLabels; ++id) {
            if (ws.done[id])
                continue;
            if (listed++)
                labels += ", ";
            labels += '"';
            labels += graph.label(id);
            labels += '"';
        }
        const std::size_t stuck = n - completed;
        if (stuck > kMaxCycleLabels)
            labels += ", ... (" +
                      std::to_string(stuck - kMaxCycleLabels) + " more)";
        SO_FATAL("scheduler: ", stuck,
                 " task(s) unreachable — the graph has a dependency "
                 "cycle involving: ",
                 labels);
    }
    return schedule;
}

} // namespace so::sim
