#include "sim/scheduler.h"

#include <algorithm>
#include <queue>
#include <string>

#include "common/logging.h"

namespace so::sim {

double
Schedule::idleFraction(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].idleTime(0.0, makespan) / makespan;
}

double
Schedule::utilization(ResourceId resource) const
{
    SO_ASSERT(resource < timelines.size(), "unknown resource ", resource);
    if (makespan <= 0.0)
        return 0.0;
    return timelines[resource].utilization(0.0, makespan);
}

namespace {

/** A task waiting to run on a resource; ordered by (priority, id). */
struct ReadyTask
{
    std::int32_t priority;
    TaskId id;

    bool
    operator<(const ReadyTask &other) const
    {
        if (priority != other.priority)
            return priority < other.priority;
        return id < other.id;
    }
};

/** Min-heap comparator: the lowest (priority, id) pops first. */
struct ReadyAfter
{
    bool
    operator()(const ReadyTask &a, const ReadyTask &b) const
    {
        return b < a;
    }
};

/** Completion event in the global event queue. */
struct Completion
{
    double time;
    TaskId id;

    // std::priority_queue is a max-heap: invert so the earliest time
    // (then the lowest id, for determinism) pops first.
    bool
    operator<(const Completion &other) const
    {
        if (time != other.time)
            return time > other.time;
        return id > other.id;
    }
};

/** Per-resource scheduling state. */
struct ResourceState
{
    // Min-heap of slot free times.
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>> slot_free;
    // Ready tasks not yet started; min-heap by (priority, id).
    std::priority_queue<ReadyTask, std::vector<ReadyTask>, ReadyAfter>
        ready;
    std::uint32_t next_slot = 0;
};

/** How many unreachable-task labels a cycle diagnosis lists. */
constexpr std::size_t kMaxCycleLabels = 8;

} // namespace

Schedule
Scheduler::run(const TaskGraph &graph) const
{
    const auto &tasks = graph.tasks();
    const std::size_t n = tasks.size();

    Schedule schedule;
    schedule.start.assign(n, 0.0);
    schedule.finish.assign(n, 0.0);
    schedule.timelines.resize(graph.resourceCount());

    // Dependency bookkeeping. The reverse edges (task -> dependents) are
    // flattened CSR-style into one offsets array plus one edge array so
    // graph setup costs two allocations instead of one vector per task.
    std::vector<std::uint32_t> pending_deps(n, 0);
    std::size_t edge_count = 0;
    for (TaskId id = 0; id < n; ++id) {
        pending_deps[id] = static_cast<std::uint32_t>(tasks[id].deps.size());
        edge_count += tasks[id].deps.size();
    }
    std::vector<std::size_t> dependent_offsets(n + 1, 0);
    for (TaskId id = 0; id < n; ++id)
        for (TaskId dep : tasks[id].deps)
            ++dependent_offsets[dep + 1];
    for (std::size_t i = 1; i <= n; ++i)
        dependent_offsets[i] += dependent_offsets[i - 1];
    std::vector<TaskId> dependents(edge_count);
    {
        std::vector<std::size_t> cursor(dependent_offsets.begin(),
                                        dependent_offsets.end() - (n ? 1 : 0));
        for (TaskId id = 0; id < n; ++id)
            for (TaskId dep : tasks[id].deps)
                dependents[cursor[dep]++] = id;
    }

    std::vector<ResourceState> rstate(graph.resourceCount());
    for (ResourceId r = 0; r < graph.resourceCount(); ++r) {
        for (std::uint32_t s = 0; s < graph.resource(r).slots; ++s)
            rstate[r].slot_free.push(0.0);
    }

    std::priority_queue<Completion> events;
    std::size_t completed = 0;
    double now = 0.0;

    // Track which slot each running task holds so timelines carry slot
    // indices (used by the chrome-trace exporter), and which tasks ever
    // completed (for the cycle diagnosis).
    std::vector<std::uint32_t> task_slot(n, 0);
    std::vector<char> done(n, 0);

    auto start_ready = [&](ResourceId r) {
        ResourceState &state = rstate[r];
        while (!state.ready.empty() && !state.slot_free.empty() &&
               state.slot_free.top() <= now) {
            state.slot_free.pop();
            const TaskId id = state.ready.top().id;
            state.ready.pop();
            const double begin = now;
            const double end = begin + tasks[id].duration;
            schedule.start[id] = begin;
            schedule.finish[id] = end;
            const std::uint32_t slot =
                state.next_slot++ % graph.resource(r).slots;
            task_slot[id] = slot;
            schedule.timelines[r].add(begin, end, id, slot);
            events.push(Completion{end, id});
        }
    };

    auto mark_ready = [&](TaskId id) {
        const ResourceId r = tasks[id].resource;
        rstate[r].ready.push(ReadyTask{tasks[id].priority, id});
    };

    // Seed with tasks that have no dependencies.
    for (TaskId id = 0; id < n; ++id) {
        if (pending_deps[id] == 0)
            mark_ready(id);
    }
    for (ResourceId r = 0; r < graph.resourceCount(); ++r)
        start_ready(r);

    // Per-timestamp scratch, hoisted out of the event loop. `touched` is
    // a flag per resource (resource counts are tiny) so freed resources
    // restart work in ascending-id order, deterministically.
    std::vector<TaskId> finished;
    finished.reserve(16);
    std::vector<char> touched(graph.resourceCount(), 0);

    while (!events.empty()) {
        now = events.top().time;
        // Process every completion at this timestamp before starting new
        // work, so freed slots and satisfied deps are all visible.
        finished.clear();
        while (!events.empty() && events.top().time == now) {
            finished.push_back(events.top().id);
            events.pop();
        }
        std::fill(touched.begin(), touched.end(), 0);
        for (TaskId id : finished) {
            ++completed;
            done[id] = 1;
            const ResourceId r = tasks[id].resource;
            rstate[r].slot_free.push(now);
            touched[r] = 1;
            const std::size_t dep_begin = dependent_offsets[id];
            const std::size_t dep_end = dependent_offsets[id + 1];
            for (std::size_t e = dep_begin; e < dep_end; ++e) {
                const TaskId next = dependents[e];
                SO_ASSERT(pending_deps[next] > 0, "dependency underflow");
                if (--pending_deps[next] == 0) {
                    mark_ready(next);
                    touched[tasks[next].resource] = 1;
                }
            }
        }
        for (ResourceId r = 0; r < graph.resourceCount(); ++r)
            if (touched[r])
                start_ready(r);
        schedule.makespan = std::max(schedule.makespan, now);
    }

    if (completed != n) {
        // Unreachable tasks: the graph has a dependency cycle. Name the
        // stuck tasks so a bad system schedule is debuggable.
        std::string labels;
        std::size_t listed = 0;
        for (TaskId id = 0; id < n && listed < kMaxCycleLabels; ++id) {
            if (done[id])
                continue;
            if (listed++)
                labels += ", ";
            labels += '"' + tasks[id].label + '"';
        }
        const std::size_t stuck = n - completed;
        if (stuck > kMaxCycleLabels)
            labels += ", ... (" +
                      std::to_string(stuck - kMaxCycleLabels) + " more)";
        SO_FATAL("scheduler: ", stuck,
                 " task(s) unreachable — the graph has a dependency "
                 "cycle involving: ",
                 labels);
    }
    return schedule;
}

} // namespace so::sim
