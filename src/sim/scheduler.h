/**
 * @file
 * Deterministic list-scheduling discrete-event simulator.
 *
 * Given a TaskGraph, the scheduler computes when each task starts and
 * finishes under the constraints that (a) a task starts only after all
 * its dependencies finish, and (b) a resource runs at most `slots` tasks
 * concurrently. Ties are broken by task priority, then insertion order,
 * so results are bit-for-bit reproducible.
 *
 * The hot machinery is sized for 10M-task graphs (docs/PERF.md, "Event
 * queue at scale"): completion events live in a calendar queue with a
 * sorted-overflow ladder (amortized O(1) per event), ready tasks live
 * in per-resource priority buckets (priorities are small dense ints in
 * every builder, so mark-ready and pop are O(1)), and the reverse-edge
 * CSR is cached on the TaskGraph — built once per graph, not once per
 * run.
 */
#ifndef SO_SIM_SCHEDULER_H
#define SO_SIM_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/graph.h"
#include "sim/timeline.h"

namespace so::sim {

/** Result of simulating one TaskGraph. */
struct Schedule
{
    /** Per-task start time (seconds). */
    std::vector<double> start;
    /** Per-task finish time (seconds). */
    std::vector<double> finish;
    /** Per-resource busy timelines, indexed by ResourceId. */
    std::vector<Timeline> timelines;
    /** Completion time of the last task. */
    double makespan = 0.0;

    /** GPU/CPU idle fraction for a resource over [0, makespan). */
    double idleFraction(ResourceId resource) const;

    /** Utilization of a resource over [0, makespan). */
    double utilization(ResourceId resource) const;
};

/**
 * Event-driven scheduler. run() keeps its working state either on the
 * stack (the one-argument overload) or in a caller-provided Workspace
 * that is reused across calls, so a sweep evaluating thousands of
 * graphs performs O(1) scratch allocations per worker thread instead of
 * O(graphs). Schedules are bit-identical either way. A Scheduler object
 * itself is stateless; many threads may run() concurrently as long as
 * each uses its own Workspace (or none).
 */
class Scheduler
{
  public:
    /**
     * Reusable scratch memory for run(). Not thread-safe: one Workspace
     * per worker thread (see docs/PERF.md for the reuse contract). The
     * vectors grow to the largest graph seen and keep their capacity.
     */
    struct Workspace
    {
        /** A resource slot; min-heap by (free time, slot index). */
        struct Slot
        {
            double free_time;
            std::uint32_t slot;
        };

        /**
         * Ready tasks of one resource, bucketed by priority rank. Each
         * bucket keeps its pending ids ascending in [cursor, end), so
         * pop-min is "advance the cursor of the lowest live bucket" —
         * O(1) — and mark-ready is an append whenever ids arrive in
         * ascending order (the overwhelmingly common case; out-of-order
         * arrivals pay one ordered insert). A bitmask over buckets
         * finds the lowest live priority with a count-trailing-zeros.
         */
        struct ReadySet
        {
            struct Bucket
            {
                std::vector<TaskId> ids;
                std::size_t cursor = 0;
            };
            std::vector<Bucket> buckets;
            /** Bit b set iff buckets[b] has pending ids. */
            std::vector<std::uint64_t> live;
            std::size_t count = 0;

            /** Clear for @p ranks priority ranks, keeping capacity. */
            void reset(std::size_t ranks);
            /** Add @p id at priority rank @p rank. */
            void push(std::size_t rank, TaskId id);
            /** Remove and return the lowest (rank, id). */
            TaskId popMin();
            bool empty() const { return count == 0; }
        };

        std::vector<std::uint32_t> pending_deps;
        /** Per-resource ready sets and slot-free heaps. */
        std::vector<ReadySet> ready;
        std::vector<std::vector<Slot>> slot_free;
        /** Pending completion events (calendar_queue.h). */
        CalendarQueue events;
        /** Sorted unique priorities, for graphs with sparse ranges. */
        std::vector<std::int32_t> rank_values;
        /** Slot index each running/finished task occupies. */
        std::vector<std::uint32_t> task_slot;
        std::vector<char> done;
        std::vector<char> touched;
        std::vector<TaskId> finished;
    };

    /**
     * Simulate @p graph from time 0 using stack-local scratch.
     * Fails (exits with a diagnostic naming the unreachable tasks'
     * labels) if the graph contains a dependency cycle.
     */
    Schedule run(const TaskGraph &graph) const;

    /** Like run(graph), reusing @p ws for all scratch storage. */
    Schedule run(const TaskGraph &graph, Workspace &ws) const;

    /**
     * Like run(graph, ws), but writes the result into @p out, reusing
     * its vectors' and timelines' capacity. At million-task sizes a
     * Schedule is tens of MB; callers that keep one alive across runs
     * (the bench harness, steady-state sweep loops) avoid re-faulting
     * those pages every run. The stored values are bit-identical to the
     * returning overloads'.
     */
    void run(const TaskGraph &graph, Workspace &ws, Schedule &out) const;

    /**
     * This thread's lazily created Workspace. The per-worker reuse
     * point for thread-pool simulations (SweepEngine, bench harness):
     * every run() on the same thread shares one scratch arena.
     */
    static Workspace &threadWorkspace();
};

} // namespace so::sim

#endif // SO_SIM_SCHEDULER_H
